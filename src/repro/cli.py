"""Command-line interface: ``python -m repro ...``.

Subcommands:

- ``run`` — execute one algorithm on one engine over a built-in dataset
  stand-in or an edge-list file, and print the result summary;
- ``compare`` — run all engines on one workload and print the comparison
  rows (the Fig. 10/11 view for a single cell);
- ``datasets`` — print the Table-1 properties of the stand-ins;
- ``experiment`` — regenerate one paper figure's table by name;
- ``kernels-bench`` — time scalar vs vectorized vertex updates and
  write ``BENCH_kernels.json``;
- ``verify`` — run the invariant-checking conformance battery
  (:mod:`repro.verify`) over a workload or the canonical fixtures;
- ``chaos`` — sweep algorithms x engines under a seeded fault plan and
  certify recovered runs against the fault-free golden state
  (:mod:`repro.faults`);
- ``stream`` — replay a seeded mutation trace through the streaming
  subsystem (:mod:`repro.streaming`): incremental path repair + delta
  recompute per batch, with per-batch certification against a
  from-scratch golden run and incremental-vs-rebuild modeled time;
- ``sweep`` — run a declarative benchmark matrix (engines x algorithms
  x graphs x knobs, repeated seeded runs) through
  :mod:`repro.bench.sweep`, write a versioned ``BENCH_sweep.json``
  artifact, and optionally gate it against a committed baseline
  (``--gate BASELINE.json --tolerance 0.15`` exits 1 on regression);
- ``serve`` — serve a deterministic multi-tenant point-query trace
  (:mod:`repro.serve`) over one shared preprocessed graph, batching
  same-algorithm queries into multi-source lane kernels;
  ``--strict`` certifies every served answer bit-identical to an
  independent single-source golden run and exits 1 on any mismatch.

Any :class:`~repro.errors.ReproError` raised by a subcommand is printed
as a one-line ``error: ...`` on stderr with exit status 1; pass
``--debug`` to get the full traceback instead.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.algorithms import make_program
from repro.bench.runner import ENGINE_NAMES, make_engine
from repro.errors import ReproError
from repro.graph import datasets
from repro.graph.io import read_edge_list
from repro.gpu.config import SCALED_MACHINE

ALGORITHMS = (
    "pagerank",
    "adsorption",
    "sssp",
    "kcore",
    "bfs",
    "wcc",
    "ppr",
    "reachability",
)


def _load(args) -> object:
    if getattr(args, "graph_dir", None):
        return _open_graph_dir(args).materialize()
    if args.edge_list:
        return read_edge_list(args.edge_list)
    return datasets.load(
        args.dataset, scale=args.scale, weighted=(args.algorithm == "sssp")
    )


def _open_graph_dir(args):
    """Open ``--graph-dir`` as a :class:`~repro.storage.ShardedGraph`."""
    from repro.storage import ShardedGraph

    return ShardedGraph(
        args.graph_dir,
        max_resident_bytes=getattr(args, "graph_cache_bytes", None),
    )


def _add_workload_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--dataset",
        choices=datasets.DATASET_NAMES,
        default="cnr",
        help="built-in dataset stand-in (default: cnr)",
    )
    parser.add_argument(
        "--edge-list",
        help="path to a 'src dst [weight]' file (overrides --dataset)",
    )
    parser.add_argument(
        "--algorithm",
        choices=ALGORITHMS,
        default="pagerank",
        help="vertex program to run (default: pagerank)",
    )
    parser.add_argument(
        "--scale", type=float, default=1.0, help="dataset scale factor"
    )
    parser.add_argument(
        "--gpus", type=int, default=None, help="override simulated GPU count"
    )


def _durable_run_policy(args):
    """Build the durable :class:`RecoveryPolicy` for ``repro run`` and
    commit the run header (the workload metadata ``repro resume``
    rebuilds the job from)."""
    from dataclasses import asdict

    from repro.errors import ConfigurationError
    from repro.faults.recovery import RecoveryPolicy
    from repro.faults.store import CheckpointStore

    if not args.run_dir:
        raise ConfigurationError(
            f"--durability {args.durability} requires --run-dir"
        )
    if args.edge_list and not getattr(args, "graph_dir", None):
        raise ConfigurationError(
            "--durability requires a named --dataset or a --graph-dir "
            "store (an --edge-list workload cannot be rebuilt by "
            "`repro resume`)"
        )
    policy = RecoveryPolicy(
        durability=args.durability,
        run_dir=args.run_dir,
        store_retain=args.store_retain,
        store_compact=not args.no_compact,
        checkpoint_interval=args.checkpoint_interval,
        incremental_checkpoints=args.incremental_checkpoints,
    )
    header_policy = {
        k: v for k, v in asdict(policy).items() if k != "run_dir"
    }
    CheckpointStore(
        args.run_dir, retain=policy.store_retain,
        compact=policy.store_compact,
    ).write_header(
        {
            "mode": "engine",
            "engine": args.engine,
            "vectorized": bool(args.vectorized),
            "algorithm": args.algorithm,
            "dataset": args.dataset,
            "scale": args.scale,
            "gpus": args.gpus,
            "graph_dir": getattr(args, "graph_dir", None) or None,
            "policy": header_policy,
        }
    )
    return policy


def cmd_run(args) -> int:
    sharded = None
    if args.graph_dir:
        sharded = _open_graph_dir(args)
        graph = sharded.materialize()
    else:
        graph = _load(args)
    spec = SCALED_MACHINE
    if args.gpus:
        spec = spec.scaled(args.gpus)
    engine = make_engine(args.engine, spec, vectorized=args.vectorized)
    program = make_program(args.algorithm, graph)
    recovery = None
    if args.durability != "none":
        recovery = _durable_run_policy(args)
    result = engine.run(
        graph,
        program,
        graph_name=args.graph_dir or args.edge_list or args.dataset,
        recovery=recovery,
    )
    print(result.summary())
    if sharded is not None:
        print(
            f"graph-dir: {sharded.num_parts} shard(s), "
            f"peak_resident_bytes={sharded.peak_resident_bytes}"
        )
    breakdown = result.breakdown()
    print(
        f"breakdown: preprocess={breakdown['preprocess_s'] * 1e3:.3f}ms "
        f"compute={breakdown['compute_s'] * 1e3:.3f}ms "
        f"communication={breakdown['communication_s'] * 1e3:.3f}ms"
    )
    if getattr(args, "trace", False):
        from repro.bench.trace import round_trace_summary

        print(round_trace_summary(result))
    return 0


def cmd_resume(args) -> int:
    from repro.faults.chaos import resume_run

    result = resume_run(args.run_dir, gpus=args.gpus)
    if args.gpus:
        print(f"resumed from {args.run_dir} onto {args.gpus} GPU(s)")
    else:
        print(f"resumed from {args.run_dir}")
    print(result.summary())
    return 0


def cmd_partition(args) -> int:
    from repro.graph.io import edge_list_chunk_source
    from repro.storage import (
        graph_chunk_source,
        partition_graph,
        synthetic_chunk_source,
    )

    if args.synthetic:
        from repro.errors import ConfigurationError

        try:
            v, e = (int(x) for x in args.synthetic.split(","))
        except ValueError:
            raise ConfigurationError(
                f"--synthetic expects 'VERTICES,EDGES', got "
                f"{args.synthetic!r}"
            ) from None
        source = synthetic_chunk_source(
            v, e, seed=args.seed, chunk_edges=args.chunk_edges
        )
    elif args.edge_list:
        source = edge_list_chunk_source(
            args.edge_list, chunk_edges=args.chunk_edges
        )
    elif getattr(args, "npz", None):
        from repro.graph.io import npz_chunk_source

        source = npz_chunk_source(args.npz, chunk_edges=args.chunk_edges)
    else:
        graph = datasets.load(
            args.dataset, scale=args.scale, weighted=args.weighted
        )
        source = graph_chunk_source(graph, chunk_edges=args.chunk_edges)
    report = partition_graph(
        source,
        args.num_parts,
        args.out_dir,
        policy=args.policy,
        seed=args.seed,
    )
    print(report.summary())
    print(
        f"parts: vertices={report.part_num_vertices} "
        f"edges={report.part_num_edges}"
    )
    return 0


def cmd_scrub(args) -> int:
    from repro.faults.store import CheckpointStore

    report = CheckpointStore(args.run_dir).scrub(repair=args.repair)
    print(
        f"{args.run_dir}: {len(report.intact_rounds)} intact "
        f"checkpoint(s) {report.intact_rounds}, "
        f"{len(report.findings)} finding(s)"
    )
    for finding in report.findings:
        print(f"  {finding.kind}: {finding}", file=sys.stderr)
    if report.repaired:
        print(
            f"repaired: dropped round(s) {report.dropped_rounds}, "
            "manifest recommitted"
        )
    if report.clean or report.repaired:
        return 0
    return 1


def cmd_compare(args) -> int:
    graph = _load(args)
    spec = SCALED_MACHINE
    if args.gpus:
        spec = spec.scaled(args.gpus)
    baseline_time = None
    for name in ENGINE_NAMES:
        engine = make_engine(name, spec)
        program = make_program(args.algorithm, graph)
        result = engine.run(
            graph, program, graph_name=args.edge_list or args.dataset
        )
        if baseline_time is None:
            baseline_time = result.processing_time_s
        speedup = baseline_time / result.processing_time_s
        print(f"{result.summary()}  speedup=x{speedup:5.2f}")
    return 0


def cmd_datasets(args) -> int:
    print(f"{'dataset':<10}{'#V':>10}{'#E':>12}{'A_Deg':>8}{'A_Dis':>8}")
    for props in datasets.table1(scale=args.scale):
        print(props.as_row())
    return 0


def cmd_kernels_bench(args) -> int:
    from repro.bench.runner import run_kernel_microbench

    report = run_kernel_microbench(
        num_vertices=args.vertices,
        num_edges=args.edges,
        seed=args.seed,
        algos=tuple(args.algorithms),
        out_path=args.output,
    )
    print(
        f"{'algorithm':<12}{'scalar s':>10}{'vector s':>10}"
        f"{'speedup':>9}{'equal':>7}"
    )
    for row in report["results"]:
        print(
            f"{row['algorithm']:<12}"
            f"{row['scalar']['wall_seconds']:>10.2f}"
            f"{row['vectorized']['wall_seconds']:>10.2f}"
            f"{row['speedup']:>8.1f}x"
            f"{'yes' if row['states_equal'] else 'NO':>7}"
        )
    if args.output:
        print(f"wrote {args.output}")
    return 0


def cmd_verify(args) -> int:
    from repro.bench.runner import ALL_ENGINE_NAMES
    from repro.verify.fixtures import CANONICAL_GRAPHS
    from repro.verify.harness import verify_graph

    spec = SCALED_MACHINE
    if args.gpus:
        spec = spec.scaled(args.gpus)
    if args.edge_list:
        workloads = [(args.edge_list, read_edge_list(args.edge_list))]
    elif args.dataset:
        workloads = [
            (args.dataset, datasets.load(args.dataset, scale=args.scale))
        ]
    else:
        workloads = [
            (name, builder())
            for name, builder in CANONICAL_GRAPHS.items()
        ]

    unknown = set(args.engines) - set(ALL_ENGINE_NAMES)
    if unknown:
        print(f"unknown engine(s): {sorted(unknown)}", file=sys.stderr)
        return 2

    all_passed = True
    for name, graph in workloads:
        report = verify_graph(
            graph,
            graph_name=name,
            algorithms=tuple(args.algorithms),
            engine_names=tuple(args.engines),
            machine=spec,
            skip_metamorphic=args.skip_metamorphic,
            seed=args.seed,
        )
        all_passed = all_passed and report.passed
        status = "PASS" if report.passed else "FAIL"
        print(f"{name}: {status} ({len(report.results)} checks)")
        shown = report.failures if not args.verbose else report.results
        for result in shown:
            print(f"  {result}")
    return 0 if all_passed else 1


def cmd_chaos(args) -> int:
    from repro.faults import RecoveryPolicy, chaos_sweep

    if args.edge_list:
        graph = read_edge_list(args.edge_list)
        name = args.edge_list
    else:
        graph = datasets.load(args.dataset, scale=args.scale)
        name = args.dataset
    spec = SCALED_MACHINE
    if args.gpus:
        spec = spec.scaled(args.gpus)
    if args.storm:
        # Correlated-failure schedules: plan options feed the storm
        # generator (overlapping kills + link flaps) instead of the
        # independent-fault plan.
        plan_options = {
            "kills": args.storm_kills,
            "flaps": args.storm_flaps,
            "flap_length": args.storm_flap_length,
            "transfer_fault_rate": args.transfer_fault_rate,
            "sync_drop_rate": args.sync_drop_rate,
        }
    else:
        plan_options = {
            "transfer_fault_rate": args.transfer_fault_rate,
            "sync_drop_rate": args.sync_drop_rate,
            "sync_corrupt_rate": args.sync_corrupt_rate,
            "straggler_rate": args.straggler_rate,
            "kill_gpu": args.kill_gpu,
            "kill_at_round": args.kill_round,
        }

    def sweep(redistribution_policy):
        recovery = RecoveryPolicy(
            checkpoint_interval=args.checkpoint_interval,
            incremental_checkpoints=args.incremental_checkpoints,
            full_checkpoint_period=args.full_checkpoint_period,
            overlap_checkpoint_spill=args.overlap_spill,
            redistribution_policy=redistribution_policy,
        )
        return chaos_sweep(
            graph,
            algorithms=tuple(args.algorithms),
            engine_names=tuple(args.engines),
            seeds=tuple(args.seeds),
            machine=spec,
            recovery=recovery,
            graph_name=name,
            plan_options=plan_options,
            disable_recovery=args.no_recovery,
            include_serve=args.include_serve,
            storm=args.storm,
        )

    if args.crash_restart:
        from repro.faults import crash_restart_sweep

        recovery = RecoveryPolicy(
            checkpoint_interval=args.checkpoint_interval,
            incremental_checkpoints=args.incremental_checkpoints,
            full_checkpoint_period=args.full_checkpoint_period,
            overlap_checkpoint_spill=args.overlap_spill,
            redistribution_policy=args.redistribution,
        )
        results = crash_restart_sweep(
            graph,
            algorithms=tuple(args.algorithms),
            engine_names=tuple(args.engines),
            machine=spec,
            recovery=recovery,
            graph_name=name,
            include_serve=args.include_serve,
        )
    else:
        results = sweep(args.redistribution)
    all_passed = True
    for cell in results:
        all_passed = all_passed and cell.passed
        if args.strict_digests:
            all_passed = all_passed and cell.digest_match
        status = "PASS" if cell.passed else "FAIL"
        digest = "ok" if cell.digest_match else "MISMATCH"
        print(
            f"{cell.label:<34}{status}  "
            f"faults={cell.faults_injected:<3} "
            f"retries={cell.transfer_retries}+{cell.sync_retries} "
            f"stragglers={cell.stragglers_detected} "
            f"gpu_lost={cell.gpu_failures} "
            f"rollbacks={cell.rounds_rolled_back} "
            f"replay={cell.rollback_replay_rounds} "
            f"ckpt={cell.checkpoints_taken}"
            f"/{cell.incremental_checkpoints_taken}inc "
            f"spill={cell.checkpoint_bytes_spilled}B"
            f"/{cell.checkpoint_time_s:.2e}s"
            f"(hid {cell.checkpoint_hidden_time_s:.2e}s) "
            f"recov={cell.recovery_time_s:.2e}s "
            f"digest={digest}"
        )
        if args.verbose:
            print(f"  detail: {cell.detail}")
            print(f"  trace digest: {cell.trace_digest}")
            print(f"  golden state digest:    {cell.golden_digest}")
            print(f"  recovered state digest: {cell.recovered_digest}")
        if not cell.passed or (args.strict_digests and not cell.digest_match):
            print(f"  {cell.error or cell.detail}", file=sys.stderr)

    if (
        args.compare_redistribution
        and not args.no_recovery
        and not args.crash_restart
    ):
        other = (
            "edge-balance"
            if args.redistribution == "locality"
            else "locality"
        )
        alternate = sweep(other)
        print(
            f"redistribution comparison "
            f"({args.redistribution} vs {other}, recovered modeled time):"
        )
        for cell, alt in zip(results, alternate):
            delta = alt.recovered_time_s - cell.recovered_time_s
            sign = "+" if delta >= 0 else ""
            print(
                f"  {cell.label:<34}"
                f"{cell.recovered_time_s:.3e}s vs "
                f"{alt.recovered_time_s:.3e}s "
                f"({sign}{delta:.3e}s, alt "
                f"{'PASS' if alt.passed else 'FAIL'})"
            )
            all_passed = all_passed and alt.passed

    summary = "all cells recovered" if all_passed else "FAILURES above"
    print(f"{name}: {len(results)} chaos cells, {summary}")
    return 0 if all_passed else 1


def cmd_stream(args) -> int:
    from repro.graph.generators import mutation_trace
    from repro.streaming import StreamingSession

    if args.edge_list:
        graph = read_edge_list(args.edge_list)
        name = args.edge_list
    else:
        graph = datasets.load(args.dataset, scale=args.scale)
        name = args.dataset
    spec = SCALED_MACHINE
    if args.gpus:
        spec = spec.scaled(args.gpus)
    if args.strict:
        args.certify = True  # strict mode is meaningless without the oracle

    all_passed = True
    for algorithm in args.algorithms:
        trace = mutation_trace(
            graph,
            args.batches,
            seed=args.seed,
            batch_size=args.batch_size,
            mix=args.mix,
        )
        session = StreamingSession(
            graph,
            algorithm,
            machine_spec=spec,
            graph_name=name,
            verify_structure=args.strict,
        )
        incr_total = 0.0
        rebuild_total = 0.0
        print(
            f"{name}/{algorithm}: {args.batches} batches "
            f"(mix={args.mix}, batch_size={args.batch_size}, "
            f"seed={args.seed})"
        )
        for batch in trace:
            outcome = session.apply(batch, certify=args.certify)
            stats = outcome.result.stats
            line = (
                f"  batch {batch.batch_id}: mode={outcome.mode:<6} "
                f"seeds={len(outcome.plan.seed_vertices):<5} "
                f"reactivated={stats.vertices_reactivated:<6} "
                f"rounds={stats.incremental_rounds:<4} "
                f"repaired={stats.paths_repaired:<4} "
                f"incr={outcome.incremental_total_s:.3e}s"
            )
            incr_total += outcome.incremental_total_s
            if outcome.rebuild_total_s is not None:
                rebuild_total += outcome.rebuild_total_s
                line += (
                    f" rebuild={outcome.rebuild_total_s:.3e}s "
                    f"speedup=x{outcome.speedup:.2f}"
                )
            if outcome.certification is not None:
                ok = outcome.certification.passed
                all_passed = all_passed and ok
                line += f" cert={'ok' if ok else 'FAIL'}"
                if not ok or args.verbose:
                    line += f" ({outcome.certification.detail})"
            print(line)
        summary = f"  total incremental={incr_total:.3e}s"
        if rebuild_total:
            summary += (
                f" rebuild={rebuild_total:.3e}s "
                f"speedup=x{rebuild_total / incr_total:.2f}"
            )
        print(summary)
    if args.strict and not all_passed:
        print("stream: certification FAILURES above", file=sys.stderr)
        return 1
    return 0


def cmd_serve(args) -> int:
    from repro.serve.runner import run_serve_cell, serve_digest

    report = run_serve_cell(
        args.algorithm,
        args.dataset,
        scale=args.scale,
        seed=args.seed,
        num_queries=args.queries,
        tenant_count=args.tenants,
        query_lanes=args.lanes,
        max_concurrent=args.max_concurrent,
        tenant_quota=args.tenant_quota,
        mean_interarrival_us=args.interarrival_us,
        num_gpus=args.gpus,
        kill_launch=args.kill_launch,
        replay_on_fault=not args.no_replay,
        deadline_ms=args.deadline_ms,
        deadline_policy=args.deadline_policy,
        max_queue=args.max_queue,
        brownout=args.brownout,
        max_replays=args.max_replays,
        replay_backoff_us=args.replay_backoff_us,
        arrival_model="closed" if args.closed_loop else "open",
        mean_think_time_us=args.think_us,
        use_cache=False,
    )
    metrics = report.metrics()
    print(
        f"{args.dataset}/{args.algorithm}: "
        f"{int(metrics['queries_completed'])}"
        f"/{int(metrics['queries_total'])} queries completed "
        f"({int(metrics['queries_failed'])} failed, "
        f"{int(metrics['replays'])} replayed) in "
        f"{int(metrics['batches'])} batches / "
        f"{int(metrics['launches'])} launches"
    )
    if (
        args.deadline_ms is not None
        or args.max_queue is not None
        or args.brownout
    ):
        print(
            f"  overload: goodput={int(metrics['goodput_queries'])}"
            f"/{int(metrics['queries_total'])} "
            f"({metrics['goodput_per_s']:.0f} q/s) "
            f"degraded={int(metrics['queries_degraded'])} "
            f"shed={int(metrics['queries_shed'])} "
            f"rejected={int(metrics['queries_rejected'])} "
            f"late={int(metrics['deadline_misses'])} "
            f"max_residual_bound={metrics['residual_bound_max']:.3g}"
        )
    print(
        f"  throughput={metrics['queries_per_s']:.0f} q/s "
        f"p50={metrics['latency_p50_s'] * 1e6:.1f}us "
        f"p99={metrics['latency_p99_s'] * 1e6:.1f}us "
        f"makespan={metrics['makespan_s'] * 1e3:.3f}ms "
        f"gpu_busy={metrics['gpu_busy_s'] * 1e3:.3f}ms "
        f"peak_concurrency={int(metrics['peak_concurrency'])}"
    )
    for tenant, stats in sorted(report.per_tenant.items()):
        print(
            f"  {tenant:<12} queries={int(stats['queries']):<4} "
            f"completed={int(stats['completed']):<4} "
            f"p50={stats['latency_p50_s'] * 1e6:.1f}us "
            f"p99={stats['latency_p99_s'] * 1e6:.1f}us "
            f"max={stats['latency_max_s'] * 1e6:.1f}us"
        )
    if args.verbose:
        for result in report.results:
            digest = (result.digest or "-")[:12]
            print(
                f"    q{result.query.query_id:<4} "
                f"{result.query.tenant:<10} "
                f"{result.query.algorithm:<13} {result.status:<7} "
                f"batch={result.batch_id:<3} lanes={result.lanes:<2} "
                f"rounds={result.rounds:<4} "
                f"latency={result.latency_s * 1e6:9.1f}us "
                f"digest={digest}"
            )
    print(f"  serve digest: {serve_digest(report)[:16]}")
    exit_code = 0
    if report.failed:
        print(
            f"serve: {len(report.failed)} queries FAILED", file=sys.stderr
        )
        exit_code = 1
    if args.strict:
        from repro.serve.runner import serving_context_for
        from repro.verify.serve import verify_serve_report

        spec = SCALED_MACHINE
        if args.gpus:
            spec = spec.scaled(args.gpus)
        context = serving_context_for(
            args.dataset, args.algorithm, args.scale, spec
        )
        verdict = verify_serve_report(context, report)
        status = "PASS" if verdict.passed else "FAIL"
        print(f"  equivalence oracle: {status} ({verdict.detail})")
        if not verdict.passed:
            for line in verdict.failures:
                print(f"    {line}", file=sys.stderr)
            exit_code = 1
        degraded = [r for r in report.results if r.status == "degraded"]
        if degraded:
            from repro.verify.serve import verify_degraded_answer

            checks = [
                verify_degraded_answer(context, r) for r in degraded
            ]
            bad = [c for c in checks if not c.passed]
            status = "PASS" if not bad else "FAIL"
            print(
                f"  degraded-answer oracle: {status} "
                f"({len(degraded)} certificates checked)"
            )
            for check in bad:
                print(f"    {check.detail}", file=sys.stderr)
            if bad:
                exit_code = 1
    return exit_code


def cmd_sweep(args) -> int:
    from repro.bench.sweep import (
        SweepConfig,
        compare_sweeps,
        load_artifact,
        run_sweep,
        write_artifact,
    )

    if args.config:
        config = SweepConfig.from_json(args.config)
    else:
        knobs = {}
        if args.vectorized_knob:
            knobs["use_vectorized_kernels"] = [False, True]
        config = SweepConfig.from_dict(
            {
                "engines": args.engines,
                "algorithms": args.algorithms,
                "graphs": args.graphs,
                "scale": args.scale,
                "seeds": args.seeds,
                "repeats": args.repeats,
                "knobs": knobs,
            }
        )

    report = run_sweep(
        config,
        progress=(
            (lambda cell_id: print(f"running {cell_id} ..."))
            if args.verbose
            else None
        ),
    )
    for cell in report["cells"]:
        wall = cell["wall_seconds"]
        first_metric = {
            "run": "processing_time_s",
            "stream": "incremental_s",
            "serve": "latency_p50_s",
        }[cell["mode"]]
        model = cell["metrics"][first_metric]
        flags = ""
        if not cell["deterministic"]:
            flags += " NONDETERMINISTIC"
        if not cell["converged"]:
            flags += " NOT-CONVERGED"
        print(
            f"{cell['cell_id']:<58} "
            f"model={model['mean']:.3e}s±{model['std']:.1e} "
            f"wall={wall['mean']:.3f}s±{wall['std']:.3f} "
            f"runs={cell['runs']}{flags}"
        )
    print(
        f"{report['matrix_cells']} cells, "
        f"{report['wall_seconds_total']:.2f}s total"
    )
    if args.output:
        write_artifact(report, args.output)
        print(f"wrote {args.output}")

    if args.gate:
        baseline = load_artifact(args.gate)
        gate = compare_sweeps(
            baseline,
            report,
            tolerance=args.tolerance,
            wall_tolerance=args.wall_tolerance,
        )
        for finding in gate.findings:
            stream = sys.stderr if finding.severity == "fail" else sys.stdout
            print(finding, file=stream)
        print(gate.summary())
        if not gate.passed:
            return 1
    return 0


def cmd_experiment(args) -> int:
    from repro.bench import experiments

    function = getattr(experiments, args.name, None)
    if function is None:
        names = [
            name
            for name in dir(experiments)
            if name.startswith(
                ("fig", "table", "ablation", "stream", "serve",
                 "durability", "storage")
            )
        ]
        print(
            f"unknown experiment {args.name!r}; available: "
            + ", ".join(sorted(names)),
            file=sys.stderr,
        )
        return 2
    result = function(scale=args.scale)
    print(result["table"])
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DiGraph (ASPLOS 2019) reproduction CLI",
    )
    parser.add_argument(
        "--debug",
        action="store_true",
        help="re-raise errors with full tracebacks instead of the "
        "one-line 'error: ...' summary",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one engine on one workload")
    _add_workload_args(run)
    run.add_argument(
        "--graph-dir",
        default="",
        help="sharded on-disk graph store built by `repro partition` "
        "(overrides --dataset/--edge-list; opened through the bounded "
        "shard cache)",
    )
    run.add_argument(
        "--graph-cache-bytes",
        type=int,
        default=None,
        help="shard-cache bound while opening --graph-dir "
        "(default: unbounded)",
    )
    run.add_argument(
        "--engine",
        choices=ENGINE_NAMES,
        default="digraph",
        help="engine to run (default: digraph)",
    )
    run.add_argument(
        "--trace",
        action="store_true",
        help="print per-round sparklines (Fig. 2-style view)",
    )
    run.add_argument(
        "--vectorized",
        action="store_true",
        help="use the batched vertex-update kernels (bulk-sync and the "
        "DiGraph family; same modeled cost, faster simulation)",
    )
    run.add_argument(
        "--durability",
        choices=("none", "durable", "durable-verify"),
        default="none",
        help="commit checkpoints to a durable on-disk store under "
        "--run-dir so a killed job can `repro resume` (default: none)",
    )
    run.add_argument(
        "--run-dir",
        default="",
        help="run directory for the durable checkpoint store "
        "(required with --durability)",
    )
    run.add_argument(
        "--store-retain",
        type=int,
        default=2,
        help="durable checkpoints retained before GC (default: 2)",
    )
    run.add_argument(
        "--no-compact",
        action="store_true",
        help="disable zlib compression of cold durable pages",
    )
    run.add_argument(
        "--checkpoint-interval",
        type=int,
        default=1,
        help="checkpoint every K rounds when durable (default: 1)",
    )
    run.add_argument(
        "--incremental-checkpoints",
        action="store_true",
        help="spill per-round dirty deltas instead of full snapshots",
    )
    run.set_defaults(func=cmd_run)

    rs = sub.add_parser(
        "resume",
        help="restart a killed durable run from its last intact "
        "checkpoint (bit-identical to the uninterrupted run)",
    )
    rs.add_argument(
        "--run-dir", required=True, help="durable run directory"
    )
    rs.add_argument(
        "--gpus",
        type=int,
        default=None,
        help="resume onto a different simulated GPU count: the restart "
        "is re-partitioned (warm-started from the newest intact "
        "checkpoint's vertex state) instead of refused",
    )
    rs.set_defaults(func=cmd_resume)

    pt = sub.add_parser(
        "partition",
        help="build a sharded on-disk graph store (bounded-memory "
        "streaming preprocessing)",
    )
    pt.add_argument(
        "--out-dir", required=True, help="store directory to create"
    )
    pt.add_argument(
        "--dataset",
        choices=datasets.DATASET_NAMES,
        default="cnr",
        help="built-in dataset stand-in to shard (default: cnr)",
    )
    pt.add_argument(
        "--edge-list",
        help="stream a 'src dst [weight]' file instead of --dataset "
        "(never materialized in RAM)",
    )
    pt.add_argument(
        "--npz",
        help="stream a save_npz archive instead of --dataset "
        "(decompressed once, chunked in CSR order)",
    )
    pt.add_argument(
        "--synthetic",
        metavar="VERTICES,EDGES",
        help="stream a deterministic synthetic graph of this size "
        "instead of --dataset (never materialized in RAM)",
    )
    pt.add_argument(
        "--scale", type=float, default=1.0, help="dataset scale factor"
    )
    pt.add_argument(
        "--weighted",
        action="store_true",
        help="load the --dataset with generated edge weights (use when "
        "the store will serve sssp runs)",
    )
    pt.add_argument(
        "--num-parts",
        type=int,
        default=4,
        help="shard count (one per target GPU; default: 4)",
    )
    pt.add_argument(
        "--policy",
        choices=("affinity", "random"),
        default="affinity",
        help="partition policy: dependency-cluster affinity (edge-cut "
        "minimizing METIS stand-in) or hashed random baseline",
    )
    pt.add_argument("--seed", type=int, default=0)
    pt.add_argument(
        "--chunk-edges",
        type=int,
        default=65_536,
        help="edges per streamed chunk (the resident unit; "
        "default: 65536)",
    )
    pt.set_defaults(func=cmd_partition)

    sc = sub.add_parser(
        "scrub",
        help="walk a durable run directory verifying every checksum; "
        "exits 1 on unrepaired corruption",
    )
    sc.add_argument(
        "--run-dir", required=True, help="durable run directory"
    )
    sc.add_argument(
        "--repair",
        action="store_true",
        help="drop damaged checkpoints from the manifest (falling back "
        "to the newest intact one) and GC orphaned files",
    )
    sc.set_defaults(func=cmd_scrub)

    compare = sub.add_parser("compare", help="run every engine on a workload")
    _add_workload_args(compare)
    compare.set_defaults(func=cmd_compare)

    ds = sub.add_parser("datasets", help="print Table-1 dataset properties")
    ds.add_argument("--scale", type=float, default=1.0)
    ds.set_defaults(func=cmd_datasets)

    exp = sub.add_parser("experiment", help="regenerate one figure's table")
    exp.add_argument("name", help="e.g. fig11_updates, table1, ablation_dmax")
    exp.add_argument("--scale", type=float, default=0.5)
    exp.set_defaults(func=cmd_experiment)

    kb = sub.add_parser(
        "kernels-bench",
        help="time scalar vs vectorized vertex updates on a synthetic graph",
    )
    kb.add_argument("--vertices", type=int, default=50_000)
    kb.add_argument(
        "--edges",
        type=int,
        default=None,
        help="edge count (default: 8x vertices)",
    )
    kb.add_argument("--seed", type=int, default=7)
    kb.add_argument(
        "--algorithms",
        nargs="+",
        choices=ALGORITHMS,
        default=["pagerank", "sssp", "wcc", "kcore"],
    )
    kb.add_argument(
        "--output",
        default="BENCH_kernels.json",
        help="JSON report path (default: BENCH_kernels.json)",
    )
    kb.set_defaults(func=cmd_kernels_bench)

    sw = sub.add_parser(
        "sweep",
        help="run a declarative benchmark matrix (engines x algorithms x "
        "graphs x knobs, repeated seeded runs) and optionally gate it "
        "against a committed baseline artifact",
    )
    sw.add_argument(
        "--config",
        help="JSON sweep config (overrides the inline matrix flags); "
        "see docs/benchmarking.md for the format",
    )
    sw.add_argument(
        "--engines",
        nargs="+",
        default=["bulk-sync", "digraph"],
        help="engines to sweep (default: bulk-sync digraph)",
    )
    sw.add_argument(
        "--algorithms",
        nargs="+",
        choices=ALGORITHMS,
        default=["pagerank", "sssp"],
        help="algorithms to sweep (default: pagerank sssp)",
    )
    sw.add_argument(
        "--graphs",
        nargs="+",
        choices=datasets.DATASET_NAMES,
        default=["cnr"],
        help="dataset stand-ins to sweep (default: cnr)",
    )
    sw.add_argument(
        "--scale", type=float, default=0.25, help="dataset scale factor"
    )
    sw.add_argument(
        "--seeds",
        nargs="+",
        type=int,
        default=[0],
        help="seed axis; each cell runs once per seed (default: 0)",
    )
    sw.add_argument(
        "--repeats",
        type=int,
        default=1,
        help="wall-clock repeats per seed; model metrics must be "
        "bit-identical across repeats (default: 1)",
    )
    sw.add_argument(
        "--vectorized-knob",
        action="store_true",
        help="sweep use_vectorized_kernels over {off, on}",
    )
    sw.add_argument(
        "--output",
        default="BENCH_sweep.json",
        help="artifact path (default: BENCH_sweep.json; '' to skip)",
    )
    sw.add_argument(
        "--gate",
        metavar="BASELINE",
        help="compare against this committed sweep artifact and exit 1 "
        "on any regression, digest mismatch, or missing cell",
    )
    sw.add_argument(
        "--tolerance",
        type=float,
        default=0.15,
        help="relative model-metric regression tolerance for --gate "
        "(default: 0.15)",
    )
    sw.add_argument(
        "--wall-tolerance",
        type=float,
        default=None,
        help="also gate real wall-clock at this relative tolerance "
        "(off by default: wall time is machine-dependent)",
    )
    sw.add_argument(
        "--verbose",
        action="store_true",
        help="print each cell id before running it",
    )
    sw.set_defaults(func=cmd_sweep)

    sv = sub.add_parser(
        "serve",
        help="serve a deterministic multi-tenant point-query trace with "
        "batched multi-source kernels over one shared preprocessed graph",
    )
    sv.add_argument(
        "--dataset",
        choices=datasets.DATASET_NAMES,
        default="dblp",
        help="built-in dataset stand-in (default: dblp)",
    )
    sv.add_argument(
        "--scale", type=float, default=0.25, help="dataset scale factor"
    )
    sv.add_argument(
        "--gpus", type=int, default=None, help="override simulated GPU count"
    )
    sv.add_argument(
        "--algorithm",
        choices=["sssp", "bfs", "ppr", "reachability", "mixed"],
        default="mixed",
        help="query algorithm for the trace; 'mixed' draws uniformly "
        "over all servable algorithms (default: mixed)",
    )
    sv.add_argument(
        "--queries", type=int, default=64, help="trace length (default: 64)"
    )
    sv.add_argument(
        "--tenants", type=int, default=4, help="tenant count (default: 4)"
    )
    sv.add_argument(
        "--lanes",
        type=int,
        default=8,
        help="max same-algorithm queries batched into one multi-source "
        "solve; 1 = sequential dispatch (default: 8)",
    )
    sv.add_argument(
        "--max-concurrent",
        type=int,
        default=32,
        help="admission bound on in-flight queries (default: 32)",
    )
    sv.add_argument(
        "--tenant-quota",
        type=int,
        default=8,
        help="per-tenant in-flight fairness quota (default: 8)",
    )
    sv.add_argument(
        "--interarrival-us",
        type=float,
        default=10.0,
        help="mean open-loop interarrival time in microseconds "
        "(default: 10)",
    )
    sv.add_argument("--seed", type=int, default=0)
    sv.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        help="per-query relative deadline in milliseconds; late answers "
        "count as deadline misses (default: no deadline)",
    )
    sv.add_argument(
        "--deadline-policy",
        choices=["reject", "abort"],
        default="reject",
        help="'reject' refuses admission once a deadline is hopeless; "
        "'abort' additionally drops in-flight answers that finished "
        "late (default: reject)",
    )
    sv.add_argument(
        "--max-queue",
        type=int,
        default=None,
        help="bound on waiting queries; excess is shed deterministically "
        "from the largest-backlog tenant, newest first (default: "
        "unbounded)",
    )
    sv.add_argument(
        "--brownout",
        action="store_true",
        help="under deadline pressure return partially-converged answers "
        "with certified residual bounds instead of missing deadlines",
    )
    sv.add_argument(
        "--max-replays",
        type=int,
        default=1,
        help="replay attempts per fault-killed batch before its queries "
        "abort (default: 1)",
    )
    sv.add_argument(
        "--replay-backoff-us",
        type=float,
        default=0.0,
        help="base backoff before a batch replay, in microseconds; "
        "doubles per attempt (default: 0)",
    )
    sv.add_argument(
        "--closed-loop",
        action="store_true",
        help="closed-loop (think-time) arrival model: each tenant "
        "session keeps one query in flight instead of the open-loop "
        "timeline",
    )
    sv.add_argument(
        "--think-us",
        type=float,
        default=100.0,
        help="mean think time between a session's queries with "
        "--closed-loop, in microseconds (default: 100)",
    )
    sv.add_argument(
        "--kill-launch",
        type=int,
        default=None,
        help="kill the GPU at this serve-wide kernel-launch index "
        "(default: no fault)",
    )
    sv.add_argument(
        "--no-replay",
        action="store_true",
        help="fail the killed batch's queries cleanly instead of "
        "replaying them",
    )
    sv.add_argument(
        "--strict",
        action="store_true",
        help="certify every served answer bit-identical to an "
        "independent single-source golden run; exit 1 on mismatch",
    )
    sv.add_argument(
        "--verbose",
        action="store_true",
        help="print one line per served query",
    )
    sv.set_defaults(func=cmd_serve)

    vf = sub.add_parser(
        "verify",
        help="run the invariant-checking conformance battery",
    )
    vf.add_argument(
        "--dataset",
        choices=datasets.DATASET_NAMES,
        default=None,
        help="dataset stand-in to verify (default: canonical fixtures)",
    )
    vf.add_argument(
        "--edge-list",
        help="path to a 'src dst [weight]' file (overrides --dataset)",
    )
    vf.add_argument(
        "--scale", type=float, default=0.25, help="dataset scale factor"
    )
    vf.add_argument(
        "--gpus", type=int, default=None, help="override simulated GPU count"
    )
    vf.add_argument(
        "--algorithms",
        nargs="+",
        choices=ALGORITHMS,
        default=list(ALGORITHMS),
        help="algorithms to verify (default: all eight)",
    )
    vf.add_argument(
        "--engines",
        nargs="+",
        default=["sequential", "bulk-sync", "async", "digraph"],
        help="engines for the cross-engine oracle "
        "(default: sequential bulk-sync async digraph)",
    )
    vf.add_argument(
        "--skip-metamorphic",
        action="store_true",
        help="skip the relabeling/augmentation relations (faster)",
    )
    vf.add_argument("--seed", type=int, default=7)
    vf.add_argument(
        "--verbose",
        action="store_true",
        help="print every check, not just failures",
    )
    vf.set_defaults(func=cmd_verify)

    ch = sub.add_parser(
        "chaos",
        help="sweep algorithms under a seeded fault plan and certify "
        "recovery against the fault-free golden state",
    )
    ch.add_argument(
        "--dataset",
        choices=datasets.DATASET_NAMES,
        default="cnr",
        help="built-in dataset stand-in (default: cnr)",
    )
    ch.add_argument(
        "--edge-list",
        help="path to a 'src dst [weight]' file (overrides --dataset)",
    )
    ch.add_argument(
        "--scale", type=float, default=0.25, help="dataset scale factor"
    )
    ch.add_argument(
        "--gpus", type=int, default=None, help="override simulated GPU count"
    )
    ch.add_argument(
        "--algorithms",
        nargs="+",
        choices=ALGORITHMS,
        default=list(ALGORITHMS),
        help="algorithms to sweep (default: all eight)",
    )
    ch.add_argument(
        "--engines",
        nargs="+",
        choices=[
            "digraph",
            "digraph-t",
            "digraph-w",
            "digraph-vec",
            "bulk-sync",
            "bulk-sync-vec",
            "async",
        ],
        default=["digraph"],
        help="engines to sweep: the DiGraph family (digraph-vec runs "
        "the vectorized batch kernels) and the baseline comparators "
        "(default: digraph)",
    )
    ch.add_argument(
        "--seeds",
        nargs="+",
        type=int,
        default=[0],
        help="fault-plan seeds; each seed is one full grid sweep",
    )
    ch.add_argument(
        "--transfer-fault-rate",
        type=float,
        default=0.05,
        help="per-transfer probability of a transient fault",
    )
    ch.add_argument(
        "--sync-drop-rate",
        type=float,
        default=0.05,
        help="per-replica-batch probability of a dropped delivery",
    )
    ch.add_argument(
        "--sync-corrupt-rate",
        type=float,
        default=0.05,
        help="per-replica-batch probability of a corrupted delivery",
    )
    ch.add_argument(
        "--straggler-rate",
        type=float,
        default=0.1,
        help="per-round per-GPU probability of a straggler slowdown",
    )
    ch.add_argument(
        "--kill-gpu",
        type=int,
        default=None,
        help="GPU id to permanently fail mid-run (default: none)",
    )
    ch.add_argument(
        "--kill-round",
        type=int,
        default=1,
        help="compute round at which --kill-gpu dies (default: 1)",
    )
    ch.add_argument(
        "--storm",
        action="store_true",
        help="correlated failure schedules: overlapping GPU kills "
        "(including a second kill during replay) plus link "
        "down-then-up flaps, from one seeded storm generator",
    )
    ch.add_argument(
        "--storm-kills",
        type=int,
        default=2,
        help="GPU kills per storm plan (default: 2)",
    )
    ch.add_argument(
        "--storm-flaps",
        type=int,
        default=1,
        help="link down-then-up flap windows per storm plan (default: 1)",
    )
    ch.add_argument(
        "--storm-flap-length",
        type=int,
        default=3,
        help="consecutive transient transfer faults per flap "
        "(default: 3)",
    )
    ch.add_argument(
        "--include-serve",
        action="store_true",
        help="append a serving-layer chaos cell per seed (a storm cell "
        "with --storm)",
    )
    ch.add_argument(
        "--overlap-spill",
        action="store_true",
        help="double-buffer checkpoint spills so the PCIe drain hides "
        "under subsequent compute",
    )
    ch.add_argument(
        "--checkpoint-interval",
        type=int,
        default=1,
        help="checkpoint every K rounds; a rollback replays up to K "
        "rounds (default: 1)",
    )
    ch.add_argument(
        "--incremental-checkpoints",
        action="store_true",
        help="spill only vertices dirtied since the previous checkpoint "
        "(full snapshots every --full-checkpoint-period)",
    )
    ch.add_argument(
        "--full-checkpoint-period",
        type=int,
        default=8,
        help="with --incremental-checkpoints, force a full snapshot "
        "every Nth checkpoint (default: 8)",
    )
    ch.add_argument(
        "--redistribution",
        choices=["locality", "edge-balance"],
        default="locality",
        help="dead-GPU partition re-placement policy (default: locality)",
    )
    ch.add_argument(
        "--compare-redistribution",
        action="store_true",
        help="re-run the sweep under the other redistribution policy "
        "and print the recovered-run modeled time deltas",
    )
    ch.add_argument(
        "--strict-digests",
        action="store_true",
        help="also require recovered state digests to equal the golden "
        "digests (bit-exact when the equivalence band is 0)",
    )
    ch.add_argument(
        "--no-recovery",
        action="store_true",
        help="inject faults with recovery disabled (cells are expected "
        "to FAIL; demonstrates the faults are real)",
    )
    ch.add_argument(
        "--crash-restart",
        action="store_true",
        help="sweep whole-job crash points (round boundary, mid-spill, "
        "mid-manifest-commit) instead of runtime faults: each cell "
        "kills the job, restarts it from the durable store, and must "
        "match the uninterrupted golden run bit for bit",
    )
    ch.add_argument(
        "--verbose",
        action="store_true",
        help="print per-cell detail and determinism digests",
    )
    ch.set_defaults(func=cmd_chaos)

    st = sub.add_parser(
        "stream",
        help="replay a seeded mutation trace with incremental path "
        "repair + delta recompute, certifying each batch against a "
        "from-scratch golden run",
    )
    st.add_argument(
        "--dataset",
        choices=datasets.DATASET_NAMES,
        default="cnr",
        help="built-in dataset stand-in (default: cnr)",
    )
    st.add_argument(
        "--edge-list",
        help="path to a 'src dst [weight]' file (overrides --dataset)",
    )
    st.add_argument(
        "--scale", type=float, default=0.25, help="dataset scale factor"
    )
    st.add_argument(
        "--gpus", type=int, default=None, help="override simulated GPU count"
    )
    st.add_argument(
        "--algorithms",
        nargs="+",
        choices=ALGORITHMS,
        default=list(ALGORITHMS),
        help="algorithms to stream (default: all eight)",
    )
    st.add_argument(
        "--batches", type=int, default=4, help="trace length (default: 4)"
    )
    st.add_argument(
        "--batch-size",
        type=int,
        default=8,
        help="mutations per batch (default: 8)",
    )
    st.add_argument("--seed", type=int, default=7)
    st.add_argument(
        "--mix",
        choices=["insert", "delete", "mixed"],
        default="mixed",
        help="trace shape: insert-only, delete-heavy, or mixed "
        "(default: mixed)",
    )
    st.add_argument(
        "--certify",
        action="store_true",
        help="run a from-scratch golden run per batch and certify the "
        "incremental fixpoint against it",
    )
    st.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 on any certification failure and verify the "
        "repaired decomposition's structural invariants per batch",
    )
    st.add_argument(
        "--verbose",
        action="store_true",
        help="print certification detail for passing batches too",
    )
    st.set_defaults(func=cmd_stream)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        if args.debug:
            raise
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
