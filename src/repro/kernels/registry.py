"""Kernel registry: vertex-program class -> vectorized batch kernel.

Kernels register with :func:`register_kernel` next to their program's
vectorized formulation; engines resolve one with :func:`resolve_kernel`,
getting the :class:`~repro.kernels.base.ScalarFallbackKernel` when no
vectorized kernel exists (so the batched engine code path runs every
program, just without the speedup).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple, Type

from repro.graph.digraph import DiGraphCSR
from repro.kernels.base import BatchKernel, ScalarFallbackKernel
from repro.model.gas import VertexProgram

_REGISTRY: Dict[Type[VertexProgram], Type[BatchKernel]] = {}


def register_kernel(
    *program_classes: Type[VertexProgram],
) -> Callable[[Type[BatchKernel]], Type[BatchKernel]]:
    """Class decorator registering a kernel for its program class(es)."""

    def decorate(kernel_cls: Type[BatchKernel]) -> Type[BatchKernel]:
        for program_cls in program_classes:
            _REGISTRY[program_cls] = kernel_cls
        return kernel_cls

    return decorate


def kernel_class_for(
    program: VertexProgram,
) -> Optional[Type[BatchKernel]]:
    """The registered kernel class for ``program``, if any (MRO-aware)."""
    for cls in type(program).__mro__:
        kernel_cls = _REGISTRY.get(cls)
        if kernel_cls is not None:
            return kernel_cls
    return None


def has_vectorized_kernel(program: VertexProgram) -> bool:
    """Whether ``program`` has a registered vectorized formulation."""
    return kernel_class_for(program) is not None


def resolve_kernel(
    program: VertexProgram,
    graph: DiGraphCSR,
    allow_fallback: bool = True,
) -> Optional[BatchKernel]:
    """Build the kernel for ``program`` bound to ``graph``.

    Without a registered kernel, returns the scalar fallback (or ``None``
    when ``allow_fallback`` is false).
    """
    kernel_cls = kernel_class_for(program)
    if kernel_cls is None:
        if not allow_fallback:
            return None
        return ScalarFallbackKernel(program, graph)
    return kernel_cls(program, graph)


def registered_program_classes() -> Tuple[Type[VertexProgram], ...]:
    """Program classes with a vectorized kernel, registration order."""
    return tuple(_REGISTRY.keys())
