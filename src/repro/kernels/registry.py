"""Kernel registry: vertex-program class -> vectorized batch kernel.

Kernels register with :func:`register_kernel` next to their program's
vectorized formulation; engines resolve one with :func:`resolve_kernel`,
getting the :class:`~repro.kernels.base.ScalarFallbackKernel` when no
vectorized kernel exists (so the batched engine code path runs every
program, just without the speedup).

The registry has a second, parallel axis for the serving layer:
**lane kernels** (:mod:`repro.kernels.lanes`) batch k same-class point
queries into one multi-source kernel with a leading query-lane axis.
They register with :func:`register_lane_kernel` and resolve with
:func:`resolve_lane_kernel`; there is no scalar fallback on this axis —
a program class either has a vectorized multi-source formulation or the
serving layer refuses to batch it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Optional, Sequence, Tuple, Type

from repro.errors import ConfigurationError
from repro.graph.digraph import DiGraphCSR
from repro.kernels.base import BatchKernel, ScalarFallbackKernel
from repro.model.gas import VertexProgram

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.kernels.lanes import LaneKernel

_REGISTRY: Dict[Type[VertexProgram], Type[BatchKernel]] = {}

_LANE_REGISTRY: Dict[Type[VertexProgram], Type["LaneKernel"]] = {}


def register_kernel(
    *program_classes: Type[VertexProgram],
) -> Callable[[Type[BatchKernel]], Type[BatchKernel]]:
    """Class decorator registering a kernel for its program class(es)."""

    def decorate(kernel_cls: Type[BatchKernel]) -> Type[BatchKernel]:
        for program_cls in program_classes:
            _REGISTRY[program_cls] = kernel_cls
        return kernel_cls

    return decorate


def kernel_class_for(
    program: VertexProgram,
) -> Optional[Type[BatchKernel]]:
    """The registered kernel class for ``program``, if any (MRO-aware)."""
    for cls in type(program).__mro__:
        kernel_cls = _REGISTRY.get(cls)
        if kernel_cls is not None:
            return kernel_cls
    return None


def has_vectorized_kernel(program: VertexProgram) -> bool:
    """Whether ``program`` has a registered vectorized formulation."""
    return kernel_class_for(program) is not None


def resolve_kernel(
    program: VertexProgram,
    graph: DiGraphCSR,
    allow_fallback: bool = True,
) -> Optional[BatchKernel]:
    """Build the kernel for ``program`` bound to ``graph``.

    Without a registered kernel, returns the scalar fallback (or ``None``
    when ``allow_fallback`` is false).
    """
    kernel_cls = kernel_class_for(program)
    if kernel_cls is None:
        if not allow_fallback:
            return None
        return ScalarFallbackKernel(program, graph)
    return kernel_cls(program, graph)


def registered_program_classes() -> Tuple[Type[VertexProgram], ...]:
    """Program classes with a vectorized kernel, registration order."""
    return tuple(_REGISTRY.keys())


# ----------------------------------------------------------------------
# query-lane axis (multi-source kernels for the serving layer)
# ----------------------------------------------------------------------
def register_lane_kernel(
    *program_classes: Type[VertexProgram],
) -> Callable[[Type["LaneKernel"]], Type["LaneKernel"]]:
    """Class decorator registering a lane kernel for its program class(es)."""

    def decorate(kernel_cls: Type["LaneKernel"]) -> Type["LaneKernel"]:
        for program_cls in program_classes:
            _LANE_REGISTRY[program_cls] = kernel_cls
        return kernel_cls

    return decorate


def lane_kernel_class_for(
    program: VertexProgram,
) -> Optional[Type["LaneKernel"]]:
    """The registered lane-kernel class for ``program``, if any."""
    for cls in type(program).__mro__:
        kernel_cls = _LANE_REGISTRY.get(cls)
        if kernel_cls is not None:
            return kernel_cls
    return None


def has_lane_kernel(program: VertexProgram) -> bool:
    """Whether ``program`` has a registered multi-source formulation."""
    return lane_kernel_class_for(program) is not None


def resolve_lane_kernel(
    programs: Sequence[VertexProgram],
    graph: DiGraphCSR,
) -> "LaneKernel":
    """Build the lane kernel batching ``programs`` over ``graph``.

    All programs must share one class with a registered lane kernel;
    there is no scalar fallback on the lane axis.
    """
    programs = tuple(programs)
    if not programs:
        raise ConfigurationError("resolve_lane_kernel needs >= 1 program")
    kernel_cls = lane_kernel_class_for(programs[0])
    if kernel_cls is None:
        raise ConfigurationError(
            f"no lane kernel registered for program "
            f"{type(programs[0]).__name__!r}"
        )
    return kernel_cls(programs, graph)


def registered_lane_program_classes() -> Tuple[Type[VertexProgram], ...]:
    """Program classes with a lane kernel, registration order."""
    return tuple(_LANE_REGISTRY.keys())
