"""Segmented array primitives over CSR/CSC offsets.

These are the building blocks of the vectorized batch kernels: given a
batch of target vertices, :func:`batch_segments` turns the per-vertex
CSR/CSC slices into one concatenated index array with segment offsets,
and the ``segment_*`` reductions fold each segment to one value.

Bit-equivalence contract
------------------------
The scalar engines fold gather values with a left-to-right loop
(``acc = accumulate(acc, g)``). ``np.add.reduceat`` does **not**
reproduce that order for long segments (NumPy blocks the inner loop), so
:func:`segment_sum_ordered` implements the sum as a positional sweep:
iteration ``i`` adds every segment's ``i``-th element to its accumulator
with one vectorized ``+``. Per segment that is exactly
``((0.0 + x_0) + x_1) + ...`` — the same IEEE-754 operations in the same
order as the scalar loop, so sums agree *bit for bit*. Min/max are
order-insensitive (exact under any association), so they use
``reduceat`` with empty-segment masking.

All reductions require ``seg_offsets[-1] == len(values)`` — the offsets
must tile the value array exactly, which :func:`batch_segments`
guarantees by construction.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def batch_segments(
    indptr: np.ndarray, targets: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Concatenate the ``indptr`` slices of ``targets``.

    Returns ``(positions, seg_offsets)``: ``positions`` indexes the data
    arrays parallel to ``indptr`` (e.g. CSC sources/weights), segment
    ``i`` occupying ``positions[seg_offsets[i]:seg_offsets[i + 1]]`` in
    the slice's original order.
    """
    targets = np.asarray(targets, dtype=np.int64)
    starts = indptr[targets]
    counts = indptr[targets + 1] - starts
    seg_offsets = np.zeros(targets.size + 1, dtype=np.int64)
    np.cumsum(counts, out=seg_offsets[1:])
    total = int(seg_offsets[-1])
    intra = np.arange(total, dtype=np.int64) - np.repeat(
        seg_offsets[:-1], counts
    )
    positions = np.repeat(starts, counts) + intra
    return positions, seg_offsets


def interleave_segments(
    a_vals: np.ndarray,
    a_offsets: np.ndarray,
    b_vals: np.ndarray,
    b_offsets: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Merge two parallel segmentations into ``a_i ++ b_i`` per segment.

    Used by the symmetric programs (WCC, k-core) whose per-vertex scalar
    iteration order is in-edges then out-edges (gather) or out-edges then
    in-edges (dependents).
    """
    a_counts = np.diff(a_offsets)
    b_counts = np.diff(b_offsets)
    counts = a_counts + b_counts
    seg_offsets = np.zeros(counts.size + 1, dtype=np.int64)
    np.cumsum(counts, out=seg_offsets[1:])
    out = np.empty(int(seg_offsets[-1]), dtype=a_vals.dtype)
    a_intra = np.arange(a_vals.size, dtype=np.int64) - np.repeat(
        a_offsets[:-1], a_counts
    )
    out[np.repeat(seg_offsets[:-1], a_counts) + a_intra] = a_vals
    b_intra = np.arange(b_vals.size, dtype=np.int64) - np.repeat(
        b_offsets[:-1], b_counts
    )
    out[
        np.repeat(seg_offsets[:-1] + a_counts, b_counts) + b_intra
    ] = b_vals
    return out, seg_offsets


def segment_sum_ordered(
    values: np.ndarray, seg_offsets: np.ndarray
) -> np.ndarray:
    """Left-to-right segment sums, bit-identical to the scalar fold.

    Segments are sorted by length (descending) so each positional
    iteration touches a shrinking *prefix* instead of a boolean mask;
    the per-segment addition order is unchanged by the sort.
    """
    counts = np.diff(seg_offsets)
    nseg = counts.size
    out = np.zeros(nseg, dtype=np.float64)
    if nseg == 0 or values.size == 0:
        return out
    order = np.argsort(-counts, kind="stable")
    starts = seg_offsets[:-1][order]
    sorted_counts = counts[order]
    ascending = sorted_counts[::-1]
    acc = np.zeros(nseg, dtype=np.float64)
    for i in range(int(sorted_counts[0])):
        k = nseg - int(np.searchsorted(ascending, i, side="right"))
        acc[:k] = acc[:k] + values[starts[:k] + i]
    out[order] = acc
    return out


def _segment_reduceat(
    ufunc: np.ufunc,
    values: np.ndarray,
    seg_offsets: np.ndarray,
    identity: float,
) -> np.ndarray:
    counts = np.diff(seg_offsets)
    out = np.full(counts.size, identity, dtype=np.float64)
    nonempty = counts > 0
    if values.size and nonempty.any():
        out[nonempty] = ufunc.reduceat(values, seg_offsets[:-1][nonempty])
    return out


def segment_min(
    values: np.ndarray,
    seg_offsets: np.ndarray,
    identity: float = np.inf,
) -> np.ndarray:
    """Per-segment minimum; empty segments yield ``identity``."""
    return _segment_reduceat(np.minimum, values, seg_offsets, identity)


def segment_max(
    values: np.ndarray,
    seg_offsets: np.ndarray,
    identity: float = -np.inf,
) -> np.ndarray:
    """Per-segment maximum; empty segments yield ``identity``."""
    return _segment_reduceat(np.maximum, values, seg_offsets, identity)


# ----------------------------------------------------------------------
# lane-axis (2D) variants: one row per query lane, shared segmentation
# ----------------------------------------------------------------------
def _segment_reduceat_2d(
    ufunc: np.ufunc,
    values: np.ndarray,
    seg_offsets: np.ndarray,
    identity: float,
) -> np.ndarray:
    counts = np.diff(seg_offsets)
    out = np.full((values.shape[0], counts.size), identity, dtype=np.float64)
    nonempty = counts > 0
    if values.shape[1] and nonempty.any():
        out[:, nonempty] = ufunc.reduceat(
            values, seg_offsets[:-1][nonempty], axis=1
        )
    return out


def segment_min_2d(
    values: np.ndarray,
    seg_offsets: np.ndarray,
    identity: float = np.inf,
) -> np.ndarray:
    """Row-wise :func:`segment_min` over a ``(lanes, total)`` matrix.

    Row ``i`` equals ``segment_min(values[i], seg_offsets)`` exactly —
    min is order-insensitive, so one ``reduceat`` over the lane axis is
    bit-identical to the per-lane fold.
    """
    return _segment_reduceat_2d(np.minimum, values, seg_offsets, identity)


def segment_max_2d(
    values: np.ndarray,
    seg_offsets: np.ndarray,
    identity: float = -np.inf,
) -> np.ndarray:
    """Row-wise :func:`segment_max` over a ``(lanes, total)`` matrix."""
    return _segment_reduceat_2d(np.maximum, values, seg_offsets, identity)


def segment_sum_ordered_2d(
    values: np.ndarray, seg_offsets: np.ndarray
) -> np.ndarray:
    """Row-wise :func:`segment_sum_ordered` over a ``(lanes, total)`` matrix.

    The positional sweep adds every segment's ``i``-th element across all
    lanes with one vectorized ``+``, so each row performs exactly the
    IEEE-754 additions of the 1D sweep in the same order — lane ``i`` is
    bit-identical to ``segment_sum_ordered(values[i], seg_offsets)``.
    """
    counts = np.diff(seg_offsets)
    nseg = counts.size
    lanes = values.shape[0]
    out = np.zeros((lanes, nseg), dtype=np.float64)
    if nseg == 0 or values.shape[1] == 0:
        return out
    order = np.argsort(-counts, kind="stable")
    starts = seg_offsets[:-1][order]
    sorted_counts = counts[order]
    ascending = sorted_counts[::-1]
    acc = np.zeros((lanes, nseg), dtype=np.float64)
    for i in range(int(sorted_counts[0])):
        k = nseg - int(np.searchsorted(ascending, i, side="right"))
        acc[:, :k] = acc[:, :k] + values[:, starts[:k] + i]
    out[:, order] = acc
    return out
