"""Batch-kernel interface and the scalar fallback.

A :class:`BatchKernel` computes one gather-apply step for a *batch* of
destination vertices at once — the GPU-kernel shape (one segment
reduction over the CSR/CSC arrays) that GraphIt/G2 compile gather-apply
loops into, realized here with NumPy. Engines drive kernels with three
verbs:

- :meth:`BatchKernel.batch_update` — new states + changed flags for a
  vertex batch, gathering from a plain state array (a snapshot or a
  materialized :class:`~repro.model.state.StalenessView`);
- :meth:`BatchKernel.gather_degrees` — per-vertex gather-edge counts,
  matching what the scalar engines charge to ``edge_traversals`` and
  ``load_global``;
- :meth:`BatchKernel.batch_dependents` — concatenated dependents with
  segment offsets, for activation and replica-message accounting.

The accounting-equivalence invariant: for the same batch, a kernel's
degrees/dependents must equal what the per-vertex scalar loop would
produce, so the engines' modeled counters (``apply_calls``,
``edge_traversals``, ``load_global`` bytes) do not move when the
vectorized path is enabled.

:class:`ScalarFallbackKernel` adapts any :class:`VertexProgram` to the
batch interface by looping ``update_vertex`` — programs without a
vectorized formulation run unchanged behind the same engine code path.
"""

from __future__ import annotations

import abc
from typing import Tuple

import numpy as np

from repro.graph.digraph import DiGraphCSR
from repro.kernels.segment import batch_segments
from repro.model.gas import VertexProgram


class BatchKernel(abc.ABC):
    """Vectorized gather-apply for one vertex program on one graph."""

    #: Kernel name for reports; defaults to the program's name.
    name = "batch-kernel"

    def __init__(self, program: VertexProgram, graph: DiGraphCSR) -> None:
        self.program = program
        self.graph = graph
        self.name = program.name
        self._bind()

    def _bind(self) -> None:
        """Cache graph-derived arrays; overridden by subclasses."""

    # ------------------------------------------------------------------
    # the batch verbs
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def batch_update(
        self, dst: np.ndarray, states: np.ndarray, old: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Gather + apply for every vertex in ``dst``.

        ``states`` is the array gather reads (snapshot or materialized
        view); ``old`` the per-vertex previous states the apply/convergence
        check uses. Returns ``(new_states, changed_mask)``.
        """

    def gather_degrees(self, dst: np.ndarray) -> np.ndarray:
        """Gather-edge count per batch vertex (default: in-degree)."""
        return self.graph.in_degree()[np.asarray(dst, dtype=np.int64)]

    def batch_dependents(
        self, dst: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Dependents of each batch vertex (default: out-neighbors).

        Returns ``(targets, seg_offsets)`` with vertex ``dst[i]``'s
        dependents at ``targets[seg_offsets[i]:seg_offsets[i + 1]]``.
        """
        positions, seg_offsets = batch_segments(self.graph.indptr, dst)
        return self.graph.indices[positions], seg_offsets

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class InEdgeKernel(BatchKernel):
    """Shared plumbing for kernels that gather over in-edges (CSC)."""

    def _bind(self) -> None:
        (
            self._csc_indptr,
            self._csc_sources,
            self._csc_weights,
        ) = self.graph.csc_arrays()

    def gather_segments(
        self, dst: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """``(sources, weights, seg_offsets, counts)`` of the batch."""
        positions, seg_offsets = batch_segments(self._csc_indptr, dst)
        return (
            self._csc_sources[positions],
            self._csc_weights[positions],
            seg_offsets,
            np.diff(seg_offsets),
        )


class ScalarFallbackKernel(BatchKernel):
    """Per-vertex loop behind the batch interface (no vectorization)."""

    def batch_update(
        self, dst: np.ndarray, states: np.ndarray, old: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        dst = np.asarray(dst, dtype=np.int64)
        new = np.empty(dst.size, dtype=np.float64)
        changed = np.empty(dst.size, dtype=bool)
        for i in range(dst.size):
            new[i], changed[i] = self.program.update_vertex(
                self.graph, int(dst[i]), states, old_state=float(old[i])
            )
        return new, changed

    def gather_degrees(self, dst: np.ndarray) -> np.ndarray:
        return np.array(
            [
                self.program.gather_degree(self.graph, int(v))
                for v in np.asarray(dst, dtype=np.int64)
            ],
            dtype=np.int64,
        )

    def batch_dependents(
        self, dst: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        targets = []
        seg_offsets = [0]
        for v in np.asarray(dst, dtype=np.int64):
            targets.extend(
                int(u) for u in self.program.dependents(self.graph, int(v))
            )
            seg_offsets.append(len(targets))
        return (
            np.asarray(targets, dtype=np.int64),
            np.asarray(seg_offsets, dtype=np.int64),
        )
