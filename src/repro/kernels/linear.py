"""Vectorized kernels for the linear fixed-point programs.

PageRank, personalized PageRank, and adsorption are all contractions of
the form ``new = c(v) + d * sum_{u->v} coeff(u, v) * state(u)`` — the
delta-accumulative family Maiter formulates as associative batch
operations. The sum uses :func:`segment_sum_ordered`, so each vertex's
accumulator is built by the exact IEEE operations of the scalar fold and
the batched round is bit-identical to the per-vertex one.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.algorithms.adsorption import Adsorption
from repro.algorithms.pagerank import PageRank
from repro.algorithms.ppr import PersonalizedPageRank
from repro.kernels.base import InEdgeKernel
from repro.kernels.registry import register_kernel
from repro.kernels.segment import segment_sum_ordered


@register_kernel(PageRank)
class PageRankKernel(InEdgeKernel):
    """``new = (1 - d) + d * sum in-states / out-degree``."""

    def _bind(self) -> None:
        super()._bind()
        self._out_degree = self.graph.out_degree().astype(np.float64)

    def batch_update(
        self, dst: np.ndarray, states: np.ndarray, old: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        sources, _, seg_offsets, _ = self.gather_segments(dst)
        # Every gather source has >= 1 out-edge (the one being gathered),
        # so the division is always defined.
        contrib = np.asarray(states)[sources] / self._out_degree[sources]
        acc = segment_sum_ordered(contrib, seg_offsets)
        program = self.program
        new = (1.0 - program.damping) + program.damping * acc
        changed = ~(np.abs(new - old) <= program.tolerance)
        return new, changed


@register_kernel(PersonalizedPageRank)
class PersonalizedPageRankKernel(InEdgeKernel):
    """PageRank with the teleport mass pinned to the seed set."""

    def _bind(self) -> None:
        super()._bind()
        self._out_degree = self.graph.out_degree().astype(np.float64)
        # Same construction as the program's initial_states cache.
        teleport = np.zeros(self.graph.num_vertices, dtype=np.float64)
        teleport[list(self.program.seeds)] = 1.0 / len(self.program.seeds)
        self._teleport = teleport

    def batch_update(
        self, dst: np.ndarray, states: np.ndarray, old: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        sources, _, seg_offsets, _ = self.gather_segments(dst)
        contrib = np.asarray(states)[sources] / self._out_degree[sources]
        acc = segment_sum_ordered(contrib, seg_offsets)
        program = self.program
        new = (1.0 - program.damping) * self._teleport[
            np.asarray(dst, dtype=np.int64)
        ] + program.damping * acc
        changed = ~(np.abs(new - old) <= program.tolerance)
        return new, changed


@register_kernel(Adsorption)
class AdsorptionKernel(InEdgeKernel):
    """Injected prior blended with the weight-normalized in-average."""

    def _bind(self) -> None:
        super()._bind()
        program = self.program
        if program._injection is None or program._in_weight_sum is None:
            # Deterministic caches; recomputing them is idempotent.
            program.initial_states(self.graph)
        self._injection = program._injection
        self._in_weight_sum = program._in_weight_sum

    def batch_update(
        self, dst: np.ndarray, states: np.ndarray, old: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        dst = np.asarray(dst, dtype=np.int64)
        sources, weights, seg_offsets, counts = self.gather_segments(dst)
        denom = np.repeat(self._in_weight_sum[dst], counts)
        ratio = np.divide(
            weights,
            denom,
            out=np.zeros_like(weights),
            where=denom != 0.0,
        )
        contrib = np.asarray(states)[sources] * ratio
        acc = segment_sum_ordered(contrib, seg_offsets)
        program = self.program
        new = program.p_inj * self._injection[dst] + program.p_cont * acc
        changed = ~(np.abs(new - old) <= program.tolerance)
        return new, changed
