"""Vectorized batch kernels for vertex updates.

The scalar engines update vertices one ``VertexProgram.update_vertex``
call at a time. This package flattens those gather-apply loops into
NumPy segment reductions over the CSR/CSC arrays — the batched shape
GPU graph compilers (GraphIt/G2) lower to — while preserving the scalar
path's results bit for bit (see :mod:`repro.kernels.segment` for the
ordering contract).

Each algorithm registers a kernel next to its vectorized formulation;
engines resolve one with :func:`resolve_kernel` and fall back to a
per-vertex loop behind the same interface for unregistered programs.

The serving layer adds a second registry axis: **lane kernels**
(:mod:`repro.kernels.lanes`) batch k same-algorithm point queries into
one multi-source kernel with a leading query-lane axis, bit-identical
per lane to k sequential single-source runs.
"""

from repro.kernels.base import (
    BatchKernel,
    InEdgeKernel,
    ScalarFallbackKernel,
)
from repro.kernels.registry import (
    has_lane_kernel,
    has_vectorized_kernel,
    kernel_class_for,
    lane_kernel_class_for,
    register_kernel,
    register_lane_kernel,
    registered_lane_program_classes,
    registered_program_classes,
    resolve_kernel,
    resolve_lane_kernel,
)
from repro.kernels.segment import (
    batch_segments,
    interleave_segments,
    segment_max,
    segment_max_2d,
    segment_min,
    segment_min_2d,
    segment_sum_ordered,
    segment_sum_ordered_2d,
)

# Importing the kernel modules registers them.
from repro.kernels import linear as _linear  # noqa: F401
from repro.kernels import monotone as _monotone  # noqa: F401
from repro.kernels import structural as _structural  # noqa: F401
from repro.kernels import lanes as _lanes  # noqa: F401

from repro.kernels.lanes import InEdgeLaneKernel, LaneKernel

__all__ = [
    "BatchKernel",
    "InEdgeKernel",
    "ScalarFallbackKernel",
    "LaneKernel",
    "InEdgeLaneKernel",
    "register_kernel",
    "resolve_kernel",
    "kernel_class_for",
    "has_vectorized_kernel",
    "registered_program_classes",
    "register_lane_kernel",
    "resolve_lane_kernel",
    "lane_kernel_class_for",
    "has_lane_kernel",
    "registered_lane_program_classes",
    "batch_segments",
    "interleave_segments",
    "segment_sum_ordered",
    "segment_sum_ordered_2d",
    "segment_min",
    "segment_min_2d",
    "segment_max",
    "segment_max_2d",
]
