"""Vectorized batch kernels for vertex updates.

The scalar engines update vertices one ``VertexProgram.update_vertex``
call at a time. This package flattens those gather-apply loops into
NumPy segment reductions over the CSR/CSC arrays — the batched shape
GPU graph compilers (GraphIt/G2) lower to — while preserving the scalar
path's results bit for bit (see :mod:`repro.kernels.segment` for the
ordering contract).

Each algorithm registers a kernel next to its vectorized formulation;
engines resolve one with :func:`resolve_kernel` and fall back to a
per-vertex loop behind the same interface for unregistered programs.
"""

from repro.kernels.base import (
    BatchKernel,
    InEdgeKernel,
    ScalarFallbackKernel,
)
from repro.kernels.registry import (
    has_vectorized_kernel,
    kernel_class_for,
    register_kernel,
    registered_program_classes,
    resolve_kernel,
)
from repro.kernels.segment import (
    batch_segments,
    interleave_segments,
    segment_max,
    segment_min,
    segment_sum_ordered,
)

# Importing the kernel modules registers them.
from repro.kernels import linear as _linear  # noqa: F401
from repro.kernels import monotone as _monotone  # noqa: F401
from repro.kernels import structural as _structural  # noqa: F401

__all__ = [
    "BatchKernel",
    "InEdgeKernel",
    "ScalarFallbackKernel",
    "register_kernel",
    "resolve_kernel",
    "kernel_class_for",
    "has_vectorized_kernel",
    "registered_program_classes",
    "batch_segments",
    "interleave_segments",
    "segment_sum_ordered",
    "segment_min",
    "segment_max",
]
