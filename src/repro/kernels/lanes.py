"""Multi-source lane kernels: one gather-apply step for k queries at once.

A :class:`LaneKernel` generalizes :class:`~repro.kernels.base.BatchKernel`
with a leading **query-lane axis**: it is constructed from k same-class
vertex programs (k point queries — different sources/seeds, same
algorithm) over one shared graph, and updates a ``(k, n)`` state matrix
in one vectorized sweep. The CSC gather segmentation is computed once
per batch and shared by every lane, so k sources cost one extra array
axis instead of k kernel launches.

Bit-equivalence contract
------------------------
Lane ``i`` of every verb must be bit-identical to the corresponding
single-program :class:`BatchKernel` applied to ``programs[i]`` alone:
the 2D segment reductions in :mod:`repro.kernels.segment` perform the
same IEEE-754 operations per row as their 1D counterparts, and each
kernel below evaluates the same float expression as its 1D sibling with
per-lane constants broadcast along axis 0. The serving layer's
equivalence oracle (``repro.verify.serve``) certifies this end to end
against scalar single-source golden runs.
"""

from __future__ import annotations

import abc
from typing import Sequence, Tuple

import numpy as np

from repro.algorithms.bfs import BFSLevels
from repro.algorithms.ppr import PersonalizedPageRank
from repro.algorithms.reachability import Reachability
from repro.algorithms.sssp import SSSP
from repro.errors import ConfigurationError
from repro.graph.digraph import DiGraphCSR
from repro.kernels.registry import register_lane_kernel
from repro.kernels.segment import (
    batch_segments,
    segment_max_2d,
    segment_min_2d,
    segment_sum_ordered_2d,
)
from repro.model.gas import VertexProgram


class LaneKernel(abc.ABC):
    """Vectorized gather-apply for k same-class programs on one graph."""

    name = "lane-kernel"

    def __init__(
        self, programs: Sequence[VertexProgram], graph: DiGraphCSR
    ) -> None:
        programs = tuple(programs)
        if not programs:
            raise ConfigurationError("lane kernel needs at least one program")
        first_cls = type(programs[0])
        for program in programs[1:]:
            if type(program) is not first_cls:
                raise ConfigurationError(
                    "lane kernel requires same-class programs; got "
                    f"{first_cls.__name__} and {type(program).__name__}"
                )
        self.programs = programs
        self.graph = graph
        self.name = programs[0].name
        self.num_lanes = len(programs)
        self._bind()

    def _bind(self) -> None:
        """Cache graph-derived arrays; overridden by subclasses."""

    # ------------------------------------------------------------------
    # lane-axis verbs
    # ------------------------------------------------------------------
    def initial_states(self) -> np.ndarray:
        """``(lanes, n)`` initial states, row i from ``programs[i]``."""
        return np.stack(
            [p.initial_states(self.graph) for p in self.programs]
        )

    def initial_active(self) -> np.ndarray:
        """``(lanes, n)`` initial active masks, row i from ``programs[i]``."""
        return np.stack(
            [p.initial_active(self.graph) for p in self.programs]
        )

    @abc.abstractmethod
    def lane_update(
        self, dst: np.ndarray, states: np.ndarray, old: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Gather + apply for every lane over the batch ``dst``.

        ``states`` is the ``(lanes, n)`` matrix gather reads; ``old`` the
        ``(lanes, len(dst))`` previous states. Returns
        ``(new_states, changed)`` of shape ``(lanes, len(dst))``.
        """

    def gather_degrees(self, dst: np.ndarray) -> np.ndarray:
        """Gather-edge count per batch vertex (shared across lanes)."""
        return self.graph.in_degree()[np.asarray(dst, dtype=np.int64)]

    def batch_dependents(
        self, dst: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Dependents of each batch vertex (shared across lanes)."""
        positions, seg_offsets = batch_segments(self.graph.indptr, dst)
        return self.graph.indices[positions], seg_offsets

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(name={self.name!r}, "
            f"lanes={self.num_lanes})"
        )


class InEdgeLaneKernel(LaneKernel):
    """Shared plumbing for lane kernels gathering over in-edges (CSC)."""

    def _bind(self) -> None:
        (
            self._csc_indptr,
            self._csc_sources,
            self._csc_weights,
        ) = self.graph.csc_arrays()

    def gather_segments(
        self, dst: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """``(sources, weights, seg_offsets, counts)``, lane-shared."""
        positions, seg_offsets = batch_segments(self._csc_indptr, dst)
        return (
            self._csc_sources[positions],
            self._csc_weights[positions],
            seg_offsets,
            np.diff(seg_offsets),
        )


class _MinRelaxLaneKernel(InEdgeLaneKernel):
    """Shared shape of SSSP/BFS lanes: relax in-edges, keep the minimum."""

    def _bind(self) -> None:
        super()._bind()
        self._lane_sources = np.array(
            [p.source for p in self.programs], dtype=np.int64
        )

    def _relax(
        self, source_states: np.ndarray, weights: np.ndarray
    ) -> np.ndarray:
        raise NotImplementedError

    def lane_update(
        self, dst: np.ndarray, states: np.ndarray, old: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        dst = np.asarray(dst, dtype=np.int64)
        sources, weights, seg_offsets, _ = self.gather_segments(dst)
        # Row i is states[i][sources] + weights — the exact additions of
        # the 1D kernel's relax for lane i; inf + finite == inf preserves
        # the scalar unreached guard.
        values = self._relax(np.asarray(states)[:, sources], weights)
        acc = segment_min_2d(values, seg_offsets, identity=np.inf)
        new = np.where(acc < old, acc, old)
        new = np.where(
            dst[None, :] == self._lane_sources[:, None], 0.0, new
        )
        return new, new != old


@register_lane_kernel(SSSP)
class SSSPLaneKernel(_MinRelaxLaneKernel):
    """k-source SSSP: per-lane min-relaxation, lane source pinned to 0."""

    def _relax(
        self, source_states: np.ndarray, weights: np.ndarray
    ) -> np.ndarray:
        return source_states + weights


@register_lane_kernel(BFSLevels)
class BFSLaneKernel(_MinRelaxLaneKernel):
    """k-source BFS levels: SSSP lanes over unit hop counts."""

    def _relax(
        self, source_states: np.ndarray, weights: np.ndarray
    ) -> np.ndarray:
        return source_states + 1.0


@register_lane_kernel(Reachability)
class ReachabilityLaneKernel(InEdgeLaneKernel):
    """k independent OR-propagations, one source mask row per lane."""

    def _bind(self) -> None:
        super()._bind()
        mask = np.zeros(
            (self.num_lanes, self.graph.num_vertices), dtype=bool
        )
        for i, program in enumerate(self.programs):
            mask[i, list(program.sources)] = True
        self._source_mask = mask

    def lane_update(
        self, dst: np.ndarray, states: np.ndarray, old: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        dst = np.asarray(dst, dtype=np.int64)
        sources, _, seg_offsets, _ = self.gather_segments(dst)
        acc = segment_max_2d(
            np.asarray(states)[:, sources], seg_offsets, identity=0.0
        )
        new = np.where(
            self._source_mask[:, dst],
            1.0,
            np.maximum(old, np.where(acc > 0.0, 1.0, 0.0)),
        )
        return new, new != old


@register_lane_kernel(PersonalizedPageRank)
class PersonalizedPageRankLaneKernel(InEdgeLaneKernel):
    """k seed-set PPR queries sharing one out-degree normalization."""

    def _bind(self) -> None:
        super()._bind()
        self._out_degree = self.graph.out_degree().astype(np.float64)
        n = self.graph.num_vertices
        teleport = np.zeros((self.num_lanes, n), dtype=np.float64)
        for i, program in enumerate(self.programs):
            teleport[i, list(program.seeds)] = 1.0 / len(program.seeds)
        self._teleport = teleport
        self._damping = np.array(
            [p.damping for p in self.programs], dtype=np.float64
        )[:, None]
        self._tolerance = np.array(
            [p.tolerance for p in self.programs], dtype=np.float64
        )[:, None]

    def lane_update(
        self, dst: np.ndarray, states: np.ndarray, old: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        dst = np.asarray(dst, dtype=np.int64)
        sources, _, seg_offsets, _ = self.gather_segments(dst)
        contrib = np.asarray(states)[:, sources] / self._out_degree[sources]
        acc = segment_sum_ordered_2d(contrib, seg_offsets)
        new = (1.0 - self._damping) * self._teleport[
            :, dst
        ] + self._damping * acc
        changed = ~(np.abs(new - old) <= self._tolerance)
        return new, changed
