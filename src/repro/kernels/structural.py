"""Vectorized kernel for k-core membership.

The gather counts alive neighbors over both edge directions. Counts are
integer-valued floats, so splitting the fold into an in-edge sum plus an
out-edge sum is exact — equal to the scalar interleaved fold bit for bit.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.algorithms.kcore import KCore
from repro.kernels.base import InEdgeKernel
from repro.kernels.registry import register_kernel
from repro.kernels.segment import (
    batch_segments,
    interleave_segments,
    segment_sum_ordered,
)


@register_kernel(KCore)
class KCoreKernel(InEdgeKernel):
    """Peel a vertex when fewer than ``k`` of its neighbors are alive."""

    def batch_update(
        self, dst: np.ndarray, states: np.ndarray, old: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        states = np.asarray(states)
        in_pos, in_offsets = batch_segments(self._csc_indptr, dst)
        out_pos, out_offsets = batch_segments(self.graph.indptr, dst)
        alive_in = (states[self._csc_sources[in_pos]] > 0.0).astype(
            np.float64
        )
        alive_out = (states[self.graph.indices[out_pos]] > 0.0).astype(
            np.float64
        )
        acc = segment_sum_ordered(alive_in, in_offsets) + segment_sum_ordered(
            alive_out, out_offsets
        )
        new = np.where(
            old == 0.0,  # peeling is permanent
            0.0,
            np.where(acc >= self.program.k, 1.0, 0.0),
        )
        return new, new != old

    def gather_degrees(self, dst: np.ndarray) -> np.ndarray:
        dst = np.asarray(dst, dtype=np.int64)
        return self.graph.in_degree()[dst] + self.graph.out_degree()[dst]

    def batch_dependents(
        self, dst: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        # Scalar order: out-neighbors, then in-neighbors, per vertex.
        out_pos, out_offsets = batch_segments(self.graph.indptr, dst)
        in_pos, in_offsets = batch_segments(self._csc_indptr, dst)
        return interleave_segments(
            self.graph.indices[out_pos],
            out_offsets,
            self._csc_sources[in_pos],
            in_offsets,
        )
