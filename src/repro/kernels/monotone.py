"""Vectorized kernels for the monotone path/label programs.

SSSP, BFS, WCC, and reachability fold gather values with min/max, which
are exact under any association — so these kernels use plain
``reduceat`` segment reductions and are bit-identical to the scalar fold
with no ordering care needed.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.algorithms.bfs import BFSLevels
from repro.algorithms.reachability import Reachability
from repro.algorithms.sssp import SSSP
from repro.algorithms.wcc import WeaklyConnectedComponents
from repro.kernels.base import BatchKernel, InEdgeKernel
from repro.kernels.registry import register_kernel
from repro.kernels.segment import (
    batch_segments,
    interleave_segments,
    segment_min,
    segment_max,
)


class _MinRelaxKernel(InEdgeKernel):
    """Shared shape of SSSP/BFS: relax in-edges, keep the minimum."""

    #: Per-edge relaxation step; overridden per program.
    def _relax(
        self, source_states: np.ndarray, weights: np.ndarray
    ) -> np.ndarray:
        raise NotImplementedError

    def batch_update(
        self, dst: np.ndarray, states: np.ndarray, old: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        dst = np.asarray(dst, dtype=np.int64)
        sources, weights, seg_offsets, _ = self.gather_segments(dst)
        # inf + finite == inf, so unreached sources propagate the scalar
        # guard's INFINITY without a branch.
        values = self._relax(np.asarray(states)[sources], weights)
        acc = segment_min(values, seg_offsets, identity=np.inf)
        new = np.where(acc < old, acc, old)
        new = np.where(dst == self.program.source, 0.0, new)
        return new, new != old


@register_kernel(SSSP)
class SSSPKernel(_MinRelaxKernel):
    """``new = min(old, min_{u->v} dist(u) + w)``, source pinned to 0."""

    def _relax(
        self, source_states: np.ndarray, weights: np.ndarray
    ) -> np.ndarray:
        return source_states + weights


@register_kernel(BFSLevels)
class BFSKernel(_MinRelaxKernel):
    """SSSP over unit hop counts."""

    def _relax(
        self, source_states: np.ndarray, weights: np.ndarray
    ) -> np.ndarray:
        return source_states + 1.0


@register_kernel(WeaklyConnectedComponents)
class WCCKernel(InEdgeKernel):
    """Min-label over both edge directions of the undirected view."""

    def batch_update(
        self, dst: np.ndarray, states: np.ndarray, old: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        states = np.asarray(states)
        in_pos, in_offsets = batch_segments(self._csc_indptr, dst)
        out_pos, out_offsets = batch_segments(self.graph.indptr, dst)
        acc = np.minimum(
            segment_min(states[self._csc_sources[in_pos]], in_offsets),
            segment_min(states[self.graph.indices[out_pos]], out_offsets),
        )
        new = np.where(acc < old, acc, old)
        return new, new != old

    def gather_degrees(self, dst: np.ndarray) -> np.ndarray:
        dst = np.asarray(dst, dtype=np.int64)
        return self.graph.in_degree()[dst] + self.graph.out_degree()[dst]

    def batch_dependents(
        self, dst: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        # Scalar order: out-neighbors, then in-neighbors, per vertex.
        out_pos, out_offsets = batch_segments(self.graph.indptr, dst)
        in_pos, in_offsets = batch_segments(self._csc_indptr, dst)
        return interleave_segments(
            self.graph.indices[out_pos],
            out_offsets,
            self._csc_sources[in_pos],
            in_offsets,
        )


@register_kernel(Reachability)
class ReachabilityKernel(InEdgeKernel):
    """Monotone OR-propagation from the source set."""

    def _bind(self) -> None:
        super()._bind()
        mask = np.zeros(self.graph.num_vertices, dtype=bool)
        mask[list(self.program.sources)] = True
        self._source_mask = mask

    def batch_update(
        self, dst: np.ndarray, states: np.ndarray, old: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        dst = np.asarray(dst, dtype=np.int64)
        sources, _, seg_offsets, _ = self.gather_segments(dst)
        acc = segment_max(
            np.asarray(states)[sources], seg_offsets, identity=0.0
        )
        new = np.where(
            self._source_mask[dst],
            1.0,
            np.maximum(old, np.where(acc > 0.0, 1.0, 0.0)),
        )
        return new, new != old
