"""Delta-recompute planning: which vertices rerun after a batch, and how.

After a batch the engine should not recompute the whole graph — it
resumes from the previous fixpoint (``V_val``) and reactivates only the
vertices a change can reach. How safe that is depends on the algorithm's
monotonicity, so programs are classified:

- **growth-safe monotone** (`bfs`, `sssp`, `wcc`, `reachability`) — the
  fixpoint only improves when the graph grows, so the old values are
  valid bounds and the run *resumes* with just the change's endpoints
  reactivated. Deletions (or an `sssp` weight increase) can invalidate
  old values, so those fall back to **reset** mode.
- **shrink-safe** (`kcore`) — peeling is monotone downward: deletions
  resume directly, but an insertion could revive a peeled vertex, which
  the pinned ``0 -> 0`` apply can never do — insertions reset.
- **accumulative** (`pagerank`, `ppr`, `adsorption`) — Maiter-style
  delta correction: the iteration is a contraction, so growth resumes
  from the old values with the changed frontier reactivated; deletions
  (and weight changes for the weight-sensitive programs) use the
  reset-and-recompute fallback.

**Reset mode** recomputes the *affected closure*: the forward closure of
the activation seeds under ``program.dependents`` on the new graph.
Vertices in the closure restart from the program's fresh initial state;
vertices outside it keep their old values, and that is sound because the
closure is dependents-closed — any vertex that gathers from an affected
vertex is itself affected, so the unaffected remainder is a closed
subsystem whose edges the batch did not touch, and its old fixpoint
values are exactly what a from-scratch run would recompute.

Activation seeds per touched edge ``(u, v)``: both endpoints plus
``dependents(u)`` on the new graph — the endpoint covers programs whose
gather reads the edge directly (and the symmetric `wcc`/`kcore`
gathers), and ``dependents(u)`` covers `pagerank`/`ppr`, where changing
``u``'s out-degree renormalizes the contribution ``u`` makes to *all* of
its successors. Added vertices are always seeds (they must be applied
once to leave the fresh state). Deleted-edge endpoints come from the
batch records, since the edge itself is gone from the new graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.model.gas import VertexProgram
from repro.streaming.mutations import AppliedBatch

#: Monotone programs whose fixpoint only improves when the graph grows.
GROWTH_SAFE = frozenset({"bfs", "sssp", "wcc", "reachability"})
#: Monotone-downward programs safe to resume under deletions only.
SHRINK_SAFE = frozenset({"kcore"})
#: Contraction iterations (Maiter-style delta correction on growth).
ACCUMULATIVE = frozenset({"pagerank", "ppr", "adsorption"})
#: Programs whose gather reads the edge weight (others ignore reweights).
WEIGHT_SENSITIVE = frozenset({"sssp", "adsorption"})

RESUME = "resume"
RESET = "reset"


@dataclass(frozen=True)
class DeltaPlan:
    """Warm-start arrays + provenance for one incremental run."""

    mode: str                      #: ``"resume"`` or ``"reset"``
    reason: str                    #: human-readable classification
    initial_values: np.ndarray     #: per-vertex warm-start values
    initial_active: np.ndarray     #: per-vertex activation mask
    seed_vertices: Tuple[int, ...] #: activation seeds derived from the batch
    num_affected: int              #: vertices reactivated by this plan


def sensitive_weight_changes(
    algorithm: str, applied: AppliedBatch
) -> List[Tuple[int, int, int, float, float]]:
    """Weight changes this algorithm can observe."""
    if algorithm not in WEIGHT_SENSITIVE:
        return []
    return list(applied.weight_changes)


def classify_batch(algorithm: str, applied: AppliedBatch) -> Tuple[str, str]:
    """Pick resume vs reset for this algorithm/batch pair, with a reason."""
    deletes = len(applied.deleted)
    inserts = len(applied.inserted)
    reweights = sensitive_weight_changes(algorithm, applied)
    if algorithm in SHRINK_SAFE:
        if inserts:
            return RESET, (
                f"{inserts} insert(s) could revive peeled vertices"
            )
        return RESUME, "deletions only shrink the core (monotone peeling)"
    if algorithm in GROWTH_SAFE:
        if deletes:
            return RESET, f"{deletes} deletion(s) invalidate monotone bounds"
        if reweights:
            increases = [r for r in reweights if r[4] > r[3]]
            if increases:
                return RESET, (
                    f"{len(increases)} weight increase(s) invalidate "
                    "monotone bounds"
                )
            return RESUME, "weight decreases only improve the fixpoint"
        return RESUME, "growth preserves monotone bounds"
    # Accumulative (contraction) programs.
    if deletes:
        return RESET, (
            f"{deletes} deletion(s): reset-and-recompute fallback"
        )
    if reweights:
        return RESET, (
            f"{len(reweights)} weight change(s): reset-and-recompute "
            "fallback"
        )
    return RESUME, "delta correction resumes the contraction"


def activation_seeds(
    program: VertexProgram, applied: AppliedBatch, algorithm: str
) -> List[int]:
    """Vertices reactivated by the batch (sorted, deduplicated)."""
    graph = applied.graph
    seeds = set(applied.added_vertices)
    for _, u, v in applied.inserted:
        seeds.add(u)
        seeds.add(v)
        seeds.update(int(d) for d in program.dependents(graph, u))
    for _, u, v in applied.deleted:
        seeds.add(u)
        seeds.add(v)
        seeds.update(int(d) for d in program.dependents(graph, u))
    for _, u, v, _old_w, _new_w in sensitive_weight_changes(
        algorithm, applied
    ):
        seeds.add(u)
        seeds.add(v)
    return sorted(seeds)


def affected_closure(
    program: VertexProgram, graph, seeds: List[int]
) -> np.ndarray:
    """Forward closure of ``seeds`` under ``program.dependents``."""
    mask = np.zeros(graph.num_vertices, dtype=bool)
    frontier = [int(s) for s in seeds]
    for s in frontier:
        mask[s] = True
    while frontier:
        v = frontier.pop()
        for d in program.dependents(graph, v):
            d = int(d)
            if not mask[d]:
                mask[d] = True
                frontier.append(d)
    return mask


def plan_delta(
    algorithm: str,
    program: VertexProgram,
    applied: AppliedBatch,
    old_values: np.ndarray,
) -> DeltaPlan:
    """Plan the warm start for one applied batch.

    ``old_values`` is the previous fixpoint on ``applied.old_graph``;
    vertex ids are stable under batches (vertices only append), so old
    values carry over positionally and added vertices start fresh.

    Calls ``program.initial_states`` on the new graph, so the program's
    graph-derived caches (out-degrees, weight normalizers) are primed
    for the new topology as a side effect.
    """
    graph = applied.graph
    fresh = np.asarray(
        program.initial_states(graph), dtype=np.float64
    ).copy()
    old_n = applied.old_graph.num_vertices
    values = fresh.copy()
    values[:old_n] = np.asarray(old_values, dtype=np.float64)[:old_n]

    mode, reason = classify_batch(algorithm, applied)
    seeds = activation_seeds(program, applied, algorithm)

    if mode == RESET:
        mask = affected_closure(program, graph, seeds)
        values[mask] = fresh[mask]
        active = mask.copy()
        affected = int(np.count_nonzero(mask))
    else:
        active = np.zeros(graph.num_vertices, dtype=bool)
        for s in seeds:
            active[s] = True
        affected = len(seeds)

    return DeltaPlan(
        mode=mode,
        reason=reason,
        initial_values=values,
        initial_active=active,
        seed_vertices=tuple(seeds),
        num_affected=affected,
    )
