"""Mutation batches over an evolving :class:`~repro.graph.digraph.DiGraphCSR`.

The CSR graph is immutable, so streaming works in *batches*: a
:class:`MutationBatch` bundles edge inserts/deletes, weight changes, and
vertex additions; :func:`apply_batch` materializes a new CSR plus the
bookkeeping the incremental machinery needs —

- ``edge_id_map`` — every surviving old edge's new CSR id (deleted edges
  map to ``-1``), so the path repairer can remap surviving paths without
  re-resolving endpoints;
- the inserted/deleted/reweighted edge records with endpoints, so the
  delta planner can derive activation seeds even for edges that no
  longer exist in the new graph.

Edge-id stability: the builder stable-sorts by source, and kept old
edges are staged before inserted ones, so within each source bucket the
old edges keep their relative order and precede this batch's inserts —
the application is fully deterministic.

Mutations apply *sequentially within the batch*: inserting then deleting
the same edge in one batch is legal and nets out; deleting a missing
edge (or inserting a duplicate/self-loop) raises
:class:`~repro.errors.StreamingError` before anything is modified.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.errors import StreamingError
from repro.graph.digraph import DiGraphCSR

EDGE_INSERT = "edge_insert"
EDGE_DELETE = "edge_delete"
WEIGHT_CHANGE = "weight_change"
VERTEX_ADD = "vertex_add"

_KINDS = frozenset({EDGE_INSERT, EDGE_DELETE, WEIGHT_CHANGE, VERTEX_ADD})


@dataclass(frozen=True)
class Mutation:
    """One atomic change. Use the classmethod constructors."""

    kind: str
    u: int = -1
    v: int = -1
    weight: float = 1.0
    count: int = 1  # vertex_add only

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise StreamingError(f"unknown mutation kind {self.kind!r}")
        if self.kind == VERTEX_ADD:
            if self.count < 1:
                raise StreamingError("vertex_add count must be >= 1")
            return
        if self.u < 0 or self.v < 0:
            raise StreamingError(
                f"{self.kind}: endpoints must be non-negative, "
                f"got ({self.u}, {self.v})"
            )
        if self.kind == EDGE_INSERT and self.u == self.v:
            raise StreamingError(
                f"edge_insert: self-loop ({self.u}, {self.v}) is not "
                "supported by the path repairer"
            )

    @classmethod
    def insert(cls, u: int, v: int, weight: float = 1.0) -> "Mutation":
        return cls(kind=EDGE_INSERT, u=u, v=v, weight=weight)

    @classmethod
    def delete(cls, u: int, v: int) -> "Mutation":
        return cls(kind=EDGE_DELETE, u=u, v=v)

    @classmethod
    def reweight(cls, u: int, v: int, weight: float) -> "Mutation":
        return cls(kind=WEIGHT_CHANGE, u=u, v=v, weight=weight)

    @classmethod
    def add_vertices(cls, count: int = 1) -> "Mutation":
        return cls(kind=VERTEX_ADD, count=count)


@dataclass(frozen=True)
class MutationBatch:
    """An ordered bundle of mutations applied atomically to one graph."""

    mutations: Tuple[Mutation, ...]
    batch_id: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "mutations", tuple(self.mutations))

    def __len__(self) -> int:
        return len(self.mutations)

    def counts(self) -> Dict[str, int]:
        """Mutation count per kind (vertex_add counts vertices)."""
        out = {kind: 0 for kind in sorted(_KINDS)}
        for m in self.mutations:
            out[m.kind] += m.count if m.kind == VERTEX_ADD else 1
        return out


@dataclass(frozen=True)
class AppliedBatch:
    """The result of applying one batch: the new graph + change records.

    ``weight_changes`` carries ``(new_edge_id, u, v, old_w, new_w)`` so
    the delta planner can classify increases vs decreases; ``deleted``
    carries ``(old_edge_id, u, v)`` because those endpoints are gone
    from the new graph but still seed reactivation.
    """

    old_graph: DiGraphCSR
    graph: DiGraphCSR
    #: old edge id -> new edge id (-1 for deleted), length = old edges.
    edge_id_map: np.ndarray
    #: (new_edge_id, u, v) per inserted edge, in insertion order.
    inserted: Tuple[Tuple[int, int, int], ...]
    #: (old_edge_id, u, v) per deleted edge.
    deleted: Tuple[Tuple[int, int, int], ...]
    #: (new_edge_id, u, v, old_weight, new_weight) per surviving reweight.
    weight_changes: Tuple[Tuple[int, int, int, float, float], ...]
    #: Ids of vertices appended by vertex_add mutations.
    added_vertices: Tuple[int, ...]

    @property
    def num_structural_changes(self) -> int:
        return len(self.inserted) + len(self.deleted)

    def touched_vertices(self) -> List[int]:
        """Endpoints of every structural/weight change + added vertices."""
        touched = set(self.added_vertices)
        for _, u, v in self.inserted:
            touched.add(u)
            touched.add(v)
        for _, u, v in self.deleted:
            touched.add(u)
            touched.add(v)
        for _, u, v, _, _ in self.weight_changes:
            touched.add(u)
            touched.add(v)
        return sorted(touched)


def _find_live_old_edge(
    graph: DiGraphCSR, u: int, v: int, deleted: np.ndarray
) -> int:
    """First non-deleted old edge id for (u, v), or -1."""
    for eid in graph.out_edge_ids(u):
        eid = int(eid)
        if int(graph.indices[eid]) == v and not deleted[eid]:
            return eid
    return -1


def apply_batch(graph: DiGraphCSR, batch: MutationBatch) -> AppliedBatch:
    """Apply ``batch`` to ``graph``; returns the new graph + records.

    Raises
    ------
    StreamingError
        On any invalid mutation (duplicate insert, missing delete/
        reweight target, endpoint out of range). The check pass runs
        before construction, so a failing batch has no effect.
    """
    old_n = graph.num_vertices
    old_m = graph.num_edges

    # Working state, mutated sequentially in batch order.
    n = old_n
    deleted = np.zeros(old_m, dtype=bool)
    weights = graph.weights.copy()
    old_weight_of: Dict[int, float] = {}  # reweighted old edge -> original w
    # Pending inserts as mutable records [u, v, w, alive].
    pending: List[List[object]] = []
    added: List[int] = []
    deleted_records: List[Tuple[int, int, int]] = []

    def find_pending(u: int, v: int) -> int:
        for i, rec in enumerate(pending):
            if rec[3] and rec[0] == u and rec[1] == v:
                return i
        return -1

    for m in batch.mutations:
        if m.kind == VERTEX_ADD:
            added.extend(range(n, n + m.count))
            n += m.count
            continue
        if m.u >= n or m.v >= n:
            raise StreamingError(
                f"{m.kind}: endpoint ({m.u}, {m.v}) outside vertex "
                f"range [0, {n})"
            )
        in_old = (
            _find_live_old_edge(graph, m.u, m.v, deleted)
            if m.u < old_n
            else -1
        )
        if m.kind == EDGE_INSERT:
            if in_old != -1 or find_pending(m.u, m.v) != -1:
                raise StreamingError(
                    f"edge_insert: edge ({m.u}, {m.v}) already exists"
                )
            pending.append([m.u, m.v, float(m.weight), True])
        elif m.kind == EDGE_DELETE:
            if in_old != -1:
                deleted[in_old] = True
                deleted_records.append((in_old, m.u, m.v))
                old_weight_of.pop(in_old, None)
            else:
                i = find_pending(m.u, m.v)
                if i == -1:
                    raise StreamingError(
                        f"edge_delete: edge ({m.u}, {m.v}) does not exist"
                    )
                pending[i][3] = False
        else:  # WEIGHT_CHANGE
            if in_old != -1:
                old_weight_of.setdefault(in_old, float(weights[in_old]))
                weights[in_old] = float(m.weight)
            else:
                i = find_pending(m.u, m.v)
                if i == -1:
                    raise StreamingError(
                        f"weight_change: edge ({m.u}, {m.v}) does not exist"
                    )
                pending[i][2] = float(m.weight)

    # Assemble the new edge list: kept old edges first, then surviving
    # inserts — the stable sort preserves that order within each source.
    kept = np.flatnonzero(~deleted)
    old_srcs = graph.edge_sources()
    live_pending = [rec for rec in pending if rec[3]]
    ins_srcs = np.asarray([rec[0] for rec in live_pending], dtype=np.int64)
    ins_dsts = np.asarray([rec[1] for rec in live_pending], dtype=np.int64)
    ins_wts = np.asarray([rec[2] for rec in live_pending], dtype=np.float64)

    all_srcs = np.concatenate([old_srcs[kept], ins_srcs])
    all_dsts = np.concatenate([graph.indices[kept], ins_dsts])
    all_wts = np.concatenate([weights[kept], ins_wts])

    order = np.argsort(all_srcs, kind="stable")
    position = np.empty(order.size, dtype=np.int64)
    position[order] = np.arange(order.size, dtype=np.int64)

    counts = (
        np.bincount(all_srcs, minlength=n)
        if all_srcs.size
        else np.zeros(n, dtype=np.int64)
    )
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    new_graph = DiGraphCSR(indptr, all_dsts[order], all_wts[order])

    edge_id_map = np.full(old_m, -1, dtype=np.int64)
    edge_id_map[kept] = position[: kept.size]
    inserted_ids = position[kept.size:]

    inserted_records = tuple(
        (int(inserted_ids[i]), int(rec[0]), int(rec[1]))
        for i, rec in enumerate(live_pending)
    )
    weight_records = tuple(
        (
            int(edge_id_map[eid]),
            int(old_srcs[eid]),
            int(graph.indices[eid]),
            old_w,
            float(weights[eid]),
        )
        for eid, old_w in sorted(old_weight_of.items())
        if not deleted[eid] and float(weights[eid]) != old_w
    )

    return AppliedBatch(
        old_graph=graph,
        graph=new_graph,
        edge_id_map=edge_id_map,
        inserted=inserted_records,
        deleted=tuple(deleted_records),
        weight_changes=weight_records,
        added_vertices=tuple(added),
    )
