"""Streaming mutation subsystem: evolving graphs on the DiGraph engine.

Mutation batches (:mod:`repro.streaming.mutations`) evolve the CSR
graph; the path repairer (:mod:`repro.streaming.repair`) patches the
decomposition and dependency DAG instead of re-running Algorithm 1; the
delta planner (:mod:`repro.streaming.delta`) reactivates only affected
vertices resuming from the prior ``V_val``; and
:class:`~repro.streaming.session.StreamingSession` drives the whole
loop with optional certification against from-scratch golden runs
(:mod:`repro.verify.streaming`).
"""

from repro.streaming.delta import (
    ACCUMULATIVE,
    GROWTH_SAFE,
    SHRINK_SAFE,
    WEIGHT_SENSITIVE,
    DeltaPlan,
    plan_delta,
)
from repro.streaming.mutations import (
    AppliedBatch,
    Mutation,
    MutationBatch,
    apply_batch,
)
from repro.streaming.repair import PathRepairer, RepairResult
from repro.streaming.session import BatchOutcome, StreamingSession

__all__ = [
    "Mutation",
    "MutationBatch",
    "AppliedBatch",
    "apply_batch",
    "PathRepairer",
    "RepairResult",
    "DeltaPlan",
    "plan_delta",
    "GROWTH_SAFE",
    "SHRINK_SAFE",
    "ACCUMULATIVE",
    "WEIGHT_SENSITIVE",
    "BatchOutcome",
    "StreamingSession",
]
