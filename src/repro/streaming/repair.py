"""Incremental path repair + dependency-DAG patching for mutation batches.

A mutation batch touches a handful of edges; re-running Algorithm 1 and
the writers x readers dependency construction over the whole graph for
that is exactly the cost streaming must avoid. :class:`PathRepairer`
keeps the path decomposition and its dependency bookkeeping alive across
batches and repairs only what a batch touches:

- **splits** — a path containing deleted edges is cut into its maximal
  surviving fragments (each still a connected path, still within
  ``D_MAX``);
- **extensions** — an inserted edge first tries to extend an existing
  path at its tail (then head), honoring the paper's junction
  constraint: a junction with in-degree > 1 *and* out-degree > 1 may
  only join paths while it is not an inner vertex of another path;
- **merges** — small touched paths (fragments, singletons) are chained
  head-to-tail under the same junction + ``D_MAX`` rules, so repair does
  not slowly fragment the decomposition;
- **dependency patch** — the path dependency graph is maintained as a
  *witness counter*: ``count[(p_i, p_j)]`` = number of vertices written
  (non-head) on ``p_i`` and read (non-tail) on ``p_j``. Removing or
  adding a path only touches the counters of its own vertices, so the
  patched edge set is exact (it equals a from-scratch
  :func:`~repro.core.dependency.build_dependency_dag` bit for bit — the
  structural verifier checks this); condensation + layering then rerun
  on the dependency graph only, which is a few percent the size of the
  original graph (the paper reports 3.4%-9.1%).

Hot/cold classification is sticky: untouched paths keep their class;
touched and new paths are classified against the threshold the initial
decomposition implied (the minimum average degree among its hot paths).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.core.dependency import DependencyDAG
from repro.core.partitioning import CPU_SECONDS_PER_EDGE, D_MAX
from repro.core.paths import Path, PathSet
from repro.errors import StreamingError
from repro.graph.builder import GraphBuilder
from repro.graph.digraph import DiGraphCSR
from repro.graph.scc import condensation
from repro.graph.traversal import dag_layers
from repro.streaming.mutations import AppliedBatch

_Record = Tuple[Tuple[int, ...], Tuple[int, ...]]  # (vertices, edge_ids)


@dataclass(frozen=True)
class RepairResult:
    """One batch's repaired decomposition + repair statistics."""

    path_set: PathSet
    dag: DependencyDAG
    paths_split: int        #: paths cut apart by edge deletions
    fragments_added: int    #: surviving fragments re-registered
    paths_extended: int     #: paths grown by an inserted edge
    paths_merged: int       #: head-to-tail merges among touched paths
    paths_created: int      #: new singleton paths for unplaceable inserts
    paths_removed: int      #: paths that vanished without a fragment
    touched_edge_work: int  #: edges handled by repair (modeled cost basis)
    modeled_seconds: float  #: modeled CPU time of the repair

    @property
    def paths_repaired(self) -> int:
        """Total repair operations — the ``paths_repaired`` counter."""
        return (
            self.paths_split
            + self.fragments_added
            + self.paths_extended
            + self.paths_merged
            + self.paths_created
            + self.paths_removed
        )


class PathRepairer:
    """Evolves a :class:`~repro.core.paths.PathSet` across mutation batches.

    Paths carry stable *internal* ids for the repairer's lifetime; the
    externally visible ``PathSet`` renumbers them (ascending internal
    id) per batch, so the witness counters and occurrence maps never
    need rekeying.
    """

    def __init__(self, path_set: PathSet, n_workers: int = 1) -> None:
        self.graph = path_set.graph
        self.d_max = path_set.d_max or D_MAX
        self.n_workers = max(int(n_workers), 1)
        self._paths: Dict[int, _Record] = {}
        self._next_id = 0
        self._writers: Dict[int, Set[int]] = {}
        self._readers: Dict[int, Set[int]] = {}
        self._witness: Dict[Tuple[int, int], int] = {}
        self._inner: Dict[int, int] = {}
        self._by_head: Dict[int, Set[int]] = {}
        self._by_tail: Dict[int, Set[int]] = {}
        self._hot: Set[int] = set()
        self._touched_edge_work = 0
        for path in path_set:
            pid = self._add_path(path.vertices, path.edge_ids)
            if path_set.is_hot(path.path_id):
                self._hot.add(pid)
        self._hot_threshold = self._initial_hot_threshold(path_set)
        self._touched_edge_work = 0  # init registration is not repair work

    # ------------------------------------------------------------------
    # bookkeeping primitives
    # ------------------------------------------------------------------
    def _add_path(
        self, vertices: Tuple[int, ...], edge_ids: Tuple[int, ...]
    ) -> int:
        pid = self._next_id
        self._next_id += 1
        self._paths[pid] = (tuple(vertices), tuple(edge_ids))
        self._by_head.setdefault(vertices[0], set()).add(pid)
        self._by_tail.setdefault(vertices[-1], set()).add(pid)
        for v in vertices[1:-1]:
            self._inner[v] = self._inner.get(v, 0) + 1
        for v in set(vertices[1:]):
            for reader in self._readers.get(v, ()):
                if reader != pid:
                    key = (pid, reader)
                    self._witness[key] = self._witness.get(key, 0) + 1
            self._writers.setdefault(v, set()).add(pid)
        for v in set(vertices[:-1]):
            for writer in self._writers.get(v, ()):
                if writer != pid:
                    key = (writer, pid)
                    self._witness[key] = self._witness.get(key, 0) + 1
            self._readers.setdefault(v, set()).add(pid)
        self._touched_edge_work += len(edge_ids)
        return pid

    def _remove_path(self, pid: int) -> _Record:
        vertices, edge_ids = self._paths.pop(pid)
        self._by_head[vertices[0]].discard(pid)
        self._by_tail[vertices[-1]].discard(pid)
        for v in vertices[1:-1]:
            self._inner[v] -= 1
        for v in set(vertices[1:]):
            self._writers[v].discard(pid)
            for reader in self._readers.get(v, ()):
                if reader != pid:
                    self._decrement((pid, reader))
        for v in set(vertices[:-1]):
            self._readers[v].discard(pid)
            for writer in self._writers.get(v, ()):
                if writer != pid:
                    self._decrement((writer, pid))
        self._hot.discard(pid)
        self._touched_edge_work += len(edge_ids)
        return vertices, edge_ids

    def _decrement(self, key: Tuple[int, int]) -> None:
        count = self._witness.get(key, 0) - 1
        if count < 0:
            raise StreamingError(
                f"dependency witness underflow for pair {key}"
            )
        if count == 0:
            self._witness.pop(key, None)
        else:
            self._witness[key] = count

    def _initial_hot_threshold(self, path_set: PathSet) -> float:
        if not path_set.hot_path_ids:
            return float("inf")
        return min(
            path_set[pid].average_degree(path_set.graph)
            for pid in path_set.hot_path_ids
        )

    def _may_join(self, junction: int, graph: DiGraphCSR) -> bool:
        """The paper's junction constraint, against the *new* graph."""
        if graph.in_degree(junction) > 1 and graph.out_degree(junction) > 1:
            return self._inner.get(junction, 0) == 0
        return True

    # ------------------------------------------------------------------
    # batch repair
    # ------------------------------------------------------------------
    def apply(self, applied: AppliedBatch) -> RepairResult:
        """Repair the decomposition for one applied batch."""
        if applied.old_graph is not self.graph:
            raise StreamingError(
                "batch was applied to a different graph than the "
                "repairer is tracking"
            )
        graph = applied.graph
        edge_id_map = applied.edge_id_map
        self._touched_edge_work = 0
        touched: Set[int] = set()
        splits = extended = merged = created = removed = fragments = 0

        # 1. Split paths holding deleted edges into surviving fragments
        #    (fragment edge ids stay in the OLD id space until step 2).
        dead_by_path: Dict[int, Set[int]] = {}
        for old_eid, u, _v in applied.deleted:
            pid = self._find_path_of_edge(u, old_eid)
            dead_by_path.setdefault(pid, set()).add(old_eid)
        pool: List[_Record] = []
        for pid, dead in sorted(dead_by_path.items()):
            vertices, edge_ids = self._remove_path(pid)
            parts = _split_record(vertices, edge_ids, dead)
            if parts:
                splits += 1
            else:
                removed += 1
            pool.extend(parts)

        # 2. Remap every surviving path (and fragment) into the new
        #    edge-id space. Vertex tuples are untouched, so dependency
        #    counters and occurrence maps stay valid as-is.
        for pid, (vertices, edge_ids) in self._paths.items():
            self._paths[pid] = (
                vertices,
                tuple(int(edge_id_map[e]) for e in edge_ids),
            )
        for i, (vertices, edge_ids) in enumerate(pool):
            pool[i] = (
                vertices,
                tuple(int(edge_id_map[e]) for e in edge_ids),
            )

        # 3. Re-register fragments as paths.
        for vertices, edge_ids in pool:
            touched.add(self._add_path(vertices, edge_ids))
            fragments += 1

        # 4. Place inserted edges: tail-extend, head-extend, else a new
        #    singleton path.
        for new_eid, u, v in applied.inserted:
            pid = self._pick_extension(self._by_tail.get(u), u, graph)
            if pid is not None:
                vertices, edge_ids = self._remove_path(pid)
                touched.discard(pid)
                touched.add(
                    self._add_path(
                        vertices + (v,), edge_ids + (new_eid,)
                    )
                )
                extended += 1
                continue
            pid = self._pick_extension(self._by_head.get(v), v, graph)
            if pid is not None:
                vertices, edge_ids = self._remove_path(pid)
                touched.discard(pid)
                touched.add(
                    self._add_path(
                        (u,) + vertices, (new_eid,) + edge_ids
                    )
                )
                extended += 1
                continue
            touched.add(self._add_path((u, v), (new_eid,)))
            created += 1

        # 5. Merge pass over the touched paths so repair does not slowly
        #    fragment the decomposition (same rules as the preprocessing
        #    merge: junction constraint + D_MAX cap).
        for pid in sorted(touched):
            while pid in self._paths:
                vertices, edge_ids = self._paths[pid]
                tail = vertices[-1]
                candidates = [
                    q
                    for q in self._by_head.get(tail, ())
                    if q != pid
                    and q in touched
                    and len(edge_ids) + len(self._paths[q][1])
                    <= self.d_max
                    and self._may_join(tail, graph)
                ]
                if not candidates:
                    break
                q = min(candidates)
                q_vertices, q_edges = self._remove_path(q)
                self._remove_path(pid)
                touched.discard(q)
                touched.discard(pid)
                pid = self._add_path(
                    vertices + q_vertices[1:], edge_ids + q_edges
                )
                touched.add(pid)
                merged += 1

        # 6. Classify the touched paths against the sticky hot threshold.
        for pid in touched:
            vertices, _ = self._paths[pid]
            avg = float(
                np.mean([graph.degree(int(v)) for v in vertices])
            )
            if avg >= self._hot_threshold:
                self._hot.add(pid)

        self.graph = graph
        path_set, dag = self._materialize(graph)
        modeled = (
            CPU_SECONDS_PER_EDGE
            * (self._touched_edge_work + path_set.num_paths)
            / self.n_workers
        )
        return RepairResult(
            path_set=path_set,
            dag=dag,
            paths_split=splits,
            fragments_added=fragments,
            paths_extended=extended,
            paths_merged=merged,
            paths_created=created,
            paths_removed=removed,
            touched_edge_work=self._touched_edge_work,
            modeled_seconds=modeled,
        )

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _find_path_of_edge(self, src: int, old_eid: int) -> int:
        """The path holding edge ``old_eid`` (whose source is ``src``).

        The edge's source reads (propagates) on that path, so only the
        handful of paths in ``readers[src]`` need scanning.
        """
        for pid in self._readers.get(src, ()):
            if old_eid in self._paths[pid][1]:
                return pid
        raise StreamingError(
            f"edge {old_eid} ({src} ->) is not covered by any path"
        )

    def _pick_extension(
        self, candidates: Optional[Set[int]], junction: int, graph: DiGraphCSR
    ) -> Optional[int]:
        """Smallest eligible path to extend through ``junction``."""
        if not candidates or not self._may_join(junction, graph):
            return None
        eligible = [
            pid
            for pid in candidates
            if len(self._paths[pid][1]) < self.d_max
        ]
        return min(eligible) if eligible else None

    def _materialize(
        self, graph: DiGraphCSR
    ) -> Tuple[PathSet, DependencyDAG]:
        """Renumbered PathSet + DAG from the patched witness counters."""
        order = sorted(self._paths)
        external = {pid: i for i, pid in enumerate(order)}
        paths = [
            Path(
                path_id=i,
                vertices=self._paths[pid][0],
                edge_ids=self._paths[pid][1],
            )
            for i, pid in enumerate(order)
        ]
        hot = frozenset(
            external[pid] for pid in self._hot if pid in external
        )
        path_set = PathSet(
            graph=graph, paths=paths, hot_path_ids=hot, d_max=self.d_max
        )
        edges = sorted(
            (external[pi], external[pj])
            for (pi, pj), count in self._witness.items()
            if count > 0
        )
        builder = GraphBuilder(num_vertices=len(paths))
        builder.add_edges(edges)
        dependency_graph = builder.build()
        cond = condensation(dependency_graph)
        layers = dag_layers(cond.dag)
        dag = DependencyDAG(
            dependency_graph=dependency_graph,
            scc_of_path=cond.labels,
            dag=cond.dag,
            members=cond.members,
            layer_of_scc=layers,
        )
        return path_set, dag


def _split_record(
    vertices: Tuple[int, ...],
    edge_ids: Tuple[int, ...],
    dead: Set[int],
) -> List[_Record]:
    """Cut a path at its dead edges; keep fragments with >= 1 edge."""
    parts: List[_Record] = []
    start = 0
    for i, eid in enumerate(edge_ids):
        if eid in dead:
            if i > start:
                parts.append(
                    (vertices[start : i + 1], edge_ids[start:i])
                )
            start = i + 1
    if len(edge_ids) > start:
        parts.append((vertices[start:], edge_ids[start:]))
    return parts
