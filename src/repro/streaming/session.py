"""End-to-end streaming over an evolving graph on the DiGraph engine.

:class:`StreamingSession` ties the pieces together: it preprocesses the
initial graph once (Algorithm 1 + dependency DAG + partitions), runs the
algorithm cold, and then per :class:`~repro.streaming.mutations.MutationBatch`

1. applies the batch (:func:`~repro.streaming.mutations.apply_batch`),
2. repairs only the touched paths and patches the dependency DAG
   (:class:`~repro.streaming.repair.PathRepairer`) instead of re-running
   Algorithm 1,
3. plans the delta recompute (:func:`~repro.streaming.delta.plan_delta`)
   and warm-starts the engine from the prior ``V_val`` with only the
   affected vertices reactivated,
4. optionally certifies the incremental fixpoint against a from-scratch
   golden run (bit-exact for the discrete algorithms, tolerance-band for
   the contraction ones) and reports incremental vs full-rebuild
   modeled time.

Program parameters are frozen against the *initial* graph: `sssp`/`bfs`
sources and `ppr`/`reachability` seed sets are resolved once, so every
incremental run — and every golden rebuild — solves the same problem as
the graph evolves (re-resolving ``argmax(out_degree)`` per batch would
silently change the query).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, Optional

import numpy as np

from repro.algorithms import make_program
from repro.bench.results import ExecutionResult
from repro.baselines.common import resolve_partition_target
from repro.core.engine import DiGraphConfig, DiGraphEngine, Preprocessed
from repro.core.replicas import ReplicaTable
from repro.core.storage import PathStorage, build_partitions
from repro.gpu.config import MachineSpec
from repro.graph.digraph import DiGraphCSR
from repro.streaming.delta import DeltaPlan, plan_delta
from repro.streaming.mutations import (
    AppliedBatch,
    MutationBatch,
    apply_batch,
)
from repro.streaming.repair import PathRepairer, RepairResult
from repro.verify.oracle import DISCRETE_ALGORITHMS, equivalence_band
from repro.verify.report import CheckResult


@dataclass(frozen=True)
class BatchOutcome:
    """Everything one batch produced, for reporting and assertions."""

    batch_id: int
    applied: AppliedBatch
    repair: RepairResult
    plan: DeltaPlan
    result: ExecutionResult           #: the incremental engine run
    incremental_total_s: float        #: repair + warm run, modeled
    #: From-scratch preprocess + cold run on the same graph (only when
    #: the batch was certified; the rebuild is what incremental avoids).
    rebuild_total_s: Optional[float] = None
    golden: Optional[ExecutionResult] = None
    certification: Optional[CheckResult] = None

    @property
    def mode(self) -> str:
        return self.plan.mode

    @property
    def speedup(self) -> Optional[float]:
        """Rebuild / incremental modeled time (when both are known)."""
        if self.rebuild_total_s is None or self.incremental_total_s <= 0:
            return None
        return self.rebuild_total_s / self.incremental_total_s


class StreamingSession:
    """One algorithm kept up to date across mutation batches."""

    def __init__(
        self,
        graph: DiGraphCSR,
        algorithm: str,
        machine_spec: Optional[MachineSpec] = None,
        config: Optional[DiGraphConfig] = None,
        graph_name: str = "stream",
        verify_structure: bool = False,
        program_kwargs: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.engine = DiGraphEngine(machine_spec, config)
        self.algorithm = algorithm.lower()
        self.graph_name = graph_name
        self.verify_structure = verify_structure
        self.graph = graph
        # Freeze graph-derived program parameters on the initial graph.
        probe = make_program(
            self.algorithm, graph, **(program_kwargs or {})
        )
        self.program_kwargs = dict(program_kwargs or {})
        if self.algorithm in ("sssp", "bfs"):
            self.program_kwargs.setdefault("source", probe.source)
        elif self.algorithm == "ppr":
            self.program_kwargs.setdefault("seeds", list(probe.seeds))
        elif self.algorithm == "reachability":
            self.program_kwargs.setdefault(
                "sources", list(probe.sources)
            )
        # Cold start: full Algorithm-1 preprocess + from-scratch run.
        pre = self.engine.preprocess(graph)
        self.repairer = PathRepairer(
            pre.path_set, n_workers=self.engine.config.n_workers
        )
        self.baseline = self.engine.run(
            graph, probe, preprocessed=pre, graph_name=graph_name
        )
        self.values = self.baseline.states
        self.batches_applied = 0

    # ------------------------------------------------------------------
    def _make_program(self, graph: DiGraphCSR):
        return make_program(self.algorithm, graph, **self.program_kwargs)

    def _preprocess_from_repair(
        self, repair: RepairResult, graph: DiGraphCSR
    ) -> Preprocessed:
        """Assemble ``Preprocessed`` around the repaired decomposition.

        Partitions, storage arrays, and the replica table are derived
        views of the path set; they are rebuilt from the repaired paths
        (their cost rides in the repair's modeled seconds, which charge
        the path-count term the full preprocess model charges).
        """
        cfg = self.engine.config
        started = time.perf_counter()
        target = resolve_partition_target(
            graph, cfg.target_edges_per_partition
        )
        partitions = build_partitions(repair.path_set, repair.dag, target)
        storage = PathStorage(repair.path_set, partitions)
        gpu_spec = self.engine.spec.gpu
        replicas = ReplicaTable(
            repair.path_set,
            storage,
            proxy_in_degree_threshold=cfg.proxy_in_degree_threshold,
            proxy_capacity=gpu_spec.shared_memory_per_smx_bytes // 16,
        )
        pre = Preprocessed(
            path_set=repair.path_set,
            dag=repair.dag,
            storage=storage,
            replicas=replicas,
            modeled_seconds=repair.modeled_seconds,
            wall_seconds=time.perf_counter() - started,
        )
        if self.verify_structure:
            from repro.verify.structural import verify_preprocessed

            verify_preprocessed(pre).raise_if_failed()
        return pre

    # ------------------------------------------------------------------
    def apply(
        self, batch: MutationBatch, certify: bool = False
    ) -> BatchOutcome:
        """Apply one batch: mutate, repair, delta-recompute, certify."""
        applied = apply_batch(self.graph, batch)
        repair = self.repairer.apply(applied)
        pre = self._preprocess_from_repair(repair, applied.graph)
        program = self._make_program(applied.graph)
        plan = plan_delta(self.algorithm, program, applied, self.values)
        result = self.engine.run(
            applied.graph,
            program,
            preprocessed=pre,
            graph_name=self.graph_name,
            initial_values=plan.initial_values,
            initial_active=plan.initial_active,
        )
        result.stats.paths_repaired += repair.paths_repaired
        self.graph = applied.graph
        self.values = result.states
        self.batches_applied += 1
        incremental_total = result.stats.total_time_with_preprocess_s

        golden = None
        rebuild_total = None
        certification = None
        if certify:
            golden, certification = self._certify(applied.graph, result)
            rebuild_total = golden.stats.total_time_with_preprocess_s

        return BatchOutcome(
            batch_id=batch.batch_id,
            applied=applied,
            repair=repair,
            plan=plan,
            result=result,
            incremental_total_s=incremental_total,
            rebuild_total_s=rebuild_total,
            golden=golden,
            certification=certification,
        )

    def _certify(self, graph: DiGraphCSR, incremental: ExecutionResult):
        """From-scratch golden run + equivalence check on this graph."""
        from repro.verify.streaming import certify_incremental

        golden_program = self._make_program(graph)
        golden = self.engine.run(
            graph, golden_program, graph_name=self.graph_name
        )
        band = (
            0.0
            if self.algorithm in DISCRETE_ALGORITHMS
            else equivalence_band(golden_program, graph)
        )
        certification = certify_incremental(
            incremental.states, golden.states, band
        )
        return golden, certification

    @property
    def stats(self):
        """Stats bundle of the most recent engine run."""
        return self.baseline.stats
