"""Groute-like asynchronous baseline engine.

Per-partition worklists, no inter-round barrier, immediate state
visibility — but **no dependency ordering**: every partition with a
non-empty worklist is processed each round, in partition order, each
vertex once per pass against the freshest available states. Activations
land in the next pass, so a state still needs one pass per hop inside a
partition's dependency chains, and partitions are re-processed whenever
any neighbor partition feeds them a new state — the reprocessing behavior
Fig. 2(a)/(b) measures and DiGraph's dependency-aware dispatch removes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Set

import numpy as np

from repro.errors import (
    ConfigurationError,
    ConvergenceError,
    GPULostError,
    PermanentInterconnectFault,
)
from repro.graph.digraph import DiGraphCSR
from repro.gpu.config import MachineSpec
from repro.gpu.machine import Machine
from repro.model.gas import VertexProgram
from repro.model.state import StalenessView, VertexStates
from repro.bench.results import ExecutionResult, RoundRecord
from repro.core.storage import BYTES_PER_MESSAGE
from repro.baselines.common import (
    BaselineFaultHarness,
    resolve_partition_target,
    VertexRangePartition,
    modeled_baseline_preprocess_seconds,
    partition_of_vertex,
    vertex_range_partitions,
)


@dataclass(frozen=True)
class AsyncConfig:
    """Tunables of the asynchronous baseline."""

    #: ``None`` sizes partitions adaptively (~64 per graph).
    target_edges_per_partition: Optional[int] = None
    max_rounds: int = 100000
    n_workers: int = 1
    #: Check the converged states against the program's own update
    #: equations (:mod:`repro.verify`), raising
    #: :class:`~repro.errors.VerificationError` on a violation.
    verify_invariants: bool = False

    def __post_init__(self) -> None:
        if self.max_rounds < 1:
            raise ConfigurationError("max_rounds must be >= 1")


class AsyncEngine:
    """Asynchronous per-partition worklist engine (the Groute-like
    comparator)."""

    name = "async"

    def __init__(
        self,
        machine_spec: Optional[MachineSpec] = None,
        config: Optional[AsyncConfig] = None,
    ) -> None:
        self.spec = machine_spec or MachineSpec()
        self.config = config or AsyncConfig()

    def run(
        self,
        graph: DiGraphCSR,
        program: VertexProgram,
        graph_name: str = "graph",
        strict_convergence: bool = True,
        fault_injector=None,
        recovery=None,
        resume: bool = False,
    ) -> ExecutionResult:
        started = time.perf_counter()
        machine = Machine(
            self.spec, fault_injector=fault_injector, recovery=recovery
        )
        stats = machine.stats
        stats.preprocess_time_s = modeled_baseline_preprocess_seconds(
            graph, overhead_factor=1.04, n_workers=self.config.n_workers
        )
        partitions = vertex_range_partitions(
            graph,
            machine.num_gpus,
            resolve_partition_target(
                graph, self.config.target_edges_per_partition
            ),
        )
        for partition in partitions:
            machine.batched_transfer_to_gpu(partition.gpu, partition.nbytes)

        states = VertexStates(graph, program)
        round_records: List[RoundRecord] = []
        converged = False
        # With the fault machinery engaged, worklist pushes go through
        # the modeled ack/checksum protocol (``deliver_replica_batch``)
        # so they can be dropped, corrupted, retried, and escalated; the
        # legacy path stays bit-identical for fault-free runs.
        faulted = fault_injector is not None or recovery is not None
        harness = BaselineFaultHarness(
            machine, recovery, partitions, states, round_records
        )
        # Whole-job restart: reload the newest durable checkpoint and
        # replay from its round (see docs/robustness.md).
        round_index = harness.resume_from_store() if resume else 0
        while round_index < self.config.max_rounds:
            if not states.any_active():
                converged = True
                break
            harness.maybe_checkpoint(round_index)
            try:
                self._async_round(
                    graph, program, machine, partitions, states,
                    round_records, round_index, faulted,
                )
            except (GPULostError, PermanentInterconnectFault) as exc:
                round_index = harness.recover(exc, round_index)
                continue
            round_index += 1
        harness.finish()

        if not converged and strict_convergence:
            raise ConvergenceError(
                f"{program.name} did not converge within "
                f"{self.config.max_rounds} rounds"
            )
        if self.config.verify_invariants and converged:
            from repro.verify.report import VerificationReport
            from repro.verify.structural import check_fixed_point_reached

            VerificationReport(
                [check_fixed_point_reached(program, graph, states.values)]
            ).raise_if_failed()
        extras = {"num_partitions": float(len(partitions))}
        if faulted:
            extras.update(
                {
                    "rollback_replay_rounds": float(
                        stats.rollback_replay_rounds
                    ),
                    "checkpoints_taken": float(stats.checkpoints_taken),
                    "checkpoint_bytes_spilled": float(
                        stats.checkpoint_bytes_spilled
                    ),
                    "checkpoint_time_s": stats.checkpoint_time_s,
                    "checkpoint_hidden_time_s": (
                        stats.checkpoint_hidden_time_s
                    ),
                }
            )
        return ExecutionResult(
            engine=self.name,
            algorithm=program.name,
            graph_name=graph_name,
            converged=converged,
            rounds=stats.rounds,
            states=states.values.copy(),
            stats=stats,
            round_records=round_records,
            wall_seconds=time.perf_counter() - started,
            extras=extras,
        )

    def _async_round(
        self,
        graph: DiGraphCSR,
        program: VertexProgram,
        machine: Machine,
        partitions: List[VertexRangePartition],
        states: VertexStates,
        round_records: List[RoundRecord],
        round_index: int,
        faulted: bool,
    ) -> None:
        stats = machine.stats
        # GPU residency per vertex, for the staleness views. Recomputed
        # per round — recovery may re-place partitions mid-run.
        gpu_of_vertex = np.empty(graph.num_vertices, dtype=np.int64)
        for partition in partitions:
            gpu_of_vertex[partition.lo : partition.hi] = partition.gpu
        local_masks = [
            gpu_of_vertex == gpu for gpu in range(machine.num_gpus)
        ]
        # Snapshot which partitions have active vertices at round start.
        active_by_partition: Dict[int, List[int]] = {}
        for v in states.active_vertices():
            pid = partition_of_vertex(partitions, int(v)).partition_id
            active_by_partition.setdefault(pid, []).append(int(v))

        work: Dict[int, List[int]] = {g: [] for g in range(machine.num_gpus)}
        atomics: Dict[int, List[int]] = {
            g: [] for g in range(machine.num_gpus)
        }
        updates_this_round = 0
        active_snapshot_total = 0
        touched_vertex_total = 0
        messages_between: Dict[tuple, int] = {}
        # Cross-GPU activations deliver with the end-of-round push:
        # activating them instantly would let them consume the stale
        # snapshot of the change that activated them and converge
        # incorrectly. On the fault path they are kept per GPU pair so a
        # dropped batch loses exactly its own activations.
        deferred_activations: List[int] = []
        pair_activations: Dict[tuple, List[int]] = {}
        pair_sources: Dict[tuple, List[int]] = {}

        # Multi-GPU staleness: a GPU reads fresh states for its own
        # vertices but only round-start snapshots of remote ones (new
        # remote states arrive with the next transfer) — the paper's
        # Fig. 1/2 one-hop-per-round propagation across partitions.
        snapshot = states.copy_values()
        views = [
            StalenessView(states.values, snapshot, mask)
            for mask in local_masks
        ]

        for pid, worklist in sorted(active_by_partition.items()):
            partition = partitions[pid]
            stats.note_partition_processed(pid)
            machine.load_global(
                partition.gpu,
                nbytes=partition.nbytes,
                vertices=partition.num_vertices,
            )
            active_snapshot_total += len(worklist)
            touched_vertex_total += partition.num_vertices

            for v in worklist:
                if not states.active[v]:
                    continue
                states.deactivate(v)
                new, changed = program.update_vertex(
                    graph,
                    v,
                    views[partition.gpu],
                    old_state=float(states.values[v]),
                )
                degree = program.gather_degree(graph, v)
                stats.apply_calls += 1
                stats.edge_traversals += degree
                # Demand fetches: gather reads pull each predecessor's
                # record into cores individually (random access).
                machine.load_global(
                    partition.gpu, nbytes=8 * degree, vertices=degree
                )
                machine.note_vertex_uses(1 + degree)
                states.values[v] = new
                work[partition.gpu].append(degree)
                atomics[partition.gpu].append(1 if changed else 0)
                if not changed:
                    continue
                updates_this_round += 1
                stats.vertex_updates += 1
                # No proxy vertices: every changed write is an atomic.
                stats.atomic_updates += 1
                remote: Set[int] = set()
                for u in program.dependents(graph, v):
                    dst = partition_of_vertex(partitions, int(u))
                    if dst.gpu != partition.gpu:
                        remote.add(dst.gpu)
                        if faulted:
                            pair_activations.setdefault(
                                (partition.gpu, dst.gpu), []
                            ).append(int(u))
                        else:
                            deferred_activations.append(int(u))
                    else:
                        states.activate([u])
                for dst_gpu in remote:
                    key = (partition.gpu, dst_gpu)
                    messages_between[key] = (
                        messages_between.get(key, 0) + 1
                    )
                    pair_sources.setdefault(key, []).append(v)

        delivered_pairs: List[tuple] = []
        for (src_gpu, dst_gpu), count in messages_between.items():
            # Groute pushes worklist messages asynchronously over the
            # ring; they overlap with compute (no barrier).
            if not faulted:
                machine.transfer_async(
                    src_gpu, dst_gpu, count * BYTES_PER_MESSAGE
                )
                continue
            outcome = machine.deliver_replica_batch(
                src_gpu, dst_gpu, count * BYTES_PER_MESSAGE
            )
            if outcome.status == "dropped":
                # The push never arrived: its activations are lost.
                continue
            if outcome.status == "corrupted" and outcome.poison is not None:
                # The garbled payload overwrites the states it carried.
                for v in pair_sources[(src_gpu, dst_gpu)]:
                    states.values[v] = outcome.poison
            delivered_pairs.append((src_gpu, dst_gpu))
        machine.compute_round(work, atomics, barrier=False)
        states.activate(deferred_activations)
        for key in delivered_pairs:
            states.activate(pair_activations.get(key, []))

        stats.rounds += 1
        round_records.append(
            RoundRecord(
                round_index=round_index,
                partitions_processed=len(active_by_partition),
                partitions_convergent=(
                    len(partitions) - len(active_by_partition)
                ),
                active_fraction_nonconvergent=(
                    active_snapshot_total / touched_vertex_total
                    if touched_vertex_total
                    else 0.0
                ),
                vertex_updates=updates_this_round,
            )
        )
