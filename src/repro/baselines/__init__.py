"""Comparator engines.

- :class:`~repro.baselines.bulk_sync.BulkSyncEngine` — Gunrock-like
  bulk-synchronous vertex-centric engine (frontier per round, global
  barrier);
- :class:`~repro.baselines.async_engine.AsyncEngine` — Groute-like
  asynchronous engine (per-partition worklists, no inter-round barrier,
  no dependency ordering);
- :func:`~repro.baselines.sequential.sequential_topological_run` — the
  single-thread topological-order reference of Fig. 2(d).

All run the same :class:`~repro.model.gas.VertexProgram` on the same
simulated machine as DiGraph, so every comparison in the evaluation is
semantics- and cost-model-matched.
"""

from repro.baselines.async_engine import AsyncEngine
from repro.baselines.bulk_sync import BulkSyncEngine
from repro.baselines.sequential import sequential_topological_run

__all__ = ["BulkSyncEngine", "AsyncEngine", "sequential_topological_run"]
