"""Shared pieces of the vertex-centric baseline engines.

Both baselines shard vertices into contiguous ranges balanced by edge
count (the standard 1-D partitioning Gunrock and Groute use), assign them
round-robin to GPUs, and load whole partitions when any of their vertices
is active — the low loaded-data utilization the paper measures in Fig. 13.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.graph.digraph import DiGraphCSR
from repro.core.partitioning import CPU_SECONDS_PER_EDGE
from repro.core.storage import (
    BYTES_PER_EDGE_VALUE,
    BYTES_PER_INDEX,
    BYTES_PER_STATE,
)


#: Default partition count when sizing adaptively: enough partitions for
#: dependency structure (DiGraph) and per-GPU parallelism (baselines) to be
#: visible on scaled-down graphs, matching the paper's many-partitions-per-
#: GPU regime.
DEFAULT_PARTITION_COUNT = 64


def resolve_partition_target(
    graph: DiGraphCSR, target_edges_per_partition: Optional[int]
) -> int:
    """Resolve an adaptive partition size: ``None`` means aim for
    :data:`DEFAULT_PARTITION_COUNT` partitions (minimum 32 edges each)."""
    if target_edges_per_partition is not None:
        if target_edges_per_partition < 1:
            raise ConfigurationError(
                "target_edges_per_partition must be >= 1"
            )
        return target_edges_per_partition
    return max(32, graph.num_edges // DEFAULT_PARTITION_COUNT)


@dataclass(frozen=True)
class VertexRangePartition:
    """A contiguous vertex range [lo, hi) owned by one GPU."""

    partition_id: int
    lo: int
    hi: int
    gpu: int
    num_edges: int

    @property
    def num_vertices(self) -> int:
        return self.hi - self.lo

    @property
    def nbytes(self) -> int:
        """CSR slice size: offsets + destinations + weights + states."""
        return (
            self.num_vertices * (BYTES_PER_INDEX + BYTES_PER_STATE)
            + self.num_edges * (BYTES_PER_INDEX + BYTES_PER_EDGE_VALUE)
        )

    def __contains__(self, v: int) -> bool:
        return self.lo <= v < self.hi


def vertex_range_partitions(
    graph: DiGraphCSR,
    num_gpus: int,
    target_edges_per_partition: int = 2048,
) -> List[VertexRangePartition]:
    """Cut the vertex range into edge-balanced partitions, round-robin
    assigned to GPUs."""
    if num_gpus < 1:
        raise ConfigurationError("num_gpus must be >= 1")
    if target_edges_per_partition < 1:
        raise ConfigurationError("target_edges_per_partition must be >= 1")
    partitions: List[VertexRangePartition] = []
    n = graph.num_vertices
    lo = 0
    edges = 0
    degrees = graph.out_degree()
    for v in range(n):
        edges += int(degrees[v])
        last = v == n - 1
        if edges >= target_edges_per_partition or last:
            pid = len(partitions)
            partitions.append(
                VertexRangePartition(
                    partition_id=pid,
                    lo=lo,
                    hi=v + 1,
                    gpu=pid % num_gpus,
                    num_edges=edges,
                )
            )
            lo = v + 1
            edges = 0
    if not partitions:
        partitions.append(
            VertexRangePartition(
                partition_id=0, lo=0, hi=n, gpu=0, num_edges=graph.num_edges
            )
        )
    return partitions


def partition_of_vertex(
    partitions: List[VertexRangePartition], v: int
) -> VertexRangePartition:
    """Binary-search the partition owning vertex ``v``."""
    los = [p.lo for p in partitions]
    idx = int(np.searchsorted(los, v, side="right") - 1)
    return partitions[idx]


class BaselineFaultHarness:
    """Checkpoint client + GPU-loss recovery shared by the baselines.

    The range-partitioned baselines have far simpler state than the
    DiGraph engine — two vertex arrays plus the partition->GPU placement
    — so one harness covers both. It doubles as the duck-typed client of
    :class:`~repro.faults.checkpoint.CheckpointManager` (built through
    ``recovery.make_checkpoint_manager`` so this layer never imports
    ``repro.faults``) and owns the rollback + redistribution path a GPU
    death takes. Dead GPUs' partitions are re-placed on the least-loaded
    survivors by edge count (there is no dependency structure to keep
    local in a 1-D vertex-range sharding).
    """

    def __init__(
        self,
        machine,
        recovery,
        partitions: List[VertexRangePartition],
        states,
        round_records: List,
    ) -> None:
        self.machine = machine
        self.recovery = recovery
        self.partitions = partitions
        self.states = states
        self.round_records = round_records
        self.rollbacks = 0
        self.manager = None
        if (
            recovery is not None
            and getattr(recovery, "checkpoint_rounds", False)
            and hasattr(recovery, "make_checkpoint_manager")
        ):
            self.manager = recovery.make_checkpoint_manager(machine, self)

    # ------------------------------------------------------------------
    # CheckpointManager client protocol
    # ------------------------------------------------------------------
    def vertex_arrays(self) -> Dict[str, np.ndarray]:
        return {
            "values": self.states.values,
            "active": self.states.active,
        }

    def vertex_gpu(self) -> np.ndarray:
        out = np.full(self.states.values.shape[0], -1, dtype=np.int64)
        for partition in self.partitions:
            out[partition.lo : partition.hi] = partition.gpu
        return out

    def capture_scalars(self) -> Dict:
        return {
            "partition_gpu": [p.gpu for p in self.partitions],
            "num_round_records": len(self.round_records),
        }

    def restore_scalars(self, scalars: Dict) -> None:
        for i, gpu in enumerate(scalars["partition_gpu"]):
            if self.partitions[i].gpu != gpu:
                self.partitions[i] = replace(self.partitions[i], gpu=gpu)
        del self.round_records[scalars["num_round_records"] :]

    # ------------------------------------------------------------------
    # round-loop hooks
    # ------------------------------------------------------------------
    def maybe_checkpoint(self, round_index: int) -> None:
        if self.manager is not None and self.manager.due(round_index):
            self.manager.checkpoint(round_index)

    def finish(self) -> None:
        """Settle any in-flight double-buffered checkpoint spill."""
        if self.manager is not None:
            self.manager.finish()

    def resume_from_store(self) -> int:
        """Whole-job restart: reload the last durable checkpoint.

        Returns the round index the engine loop should resume from.
        Requires a recovery policy with ``durability != "none"`` (the
        manager then owns a :class:`~repro.faults.store.CheckpointStore`
        under ``run_dir``); the placement restored by the scalar state
        may reference GPUs that were already dead at the crash — those
        deaths are replayed by the manager, and the normal ``recover``
        path's redistribution logic never runs because the checkpointed
        placement already post-dates it.
        """
        if self.manager is None or self.manager.store is None:
            from repro.errors import ConfigurationError

            raise ConfigurationError(
                "resume requires a recovery policy with "
                "durability != 'none' and a run_dir"
            )
        loaded = self.manager.resume_from_store()
        return int(loaded.round_index)

    def recover(self, exc: Exception, round_index: int) -> int:
        """Roll back after a GPU loss; returns the round to resume from.

        Re-raises ``exc`` when recovery is off, no checkpoint exists,
        the loss budget is exhausted, no GPU survives, or the failure
        names no GPU. A permanently failed link is pinned on the GPU at
        its device endpoint, mirroring the DiGraph engine.
        """
        gpu_id = getattr(exc, "gpu_id", None)
        if gpu_id is None:
            dst = getattr(exc, "dst", None)
            gpu_id = dst if isinstance(dst, int) else getattr(exc, "src", None)
        if (
            self.manager is None
            or not self.manager.has_checkpoint
            or not isinstance(gpu_id, int)
        ):
            raise exc
        self.rollbacks += 1
        if self.rollbacks > self.recovery.max_gpu_loss_recoveries:
            raise exc
        self.machine.kill_gpu(gpu_id)
        resume = self.manager.rollback(round_index)
        live = self.machine.live_gpu_ids()
        if not live:
            raise exc
        # The restored placement predates any death since the checkpoint
        # — sweep every dead GPU, not just today's casualty.
        load = {g: 0 for g in live}
        for partition in self.partitions:
            if partition.gpu in load:
                load[partition.gpu] += partition.num_edges
        moved = 0
        for i, partition in enumerate(self.partitions):
            if partition.gpu not in self.machine.dead_gpus:
                continue
            target = min(live, key=lambda g: (load[g], g))
            self.partitions[i] = replace(partition, gpu=target)
            load[target] += partition.num_edges
            moved += 1
            # The dead GPU's memory is gone: the survivor re-loads the
            # partition from the host copy.
            self.machine.batched_transfer_to_gpu(target, partition.nbytes)
            self.machine.stats.retransferred_bytes += partition.nbytes
        injector = self.machine._structured_injector
        if injector is not None:
            injector.note_recovery(
                "gpu_loss", gpu=gpu_id, moved=moved, round=round_index
            )
        return resume


def modeled_baseline_preprocess_seconds(
    graph: DiGraphCSR, overhead_factor: float, n_workers: int = 1
) -> float:
    """Preprocessing-time model for the baselines (Fig. 8's denominator).

    One pass over the edges times an engine-specific constant:
    ``1.0`` for the bulk-synchronous engine (plain CSR sharding), ``1.04``
    for the async engine (worklist setup and ring registration) — the
    paper measures Groute slightly above Gunrock and DiGraph above both.
    """
    return (
        CPU_SECONDS_PER_EDGE
        * overhead_factor
        * graph.num_edges
        / max(n_workers, 1)
    )
