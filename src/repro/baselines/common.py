"""Shared pieces of the vertex-centric baseline engines.

Both baselines shard vertices into contiguous ranges balanced by edge
count (the standard 1-D partitioning Gunrock and Groute use), assign them
round-robin to GPUs, and load whole partitions when any of their vertices
is active — the low loaded-data utilization the paper measures in Fig. 13.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.graph.digraph import DiGraphCSR
from repro.core.partitioning import CPU_SECONDS_PER_EDGE
from repro.core.storage import (
    BYTES_PER_EDGE_VALUE,
    BYTES_PER_INDEX,
    BYTES_PER_STATE,
)


#: Default partition count when sizing adaptively: enough partitions for
#: dependency structure (DiGraph) and per-GPU parallelism (baselines) to be
#: visible on scaled-down graphs, matching the paper's many-partitions-per-
#: GPU regime.
DEFAULT_PARTITION_COUNT = 64


def resolve_partition_target(
    graph: DiGraphCSR, target_edges_per_partition: Optional[int]
) -> int:
    """Resolve an adaptive partition size: ``None`` means aim for
    :data:`DEFAULT_PARTITION_COUNT` partitions (minimum 32 edges each)."""
    if target_edges_per_partition is not None:
        if target_edges_per_partition < 1:
            raise ConfigurationError(
                "target_edges_per_partition must be >= 1"
            )
        return target_edges_per_partition
    return max(32, graph.num_edges // DEFAULT_PARTITION_COUNT)


@dataclass(frozen=True)
class VertexRangePartition:
    """A contiguous vertex range [lo, hi) owned by one GPU."""

    partition_id: int
    lo: int
    hi: int
    gpu: int
    num_edges: int

    @property
    def num_vertices(self) -> int:
        return self.hi - self.lo

    @property
    def nbytes(self) -> int:
        """CSR slice size: offsets + destinations + weights + states."""
        return (
            self.num_vertices * (BYTES_PER_INDEX + BYTES_PER_STATE)
            + self.num_edges * (BYTES_PER_INDEX + BYTES_PER_EDGE_VALUE)
        )

    def __contains__(self, v: int) -> bool:
        return self.lo <= v < self.hi


def vertex_range_partitions(
    graph: DiGraphCSR,
    num_gpus: int,
    target_edges_per_partition: int = 2048,
) -> List[VertexRangePartition]:
    """Cut the vertex range into edge-balanced partitions, round-robin
    assigned to GPUs."""
    if num_gpus < 1:
        raise ConfigurationError("num_gpus must be >= 1")
    if target_edges_per_partition < 1:
        raise ConfigurationError("target_edges_per_partition must be >= 1")
    partitions: List[VertexRangePartition] = []
    n = graph.num_vertices
    lo = 0
    edges = 0
    degrees = graph.out_degree()
    for v in range(n):
        edges += int(degrees[v])
        last = v == n - 1
        if edges >= target_edges_per_partition or last:
            pid = len(partitions)
            partitions.append(
                VertexRangePartition(
                    partition_id=pid,
                    lo=lo,
                    hi=v + 1,
                    gpu=pid % num_gpus,
                    num_edges=edges,
                )
            )
            lo = v + 1
            edges = 0
    if not partitions:
        partitions.append(
            VertexRangePartition(
                partition_id=0, lo=0, hi=n, gpu=0, num_edges=graph.num_edges
            )
        )
    return partitions


def partition_of_vertex(
    partitions: List[VertexRangePartition], v: int
) -> VertexRangePartition:
    """Binary-search the partition owning vertex ``v``."""
    los = [p.lo for p in partitions]
    idx = int(np.searchsorted(los, v, side="right") - 1)
    return partitions[idx]


def modeled_baseline_preprocess_seconds(
    graph: DiGraphCSR, overhead_factor: float, n_workers: int = 1
) -> float:
    """Preprocessing-time model for the baselines (Fig. 8's denominator).

    One pass over the edges times an engine-specific constant:
    ``1.0`` for the bulk-synchronous engine (plain CSR sharding), ``1.04``
    for the async engine (worklist setup and ring registration) — the
    paper measures Groute slightly above Gunrock and DiGraph above both.
    """
    return (
        CPU_SECONDS_PER_EDGE
        * overhead_factor
        * graph.num_edges
        / max(n_workers, 1)
    )
