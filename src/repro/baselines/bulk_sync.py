"""Gunrock-like bulk-synchronous baseline engine.

Frontier-centric BSP: each round consumes the active-vertex frontier,
computes every update against a **snapshot of round-start states**
(Jacobi), commits behind a global barrier, and builds the next frontier
from the changed vertices' dependents. This is the execution-model class
the paper compares against: one hop of state propagation per round, a
barrier every round (idle waiting on the slowest GPU), and whole-partition
loads regardless of how few vertices are active.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Set

import numpy as np

from repro.errors import (
    ConfigurationError,
    ConvergenceError,
    GPULostError,
    PermanentInterconnectFault,
)
from repro.graph.digraph import DiGraphCSR
from repro.gpu.config import MachineSpec
from repro.gpu.machine import Machine
from repro.kernels.registry import resolve_kernel
from repro.model.frontier import Frontier
from repro.model.gas import VertexProgram
from repro.model.state import VertexStates
from repro.bench.results import ExecutionResult, RoundRecord
from repro.core.storage import BYTES_PER_MESSAGE
from repro.baselines.common import (
    BaselineFaultHarness,
    resolve_partition_target,
    VertexRangePartition,
    modeled_baseline_preprocess_seconds,
    partition_of_vertex,
    vertex_range_partitions,
)

#: Per-round barrier/allreduce payload per GPU pair (frontier sizes etc.).
BARRIER_SYNC_BYTES = 64


@dataclass(frozen=True)
class BulkSyncConfig:
    """Tunables of the bulk-synchronous baseline."""

    #: ``None`` sizes partitions adaptively (~64 per graph).
    target_edges_per_partition: Optional[int] = None
    max_rounds: int = 100000
    n_workers: int = 1
    #: Batch each round's gather-apply through the vectorized kernels
    #: (:mod:`repro.kernels`). Bit-identical rounds and identical
    #: modeled accounting — BSP already computes against the round-start
    #: snapshot, which is exactly the batched formulation. Programs
    #: without a registered kernel run the scalar fallback.
    use_vectorized_kernels: bool = False
    #: Check the converged states against the program's own update
    #: equations (:mod:`repro.verify`), raising
    #: :class:`~repro.errors.VerificationError` on a violation.
    verify_invariants: bool = False

    def __post_init__(self) -> None:
        if self.max_rounds < 1:
            raise ConfigurationError("max_rounds must be >= 1")


class BulkSyncEngine:
    """Vertex-centric BSP engine (the Gunrock-like comparator)."""

    name = "bulk-sync"

    def __init__(
        self,
        machine_spec: Optional[MachineSpec] = None,
        config: Optional[BulkSyncConfig] = None,
    ) -> None:
        self.spec = machine_spec or MachineSpec()
        self.config = config or BulkSyncConfig()

    def run(
        self,
        graph: DiGraphCSR,
        program: VertexProgram,
        graph_name: str = "graph",
        strict_convergence: bool = True,
        fault_injector=None,
        recovery=None,
        resume: bool = False,
    ) -> ExecutionResult:
        started = time.perf_counter()
        machine = Machine(
            self.spec, fault_injector=fault_injector, recovery=recovery
        )
        stats = machine.stats
        stats.preprocess_time_s = modeled_baseline_preprocess_seconds(
            graph, overhead_factor=1.0, n_workers=self.config.n_workers
        )
        partitions = vertex_range_partitions(
            graph,
            machine.num_gpus,
            resolve_partition_target(
                graph, self.config.target_edges_per_partition
            ),
        )
        # Initial distribution of the graph to the GPUs.
        for partition in partitions:
            machine.batched_transfer_to_gpu(partition.gpu, partition.nbytes)

        states = VertexStates(graph, program)
        round_records: List[RoundRecord] = []
        converged = False
        # With the fault machinery engaged, cross-GPU state broadcasts go
        # through the modeled ack/checksum protocol
        # (``deliver_replica_batch``) so they can be dropped, corrupted,
        # retried, and escalated; the legacy path stays bit-identical for
        # fault-free runs.
        faulted = fault_injector is not None or recovery is not None
        harness = BaselineFaultHarness(
            machine, recovery, partitions, states, round_records
        )
        # Whole-job restart: reload the newest durable checkpoint and
        # replay from its round (see docs/robustness.md).
        start_round = harness.resume_from_store() if resume else 0

        if self.config.use_vectorized_kernels:
            converged = self._run_vectorized(
                graph, program, machine, partitions, states, round_records,
                harness, faulted, start_round,
            )
        else:
            converged = self._run_scalar(
                graph, program, machine, partitions, states, round_records,
                harness, faulted, start_round,
            )

        if not converged and strict_convergence:
            raise ConvergenceError(
                f"{program.name} did not converge within "
                f"{self.config.max_rounds} rounds"
            )
        if self.config.verify_invariants and converged:
            from repro.verify.report import VerificationReport
            from repro.verify.structural import check_fixed_point_reached

            VerificationReport(
                [check_fixed_point_reached(program, graph, states.values)]
            ).raise_if_failed()
        extras = {"num_partitions": float(len(partitions))}
        if faulted:
            extras.update(
                {
                    "rollback_replay_rounds": float(
                        stats.rollback_replay_rounds
                    ),
                    "checkpoints_taken": float(stats.checkpoints_taken),
                    "checkpoint_bytes_spilled": float(
                        stats.checkpoint_bytes_spilled
                    ),
                    "checkpoint_time_s": stats.checkpoint_time_s,
                    "checkpoint_hidden_time_s": (
                        stats.checkpoint_hidden_time_s
                    ),
                }
            )
        return ExecutionResult(
            engine=self.name,
            algorithm=program.name,
            graph_name=graph_name,
            converged=converged,
            rounds=stats.rounds,
            states=states.values.copy(),
            stats=stats,
            round_records=round_records,
            wall_seconds=time.perf_counter() - started,
            extras=extras,
        )

    def _run_scalar(
        self,
        graph: DiGraphCSR,
        program: VertexProgram,
        machine: Machine,
        partitions: List[VertexRangePartition],
        states: VertexStates,
        round_records: List[RoundRecord],
        harness: BaselineFaultHarness,
        faulted: bool,
        start_round: int = 0,
    ) -> bool:
        """The per-vertex round loop (the original code path)."""
        stats = machine.stats
        converged = False
        round_index = start_round
        while round_index < self.config.max_rounds:
            frontier = Frontier.from_mask(states.active)
            if not frontier:
                converged = True
                break
            harness.maybe_checkpoint(round_index)
            try:
                self._scalar_round(
                    graph, program, machine, partitions, states,
                    round_records, round_index, frontier, faulted,
                )
            except (GPULostError, PermanentInterconnectFault) as exc:
                round_index = harness.recover(exc, round_index)
                continue
            round_index += 1
        harness.finish()
        return converged

    def _scalar_round(
        self,
        graph: DiGraphCSR,
        program: VertexProgram,
        machine: Machine,
        partitions: List[VertexRangePartition],
        states: VertexStates,
        round_records: List[RoundRecord],
        round_index: int,
        frontier: Frontier,
        faulted: bool,
    ) -> None:
        stats = machine.stats
        snapshot = states.copy_values()
        work: Dict[int, List[int]] = {g: [] for g in range(machine.num_gpus)}
        atomics: Dict[int, List[int]] = {
            g: [] for g in range(machine.num_gpus)
        }
        pending: List = []  # (v, new_state, changed)
        touched_partitions: Set[int] = set()

        for v in frontier:
            partition = partition_of_vertex(partitions, v)
            touched_partitions.add(partition.partition_id)
            acc = program.identity
            degree = 0
            for src, weight in program.gather_edges(graph, v):
                acc = program.accumulate(
                    acc, program.gather(float(snapshot[src]), weight, src, v)
                )
                degree += 1
            old = float(snapshot[v])
            new = program.apply(v, old, acc)
            changed = not program.has_converged(old, new)
            pending.append((v, new, changed))
            stats.apply_calls += 1
            stats.edge_traversals += degree
            # Demand fetches for gather reads (random access).
            machine.load_global(
                partition.gpu, nbytes=8 * degree, vertices=degree
            )
            machine.note_vertex_uses(1 + degree)
            work[partition.gpu].append(degree)
            atomics[partition.gpu].append(1 if changed else 0)

        # Whole-partition loads for every touched partition (Fig. 13's
        # denominator: many loaded vertices, few used).
        convergent = 0
        for partition in partitions:
            if partition.partition_id in touched_partitions:
                machine.load_global(
                    partition.gpu,
                    nbytes=partition.nbytes,
                    vertices=partition.num_vertices,
                )
                stats.note_partition_processed(partition.partition_id)
            else:
                convergent += 1

        machine.compute_round(work, atomics, barrier=True)

        # Barrier + state synchronization: changed vertices whose
        # dependents live on another GPU are broadcast there. On the
        # fault path a remote dependent activates only when its pair's
        # batch actually lands.
        updates_this_round = 0
        messages_between: Dict[tuple, int] = {}
        pair_activations: Dict[tuple, List[int]] = {}
        pair_sources: Dict[tuple, List[int]] = {}
        for v, new, changed in pending:
            states.deactivate(v)
        for v, new, changed in pending:
            states.values[v] = new
            if not changed:
                continue
            updates_this_round += 1
            stats.vertex_updates += 1
            src_gpu = partition_of_vertex(partitions, v).gpu
            remote_gpus: Set[int] = set()
            for u in program.dependents(graph, v):
                dst_gpu = partition_of_vertex(partitions, int(u)).gpu
                if faulted and dst_gpu != src_gpu:
                    pair_activations.setdefault(
                        (src_gpu, dst_gpu), []
                    ).append(int(u))
                else:
                    states.activate([u])
                if dst_gpu != src_gpu:
                    remote_gpus.add(dst_gpu)
            for dst_gpu in remote_gpus:
                key = (src_gpu, dst_gpu)
                messages_between[key] = messages_between.get(key, 0) + 1
                pair_sources.setdefault(key, []).append(v)
        for (src_gpu, dst_gpu), count in messages_between.items():
            if not faulted:
                machine.transfer(
                    src_gpu, dst_gpu, count * BYTES_PER_MESSAGE
                )
                continue
            outcome = machine.deliver_replica_batch(
                src_gpu, dst_gpu, count * BYTES_PER_MESSAGE
            )
            if outcome.status == "dropped":
                # The batch never arrived: its activations are lost.
                continue
            if outcome.status == "corrupted" and outcome.poison is not None:
                # The garbled payload overwrites the states it carried.
                for v in pair_sources[(src_gpu, dst_gpu)]:
                    states.values[v] = outcome.poison
            states.activate(pair_activations.get((src_gpu, dst_gpu), []))
        # The barrier itself: an all-to-all control exchange.
        for gpu in machine.live_gpu_ids():
            machine.transfer(gpu, "host", BARRIER_SYNC_BYTES)

        stats.rounds += 1
        active_vertices = len(frontier)
        touched_vertex_total = sum(
            partitions[pid].num_vertices for pid in touched_partitions
        )
        round_records.append(
            RoundRecord(
                round_index=round_index,
                partitions_processed=len(touched_partitions),
                partitions_convergent=convergent,
                active_fraction_nonconvergent=(
                    active_vertices / touched_vertex_total
                    if touched_vertex_total
                    else 0.0
                ),
                vertex_updates=updates_this_round,
            )
        )

    def _run_vectorized(
        self,
        graph: DiGraphCSR,
        program: VertexProgram,
        machine: Machine,
        partitions: List[VertexRangePartition],
        states: VertexStates,
        round_records: List[RoundRecord],
        harness: BaselineFaultHarness,
        faulted: bool,
        start_round: int = 0,
    ) -> bool:
        """Batched round loop: one kernel call per round.

        Equivalent to :meth:`_run_scalar` update for update: BSP gathers
        against the round-start snapshot, which is exactly the batched
        formulation, so states, round records, and every modeled counter
        (``apply_calls``, ``edge_traversals``, ``load_global`` bytes,
        messages) match the scalar path — the loops just run as NumPy
        array operations instead of per-vertex Python.
        """
        kernel = resolve_kernel(program, graph)
        # Vertex -> partition lookup array (the scalar path binary-
        # searches per vertex). The gpu half is recomputed per round —
        # recovery may re-place partitions mid-run.
        part_lo = np.array([p.lo for p in partitions], dtype=np.int64)
        converged = False
        round_index = start_round
        while round_index < self.config.max_rounds:
            frontier = np.flatnonzero(states.active)
            if frontier.size == 0:
                converged = True
                break
            harness.maybe_checkpoint(round_index)
            try:
                self._vectorized_round(
                    machine, partitions, states, round_records,
                    round_index, frontier, kernel, part_lo, faulted,
                )
            except (GPULostError, PermanentInterconnectFault) as exc:
                round_index = harness.recover(exc, round_index)
                continue
            round_index += 1
        harness.finish()
        return converged

    def _vectorized_round(
        self,
        machine: Machine,
        partitions: List[VertexRangePartition],
        states: VertexStates,
        round_records: List[RoundRecord],
        round_index: int,
        frontier: np.ndarray,
        kernel,
        part_lo: np.ndarray,
        faulted: bool,
    ) -> None:
        stats = machine.stats
        num_gpus = machine.num_gpus
        part_gpu = np.array([p.gpu for p in partitions], dtype=np.int64)
        snapshot = states.copy_values()
        old = snapshot[frontier]
        new, changed = kernel.batch_update(frontier, snapshot, old)
        degrees = kernel.gather_degrees(frontier)
        pidx = np.searchsorted(part_lo, frontier, side="right") - 1
        gpus = part_gpu[pidx]
        touched_partitions = set(int(p) for p in np.unique(pidx))

        stats.apply_calls += int(frontier.size)
        stats.edge_traversals += int(degrees.sum())
        machine.note_vertex_uses(int(frontier.size + degrees.sum()))
        work: Dict[int, List[int]] = {}
        atomics: Dict[int, List[int]] = {}
        for gpu in range(num_gpus):
            on_gpu = gpus == gpu
            gpu_degrees = degrees[on_gpu]
            degree_sum = int(gpu_degrees.sum())
            if degree_sum:
                # Demand fetches for gather reads (random access).
                machine.load_global(
                    gpu, nbytes=8 * degree_sum, vertices=degree_sum
                )
            work[gpu] = gpu_degrees.tolist()
            atomics[gpu] = changed[on_gpu].astype(np.int64).tolist()

        # Whole-partition loads for every touched partition (Fig. 13's
        # denominator: many loaded vertices, few used).
        convergent = 0
        for partition in partitions:
            if partition.partition_id in touched_partitions:
                machine.load_global(
                    partition.gpu,
                    nbytes=partition.nbytes,
                    vertices=partition.num_vertices,
                )
                stats.note_partition_processed(partition.partition_id)
            else:
                convergent += 1

        machine.compute_round(work, atomics, barrier=True)

        # Barrier + state synchronization.
        states.active[frontier] = False
        states.values[frontier] = new
        changed_frontier = frontier[changed]
        updates_this_round = int(changed_frontier.size)
        stats.vertex_updates += updates_this_round
        if updates_this_round:
            targets, seg_offsets = kernel.batch_dependents(
                changed_frontier
            )
            # Replica messages: one per (changed vertex, remote GPU
            # holding a dependent) pair, accumulated per GPU pair.
            src_gpus = gpus[changed]
            target_gpus = part_gpu[
                np.searchsorted(part_lo, targets, side="right") - 1
            ]
            seg_ids = np.repeat(
                np.arange(changed_frontier.size, dtype=np.int64),
                np.diff(seg_offsets),
            )
            remote = target_gpus != src_gpus[seg_ids]
            if faulted:
                # Remote dependents activate only when their pair's
                # batch lands (mirrors the scalar fault path).
                states.active[targets[~remote]] = True
            else:
                states.active[targets] = True
            if remote.any():
                per_vertex_remote = np.unique(
                    seg_ids[remote] * num_gpus + target_gpus[remote]
                )
                pair_keys, pair_first, pair_counts = np.unique(
                    src_gpus[per_vertex_remote // num_gpus] * num_gpus
                    + per_vertex_remote % num_gpus,
                    return_index=True,
                    return_counts=True,
                )
                pair_of_msg = src_gpus[seg_ids] * num_gpus + target_gpus
                # Emit transfers in first-occurrence order — the order
                # the scalar path inserts pairs into its dict while
                # sweeping vertices ascending — so the float
                # accumulation of transfer_time_s and the fault plan's
                # consumption order are bit-identical to the scalar path.
                for i in np.argsort(pair_first, kind="stable"):
                    key = int(pair_keys[i])
                    nbytes = int(pair_counts[i]) * BYTES_PER_MESSAGE
                    if not faulted:
                        machine.transfer(
                            key // num_gpus, key % num_gpus, nbytes
                        )
                        continue
                    outcome = machine.deliver_replica_batch(
                        key // num_gpus, key % num_gpus, nbytes
                    )
                    if outcome.status == "dropped":
                        continue
                    msg_mask = remote & (pair_of_msg == key)
                    if (
                        outcome.status == "corrupted"
                        and outcome.poison is not None
                    ):
                        states.values[
                            np.unique(
                                changed_frontier[seg_ids[msg_mask]]
                            )
                        ] = outcome.poison
                    states.active[targets[msg_mask]] = True
        # The barrier itself: an all-to-all control exchange.
        for gpu in machine.live_gpu_ids():
            machine.transfer(gpu, "host", BARRIER_SYNC_BYTES)

        stats.rounds += 1
        active_vertices = int(frontier.size)
        touched_vertex_total = sum(
            partitions[pid].num_vertices for pid in touched_partitions
        )
        round_records.append(
            RoundRecord(
                round_index=round_index,
                partitions_processed=len(touched_partitions),
                partitions_convergent=convergent,
                active_fraction_nonconvergent=(
                    active_vertices / touched_vertex_total
                    if touched_vertex_total
                    else 0.0
                ),
                vertex_updates=updates_this_round,
            )
        )
