"""Sequential topological-order reference execution (Fig. 2d).

"The number of vertex updates required by the sequential execution of
iterative directed graph algorithm, where all vertices are tried to be
sequentially and asynchronously handled by a thread according to the
topological order of the directed graph."

The vertex graph's SCCs are contracted; SCC-vertices are processed in
topological order. A singleton SCC (no self-loop) converges after exactly
one update — Observation 2's one-update vertices. Inside a multi-vertex
SCC, a worklist iterates until the component stabilizes. The function
reports the update count this oracle needs, the floor every parallel
engine is compared against.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.bench.results import ExecutionResult
from repro.gpu.stats import MachineStats
from repro.graph.digraph import DiGraphCSR
from repro.graph.scc import condensation
from repro.graph.traversal import topological_order
from repro.model.gas import VertexProgram
from repro.model.state import VertexStates


@dataclass(frozen=True)
class SequentialResult:
    """Outcome of the sequential topological oracle."""

    algorithm: str
    graph_name: str
    vertex_updates: int        #: apply calls that changed a state
    apply_calls: int           #: all apply calls
    one_update_vertices: int   #: vertices updated exactly once
    states: np.ndarray
    wall_seconds: float

    @property
    def one_update_fraction(self) -> float:
        if self.states.size == 0:
            return 0.0
        return self.one_update_vertices / self.states.size


def sequential_topological_run(
    graph: DiGraphCSR,
    program: VertexProgram,
    graph_name: str = "graph",
    max_iterations_per_scc: int = 100000,
) -> SequentialResult:
    """Run ``program`` sequentially along the condensation's topological
    order and count the updates needed."""
    started = time.perf_counter()
    states = VertexStates(graph, program)
    cond = condensation(graph)
    order = topological_order(cond.dag)

    apply_calls = 0
    updates = 0
    update_count_per_vertex: Dict[int, int] = {}

    for scc in order:
        members = list(cond.members[int(scc)])
        # Worklist restricted to this SCC; initially its active members.
        worklist = [v for v in members if states.active[v]]
        member_set = set(members)
        iterations = 0
        while worklist and iterations < max_iterations_per_scc:
            iterations += 1
            next_worklist = []
            for v in worklist:
                if not states.active[v]:
                    continue
                states.active[v] = False
                new, changed = program.update_vertex(
                    graph, v, states.values
                )
                apply_calls += 1
                states.values[v] = new
                if changed:
                    updates += 1
                    update_count_per_vertex[v] = (
                        update_count_per_vertex.get(v, 0) + 1
                    )
                    for u in program.dependents(graph, v):
                        if not states.active[u]:
                            states.active[u] = True
                            if u in member_set:
                                next_worklist.append(u)
                            # Vertices outside this SCC are downstream in
                            # topological order and stay active for their
                            # own SCC's turn (or upstream for symmetric
                            # programs — they re-enter via their SCC too).
            worklist = next_worklist

    # Programs with symmetric dependents (k-core, wcc) may re-activate
    # upstream SCCs; sweep until globally stable.
    safety = 0
    while states.any_active() and safety < max_iterations_per_scc:
        safety += 1
        for v in states.active_vertices():
            v = int(v)
            states.active[v] = False
            new, changed = program.update_vertex(graph, v, states.values)
            apply_calls += 1
            states.values[v] = new
            if changed:
                updates += 1
                update_count_per_vertex[v] = (
                    update_count_per_vertex.get(v, 0) + 1
                )
                for u in program.dependents(graph, v):
                    states.active[u] = True

    one_update = sum(
        1 for count in update_count_per_vertex.values() if count == 1
    )
    return SequentialResult(
        algorithm=program.name,
        graph_name=graph_name,
        vertex_updates=updates,
        apply_calls=apply_calls,
        one_update_vertices=one_update,
        states=states.values.copy(),
        wall_seconds=time.perf_counter() - started,
    )


class SequentialEngine:
    """Engine-shaped adapter around the sequential topological oracle.

    Lets the cross-engine conformance harness treat the single-thread
    reference as just another engine: same ``run`` signature, same
    :class:`ExecutionResult`. It models no machine (one CPU thread), so
    all time/traffic counters stay zero; only the update counters carry
    information.
    """

    name = "sequential"

    def __init__(self, machine_spec=None, config=None) -> None:
        # Accepted and ignored: the oracle runs on one host thread.
        self.spec = machine_spec
        self.config = config

    def run(
        self,
        graph: DiGraphCSR,
        program: VertexProgram,
        preprocessed=None,
        graph_name: str = "graph",
        strict_convergence: bool = True,
    ) -> ExecutionResult:
        result = sequential_topological_run(
            graph, program, graph_name=graph_name
        )
        stats = MachineStats()
        stats.vertex_updates = result.vertex_updates
        stats.apply_calls = result.apply_calls
        return ExecutionResult(
            engine=self.name,
            algorithm=result.algorithm,
            graph_name=graph_name,
            converged=True,
            rounds=0,
            states=result.states,
            stats=stats,
            wall_seconds=result.wall_seconds,
            extras={
                "one_update_fraction": result.one_update_fraction,
            },
        )

    def engine_label(self) -> str:
        return self.name
