"""Execution adapters over the sharded store: lazy shards, full rebuild.

:class:`ShardedGraph` is what the rest of the system touches when a
graph lives on disk:

- :meth:`~ShardedGraph.materialize` rebuilds the exact in-RAM
  :class:`~repro.graph.digraph.DiGraphCSR` the original edge stream
  would have produced — **bit-identical** arrays, any partition policy —
  by scattering each shard's rows into their original CSR positions.
  This is what ``repro run --graph-dir`` feeds the engines, and what
  the ``storage_scaling`` experiment certifies against the in-RAM path.
- :meth:`~ShardedGraph.iter_edge_chunks` streams the store's edges in
  bounded chunks (shard at a time through the cache) — the re-iterable
  source ``repro resume --gpus N`` uses to re-partition a store for a
  different machine without materializing it.
- :meth:`~ShardedGraph.decompose_paths` runs DiGraph's path
  decomposition shard at a time: each part becomes a local graph of its
  owned vertices plus a zero-out-degree halo (the cut destinations), so
  walks stop at part boundaries and only one shard's working set is
  resident at a time.

:func:`memory_bound_selftest` is the CI gate's probe: it certifies the
shard-cache bound holds under eviction — and that *disabling* the cache
(``max_resident_bytes=None``) breaks it, proving the bound is
load-bearing rather than vacuously true.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.errors import StorageError
from repro.graph.digraph import DiGraphCSR
from repro.graph.io import DEFAULT_CHUNK_EDGES, EdgeChunk
from repro.storage.memory import ResidentTracker
from repro.storage.store import Shard, ShardStore


class ShardedGraph:
    """A graph that lives in a sharded store, opened shard at a time."""

    def __init__(
        self,
        root: str,
        max_resident_bytes: Optional[int] = None,
        use_mmap: bool = True,
        tracker: Optional[ResidentTracker] = None,
    ) -> None:
        self.tracker = tracker if tracker is not None else ResidentTracker()
        self.store = ShardStore(
            root,
            max_resident_bytes=max_resident_bytes,
            use_mmap=use_mmap,
            tracker=self.tracker,
        )

    # ------------------------------------------------------------------
    # passthrough
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return self.store.num_vertices

    @property
    def num_edges(self) -> int:
        return self.store.num_edges

    @property
    def num_parts(self) -> int:
        return self.store.num_parts

    @property
    def peak_resident_bytes(self) -> int:
        """Modeled high-water resident bytes of everything this adapter
        (and its shard cache) has held so far."""
        return self.tracker.peak_bytes

    def scan(self) -> Dict[str, int]:
        """Checksum-verify every page through the bounded cache."""
        return self.store.scan()

    # ------------------------------------------------------------------
    # full reconstruction (bit-identical)
    # ------------------------------------------------------------------
    def materialize(self) -> DiGraphCSR:
        """Rebuild the original in-RAM CSR graph, bit for bit.

        Each shard holds its owned vertices' rows with global ids in the
        original within-row order, so reconstruction is a scatter: the
        global ``indptr`` comes from the per-vertex degrees, and every
        shard row lands at exactly the edge positions the in-RAM
        :class:`~repro.graph.builder.GraphBuilder` gave it. No sort, no
        policy dependence — the arrays match the in-RAM path bit for bit
        (``storage_scaling`` certifies this on overlap sizes).
        """
        n, m = self.num_vertices, self.num_edges
        degrees = np.zeros(n, dtype=np.int64)
        indptr = np.zeros(n + 1, dtype=np.int64)
        indices = np.empty(m, dtype=np.int64)
        weights = np.empty(m, dtype=np.float64)
        out_bytes = degrees.nbytes + indptr.nbytes + indices.nbytes + weights.nbytes
        self.tracker.acquire(out_bytes, "materialized-graph")

        for part in range(self.num_parts):
            shard = self.store.load_shard(part)
            degrees[shard.vertex_ids] = np.diff(shard.indptr)
        np.cumsum(degrees, out=indptr[1:])

        for part in range(self.num_parts):
            shard = self.store.load_shard(part)
            pos = self._global_positions(shard, indptr)
            indices[pos] = shard.indices
            weights[pos] = shard.weights

        self.tracker.release(out_bytes, "materialized-graph")
        return DiGraphCSR(indptr, indices, weights)

    @staticmethod
    def _global_positions(shard: Shard, indptr: np.ndarray) -> np.ndarray:
        """Global CSR edge positions of one shard's edges, in shard order."""
        row_lengths = np.diff(shard.indptr)
        local_row = np.repeat(
            np.arange(shard.num_vertices, dtype=np.int64), row_lengths
        )
        within = np.arange(shard.num_edges, dtype=np.int64) - shard.indptr[
            local_row
        ]
        return indptr[shard.vertex_ids[local_row]] + within

    # ------------------------------------------------------------------
    # streaming
    # ------------------------------------------------------------------
    def iter_edge_chunks(
        self, chunk_edges: int = DEFAULT_CHUNK_EDGES
    ) -> Iterator[EdgeChunk]:
        """Stream every edge as bounded ``(src, dst, weight)`` chunks.

        Shard at a time through the cache; within a shard, rows stream
        in owned-vertex order with the original within-row edge order —
        a stable re-sort by source reproduces the original graph, so
        this is a valid input stream for
        :func:`repro.storage.partition.partition_graph` (re-sharding a
        store for a different machine stays bit-identical).
        """
        if chunk_edges < 1:
            raise StorageError(
                f"chunk_edges must be >= 1, got {chunk_edges}"
            )
        for part in range(self.num_parts):
            shard = self.store.load_shard(part)
            row_lengths = np.diff(shard.indptr)
            sources = np.repeat(shard.vertex_ids, row_lengths)
            for lo in range(0, shard.num_edges, chunk_edges):
                hi = min(lo + chunk_edges, shard.num_edges)
                yield (
                    sources[lo:hi].astype(np.int64, copy=False),
                    np.asarray(
                        shard.indices[lo:hi], dtype=np.int64
                    ),
                    np.asarray(
                        shard.weights[lo:hi], dtype=np.float64
                    ),
                )

    def edge_chunk_source(self, chunk_edges: int = DEFAULT_CHUNK_EDGES):
        """Re-iterable chunk source over the store (for re-partitioning)."""

        def chunks() -> Iterator[EdgeChunk]:
            return self.iter_edge_chunks(chunk_edges=chunk_edges)

        return chunks

    # ------------------------------------------------------------------
    # shard-at-a-time path decomposition
    # ------------------------------------------------------------------
    def decompose_paths(self, **kwargs) -> Dict[str, object]:
        """Path-decompose the graph one shard at a time.

        Each part becomes a local graph of its owned vertices plus a
        *halo* of cut destinations with zero out-degree, so DFS walks
        end at part boundaries naturally and only one shard's local
        graph is resident at once. Local path vertices are mapped back
        to global ids before the local graph is dropped.

        Keyword arguments are forwarded to
        :func:`repro.core.partitioning.decompose_into_paths` (``d_max``,
        ``merge_short_paths``, ...).

        Returns a summary dict: ``paths`` (list of global-id vertex
        tuples), ``num_paths``, ``per_part`` path counts,
        ``average_length`` (edges per path), and ``cut_edges`` — every
        edge is covered exactly once because each edge belongs to
        exactly one source shard.
        """
        from repro.core.partitioning import decompose_into_paths

        all_paths: List[Tuple[int, ...]] = []
        per_part: List[int] = []
        total_edges = 0
        for part in range(self.num_parts):
            shard = self.store.load_shard(part)
            local_graph, local_to_global = self._local_graph(shard)
            with self.tracker.hold(
                local_graph.indptr.nbytes
                + local_graph.indices.nbytes
                + local_graph.weights.nbytes,
                "local-graph",
            ):
                if local_graph.num_edges == 0:
                    per_part.append(0)
                    continue
                path_set = decompose_into_paths(local_graph, **kwargs)
                count = 0
                for path in path_set:
                    all_paths.append(
                        tuple(
                            int(local_to_global[v]) for v in path.vertices
                        )
                    )
                    total_edges += path.num_edges
                    count += 1
                per_part.append(count)
        return {
            "paths": all_paths,
            "num_paths": len(all_paths),
            "per_part": per_part,
            "covered_edges": total_edges,
            "average_length": (
                total_edges / len(all_paths) if all_paths else 0.0
            ),
        }

    def _local_graph(
        self, shard: Shard
    ) -> Tuple[DiGraphCSR, np.ndarray]:
        """One shard as a local graph: owned rows + zero-degree halo."""
        halo = np.setdiff1d(
            np.unique(np.asarray(shard.indices)), shard.vertex_ids
        )
        local_to_global = np.concatenate([shard.vertex_ids, halo])
        order = np.argsort(local_to_global, kind="stable")
        sorted_ids = local_to_global[order]
        pos = np.searchsorted(sorted_ids, np.asarray(shard.indices))
        local_indices = order[pos] if pos.size else pos.astype(np.int64)
        local_indptr = np.concatenate(
            [
                np.asarray(shard.indptr, dtype=np.int64),
                np.full(halo.size, shard.num_edges, dtype=np.int64),
            ]
        )
        graph = DiGraphCSR(
            local_indptr,
            np.ascontiguousarray(local_indices, dtype=np.int64),
            np.asarray(shard.weights, dtype=np.float64).copy(),
        )
        return graph, local_to_global


def memory_bound_selftest(
    root: str,
    max_resident_bytes: int,
    disable_cache: bool = False,
) -> Dict[str, object]:
    """Probe whether the shard-cache bound actually bounds a full scan.

    Scans every shard of the store at ``root`` through a cache bounded
    by ``max_resident_bytes`` (or unbounded when ``disable_cache`` —
    the configuration that MUST fail for the bound to mean anything;
    CI runs both and asserts ``ok`` then ``not ok``).

    ``ok`` is true iff the peak cached-shard bytes never exceeded the
    bound plus one shard's slack (the most recently used shard is
    always kept, so a single oversized shard is tolerated by design —
    that slack is exactly ``largest_shard_bytes``).
    """
    graph = ShardedGraph(
        root,
        max_resident_bytes=None if disable_cache else max_resident_bytes,
    )
    stats = graph.scan()
    largest = 0
    for entry in graph.store.manifest["parts"]:
        shard_bytes = sum(
            int(page["raw_bytes"]) for page in entry["pages"].values()
        )
        largest = max(largest, shard_bytes)
    peak = graph.tracker.peak_bytes
    allowed = int(max_resident_bytes) + largest
    return {
        "bound_bytes": int(max_resident_bytes),
        "largest_shard_bytes": int(largest),
        "allowed_peak_bytes": allowed,
        "peak_resident_bytes": int(peak),
        "cache_disabled": bool(disable_cache),
        "shard_loads": stats["shard_loads"],
        "shard_evictions": stats["shard_evictions"],
        "ok": peak <= allowed,
    }
