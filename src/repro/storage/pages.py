"""Shared on-disk page + atomic-commit primitives.

One on-disk discipline for everything this repo persists — durable
checkpoints (:mod:`repro.faults.store`) and sharded graph stores
(:mod:`repro.storage.store`) — extracted here so both layouts stay
bit-for-bit compatible in their failure semantics:

- **Checksummed pages.** Every page file records the sha256 of its
  payload in the manifest that references it; torn writes and bit rot
  are always *detected*, never silently accepted.
- **Self-checksummed JSON.** Manifests and headers are stored as
  ``{"payload": ..., "sha256": <hex of canonical payload JSON>}``
  wrappers, so a manifest that decodes but was corrupted in place still
  fails verification.
- **Atomic commit.** JSON documents are written to ``<path>.tmp`` and
  ``os.replace``'d — the rename *is* the commit. A crash mid-write
  leaves a stale temp file, never a half-written manifest.
- **One damage model.** :func:`apply_file_fault` implements the
  torn/bitrot/lost/crash file damage the storage-fault injector
  schedules, shared by every store so the fault tests exercise the same
  failure surface everywhere.

Low-level integrity failures raise :class:`PageIntegrityError` with a
machine-readable ``reason``; callers translate it into their own
structured error type (:class:`~repro.errors.CheckpointStoreError`,
:class:`~repro.errors.StorageError`) with layout-specific context.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, Optional, Tuple

#: Stream-hash chunk size; also the default spill/stream buffer unit.
HASH_CHUNK_BYTES = 1 << 20


class PageIntegrityError(Exception):
    """A page or wrapped-JSON document failed verification.

    ``reason`` is machine-readable: ``"unreadable"`` (missing, torn, or
    undecodable), ``"checksum"`` (decoded but the recorded sha256 does
    not match), or ``"format"`` (decoded and checksummed but the wrapper
    shape is wrong).
    """

    def __init__(self, reason: str, message: str) -> None:
        super().__init__(message)
        self.reason = reason


def sha256_hex(data: bytes) -> str:
    """Hex sha256 of an in-memory payload."""
    return hashlib.sha256(data).hexdigest()


def sha256_file(path: str, chunk_bytes: int = HASH_CHUNK_BYTES) -> Tuple[str, int]:
    """Streamed ``(hex sha256, size)`` of a file — never loads it whole."""
    digest = hashlib.sha256()
    size = 0
    with open(path, "rb") as fh:
        while True:
            chunk = fh.read(chunk_bytes)
            if not chunk:
                break
            digest.update(chunk)
            size += len(chunk)
    return digest.hexdigest(), size


def canonical_json(payload) -> bytes:
    """The canonical byte form a payload's self-checksum covers."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


def wrap_payload(payload) -> Dict:
    """Wrap a JSON payload with its canonical-form self-checksum."""
    return {"payload": payload, "sha256": sha256_hex(canonical_json(payload))}


def unwrap_payload(wrapper) -> Dict:
    """Verify a ``{"payload", "sha256"}`` wrapper and return the payload.

    Raises :class:`PageIntegrityError` with reason ``"format"`` on a
    malformed wrapper and ``"checksum"`` on a self-checksum mismatch.
    """
    try:
        payload = wrapper["payload"]
        recorded = wrapper["sha256"]
    except (KeyError, TypeError) as exc:
        raise PageIntegrityError(
            "format", f"not a payload/sha256 wrapper: {exc}"
        ) from exc
    if sha256_hex(canonical_json(payload)) != recorded:
        raise PageIntegrityError("checksum", "payload checksum mismatch")
    return payload


def read_wrapped_json(path: str) -> Dict:
    """Read + verify a self-checksummed JSON document.

    Raises ``FileNotFoundError`` when the file does not exist (callers
    distinguish "lost" from "damaged"), :class:`PageIntegrityError`
    reason ``"unreadable"`` on torn/undecodable bytes, ``"checksum"``
    on verification failure.
    """
    if not os.path.exists(path):
        raise FileNotFoundError(path)
    try:
        with open(path, "r", encoding="utf-8") as fh:
            wrapper = json.load(fh)
    except (json.JSONDecodeError, UnicodeDecodeError, OSError) as exc:
        raise PageIntegrityError(
            "unreadable", f"unreadable JSON (torn write?): {exc}"
        ) from exc
    return unwrap_payload(wrapper)


def commit_json(path: str, payload, indent: int = 1) -> None:
    """Atomically commit a self-checksummed JSON document.

    Writes the wrapped payload to ``<path>.tmp`` and renames it over
    ``path``; the ``os.replace`` is the commit point.
    """
    data = json.dumps(
        wrap_payload(payload), sort_keys=True, indent=indent
    ).encode("utf-8")
    tmp = path + ".tmp"
    with open(tmp, "wb") as fh:
        fh.write(data)
    os.replace(tmp, path)


def write_page(path: str, data: bytes) -> Dict:
    """Write one raw page file; returns its ``{sha256, raw_bytes}`` entry.

    The returned dict is the manifest-entry skeleton; callers add the
    layout-specific fields (``file``, ``dtype``, ``shape``, ...).
    """
    with open(path, "wb") as fh:
        fh.write(data)
    return {"sha256": sha256_hex(data), "raw_bytes": len(data)}


def verify_page_file(
    path: str, sha256: str, raw_bytes: int,
    chunk_bytes: int = HASH_CHUNK_BYTES,
) -> None:
    """Verify one uncompressed page file against its manifest entry.

    Hashes in a streamed pass (never holds the page in memory). Raises
    :class:`PageIntegrityError` reason ``"unreadable"`` on a missing or
    short/long file and ``"checksum"`` on content mismatch.
    """
    if not os.path.exists(path):
        raise PageIntegrityError("unreadable", "page missing")
    actual_sha, actual_size = sha256_file(path, chunk_bytes)
    if actual_size != raw_bytes:
        raise PageIntegrityError(
            "unreadable",
            f"page torn ({actual_size} of {raw_bytes} bytes)",
        )
    if actual_sha != sha256:
        raise PageIntegrityError("checksum", "page checksum mismatch (bit rot)")


def apply_file_fault(path: str, fault) -> None:
    """Apply one scheduled storage fault to a just-written file.

    The damage models what the disk ended up holding: ``torn`` (and
    ``crash``) truncates the file to half, ``bitrot`` flips one byte,
    ``lost`` unlinks it. Shared by every on-disk store so the fault
    injector exercises one failure surface.
    """
    if fault.kind in ("torn", "crash"):
        size = os.path.getsize(path)
        with open(path, "r+b") as fh:
            fh.truncate(size // 2)
    elif fault.kind == "bitrot":
        with open(path, "r+b") as fh:
            data = bytearray(fh.read())
            if data:
                data[len(data) // 2] ^= 0xFF
            fh.seek(0)
            fh.write(bytes(data))
            fh.truncate(len(data))
    elif fault.kind == "lost":
        os.unlink(path)


def stale_tmp_path(path: str) -> Optional[str]:
    """The stale ``.tmp`` sibling of a committed document, if present."""
    tmp = path + ".tmp"
    return tmp if os.path.exists(tmp) else None
