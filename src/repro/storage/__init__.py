"""Out-of-core sharded graph storage (PR 10).

The storage subsystem lets graphs larger than memory be preprocessed
and executed with bounded resident bytes:

- :mod:`repro.storage.pages` — shared checksummed-page + atomic-commit
  primitives (also used by the durable checkpoint store);
- :mod:`repro.storage.partition` — the chunked streaming partitioner
  (:func:`partition_graph`) building shard directories from any
  re-iterable edge-chunk source;
- :mod:`repro.storage.store` — :class:`ShardStore`, the verified,
  mmap-backed, LRU-bounded read side;
- :mod:`repro.storage.sharded` — :class:`ShardedGraph`, the execution
  adapter (bit-identical :meth:`~ShardedGraph.materialize`, streaming
  re-partition source, shard-at-a-time path decomposition);
- :mod:`repro.storage.memory` — the deterministic
  :class:`ResidentTracker` ledger behind every peak-resident claim.
"""

from repro.storage.memory import ResidentTracker
from repro.storage.partition import (
    PARTITION_POLICIES,
    PartitionReport,
    graph_chunk_source,
    partition_graph,
    synthetic_chunk_source,
)
from repro.storage.sharded import ShardedGraph, memory_bound_selftest
from repro.storage.store import (
    GRAPH_MANIFEST_NAME,
    GRAPH_STORE_FORMAT,
    Shard,
    ShardStore,
    shard_dirname,
)

__all__ = [
    "GRAPH_MANIFEST_NAME",
    "GRAPH_STORE_FORMAT",
    "PARTITION_POLICIES",
    "PartitionReport",
    "ResidentTracker",
    "Shard",
    "ShardStore",
    "ShardedGraph",
    "graph_chunk_source",
    "memory_bound_selftest",
    "partition_graph",
    "shard_dirname",
    "synthetic_chunk_source",
]
