"""The sharded on-disk graph store: manifest, shard pages, bounded cache.

On-disk layout (built by :func:`repro.storage.partition.partition_graph`)::

    <root>/
      GRAPH.json          versioned, self-checksummed manifest (commits last)
      node_map.page       int32 owner part per vertex
      edge_map.page       int32 owner part per CSR edge id
      part0000/
        vertex_ids.page   int64 sorted global ids of owned vertices
        indptr.page       int64 local CSR row pointers (len = owned + 1)
        indices.page      int64 GLOBAL destination ids, original row order
        weights.page      float64 parallel edge weights
      part0001/ ...

Shards keep **global** vertex ids and the original within-row edge
order, so scattering every shard's rows back into place reproduces the
in-RAM CSR arrays bit for bit (see
:meth:`repro.storage.sharded.ShardedGraph.materialize`).

:class:`ShardStore` opens shards lazily through a bounded, LRU-evicted,
mmap-backed cache — the execution side of the bounded-memory story: a
run over a store touches ``max_resident_bytes`` of shard data at most,
no matter how large the graph is. Every page read is checksum-verified
(streamed, before the mmap is handed out); all damage raises
:class:`~repro.errors.StorageError` with the file ``path``, the
``shard`` id, and a machine-readable ``kind`` — never a raw traceback.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.errors import GraphError, StorageError
from repro.graph.io import validate_csr_arrays
from repro.storage import pages
from repro.storage.memory import ResidentTracker

#: On-disk format version; bumped on incompatible layout changes.
GRAPH_STORE_FORMAT = 1

#: Manifest filename (committed last — its presence implies a complete store).
GRAPH_MANIFEST_NAME = "GRAPH.json"

#: Page names every shard directory must hold.
SHARD_PAGE_NAMES = ("vertex_ids", "indptr", "indices", "weights")


def shard_dirname(part: int) -> str:
    """Relative directory name of one part's shard pages."""
    return f"part{part:04d}"


@dataclass
class Shard:
    """One loaded shard: a part's owned rows in global-id CSR form."""

    part: int
    #: Sorted global ids of the vertices this part owns.
    vertex_ids: np.ndarray
    #: Local row pointers over the owned vertices (len = owned + 1).
    indptr: np.ndarray
    #: Global destination ids, original within-row order.
    indices: np.ndarray
    weights: np.ndarray
    #: Modeled resident footprint while cached.
    nbytes: int

    @property
    def num_vertices(self) -> int:
        return int(self.vertex_ids.size)

    @property
    def num_edges(self) -> int:
        return int(self.indices.size)


class ShardStore:
    """Read side of the sharded store: verify, mmap, cache, evict.

    Parameters
    ----------
    root:
        Store directory holding ``GRAPH.json``.
    max_resident_bytes:
        Cache bound for loaded shards. ``None`` disables eviction
        entirely — the "cache disabled" configuration the CI must-fail
        self-test uses to prove the bound is load-bearing. The bound is
        a high-water target: the single most recently used shard is
        always kept even if it alone exceeds it.
    use_mmap:
        Map pages with :class:`numpy.memmap` (the default) instead of
        reading them into heap arrays. Either way the page is fully
        checksum-verified (streamed) before use.
    tracker:
        Shared :class:`ResidentTracker` charged for cached shards; a
        private one is created when omitted.
    """

    def __init__(
        self,
        root: str,
        max_resident_bytes: Optional[int] = None,
        use_mmap: bool = True,
        tracker: Optional[ResidentTracker] = None,
    ) -> None:
        self.root = str(root)
        self.max_resident_bytes = max_resident_bytes
        self.use_mmap = use_mmap
        self.tracker = tracker if tracker is not None else ResidentTracker()
        self._cache: "OrderedDict[int, Shard]" = OrderedDict()
        self._node_map: Optional[np.ndarray] = None
        self._edge_map: Optional[np.ndarray] = None
        self.stats: Dict[str, int] = {
            "shard_loads": 0,
            "shard_evictions": 0,
            "cache_hits": 0,
        }
        self.manifest = self._load_manifest()

    # ------------------------------------------------------------------
    # manifest
    # ------------------------------------------------------------------
    def _manifest_path(self) -> str:
        return os.path.join(self.root, GRAPH_MANIFEST_NAME)

    def _load_manifest(self) -> Dict:
        path = self._manifest_path()
        try:
            payload = pages.read_wrapped_json(path)
        except FileNotFoundError:
            raise StorageError(
                "graph manifest missing — not a sharded graph store, or "
                "the partitioner crashed before commit",
                path=path,
                kind="manifest-lost",
            ) from None
        except pages.PageIntegrityError as exc:
            kind = {
                "unreadable": "manifest-torn",
                "checksum": "manifest-corrupt",
                "format": "manifest-format",
            }[exc.reason]
            raise StorageError(
                f"graph manifest damaged: {exc}", path=path, kind=kind
            ) from None
        if not isinstance(payload, dict) or payload.get("kind") != "sharded-graph":
            raise StorageError(
                "manifest is not a sharded-graph manifest",
                path=path,
                kind="manifest-format",
            )
        if payload.get("format") != GRAPH_STORE_FORMAT:
            raise StorageError(
                f"unsupported store format {payload.get('format')!r} "
                f"(this build reads format {GRAPH_STORE_FORMAT})",
                path=path,
                kind="manifest-format",
            )
        for key in ("num_vertices", "num_edges", "num_parts", "parts",
                    "node_map", "edge_map"):
            if key not in payload:
                raise StorageError(
                    f"manifest missing required key {key!r}",
                    path=path,
                    kind="manifest-format",
                )
        if len(payload["parts"]) != payload["num_parts"]:
            raise StorageError(
                f"manifest lists {len(payload['parts'])} parts, "
                f"declares {payload['num_parts']}",
                path=path,
                kind="manifest-format",
            )
        # Stale-manifest check: every referenced shard directory must
        # exist. A manifest that survived while its parts were removed
        # (or that was copied without them) is stale, not merely torn.
        for entry in payload["parts"]:
            part_dir = os.path.join(self.root, entry["dir"])
            if not os.path.isdir(part_dir):
                raise StorageError(
                    "manifest references a shard directory that does "
                    "not exist (stale manifest?)",
                    path=part_dir,
                    shard=int(entry["part"]),
                    kind="stale-manifest",
                )
        return payload

    # ------------------------------------------------------------------
    # manifest-derived properties
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return int(self.manifest["num_vertices"])

    @property
    def num_edges(self) -> int:
        return int(self.manifest["num_edges"])

    @property
    def num_parts(self) -> int:
        return int(self.manifest["num_parts"])

    @property
    def policy(self) -> str:
        return str(self.manifest.get("policy", "unknown"))

    @property
    def edge_cut(self) -> int:
        return int(self.manifest.get("edge_cut", 0))

    # ------------------------------------------------------------------
    # page loading
    # ------------------------------------------------------------------
    def _verify_page(
        self, path: str, entry: Dict, shard: Optional[int] = None
    ) -> None:
        """Streamed checksum/size verification of one page file.

        Never holds the page in memory; raises structured
        :class:`StorageError` on damage.
        """
        name = entry.get("file", os.path.basename(path))
        if not os.path.exists(path):
            raise StorageError(
                f"page {name!r} missing",
                path=path,
                shard=shard,
                kind="missing-page",
            )
        try:
            pages.verify_page_file(
                path, entry["sha256"], int(entry["raw_bytes"])
            )
        except pages.PageIntegrityError as exc:
            kind = "torn" if exc.reason == "unreadable" else "bitrot"
            raise StorageError(
                f"page {name!r} damaged: {exc}",
                path=path,
                shard=shard,
                kind=kind,
            ) from None

    def _load_page(
        self, path: str, entry: Dict, shard: Optional[int] = None
    ) -> np.ndarray:
        """Verify one page (streamed) and map or read it."""
        name = entry.get("file", os.path.basename(path))
        self._verify_page(path, entry, shard=shard)
        dtype = np.dtype(entry["dtype"])
        count = int(np.prod(entry["shape"])) if entry["shape"] else 0
        if count * dtype.itemsize != int(entry["raw_bytes"]):
            raise StorageError(
                f"page {name!r} shape/size mismatch in manifest",
                path=path,
                shard=shard,
                kind="inconsistent",
            )
        if count == 0:
            return np.empty(0, dtype=dtype)
        if self.use_mmap:
            return np.memmap(path, dtype=dtype, mode="r", shape=(count,))
        return np.fromfile(path, dtype=dtype, count=count)

    def node_map(self) -> np.ndarray:
        """Owner part per vertex (int32, cached after first load)."""
        if self._node_map is None:
            entry = self.manifest["node_map"]
            self._node_map = self._load_page(
                os.path.join(self.root, entry["file"]), entry
            )
        return self._node_map

    def edge_map(self) -> np.ndarray:
        """Owner part per CSR edge id (int32, cached after first load)."""
        if self._edge_map is None:
            entry = self.manifest["edge_map"]
            self._edge_map = self._load_page(
                os.path.join(self.root, entry["file"]), entry
            )
        return self._edge_map

    # ------------------------------------------------------------------
    # shard cache
    # ------------------------------------------------------------------
    @property
    def resident_bytes(self) -> int:
        """Modeled bytes of currently cached shards."""
        return sum(shard.nbytes for shard in self._cache.values())

    def load_shard(self, part: int) -> Shard:
        """Load (or fetch from cache) one part's shard, verified.

        Raises :class:`~repro.errors.StorageError` with structured
        ``path``/``shard``/``kind`` on any damage: missing or torn
        pages, bit rot, manifest/page disagreement, or CSR-invariant
        violations (via the shared
        :func:`~repro.graph.io.validate_csr_arrays`).
        """
        part = int(part)
        if part < 0 or part >= self.num_parts:
            raise StorageError(
                f"part {part} out of range [0, {self.num_parts})",
                shard=part,
            )
        cached = self._cache.get(part)
        if cached is not None:
            self._cache.move_to_end(part)
            self.stats["cache_hits"] += 1
            return cached

        entry = self.manifest["parts"][part]
        part_dir = os.path.join(self.root, entry["dir"])
        arrays = {}
        for name in SHARD_PAGE_NAMES:
            page = entry["pages"][name]
            arrays[name] = self._load_page(
                os.path.join(part_dir, page["file"]), page, shard=part
            )
        vertex_ids = arrays["vertex_ids"]
        indptr = arrays["indptr"]
        try:
            indptr, indices, weights = validate_csr_arrays(
                indptr,
                arrays["indices"],
                arrays["weights"],
                num_vertices=self.num_vertices,
                source=part_dir,
            )
        except GraphError as exc:
            raise StorageError(
                f"shard CSR arrays inconsistent: {exc}",
                path=part_dir,
                shard=part,
                kind="inconsistent",
            ) from None
        if indptr.size != vertex_ids.size + 1:
            raise StorageError(
                f"indptr has {indptr.size} entries for "
                f"{vertex_ids.size} owned vertices",
                path=part_dir,
                shard=part,
                kind="inconsistent",
            )
        if vertex_ids.size and (
            int(vertex_ids.min()) < 0
            or int(vertex_ids.max()) >= self.num_vertices
            or np.any(np.diff(vertex_ids) <= 0)
        ):
            raise StorageError(
                "vertex_ids must be strictly increasing global ids",
                path=part_dir,
                shard=part,
                kind="inconsistent",
            )

        nbytes = sum(int(a.nbytes) for a in arrays.values())
        shard = Shard(
            part=part,
            vertex_ids=vertex_ids,
            indptr=indptr,
            indices=indices,
            weights=weights,
            nbytes=nbytes,
        )
        self._cache[part] = shard
        self.tracker.acquire(nbytes, "shard-cache")
        self.stats["shard_loads"] += 1
        self._evict_to_bound()
        return shard

    def _evict_to_bound(self) -> None:
        if self.max_resident_bytes is None:
            return
        while (
            len(self._cache) > 1
            and self.resident_bytes > self.max_resident_bytes
        ):
            _part, evicted = self._cache.popitem(last=False)
            self.tracker.release(evicted.nbytes, "shard-cache")
            self.stats["shard_evictions"] += 1

    def drop_cache(self) -> None:
        """Release every cached shard (and its tracked bytes)."""
        while self._cache:
            _part, evicted = self._cache.popitem(last=False)
            self.tracker.release(evicted.nbytes, "shard-cache")
            self.stats["shard_evictions"] += 1

    # ------------------------------------------------------------------
    # integrity
    # ------------------------------------------------------------------
    def scan(self) -> Dict[str, int]:
        """Verify every page through the bounded cache; returns stats.

        Loads each shard in turn (evicting under the cache bound as it
        goes); the O(V)/O(E) node/edge maps are checksum-verified in a
        streamed pass without mapping them, so a clean scan certifies
        every byte on disk while staying inside ``max_resident_bytes``
        of shard data.
        """
        for key in ("node_map", "edge_map"):
            entry = self.manifest[key]
            self._verify_page(
                os.path.join(self.root, entry["file"]), entry
            )
        for part in range(self.num_parts):
            self.load_shard(part)
        return dict(self.stats)
