"""Peak-resident-bytes tracking for the out-of-core storage pipeline.

The bounded-memory claims of :mod:`repro.storage` are certified against
a *modeled* resident-set ledger, not the OS RSS: every buffer the
pipeline holds (an edge chunk in flight, a spill file being sorted, a
shard open in the mmap cache, the ``node_map``) is charged to a
:class:`ResidentTracker` while live and released when dropped. The
ledger is deterministic — the same pipeline on the same input reports
the same ``peak_bytes`` on any machine — which is what lets CI gate
"memory stays bounded while edges scale 100x" without flaky RSS
sampling. (Python object overhead and numpy temporaries are outside the
model; the tracked arrays dominate at the sizes that matter.)
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator

from repro.errors import StorageError


class ResidentTracker:
    """A high-water-mark ledger of modeled resident bytes.

    ``limit_bytes`` is advisory diagnostics, not an allocator: nothing
    is refused when the ledger exceeds it, but ``over_limit`` records
    that it happened, so tests can assert a bound held (or, for the
    must-fail self-test, that disabling the cache broke it).
    """

    def __init__(self, limit_bytes: int = 0) -> None:
        if limit_bytes < 0:
            raise StorageError(
                f"limit_bytes must be >= 0, got {limit_bytes}"
            )
        self.limit_bytes = int(limit_bytes)
        self.current_bytes = 0
        self.peak_bytes = 0
        self.over_limit = False
        #: Live bytes by label (diagnostics for the memory model docs).
        self.by_label: Dict[str, int] = {}

    def acquire(self, nbytes: int, label: str = "buffer") -> None:
        """Charge ``nbytes`` as resident until the matching release."""
        nbytes = int(nbytes)
        if nbytes < 0:
            raise StorageError(f"cannot acquire {nbytes} bytes")
        self.current_bytes += nbytes
        self.by_label[label] = self.by_label.get(label, 0) + nbytes
        if self.current_bytes > self.peak_bytes:
            self.peak_bytes = self.current_bytes
        if self.limit_bytes and self.current_bytes > self.limit_bytes:
            self.over_limit = True

    def release(self, nbytes: int, label: str = "buffer") -> None:
        nbytes = int(nbytes)
        if nbytes < 0 or nbytes > self.current_bytes:
            raise StorageError(
                f"cannot release {nbytes} bytes "
                f"({self.current_bytes} resident)"
            )
        self.current_bytes -= nbytes
        held = self.by_label.get(label, 0)
        if nbytes > held:
            raise StorageError(
                f"cannot release {nbytes} bytes from {label!r} "
                f"({held} held)"
            )
        self.by_label[label] = held - nbytes

    @contextmanager
    def hold(self, nbytes: int, label: str = "buffer") -> Iterator[None]:
        """Charge a transient buffer for the duration of a block."""
        self.acquire(nbytes, label)
        try:
            yield
        finally:
            self.release(nbytes, label)

    def as_dict(self) -> Dict[str, object]:
        return {
            "peak_resident_bytes": int(self.peak_bytes),
            "current_resident_bytes": int(self.current_bytes),
            "limit_bytes": int(self.limit_bytes),
            "over_limit": bool(self.over_limit),
        }
