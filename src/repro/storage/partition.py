"""Chunked streaming graph partitioner -> sharded on-disk store.

:func:`partition_graph` builds a :mod:`repro.storage.store` shard
directory from a **re-iterable edge-chunk source** without ever holding
the full edge set in memory. The pipeline is multi-pass streaming —
each pass holds O(num_vertices) bookkeeping plus one chunk:

1. **scan** — vertex count, edge count, out-degrees;
2. **cluster** (``policy="affinity"`` only) — a size-capped union-find
   over the edge stream groups dependency-connected vertices, the same
   cluster idiom PR 4's locality redistribution uses
   (:meth:`repro.core.dispatch.Dispatcher._redistribute_locality`);
3. **affinity** (affinity only) — inter-cluster edge counts (bounded
   top-K sketch), then greedy affinity/balance placement of clusters
   onto parts — the METIS stand-in that minimizes the edge cut;
4. **route** — every edge is appended to its owner part's spill file
   (owner = ``node_map[src]``), counting the edge cut as it goes;
5. **build** — each part's spill (O(edges/parts)) is loaded alone,
   stable-sorted by source, and written as checksummed CSR shard pages;
   the manifest commits last (atomically), so a crash mid-build leaves
   orphan pages, never a manifest referencing missing bytes.

**Bit-identity invariant.** Shards keep *global* vertex ids and the
original within-row edge order: part ``p`` stores the rows of exactly
the vertices it owns, each row byte-identical to the row the in-RAM
:class:`~repro.graph.builder.GraphBuilder` would produce from the same
edge stream (both are stable sorts by source). Reconstruction
(:meth:`repro.storage.sharded.ShardedGraph.materialize`) therefore
rebuilds the original CSR arrays exactly, for *any* partition policy —
the storage layer is lossless by construction and the
``storage_scaling`` experiment certifies it end to end.

``policy="random"`` (deterministic hash of the vertex id) is the
baseline the affinity policy's edge cut is compared against.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

import numpy as np

from repro.errors import StorageError
from repro.graph.digraph import DiGraphCSR
from repro.graph.io import DEFAULT_CHUNK_EDGES, EdgeChunk
from repro.storage import pages
from repro.storage.memory import ResidentTracker

#: Known partition policies (affinity = METIS stand-in, random = baseline).
PARTITION_POLICIES = ("affinity", "random")

#: Spill-file record: one edge in input order.
SPILL_DTYPE = np.dtype([("src", "<i8"), ("dst", "<i8"), ("w", "<f8")])

#: Bound on the inter-cluster affinity sketch (entries, not bytes); the
#: sketch keeps the heaviest pairs and prunes deterministically.
MAX_AFFINITY_ENTRIES = 200_000

#: Knuth multiplicative-hash constant for the random policy.
_HASH_MULT = np.uint64(2654435761)

ChunkSource = Callable[[], Iterator[EdgeChunk]]


@dataclass
class PartitionReport:
    """What :func:`partition_graph` built, and what it cost."""

    out_dir: str
    num_vertices: int
    num_edges: int
    num_parts: int
    policy: str
    seed: int
    #: Edges whose destination lives on a different part than the source.
    edge_cut: int
    edge_cut_fraction: float
    part_num_vertices: List[int] = field(default_factory=list)
    part_num_edges: List[int] = field(default_factory=list)
    #: Modeled high-water resident bytes of the whole pipeline.
    peak_resident_bytes: int = 0
    #: Total bytes of all committed pages (the on-disk footprint).
    store_bytes: int = 0
    wall_seconds: float = 0.0
    clusters: int = 0

    def summary(self) -> str:
        return (
            f"{self.out_dir}: {self.num_parts} part(s), "
            f"|V|={self.num_vertices} |E|={self.num_edges}, "
            f"policy={self.policy}, "
            f"edge_cut={self.edge_cut} ({self.edge_cut_fraction:.1%}), "
            f"peak_resident={self.peak_resident_bytes / 1e6:.2f}MB, "
            f"store={self.store_bytes / 1e6:.2f}MB"
        )


# ----------------------------------------------------------------------
# chunk sources
# ----------------------------------------------------------------------
def normalize_chunk_source(source) -> ChunkSource:
    """Accept a callable, an in-RAM graph, or a re-iterable sequence."""
    if callable(source):
        return source
    if isinstance(source, DiGraphCSR):
        return graph_chunk_source(source)
    if isinstance(source, (list, tuple)):
        chunks = tuple(source)

        def replay() -> Iterator[EdgeChunk]:
            return iter(chunks)

        return replay
    raise StorageError(
        "edge-chunk source must be a callable returning an iterator, a "
        f"DiGraphCSR, or a sequence of chunks; got {type(source).__name__}"
    )


def graph_chunk_source(
    graph: DiGraphCSR, chunk_edges: int = DEFAULT_CHUNK_EDGES
) -> ChunkSource:
    """Stream an in-RAM graph's edges in CSR order as bounded chunks."""
    if chunk_edges < 1:
        raise StorageError(f"chunk_edges must be >= 1, got {chunk_edges}")

    def chunks() -> Iterator[EdgeChunk]:
        sources = graph.edge_sources()
        for lo in range(0, graph.num_edges, chunk_edges):
            hi = min(lo + chunk_edges, graph.num_edges)
            yield (
                sources[lo:hi].astype(np.int64, copy=False),
                graph.indices[lo:hi].astype(np.int64, copy=False),
                graph.weights[lo:hi].astype(np.float64, copy=False),
            )

    return chunks


def synthetic_chunk_source(
    num_vertices: int,
    num_edges: int,
    seed: int = 0,
    chunk_edges: int = DEFAULT_CHUNK_EDGES,
) -> ChunkSource:
    """A deterministic random-edge stream that never exists in full.

    This is how the ``storage_scaling`` experiment scales generators
    ~100x past what :func:`repro.graph.generators.random_directed`
    materializes: each chunk is drawn from its own
    ``default_rng((seed, chunk_index))`` stream, so any chunk can be
    regenerated independently (the partitioner's multiple passes replay
    the identical stream). Self-loops are remapped deterministically;
    parallel edges are allowed (the engines handle multigraphs).
    """
    if num_vertices < 2:
        raise StorageError("synthetic stream needs at least two vertices")
    if num_edges < 1 or chunk_edges < 1:
        raise StorageError("num_edges and chunk_edges must be >= 1")

    def chunks() -> Iterator[EdgeChunk]:
        for index, lo in enumerate(range(0, num_edges, chunk_edges)):
            count = min(chunk_edges, num_edges - lo)
            rng = np.random.default_rng((seed, index))
            src = rng.integers(0, num_vertices, size=count, dtype=np.int64)
            dst = rng.integers(0, num_vertices, size=count, dtype=np.int64)
            dst = np.where(src == dst, (dst + 1) % num_vertices, dst)
            yield src, dst, np.ones(count, dtype=np.float64)

    return chunks


# ----------------------------------------------------------------------
# streaming passes
# ----------------------------------------------------------------------
def _scan_pass(
    chunks: ChunkSource,
    tracker: ResidentTracker,
    num_vertices: Optional[int],
) -> Tuple[int, int, np.ndarray]:
    """Pass 1: vertex count, edge count, out-degrees."""
    n = int(num_vertices) if num_vertices else 0
    m = 0
    deg = np.zeros(max(n, 1), dtype=np.int64)
    tracker.acquire(deg.nbytes, "degrees")
    for src, dst, _w in chunks():
        if src.size == 0:
            continue
        with tracker.hold(src.nbytes * 3, "chunk"):
            hi = int(max(src.max(), dst.max())) + 1
            if num_vertices is not None and hi > num_vertices:
                tracker.release(deg.nbytes, "degrees")
                raise StorageError(
                    f"edge endpoint {hi - 1} outside fixed vertex "
                    f"count {num_vertices}"
                )
            if hi > deg.size:
                tracker.release(deg.nbytes, "degrees")
                deg = np.concatenate(
                    [deg, np.zeros(hi - deg.size, dtype=np.int64)]
                )
                tracker.acquire(deg.nbytes, "degrees")
            n = max(n, hi)
            np.add.at(deg, src, 1)
            m += int(src.size)
    if n == 0:
        tracker.release(deg.nbytes, "degrees")
        raise StorageError("cannot partition an empty edge stream")
    if deg.size != n:
        tracker.release(deg.nbytes, "degrees")
        deg = deg[:n].copy()
        tracker.acquire(deg.nbytes, "degrees")
    return n, m, deg


def _cluster_pass(
    chunks: ChunkSource,
    n: int,
    num_parts: int,
    tracker: ResidentTracker,
) -> np.ndarray:
    """Pass 2 (affinity): size-capped union-find over the edge stream.

    Merging the endpoints of every edge — refusing merges that would
    grow a cluster past its part-fair share — approximates the
    dependency-connected clusters PR 4's redistribution machinery
    derives from the path DAG, at streaming cost. Returns compact
    cluster labels per vertex.
    """
    parent = np.arange(n, dtype=np.int64)
    size = np.ones(n, dtype=np.int64)
    tracker.acquire(parent.nbytes + size.nbytes, "union-find")
    cap = max(1, n // max(num_parts, 1))

    def find(x: int) -> int:
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    for src, dst, _w in chunks():
        with tracker.hold(src.nbytes * 3, "chunk"):
            src_list = src.tolist()
            dst_list = dst.tolist()
            for u, v in zip(src_list, dst_list):
                ru, rv = find(u), find(v)
                if ru == rv:
                    continue
                if size[ru] + size[rv] > cap:
                    continue
                # Union by size, smaller root id wins ties (determinism).
                if size[ru] < size[rv] or (
                    size[ru] == size[rv] and rv < ru
                ):
                    ru, rv = rv, ru
                parent[rv] = ru
                size[ru] += size[rv]

    # Vectorized full path compression (pointer doubling).
    while True:
        grandparent = parent[parent]
        if np.array_equal(grandparent, parent):
            break
        parent = grandparent
    _roots, labels = np.unique(parent, return_inverse=True)
    tracker.release(size.nbytes, "union-find")
    tracker.release(parent.nbytes, "union-find")
    tracker.acquire(labels.nbytes, "labels")
    return labels.astype(np.int64)


def _affinity_pass(
    chunks: ChunkSource,
    labels: np.ndarray,
    tracker: ResidentTracker,
) -> Dict[Tuple[int, int], int]:
    """Pass 3 (affinity): bounded inter-cluster edge-count sketch."""
    num_clusters = int(labels.max()) + 1 if labels.size else 0
    pairs: Dict[Tuple[int, int], int] = {}
    for src, dst, _w in chunks():
        with tracker.hold(src.nbytes * 3, "chunk"):
            ci = labels[src]
            cj = labels[dst]
            cross = ci != cj
            if not np.any(cross):
                continue
            codes = ci[cross] * num_clusters + cj[cross]
            uniq, counts = np.unique(codes, return_counts=True)
            for code, count in zip(uniq.tolist(), counts.tolist()):
                key = (code // num_clusters, code % num_clusters)
                pairs[key] = pairs.get(key, 0) + count
        if len(pairs) > MAX_AFFINITY_ENTRIES:
            # Deterministic prune: keep the heaviest half (ties by key).
            keep = sorted(
                pairs.items(), key=lambda item: (-item[1], item[0])
            )[: MAX_AFFINITY_ENTRIES // 2]
            pairs = dict(keep)
    return pairs


def _place_clusters(
    labels: np.ndarray,
    cluster_load: np.ndarray,
    pairs: Dict[Tuple[int, int], int],
    num_parts: int,
    balance_slack: float,
) -> np.ndarray:
    """Greedy affinity/balance placement of clusters onto parts.

    The same shape as PR 4's locality redistribution: clusters in
    descending load order, each placed on the eligible part with the
    most edges to already-placed neighbors, ties broken by load then
    part id. ``balance_slack`` caps any part's edge load at
    ``slack * total / parts``.
    """
    num_clusters = int(cluster_load.size)
    neighbors: Dict[int, List[Tuple[int, int]]] = {}
    for (ci, cj), weight in pairs.items():
        neighbors.setdefault(ci, []).append((cj, weight))
        neighbors.setdefault(cj, []).append((ci, weight))

    total = float(cluster_load.sum())
    cap = balance_slack * total / num_parts if total else float("inf")
    order = sorted(
        range(num_clusters), key=lambda c: (-int(cluster_load[c]), c)
    )
    part_of = np.full(num_clusters, -1, dtype=np.int64)
    part_load = np.zeros(num_parts, dtype=np.float64)
    for c in order:
        load = float(cluster_load[c])
        affinity = np.zeros(num_parts, dtype=np.float64)
        for other, weight in neighbors.get(c, ()):
            p = part_of[other]
            if p >= 0:
                affinity[p] += weight
        eligible = np.flatnonzero(part_load + load <= cap)
        if eligible.size == 0:
            eligible = np.arange(num_parts)
        # Max affinity, then least load, then lowest part id.
        best = min(
            eligible.tolist(),
            key=lambda p: (-affinity[p], part_load[p], p),
        )
        part_of[c] = best
        part_load[best] += load
    return part_of


def _route_pass(
    chunks: ChunkSource,
    node_map: np.ndarray,
    num_parts: int,
    out_dir: str,
    tracker: ResidentTracker,
) -> Tuple[int, List[str]]:
    """Pass 4: append every edge to its owner part's spill file."""
    spills = [
        os.path.join(out_dir, f"part{p:04d}.spill") for p in range(num_parts)
    ]
    handles = [open(path, "wb") for path in spills]
    edge_cut = 0
    try:
        for src, dst, w in chunks():
            with tracker.hold(src.nbytes * 3, "chunk"):
                owners = node_map[src]
                edge_cut += int(np.count_nonzero(owners != node_map[dst]))
                for p in np.unique(owners).tolist():
                    mask = owners == p
                    records = np.empty(
                        int(np.count_nonzero(mask)), dtype=SPILL_DTYPE
                    )
                    records["src"] = src[mask]
                    records["dst"] = dst[mask]
                    records["w"] = w[mask]
                    handles[p].write(records.tobytes())
    finally:
        for handle in handles:
            handle.close()
    return edge_cut, spills


def _build_shard(
    out_dir: str,
    part: int,
    spill_path: str,
    vertex_ids: np.ndarray,
    num_vertices: int,
    tracker: ResidentTracker,
) -> Dict:
    """Pass 5 (per part): spill -> stable-sorted CSR shard pages.

    The stable sort by source reproduces exactly the row order the
    in-RAM :class:`~repro.graph.builder.GraphBuilder` would give the
    same edge stream — the bit-identity invariant.
    """
    from repro.storage.store import shard_dirname

    records = np.fromfile(spill_path, dtype=SPILL_DTYPE)
    tracker.acquire(records.nbytes, "spill")
    try:
        order = np.argsort(records["src"], kind="stable")
        src_sorted = records["src"][order]
        indices = np.ascontiguousarray(records["dst"][order])
        weights = np.ascontiguousarray(records["w"][order])
        local_src = np.searchsorted(vertex_ids, src_sorted)
        if src_sorted.size and not np.array_equal(
            vertex_ids[local_src], src_sorted
        ):
            raise StorageError(
                "spill holds edges whose source is not owned by this part",
                shard=part,
                kind="inconsistent",
            )
        counts = np.bincount(local_src, minlength=vertex_ids.size)
        indptr = np.zeros(vertex_ids.size + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])

        rel_dir = shard_dirname(part)
        abs_dir = os.path.join(out_dir, rel_dir)
        os.makedirs(abs_dir, exist_ok=True)
        page_entries: Dict[str, Dict] = {}
        for name, arr in (
            ("vertex_ids", vertex_ids),
            ("indptr", indptr),
            ("indices", indices),
            ("weights", weights),
        ):
            arr = np.ascontiguousarray(arr)
            fname = f"{name}.page"
            entry = pages.write_page(
                os.path.join(abs_dir, fname), arr.tobytes()
            )
            entry.update(
                file=fname,
                dtype=str(arr.dtype),
                shape=[int(s) for s in arr.shape],
            )
            page_entries[name] = entry
        return {
            "part": int(part),
            "dir": rel_dir,
            "num_vertices": int(vertex_ids.size),
            "num_edges": int(indices.size),
            "pages": page_entries,
        }
    finally:
        tracker.release(records.nbytes, "spill")
        os.unlink(spill_path)


def _write_map_page(
    out_dir: str, fname: str, values: np.ndarray
) -> Dict:
    """Write one top-level map page (node_map / edge_map chunk-hashed)."""
    data = np.ascontiguousarray(values).tobytes()
    entry = pages.write_page(os.path.join(out_dir, fname), data)
    entry.update(
        file=fname,
        dtype=str(values.dtype),
        shape=[int(s) for s in values.shape],
    )
    return entry


def _write_edge_map_page(
    out_dir: str,
    node_map: np.ndarray,
    out_degree: np.ndarray,
    num_edges: int,
    tracker: ResidentTracker,
    chunk_vertices: int = 1 << 18,
) -> Dict:
    """Stream-write ``edge_map`` (owner part per CSR edge id).

    CSR edge order groups edges by ascending source vertex, so the map
    is ``repeat(node_map, out_degree)`` — emitted in vertex-range
    chunks with an incremental hash, never held in full.
    """
    import hashlib

    fname = "edge_map.page"
    path = os.path.join(out_dir, fname)
    digest = hashlib.sha256()
    written = 0
    with open(path, "wb") as fh:
        for lo in range(0, node_map.size, chunk_vertices):
            hi = min(lo + chunk_vertices, node_map.size)
            block = np.repeat(
                node_map[lo:hi], out_degree[lo:hi]
            ).astype(np.int32)
            with tracker.hold(block.nbytes, "edge-map-chunk"):
                data = block.tobytes()
                fh.write(data)
                digest.update(data)
                written += len(data)
    return {
        "file": fname,
        "sha256": digest.hexdigest(),
        "raw_bytes": written,
        "dtype": "int32",
        "shape": [int(num_edges)],
    }


# ----------------------------------------------------------------------
# the pipeline
# ----------------------------------------------------------------------
def assign_parts(
    chunks: ChunkSource,
    n: int,
    out_degree: np.ndarray,
    num_parts: int,
    policy: str,
    seed: int,
    balance_slack: float,
    tracker: ResidentTracker,
) -> Tuple[np.ndarray, int]:
    """Vertex -> part assignment under one policy.

    Returns ``(node_map int32, clusters)`` where ``clusters`` is the
    cluster count the affinity policy discovered (0 for random).
    """
    if policy == "random":
        ids = np.arange(n, dtype=np.uint64)
        hashed = (ids + np.uint64(seed)) * _HASH_MULT
        node_map = (hashed % np.uint64(num_parts)).astype(np.int32)
        return node_map, 0
    if policy != "affinity":
        raise StorageError(
            f"unknown partition policy {policy!r}; "
            f"known: {PARTITION_POLICIES}"
        )
    labels = _cluster_pass(chunks, n, num_parts, tracker)
    pairs = _affinity_pass(chunks, labels, tracker)
    num_clusters = int(labels.max()) + 1 if labels.size else 0
    # Cluster load = sum of member out-degrees (edge balance, like the
    # dispatcher's edge-count balancing).
    cluster_load = np.bincount(
        labels, weights=out_degree.astype(np.float64),
        minlength=num_clusters,
    )
    # Vertex-count tie-in so empty-degree vertices still spread.
    cluster_load = cluster_load + np.bincount(
        labels, minlength=num_clusters
    ).astype(np.float64)
    part_of = _place_clusters(
        labels, cluster_load, pairs, num_parts, balance_slack
    )
    node_map = part_of[labels].astype(np.int32)
    tracker.release(labels.nbytes, "labels")
    return node_map, num_clusters


def partition_graph(
    edge_chunks,
    num_parts: int,
    out_dir: str,
    policy: str = "affinity",
    num_vertices: Optional[int] = None,
    seed: int = 0,
    balance_slack: float = 1.2,
    tracker: Optional[ResidentTracker] = None,
) -> PartitionReport:
    """Build a sharded on-disk graph store from an edge-chunk stream.

    ``edge_chunks`` is a re-iterable chunk source: a zero-argument
    callable returning an iterator of ``(src, dst, weight)`` array
    triples (:func:`repro.graph.io.edge_list_chunk_source`,
    :func:`synthetic_chunk_source`), an in-RAM
    :class:`~repro.graph.digraph.DiGraphCSR` (streamed in CSR order),
    or a plain list of chunks. The pipeline makes multiple passes, so
    the source must replay the *identical* stream each call.

    The resulting directory holds ``GRAPH.json`` (versioned,
    self-checksummed manifest committed atomically last),
    ``node_map.page`` / ``edge_map.page``, and one ``partNNNN/``
    directory of checksummed CSR pages per part; open it with
    :class:`repro.storage.store.ShardStore` or
    :class:`repro.storage.sharded.ShardedGraph`.

    Raises :class:`~repro.errors.StorageError` on malformed inputs
    (empty stream, endpoints outside a fixed ``num_vertices``, unknown
    policy).
    """
    from repro.storage.store import GRAPH_MANIFEST_NAME, GRAPH_STORE_FORMAT

    if num_parts < 1:
        raise StorageError(f"num_parts must be >= 1, got {num_parts}")
    t0 = time.perf_counter()
    chunks = normalize_chunk_source(edge_chunks)
    tracker = tracker if tracker is not None else ResidentTracker()
    os.makedirs(out_dir, exist_ok=True)

    n, m, out_degree = _scan_pass(chunks, tracker, num_vertices)
    node_map, clusters = assign_parts(
        chunks, n, out_degree, num_parts, policy, seed,
        balance_slack, tracker,
    )
    tracker.acquire(node_map.nbytes, "node-map")
    edge_cut, spills = _route_pass(
        chunks, node_map, num_parts, out_dir, tracker
    )

    parts: List[Dict] = []
    for p in range(num_parts):
        vertex_ids = np.flatnonzero(node_map == p).astype(np.int64)
        with tracker.hold(vertex_ids.nbytes, "part-vertices"):
            parts.append(
                _build_shard(
                    out_dir, p, spills[p], vertex_ids, n, tracker
                )
            )

    node_map_entry = _write_map_page(out_dir, "node_map.page", node_map)
    edge_map_entry = _write_edge_map_page(
        out_dir, node_map, out_degree, m, tracker
    )
    tracker.release(node_map.nbytes, "node-map")
    tracker.release(out_degree.nbytes, "degrees")

    payload = {
        "format": GRAPH_STORE_FORMAT,
        "kind": "sharded-graph",
        "num_vertices": int(n),
        "num_edges": int(m),
        "num_parts": int(num_parts),
        "policy": policy,
        "seed": int(seed),
        "edge_cut": int(edge_cut),
        "clusters": int(clusters),
        "node_map": node_map_entry,
        "edge_map": edge_map_entry,
        "parts": parts,
    }
    pages.commit_json(
        os.path.join(out_dir, GRAPH_MANIFEST_NAME), payload
    )

    store_bytes = (
        int(node_map_entry["raw_bytes"])
        + int(edge_map_entry["raw_bytes"])
        + sum(
            int(page["raw_bytes"])
            for part in parts
            for page in part["pages"].values()
        )
    )
    return PartitionReport(
        out_dir=str(out_dir),
        num_vertices=n,
        num_edges=m,
        num_parts=num_parts,
        policy=policy,
        seed=seed,
        edge_cut=edge_cut,
        edge_cut_fraction=edge_cut / m if m else 0.0,
        part_num_vertices=[part["num_vertices"] for part in parts],
        part_num_edges=[part["num_edges"] for part in parts],
        peak_resident_bytes=tracker.peak_bytes,
        store_bytes=store_bytes,
        wall_seconds=time.perf_counter() - t0,
        clusters=clusters,
    )
