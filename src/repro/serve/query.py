"""Point queries, tenants, and deterministic open-loop arrival traces.

A :class:`Query` is one tenant-issued point computation over the shared
graph: SSSP/BFS from a source vertex, reachability from a source set, or
personalized pagerank from a seed set. Queries carry no state — they are
hashable descriptions the server turns into
:class:`~repro.model.gas.VertexProgram` instances at dispatch time.

:func:`generate_trace` expands a seed into an **open-loop** arrival
trace: exponential interarrival times, weighted tenant choice, uniform
algorithm/source choice, all from one ``random.Random(seed)`` — the same
(seed, knobs) always produce byte-identical traces, which is what makes
``BENCH_serve.json`` reproducible and the fairness tests meaningful.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple, Union

from repro.algorithms.bfs import BFSLevels
from repro.algorithms.ppr import PersonalizedPageRank
from repro.algorithms.reachability import Reachability
from repro.algorithms.sssp import SSSP
from repro.errors import ConfigurationError
from repro.graph.digraph import DiGraphCSR
from repro.model.gas import VertexProgram

#: Algorithms the serving layer batches into multi-source lane kernels.
SERVE_ALGORITHMS: Tuple[str, ...] = ("sssp", "bfs", "ppr", "reachability")


@dataclass(frozen=True)
class Query:
    """One point query: ``algorithm`` parameterized by ``params``.

    ``params`` is the source vertex tuple — a single vertex for
    sssp/bfs, a seed/source set for ppr/reachability. ``arrival_s`` is
    the open-loop arrival time on the virtual clock. ``deadline_s`` is
    the *relative* deadline: the answer is on time iff
    ``completion ≤ arrival + deadline_s`` (the boundary is inclusive —
    see :meth:`deadline_at`). ``None`` means no per-query deadline (the
    server's default, if any, applies).
    """

    query_id: int
    tenant: str
    algorithm: str
    params: Tuple[int, ...]
    arrival_s: float
    deadline_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.algorithm not in SERVE_ALGORITHMS:
            raise ConfigurationError(
                f"algorithm {self.algorithm!r} is not servable; "
                f"expected one of {SERVE_ALGORITHMS}"
            )
        if not self.params:
            raise ConfigurationError("query needs at least one source")
        if self.algorithm in ("sssp", "bfs") and len(self.params) != 1:
            raise ConfigurationError(
                f"{self.algorithm} takes exactly one source, "
                f"got {len(self.params)}"
            )
        if self.arrival_s < 0:
            raise ConfigurationError("arrival_s must be non-negative")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ConfigurationError("deadline_s must be positive")

    def deadline_at(self, default_deadline_s: Optional[float]) -> Optional[float]:
        """Absolute deadline on the virtual clock, or ``None``.

        The per-query deadline wins over the server default. The
        boundary rule (tested in ``tests/serve/test_overload.py``): a
        query is **on time iff it completes at or before** this
        instant, and it is **admissible iff the current clock is at or
        before** this instant — so a query examined exactly at its
        deadline is still admitted, and an answer landing exactly at
        the deadline is not a miss.
        """
        rel = self.deadline_s if self.deadline_s is not None else default_deadline_s
        if rel is None:
            return None
        return self.arrival_s + rel


def make_query_program(query: Query) -> VertexProgram:
    """Instantiate the vertex program a query describes."""
    if query.algorithm == "sssp":
        return SSSP(source=query.params[0])
    if query.algorithm == "bfs":
        return BFSLevels(source=query.params[0])
    if query.algorithm == "ppr":
        return PersonalizedPageRank(seeds=query.params)
    if query.algorithm == "reachability":
        return Reachability(sources=query.params)
    raise ConfigurationError(f"unservable algorithm {query.algorithm!r}")


#: Terminal statuses a served query can end in.
#: ``ok``        — fully converged, digest certified against solo run.
#: ``degraded``  — brownout partial answer with a certified bound.
#: ``failed``    — aborted by a fault with replay disabled/forbidden.
#: ``aborted``   — retries exhausted under a fault storm.
#: ``shed``      — deterministically dropped by queue-bound shedding.
#: ``rejected``  — refused at admission (deadline already unmeetable).
QUERY_STATUSES: Tuple[str, ...] = (
    "ok", "degraded", "failed", "aborted", "shed", "rejected",
)

#: Statuses that carry an answer (a digest over final states).
ANSWERED_STATUSES: Tuple[str, ...] = ("ok", "degraded")


@dataclass(frozen=True)
class QueryResult:
    """Outcome of one served query.

    ``status`` is one of :data:`QUERY_STATUSES`; non-answered queries
    carry the structured error message and have no digest. Latency is
    modeled (virtual clock): completion minus arrival, queue wait
    included. Degraded answers additionally carry their certificate:
    ``bound_kind`` (``"l1"``/``"upper"``/``"lower"``, see
    :data:`~repro.serve.solver.RESIDUAL_BOUND_KINDS`) and, for
    ``"l1"``, the certified ``residual_bound`` on the distance to the
    exact answer.
    """

    query: Query
    status: str
    digest: Optional[str]
    start_s: float
    completion_s: float
    batch_id: int
    lanes: int
    rounds: int
    replayed: bool = False
    error: Optional[str] = None
    attempts: int = 1
    bound_kind: Optional[str] = None
    residual_bound: Optional[float] = None
    deadline_missed: bool = False
    #: Partial state vector, kept **only** for degraded answers: an ok
    #: answer is exactly reproducible from its query, a partial one is
    #: not — the states *are* the deliverable the bound certifies
    #: (``verify_degraded_answer`` checks them against the digest and
    #: the exact solo run). Excluded from equality/repr.
    states: Optional[object] = field(
        default=None, compare=False, repr=False
    )

    @property
    def latency_s(self) -> float:
        return self.completion_s - self.query.arrival_s


@dataclass(frozen=True)
class QueryTemplate:
    """One not-yet-arrived query of a closed-loop session.

    ``think_s`` is the session's think time *before* issuing this
    query: the query arrives at ``previous terminal completion +
    think_s`` (or at ``think_s`` for the session's first query). The
    server materializes the :class:`Query` — with its arrival time —
    only when the session actually issues it.
    """

    query_id: int
    tenant: str
    algorithm: str
    params: Tuple[int, ...]
    think_s: float
    deadline_s: Optional[float] = None

    def materialize(self, arrival_s: float) -> Query:
        return Query(
            query_id=self.query_id,
            tenant=self.tenant,
            algorithm=self.algorithm,
            params=self.params,
            arrival_s=arrival_s,
            deadline_s=self.deadline_s,
        )


@dataclass(frozen=True)
class ClosedLoopTrace:
    """A closed-loop (think-time) workload: one session per tenant.

    Unlike the open-loop trace — where arrivals are a fixed timeline
    regardless of how slow the server is — a closed-loop session holds
    at most one query in flight: the next query is issued only after
    the previous one reaches a terminal state (any of
    :data:`QUERY_STATUSES`) plus the think time. Closed loops
    self-throttle under overload, which is exactly the contrast the
    ``overload_resilience`` experiment measures against open-loop
    floods.
    """

    sessions: Tuple[Tuple[QueryTemplate, ...], ...]

    @property
    def num_queries(self) -> int:
        return sum(len(s) for s in self.sessions)


def generate_trace(
    num_vertices: int,
    num_queries: int,
    seed: int,
    tenants: Union[int, Sequence[str]] = 4,
    mean_interarrival_s: float = 1e-5,
    algorithms: Sequence[str] = SERVE_ALGORITHMS,
    tenant_weights: Optional[Dict[str, float]] = None,
    seed_set_size: int = 2,
    arrival_model: str = "open",
    mean_think_time_s: float = 1e-4,
    deadline_s: Optional[float] = None,
) -> Union[Tuple[Query, ...], ClosedLoopTrace]:
    """Deterministic arrival trace of point queries.

    ``tenants`` is a count (named ``tenant-0..``) or explicit names;
    ``tenant_weights`` skews the per-query tenant choice (unnormalized,
    missing tenants weigh 1.0) — the fairness tests use this to model
    one tenant flooding the service. Multi-source algorithms draw
    ``seed_set_size`` distinct vertices per query.

    ``arrival_model`` selects open loop (default: a fixed exponential-
    interarrival timeline, returned as a ``Query`` tuple) or closed
    loop (``"closed"``: per-tenant sessions of
    :class:`QueryTemplate` with exponential think times drawn from
    ``mean_think_time_s``, returned as a :class:`ClosedLoopTrace`).
    ``deadline_s`` stamps a relative deadline on every query.
    """
    if num_vertices < 1:
        raise ConfigurationError("trace needs a non-empty graph")
    if num_queries < 1:
        raise ConfigurationError("num_queries must be >= 1")
    if mean_interarrival_s <= 0:
        raise ConfigurationError("mean_interarrival_s must be positive")
    if isinstance(tenants, int):
        if tenants < 1:
            raise ConfigurationError("need at least one tenant")
        tenant_names = tuple(f"tenant-{i}" for i in range(tenants))
    else:
        tenant_names = tuple(tenants)
        if not tenant_names:
            raise ConfigurationError("need at least one tenant")
        if len(set(tenant_names)) != len(tenant_names):
            raise ConfigurationError("tenant names must be unique")
    algorithms = tuple(algorithms)
    for algo in algorithms:
        if algo not in SERVE_ALGORITHMS:
            raise ConfigurationError(f"algorithm {algo!r} is not servable")
    if not algorithms:
        raise ConfigurationError("need at least one algorithm")
    if not 1 <= seed_set_size <= num_vertices:
        raise ConfigurationError(
            "seed_set_size must be in [1, num_vertices]"
        )

    if arrival_model not in ("open", "closed"):
        raise ConfigurationError(
            f"arrival_model must be 'open' or 'closed', got {arrival_model!r}"
        )
    if mean_think_time_s <= 0:
        raise ConfigurationError("mean_think_time_s must be positive")
    if deadline_s is not None and deadline_s <= 0:
        raise ConfigurationError("deadline_s must be positive")

    weights = [
        float((tenant_weights or {}).get(name, 1.0))
        for name in tenant_names
    ]
    if any(w <= 0 for w in weights):
        raise ConfigurationError("tenant weights must be positive")

    rng = random.Random(seed)
    if arrival_model == "closed":
        sessions: Dict[str, list] = {name: [] for name in tenant_names}
        for query_id in range(num_queries):
            think = rng.expovariate(1.0 / mean_think_time_s)
            tenant = rng.choices(tenant_names, weights=weights, k=1)[0]
            algorithm = algorithms[rng.randrange(len(algorithms))]
            if algorithm in ("sssp", "bfs"):
                params = (rng.randrange(num_vertices),)
            else:
                params = tuple(
                    sorted(rng.sample(range(num_vertices), seed_set_size))
                )
            sessions[tenant].append(
                QueryTemplate(
                    query_id=query_id,
                    tenant=tenant,
                    algorithm=algorithm,
                    params=params,
                    think_s=think,
                    deadline_s=deadline_s,
                )
            )
        return ClosedLoopTrace(
            sessions=tuple(
                tuple(sessions[name]) for name in tenant_names if sessions[name]
            )
        )

    queries = []
    clock = 0.0
    for query_id in range(num_queries):
        clock += rng.expovariate(1.0 / mean_interarrival_s)
        tenant = rng.choices(tenant_names, weights=weights, k=1)[0]
        algorithm = algorithms[rng.randrange(len(algorithms))]
        if algorithm in ("sssp", "bfs"):
            params = (rng.randrange(num_vertices),)
        else:
            params = tuple(
                sorted(rng.sample(range(num_vertices), seed_set_size))
            )
        queries.append(
            Query(
                query_id=query_id,
                tenant=tenant,
                algorithm=algorithm,
                params=params,
                arrival_s=clock,
                deadline_s=deadline_s,
            )
        )
    return tuple(queries)
