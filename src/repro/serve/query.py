"""Point queries, tenants, and deterministic open-loop arrival traces.

A :class:`Query` is one tenant-issued point computation over the shared
graph: SSSP/BFS from a source vertex, reachability from a source set, or
personalized pagerank from a seed set. Queries carry no state — they are
hashable descriptions the server turns into
:class:`~repro.model.gas.VertexProgram` instances at dispatch time.

:func:`generate_trace` expands a seed into an **open-loop** arrival
trace: exponential interarrival times, weighted tenant choice, uniform
algorithm/source choice, all from one ``random.Random(seed)`` — the same
(seed, knobs) always produce byte-identical traces, which is what makes
``BENCH_serve.json`` reproducible and the fairness tests meaningful.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple, Union

from repro.algorithms.bfs import BFSLevels
from repro.algorithms.ppr import PersonalizedPageRank
from repro.algorithms.reachability import Reachability
from repro.algorithms.sssp import SSSP
from repro.errors import ConfigurationError
from repro.graph.digraph import DiGraphCSR
from repro.model.gas import VertexProgram

#: Algorithms the serving layer batches into multi-source lane kernels.
SERVE_ALGORITHMS: Tuple[str, ...] = ("sssp", "bfs", "ppr", "reachability")


@dataclass(frozen=True)
class Query:
    """One point query: ``algorithm`` parameterized by ``params``.

    ``params`` is the source vertex tuple — a single vertex for
    sssp/bfs, a seed/source set for ppr/reachability. ``arrival_s`` is
    the open-loop arrival time on the virtual clock.
    """

    query_id: int
    tenant: str
    algorithm: str
    params: Tuple[int, ...]
    arrival_s: float

    def __post_init__(self) -> None:
        if self.algorithm not in SERVE_ALGORITHMS:
            raise ConfigurationError(
                f"algorithm {self.algorithm!r} is not servable; "
                f"expected one of {SERVE_ALGORITHMS}"
            )
        if not self.params:
            raise ConfigurationError("query needs at least one source")
        if self.algorithm in ("sssp", "bfs") and len(self.params) != 1:
            raise ConfigurationError(
                f"{self.algorithm} takes exactly one source, "
                f"got {len(self.params)}"
            )
        if self.arrival_s < 0:
            raise ConfigurationError("arrival_s must be non-negative")


def make_query_program(query: Query) -> VertexProgram:
    """Instantiate the vertex program a query describes."""
    if query.algorithm == "sssp":
        return SSSP(source=query.params[0])
    if query.algorithm == "bfs":
        return BFSLevels(source=query.params[0])
    if query.algorithm == "ppr":
        return PersonalizedPageRank(seeds=query.params)
    if query.algorithm == "reachability":
        return Reachability(sources=query.params)
    raise ConfigurationError(f"unservable algorithm {query.algorithm!r}")


@dataclass(frozen=True)
class QueryResult:
    """Outcome of one served query.

    ``status`` is ``"ok"`` or ``"failed"``; failed queries carry the
    structured error message and have no digest. Latency is modeled
    (virtual clock): completion minus arrival, queue wait included.
    """

    query: Query
    status: str
    digest: Optional[str]
    start_s: float
    completion_s: float
    batch_id: int
    lanes: int
    rounds: int
    replayed: bool = False
    error: Optional[str] = None

    @property
    def latency_s(self) -> float:
        return self.completion_s - self.query.arrival_s


def generate_trace(
    num_vertices: int,
    num_queries: int,
    seed: int,
    tenants: Union[int, Sequence[str]] = 4,
    mean_interarrival_s: float = 1e-5,
    algorithms: Sequence[str] = SERVE_ALGORITHMS,
    tenant_weights: Optional[Dict[str, float]] = None,
    seed_set_size: int = 2,
) -> Tuple[Query, ...]:
    """Deterministic open-loop arrival trace of point queries.

    ``tenants`` is a count (named ``tenant-0..``) or explicit names;
    ``tenant_weights`` skews the per-query tenant choice (unnormalized,
    missing tenants weigh 1.0) — the fairness tests use this to model
    one tenant flooding the service. Multi-source algorithms draw
    ``seed_set_size`` distinct vertices per query.
    """
    if num_vertices < 1:
        raise ConfigurationError("trace needs a non-empty graph")
    if num_queries < 1:
        raise ConfigurationError("num_queries must be >= 1")
    if mean_interarrival_s <= 0:
        raise ConfigurationError("mean_interarrival_s must be positive")
    if isinstance(tenants, int):
        if tenants < 1:
            raise ConfigurationError("need at least one tenant")
        tenant_names = tuple(f"tenant-{i}" for i in range(tenants))
    else:
        tenant_names = tuple(tenants)
        if not tenant_names:
            raise ConfigurationError("need at least one tenant")
        if len(set(tenant_names)) != len(tenant_names):
            raise ConfigurationError("tenant names must be unique")
    algorithms = tuple(algorithms)
    for algo in algorithms:
        if algo not in SERVE_ALGORITHMS:
            raise ConfigurationError(f"algorithm {algo!r} is not servable")
    if not algorithms:
        raise ConfigurationError("need at least one algorithm")
    if not 1 <= seed_set_size <= num_vertices:
        raise ConfigurationError(
            "seed_set_size must be in [1, num_vertices]"
        )

    weights = [
        float((tenant_weights or {}).get(name, 1.0))
        for name in tenant_names
    ]
    if any(w <= 0 for w in weights):
        raise ConfigurationError("tenant weights must be positive")

    rng = random.Random(seed)
    queries = []
    clock = 0.0
    for query_id in range(num_queries):
        clock += rng.expovariate(1.0 / mean_interarrival_s)
        tenant = rng.choices(tenant_names, weights=weights, k=1)[0]
        algorithm = algorithms[rng.randrange(len(algorithms))]
        if algorithm in ("sssp", "bfs"):
            params = (rng.randrange(num_vertices),)
        else:
            params = tuple(
                sorted(rng.sample(range(num_vertices), seed_set_size))
            )
        queries.append(
            Query(
                query_id=query_id,
                tenant=tenant,
                algorithm=algorithm,
                params=params,
                arrival_s=clock,
            )
        )
    return tuple(queries)
