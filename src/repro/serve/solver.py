"""Multi-source solver: k point queries in one layered sweep.

:class:`MultiSourceSolver` runs k same-algorithm queries as one
computation over a ``(k, n)`` state matrix using the lane kernels of
:mod:`repro.kernels.lanes`. Each round sweeps the shared
:class:`~repro.serve.context.ServingContext` layer batches in ascending
layer order — Jacobi within a batch, Gauss-Seidel across batches — and
a batch is launched when **any** lane has an active vertex in it (the
union frontier).

Why the union frontier preserves per-lane bit-identity
------------------------------------------------------
Writes are **gated on** ``changed``: a recomputed value is applied only
where the kernel reports a change, so "state mutated ⟺ dependents
activated" holds exactly even for tolerance-converged kernels like ppr
(whose sub-tolerance drift would otherwise move gather inputs without
activating anyone). With that invariant, for a lane where a selected
vertex is *inactive*, every gather input of that vertex is unchanged
since the lane last computed (or initialized) it. Recomputing is then
the same deterministic float expression over the same inputs, so it
returns the same value bitwise, reports ``changed=False``, and activates
nothing. Lane i of a k-lane solve therefore performs precisely the state
trajectory of running query i alone, interleaved with bitwise no-ops —
which :meth:`MultiSourceSolver.solve_reference` (an independent scalar
per-vertex code path over per-lane frontiers) certifies end to end.

Modeled cost
------------
``service = Σ_launches (LAUNCH_OVERHEAD + waves · cycles_per_edge / f)``
where one *launch* processes one layer batch and ``waves`` is the
edge-lane work of the launch divided by the GPU's resident thread count.
Kernel-launch overhead (~3.5 µs on real CUDA) dominates the sparse
frontiers of point queries, so batching k queries into one launch
sequence — more work per launch, k× fewer launches — is where the
serving throughput comes from. The accounting is deterministic, so
``BENCH_serve.json`` is byte-reproducible.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError, ConvergenceError, GPULostError
from repro.kernels.registry import resolve_lane_kernel
from repro.model.gas import VertexProgram
from repro.serve.context import ServingContext

#: Fixed cost of one kernel launch (real CUDA launch overhead ballpark).
KERNEL_LAUNCH_OVERHEAD_S = 3.5e-6


def lane_digest(states: np.ndarray) -> str:
    """sha256 over the exact float64 bytes of one lane's final states."""
    return hashlib.sha256(
        np.ascontiguousarray(states, dtype=np.float64).tobytes()
    ).hexdigest()


#: Certified bound kind per servable algorithm for partial answers.
#: ``"l1"``: the true fixed point is within ``residual_bound`` of the
#: partial state in L1 norm (contraction argument). ``"upper"``: the
#: partial state is a pointwise upper bound on the true values (monotone
#: decreasing relaxation). ``"lower"``: pointwise lower bound (monotone
#: increasing saturation — reachability under-approximation).
RESIDUAL_BOUND_KINDS = {
    "ppr": "l1",
    "sssp": "upper",
    "bfs": "upper",
    "reachability": "lower",
}


def residual_bound_kind(algorithm: str) -> str:
    """The certificate kind a partial answer of ``algorithm`` carries."""
    try:
        return RESIDUAL_BOUND_KINDS[algorithm]
    except KeyError:
        raise ConfigurationError(
            f"no degraded-answer certificate for {algorithm!r}"
        ) from None


@dataclass(frozen=True)
class SolveResult:
    """Outcome of one multi-source solve.

    ``lane_rounds[i]`` is the round in which lane i's frontier emptied —
    equal to the rounds a standalone run of query i would take.
    ``edge_lane_work`` counts (edge, lane) gather pairs; ``launches``
    counts layer-batch kernel launches.

    A budgeted solve (``time_budget_s``) may stop before every lane
    converges: ``lane_converged[i]`` says whether lane i reached its
    fixed point, and for unconverged lanes ``lane_residuals[i]`` is the
    exact L1 norm of that lane's true residual ``F(x) - x`` (measured by
    a read-only recompute pass over the frontier; deltas from or to
    non-finite values are excluded, so the number is always finite).
    For contraction algorithms (ppr, damping d) this certifies
    ``‖x* − x‖₁ ≤ lane_residuals[i] / (1 − d)``; for monotone
    algorithms the partial state itself is the certificate (see
    :data:`RESIDUAL_BOUND_KINDS`).
    """

    states: np.ndarray
    digests: Tuple[str, ...]
    rounds: int
    lane_rounds: Tuple[int, ...]
    launches: int
    edge_lane_work: int
    modeled_seconds: float
    converged: bool = True
    lane_converged: Tuple[bool, ...] = ()
    lane_residuals: Tuple[float, ...] = ()

    @property
    def num_lanes(self) -> int:
        return self.states.shape[0]


class MultiSourceSolver:
    """Layered fixed-point solver for a batch of same-class queries."""

    def __init__(
        self,
        context: ServingContext,
        programs: Sequence[VertexProgram],
        max_rounds: int = 100000,
        fault_hook: Optional[Callable[[int], None]] = None,
    ) -> None:
        if not programs:
            raise ConfigurationError("solver needs at least one program")
        if max_rounds < 1:
            raise ConfigurationError("max_rounds must be >= 1")
        self.context = context
        self.programs = tuple(programs)
        self.max_rounds = max_rounds
        self.fault_hook = fault_hook
        gpu = context.spec.gpu
        self._threads = gpu.num_smxs * gpu.threads_per_smx
        self._seconds_per_wave = gpu.cycles_per_edge / gpu.clock_hz
        self._in_degree = context.graph.in_degree()

    # ------------------------------------------------------------------
    # cost model
    # ------------------------------------------------------------------
    def _launch_seconds(self, work: int) -> float:
        waves = -(-int(work) // self._threads) if work else 0
        return KERNEL_LAUNCH_OVERHEAD_S + waves * self._seconds_per_wave

    # ------------------------------------------------------------------
    # vectorized lane solve
    # ------------------------------------------------------------------
    def solve(self, time_budget_s: Optional[float] = None) -> SolveResult:
        """Run all lanes to convergence with the registered lane kernel.

        With ``time_budget_s`` the solve becomes a **brownout** solve:
        before each round it estimates the round's cost from the
        previous round and stops at the round boundary if finishing
        would overshoot the budget (at least one round always runs).
        Unconverged lanes then get an exact residual measurement via a
        read-only recompute pass over the union frontier — the write-
        gate invariant makes the true residual ``F(x) − x`` supported
        exactly on the active set, so one frontier pass measures it in
        full. The pass is charged as real launches on the modeled
        clock, and a budgeted solve never raises
        :class:`ConvergenceError` — hitting ``max_rounds`` degrades
        instead.
        """
        graph = self.context.graph
        kernel = resolve_lane_kernel(self.programs, graph)
        states = kernel.initial_states()
        active = kernel.initial_active()
        k = len(self.programs)
        lane_rounds = [0] * k
        lane_done = [not active[i].any() for i in range(k)]
        launches = 0
        edge_lane_work = 0
        modeled = 0.0
        rounds = 0
        round_cost = 0.0
        while active.any():
            if time_budget_s is not None and rounds >= 1:
                if modeled + round_cost > time_budget_s:
                    break
                if rounds >= self.max_rounds:
                    break
            elif rounds >= self.max_rounds:
                raise ConvergenceError(
                    f"multi-source {kernel.name} did not converge",
                    rounds=rounds,
                    active_vertices=int(active.any(axis=0).sum()),
                )
            rounds += 1
            round_start_s = modeled
            for batch in self.context.layer_batches:
                hit = active[:, batch].any(axis=0)
                if not hit.any():
                    continue
                sel = batch[hit]
                if self.fault_hook is not None:
                    try:
                        self.fault_hook(launches)
                    except GPULostError as exc:
                        # The failed launch's overhead is wasted GPU time
                        # the server charges before replaying.
                        exc.modeled_seconds_completed = (
                            modeled + KERNEL_LAUNCH_OVERHEAD_S
                        )
                        exc.launches_completed = launches
                        raise
                work = k * int(self._in_degree[sel].sum())
                launches += 1
                edge_lane_work += work
                modeled += self._launch_seconds(work)
                old = states[:, sel]
                new, changed = kernel.lane_update(sel, states, old)
                # Write-gate: apply only where changed. For monotone
                # kernels this is a no-op (changed ⟺ new != old); for
                # tolerance-converged kernels (ppr) it discards
                # sub-tolerance drift, making "state mutated ⟺
                # dependents activated" exact — the invariant the
                # union-frontier bit-identity proof stands on.
                states[:, sel] = np.where(changed, new, old)
                active[:, sel] = False
                targets, seg_offsets = kernel.batch_dependents(sel)
                counts = np.diff(seg_offsets)
                for i in range(k):
                    mask = np.repeat(changed[i], counts)
                    if mask.any():
                        active[i, targets[mask]] = True
            for i in range(k):
                if not lane_done[i] and not active[i].any():
                    lane_done[i] = True
                    lane_rounds[i] = rounds
            round_cost = modeled - round_start_s
        lane_converged = tuple(not active[i].any() for i in range(k))
        residuals = [0.0] * k
        if not all(lane_converged):
            # Read-only residual pass: recompute the union frontier
            # once without applying writes. For a lane where a selected
            # vertex is inactive the recompute is a bitwise no-op
            # (changed=False), so the per-lane sum over the union
            # frontier is exactly that lane's own residual.
            for batch in self.context.layer_batches:
                hit = active[:, batch].any(axis=0)
                if not hit.any():
                    continue
                sel = batch[hit]
                if self.fault_hook is not None:
                    try:
                        self.fault_hook(launches)
                    except GPULostError as exc:
                        exc.modeled_seconds_completed = (
                            modeled + KERNEL_LAUNCH_OVERHEAD_S
                        )
                        exc.launches_completed = launches
                        raise
                work = k * int(self._in_degree[sel].sum())
                launches += 1
                edge_lane_work += work
                modeled += self._launch_seconds(work)
                old = states[:, sel]
                new, changed = kernel.lane_update(sel, states, old)
                finite = changed & np.isfinite(old) & np.isfinite(new)
                delta = np.zeros_like(old)
                np.subtract(new, old, out=delta, where=finite)
                for i in range(k):
                    residuals[i] += float(np.abs(delta[i]).sum())
            lane_rounds = [
                lane_rounds[i] if lane_converged[i] else rounds
                for i in range(k)
            ]
        return SolveResult(
            states=states,
            digests=tuple(lane_digest(states[i]) for i in range(k)),
            rounds=rounds,
            lane_rounds=tuple(lane_rounds),
            launches=launches,
            edge_lane_work=edge_lane_work,
            modeled_seconds=modeled,
            converged=all(lane_converged),
            lane_converged=lane_converged,
            lane_residuals=tuple(residuals),
        )

    # ------------------------------------------------------------------
    # scalar golden reference (independent code path)
    # ------------------------------------------------------------------
    def solve_reference(self) -> SolveResult:
        """k independent single-query scalar runs, same layer schedule.

        This is the golden the serving layer certifies against: a plain
        ``update_vertex`` Python loop per lane over that lane's *own*
        frontier (no union batching, no lane kernels, no shared float
        ops), so agreement with :meth:`solve` is evidence, not
        circularity. Cost accounting models sequential dispatch: one
        launch per (lane, layer batch).
        """
        graph = self.context.graph
        k = len(self.programs)
        n = graph.num_vertices
        states = np.empty((k, n), dtype=np.float64)
        lane_rounds: List[int] = []
        launches = 0
        edge_lane_work = 0
        modeled = 0.0
        for i, program in enumerate(self.programs):
            lane_states = program.initial_states(graph)
            active = program.initial_active(graph)
            rounds = 0
            while active.any():
                if rounds >= self.max_rounds:
                    raise ConvergenceError(
                        f"reference {program.name} did not converge",
                        rounds=rounds,
                        active_vertices=int(active.sum()),
                    )
                rounds += 1
                for batch in self.context.layer_batches:
                    sel = batch[active[batch]]
                    if sel.size == 0:
                        continue
                    work = int(self._in_degree[sel].sum())
                    launches += 1
                    edge_lane_work += work
                    modeled += self._launch_seconds(work)
                    updates = [
                        program.update_vertex(graph, int(v), lane_states)
                        for v in sel
                    ]
                    active[sel] = False
                    for v, (new, changed) in zip(sel, updates):
                        if changed:  # same write-gate as solve()
                            lane_states[v] = new
                    for v, (new, changed) in zip(sel, updates):
                        if changed:
                            for u in program.dependents(graph, int(v)):
                                active[u] = True
            states[i] = lane_states
            lane_rounds.append(rounds)
        return SolveResult(
            states=states,
            digests=tuple(lane_digest(states[i]) for i in range(k)),
            rounds=max(lane_rounds) if lane_rounds else 0,
            lane_rounds=tuple(lane_rounds),
            launches=launches,
            edge_lane_work=edge_lane_work,
            modeled_seconds=modeled,
            converged=True,
            lane_converged=tuple(True for _ in range(k)),
            lane_residuals=tuple(0.0 for _ in range(k)),
        )
