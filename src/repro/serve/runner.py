"""Bench-facing entry point: run one serving cell end to end.

:func:`run_serve_cell` is to the serving layer what
:func:`repro.bench.runner.run_cell` is to batch cells: one memoized
call that loads (or accepts) a graph, builds/reuses a
:class:`~repro.serve.context.ServingContext`, generates the seeded
arrival trace, and runs the :class:`~repro.serve.server.QueryServer`.

Cache-poisoning note: serve cells are memoized in the **same** process
cache as batch cells (:data:`repro.bench.runner._CACHE`), so their keys
carry every serving knob — ``query_lanes``, ``tenant_count``, quotas,
trace shape, fault schedule — exactly like ``run_cell``'s key now
carries ``query_lanes``/``tenant_count`` placeholders: two cells that
differ only in a serving knob can never alias, and a serve cell can
never shadow a batch cell.
"""

from __future__ import annotations

import hashlib
from typing import Optional

from repro.bench import runner as bench_runner
from repro.errors import ConfigurationError
from repro.faults.plan import ComputeFault, FaultPlan
from repro.gpu.config import SCALED_MACHINE, MachineSpec
from repro.serve.context import ServingContext
from repro.serve.query import SERVE_ALGORITHMS, generate_trace
from repro.serve.server import QueryServer, ServeConfig, ServeReport

#: Per-process context cache: building a ServingContext runs the full
#: path-decomposition preprocess, and every serve cell on the same
#: (graph, machine) must share it — that sharing *is* the tentpole
#: amortization, and it also keeps sweeps fast.
_CONTEXT_CACHE = {}


def serve_digest(report: ServeReport) -> str:
    """sha256 over all per-query (status, digest) pairs (query_id order).

    The status is part of the hash, so a clean run, a run with
    failures, and a run that shed or degraded the same queries can
    never produce the same digest — shed/degrade determinism is
    certified by digest equality across reruns exactly like answers.
    """
    h = hashlib.sha256()
    for result in report.results:
        h.update(
            f"{result.query.query_id}:{result.status}:"
            f"{result.digest or '-'}\n".encode()
        )
    return h.hexdigest()


def serving_context_for(
    graph_name: str,
    algorithm: str,
    scale: float,
    spec: MachineSpec,
    graph=None,
) -> ServingContext:
    """Build (or reuse) the shared context for a named dataset graph.

    Custom ``graph`` objects are keyed by identity — reusing the same
    graph instance across calls still shares one preprocess.
    """
    weighted_algo = "sssp" if algorithm in ("sssp", "mixed") else algorithm
    if graph is None:
        key = (graph_name, weighted_algo == "sssp", scale, spec)
        graph = bench_runner.load_graph(graph_name, weighted_algo, scale)
    else:
        key = (id(graph), spec)
    if key not in _CONTEXT_CACHE:
        _CONTEXT_CACHE[key] = ServingContext(
            graph, machine_spec=spec, graph_name=graph_name
        )
    return _CONTEXT_CACHE[key]


def clear_context_cache() -> None:
    """Forget shared contexts (tests use this for isolation)."""
    _CONTEXT_CACHE.clear()


def run_serve_cell(
    algorithm: str,
    graph_name: str,
    scale: float = bench_runner.DEFAULT_SCALE,
    seed: int = 0,
    num_queries: int = 32,
    tenant_count: int = 4,
    query_lanes: int = 8,
    max_concurrent: int = 32,
    tenant_quota: int = 8,
    mean_interarrival_us: float = 10.0,
    num_gpus: Optional[int] = None,
    kill_launch: Optional[int] = None,
    replay_on_fault: bool = True,
    max_rounds: int = 100000,
    machine: Optional[MachineSpec] = None,
    use_cache: bool = True,
    graph=None,
    strict: bool = False,
    tenant_weights=None,
    deadline_ms: Optional[float] = None,
    deadline_policy: str = "reject",
    max_queue: Optional[int] = None,
    brownout: bool = False,
    max_replays: int = 1,
    replay_backoff_us: float = 0.0,
    arrival_model: str = "open",
    mean_think_time_us: float = 100.0,
    fault_plan: Optional[FaultPlan] = None,
    journal_path: Optional[str] = None,
) -> ServeReport:
    """Serve one deterministic trace; memoized like a batch cell.

    ``algorithm`` is one of :data:`~repro.serve.query.SERVE_ALGORITHMS`
    or ``"mixed"`` (the trace draws uniformly over all of them).
    ``kill_launch`` schedules a GPU kill at that serve-wide launch
    index (a hand-written :class:`~repro.faults.plan.FaultPlan`);
    ``replay_on_fault`` decides replay-to-correct-digests vs clean
    structured failure. ``fault_plan`` supplies a full correlated
    schedule instead (storms); it bypasses the memo cache like the
    other custom inputs (``graph`` / ``tenant_weights`` / ``strict``).

    Overload knobs: ``deadline_ms`` (relative per-query deadline),
    ``deadline_policy``, ``max_queue`` (bounded backlog with
    deterministic shedding), ``brownout`` (certified partial answers),
    ``max_replays`` + ``replay_backoff_us`` (retry budget), and
    ``arrival_model`` (``"open"``/``"closed"`` with
    ``mean_think_time_us``). All of them are part of the memo key.

    ``journal_path`` points the server at a durable
    :class:`~repro.faults.store.ServeJournal`: completed batches are
    journaled, and a re-run over the same trace replays them instead of
    re-solving (crash-restart recovery). Bypasses the memo cache.
    """
    if algorithm != "mixed" and algorithm not in SERVE_ALGORITHMS:
        raise ConfigurationError(
            f"algorithm {algorithm!r} is not servable; expected one of "
            f"{SERVE_ALGORITHMS + ('mixed',)}"
        )
    if tenant_count < 1:
        raise ConfigurationError("tenant_count must be >= 1")
    if kill_launch is not None and kill_launch < 0:
        raise ConfigurationError("kill_launch must be >= 0")
    if deadline_ms is not None and deadline_ms <= 0:
        raise ConfigurationError("deadline_ms must be positive")
    if replay_backoff_us < 0:
        raise ConfigurationError("replay_backoff_us must be >= 0")
    spec = machine or SCALED_MACHINE
    if num_gpus is not None:
        spec = spec.scaled(num_gpus)
    custom = (
        graph is not None
        or tenant_weights is not None
        or strict
        or fault_plan is not None
        or journal_path is not None
    )
    key = (
        "serve", algorithm, graph_name, scale, num_gpus, None, False, spec,
        query_lanes, tenant_count, max_concurrent, tenant_quota,
        num_queries, mean_interarrival_us, seed, kill_launch,
        replay_on_fault, max_rounds,
        deadline_ms, deadline_policy, max_queue, brownout,
        max_replays, replay_backoff_us, arrival_model, mean_think_time_us,
    )
    if use_cache and not custom and key in bench_runner._CACHE:
        return bench_runner._CACHE[key]

    context = serving_context_for(
        graph_name, algorithm, scale, spec, graph=graph
    )
    trace = generate_trace(
        context.graph.num_vertices,
        num_queries,
        seed=seed,
        tenants=tenant_count,
        mean_interarrival_s=mean_interarrival_us * 1e-6,
        algorithms=(
            SERVE_ALGORITHMS if algorithm == "mixed" else (algorithm,)
        ),
        tenant_weights=tenant_weights,
        arrival_model=arrival_model,
        mean_think_time_s=mean_think_time_us * 1e-6,
    )
    if fault_plan is None and kill_launch is not None:
        fault_plan = FaultPlan(
            compute_faults={int(kill_launch): ComputeFault(kill_gpu=0)}
        )
    server = QueryServer(
        context,
        ServeConfig(
            query_lanes=query_lanes,
            max_concurrent=max_concurrent,
            tenant_quota=tenant_quota,
            replay_on_fault=replay_on_fault,
            max_rounds=max_rounds,
            deadline_s=(
                deadline_ms * 1e-3 if deadline_ms is not None else None
            ),
            deadline_policy=deadline_policy,
            max_queue=max_queue,
            brownout=brownout,
            max_replays=max_replays,
            replay_backoff_s=replay_backoff_us * 1e-6,
        ),
        fault_plan=fault_plan,
        journal_path=journal_path,
    )
    report = server.serve(trace, strict=strict)
    if use_cache and not custom:
        bench_runner._CACHE[key] = report
    return report
