"""The multi-tenant query server: admission, fairness, dispatch.

:class:`QueryServer` consumes a deterministic open-loop arrival trace
(:func:`repro.serve.query.generate_trace`) on a **virtual clock**
(discrete-event loop — no real threads, so the same trace + seed always
produces byte-identical reports):

- arrivals enqueue queries into per-(tenant, algorithm) FIFO backlogs;
- **admission** fires on every arrival/completion: oldest-first, it
  moves backlogged queries into the bounded *admitted pool* — at most
  ``max_concurrent`` queries admitted-or-executing overall and
  ``tenant_quota`` per tenant. The quota is the fairness backstop: a
  flooding tenant can occupy only its quota of the pool, so light
  tenants' queries are always admitted promptly.
- **batch formation** happens only when the modeled GPU is idle (one
  batch executes at a time, FIFO): the oldest admitted query fixes the
  batch's algorithm, and the batch fills **round-robin across
  tenants** — one query per tenant per pass — up to ``query_lanes``
  lanes. Queries therefore *accumulate* while a batch is in service,
  which is exactly where multi-source batching comes from; eager
  per-arrival dispatch would fix every batch at one lane.
- dispatch runs the batch through one
  :class:`~repro.serve.solver.MultiSourceSolver` on the shared
  :class:`~repro.serve.context.ServingContext`; per-query latency is
  completion minus arrival, queue wait included.

Faults: a :class:`~repro.faults.plan.FaultPlan`'s compute faults are
keyed by the serve-wide launch counter. A scheduled GPU kill aborts the
in-flight batch mid-solve; with ``replay_on_fault`` the server charges
the wasted partial service time and re-runs the batch (deterministic, so
the replayed digests match golden), otherwise the batch's queries fail
cleanly with a structured :class:`~repro.errors.QueryAbortedError` —
never a silent wrong answer.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.errors import (
    ConfigurationError,
    GPULostError,
    QueryAbortedError,
)
from repro.faults.plan import FaultPlan
from repro.serve.context import ServingContext
from repro.serve.query import Query, QueryResult, make_query_program
from repro.serve.solver import MultiSourceSolver


@dataclass(frozen=True)
class ServeConfig:
    """Admission/scheduling knobs of the query server."""

    #: Max same-algorithm queries batched into one multi-source solve.
    query_lanes: int = 8
    #: Max queries admitted-or-executing (bounds GPU-resident state).
    max_concurrent: int = 32
    #: Max admitted-or-executing queries per tenant (fairness quota).
    tenant_quota: int = 8
    #: Replay a batch killed mid-solve (else fail its queries cleanly).
    replay_on_fault: bool = True
    #: Round budget per solve.
    max_rounds: int = 100000

    def __post_init__(self) -> None:
        if self.query_lanes < 1:
            raise ConfigurationError("query_lanes must be >= 1")
        if self.max_concurrent < 1:
            raise ConfigurationError("max_concurrent must be >= 1")
        if self.tenant_quota < 1:
            raise ConfigurationError("tenant_quota must be >= 1")
        if self.max_rounds < 1:
            raise ConfigurationError("max_rounds must be >= 1")


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation)."""
    if not sorted_values:
        return 0.0
    rank = max(1, -(-int(q * len(sorted_values) * 100) // 100))
    return float(sorted_values[min(rank, len(sorted_values)) - 1])


@dataclass
class ServeReport:
    """Everything one serve run produced, aggregates included."""

    results: Tuple[QueryResult, ...]
    query_lanes: int
    max_concurrent: int
    tenant_quota: int
    batches: int
    launches: int
    edge_lane_work: int
    peak_concurrency: int
    gpu_busy_s: float
    makespan_s: float
    faults_injected: int
    replays: int
    per_tenant: Dict[str, Dict[str, float]] = field(default_factory=dict)

    @property
    def completed(self) -> Tuple[QueryResult, ...]:
        return tuple(r for r in self.results if r.status == "ok")

    @property
    def failed(self) -> Tuple[QueryResult, ...]:
        return tuple(r for r in self.results if r.status != "ok")

    def latency_percentile(self, q: float) -> float:
        lats = sorted(r.latency_s for r in self.completed)
        return _percentile(lats, q)

    @property
    def queries_per_s(self) -> float:
        done = len(self.completed)
        if done == 0 or self.makespan_s <= 0:
            return 0.0
        return done / self.makespan_s

    def metrics(self) -> Dict[str, float]:
        """Flat metric dict for the sweep harness / BENCH artifacts."""
        completed = self.completed
        lats = sorted(r.latency_s for r in completed)
        mean = sum(lats) / len(lats) if lats else 0.0
        return {
            "queries_total": float(len(self.results)),
            "queries_completed": float(len(completed)),
            "queries_failed": float(len(self.failed)),
            "queries_replayed": float(
                sum(1 for r in self.results if r.replayed)
            ),
            "queries_per_s": self.queries_per_s,
            "latency_p50_s": _percentile(lats, 0.50),
            "latency_p99_s": _percentile(lats, 0.99),
            "latency_mean_s": mean,
            "latency_max_s": lats[-1] if lats else 0.0,
            "makespan_s": self.makespan_s,
            "gpu_busy_s": self.gpu_busy_s,
            "batches": float(self.batches),
            "launches": float(self.launches),
            "edge_lane_work": float(self.edge_lane_work),
            "peak_concurrency": float(self.peak_concurrency),
            "faults_injected": float(self.faults_injected),
            "replays": float(self.replays),
        }


class QueryServer:
    """Deterministic discrete-event admission loop over one context."""

    def __init__(
        self,
        context: ServingContext,
        config: Optional[ServeConfig] = None,
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        self.context = context
        self.config = config or ServeConfig()
        self._compute_faults = (
            dict(fault_plan.compute_faults) if fault_plan else {}
        )
        self._launch_counter = 0
        self._faults_injected = 0

    # ------------------------------------------------------------------
    # fault injection (serve-wide launch counter)
    # ------------------------------------------------------------------
    def _fault_hook(self, _solver_launch: int) -> None:
        index = self._launch_counter
        self._launch_counter += 1
        fault = self._compute_faults.get(index)
        if fault is not None and fault.kill_gpu is not None:
            self._faults_injected += 1
            raise GPULostError(
                f"GPU {fault.kill_gpu} lost at serve launch {index}",
                gpu_id=fault.kill_gpu,
            )

    # ------------------------------------------------------------------
    # the event loop
    # ------------------------------------------------------------------
    def serve(
        self, trace: Sequence[Query], strict: bool = False
    ) -> ServeReport:
        """Run the trace to completion and return the report.

        ``strict`` raises the first failed batch's
        :class:`~repro.errors.QueryAbortedError` instead of returning a
        report containing failed queries.
        """
        cfg = self.config
        trace = sorted(trace, key=lambda q: (q.arrival_s, q.query_id))
        seen_ids = set()
        for query in trace:
            if query.query_id in seen_ids:
                raise ConfigurationError(
                    f"duplicate query_id {query.query_id} in trace"
                )
            seen_ids.add(query.query_id)
        tenants = sorted({q.tenant for q in trace})
        tenant_index = {t: i for i, t in enumerate(tenants)}

        # per-(tenant, algorithm) FIFO queues: unbounded arrival backlog,
        # then the bounded admitted pool batches are drawn from.
        backlog: Dict[str, Dict[str, Deque[Query]]] = {
            t: {} for t in tenants
        }
        admitted: Dict[str, Dict[str, Deque[Query]]] = {
            t: {} for t in tenants
        }
        waiting = 0
        num_admitted = 0
        in_flight = 0  # admitted + executing
        tenant_inflight: Dict[str, int] = {t: 0 for t in tenants}
        gpu_free = 0.0
        rr = 0
        batch_id = 0
        peak_concurrency = 0
        gpu_busy = 0.0
        launches = 0
        edge_lane_work = 0
        replays = 0
        results: List[QueryResult] = []

        # event heap: (time, priority, seq, kind, payload); completions
        # (priority 0) beat simultaneous arrivals so capacity frees first.
        events: List = []
        seq = 0
        for query in trace:
            heapq.heappush(
                events, (query.arrival_s, 1, seq, "arrival", query)
            )
            seq += 1

        def dispatch(batch: List[Query], now: float) -> None:
            nonlocal gpu_free, batch_id, gpu_busy, launches
            nonlocal edge_lane_work, replays, seq
            programs = [make_query_program(q) for q in batch]
            solver = MultiSourceSolver(
                self.context,
                programs,
                max_rounds=cfg.max_rounds,
                fault_hook=self._fault_hook,
            )
            start = max(now, gpu_free)
            wasted = 0.0
            result = None
            replayed = False
            error: Optional[QueryAbortedError] = None
            try:
                result = solver.solve()
            except GPULostError as exc:
                wasted = float(
                    getattr(exc, "modeled_seconds_completed", 0.0)
                )
                if cfg.replay_on_fault:
                    try:
                        result = solver.solve()
                        replayed = True
                        replays += len(batch)
                    except GPULostError as exc2:
                        wasted += float(
                            getattr(exc2, "modeled_seconds_completed", 0.0)
                        )
                        error = QueryAbortedError(
                            "batch killed again during replay",
                            query_ids=[q.query_id for q in batch],
                            tenants=[q.tenant for q in batch],
                            batch_id=batch_id,
                            launch_index=getattr(
                                exc2, "launches_completed", None
                            ),
                        )
                else:
                    error = QueryAbortedError(
                        "batch killed mid-solve, replay disabled",
                        query_ids=[q.query_id for q in batch],
                        tenants=[q.tenant for q in batch],
                        batch_id=batch_id,
                        launch_index=getattr(
                            exc, "launches_completed", None
                        ),
                    )
            if result is not None:
                service = wasted + result.modeled_seconds
                launches += result.launches
                edge_lane_work += result.edge_lane_work
            else:
                service = wasted
            completion = start + service
            gpu_free = completion
            gpu_busy += service
            batch_results = []
            for lane, query in enumerate(batch):
                if result is not None:
                    batch_results.append(
                        QueryResult(
                            query=query,
                            status="ok",
                            digest=result.digests[lane],
                            start_s=start,
                            completion_s=completion,
                            batch_id=batch_id,
                            lanes=len(batch),
                            rounds=result.lane_rounds[lane],
                            replayed=replayed,
                        )
                    )
                else:
                    batch_results.append(
                        QueryResult(
                            query=query,
                            status="failed",
                            digest=None,
                            start_s=start,
                            completion_s=completion,
                            batch_id=batch_id,
                            lanes=len(batch),
                            rounds=0,
                            replayed=False,
                            error=str(error),
                        )
                    )
            if error is not None and strict:
                raise error
            heapq.heappush(
                events,
                (completion, 0, seq, "completion", tuple(batch_results)),
            )
            seq += 1
            batch_id += 1

        def admit() -> None:
            # Move backlogged queries into the admitted pool, globally
            # oldest first, honoring max_concurrent and tenant_quota.
            nonlocal waiting, num_admitted, in_flight, peak_concurrency
            while waiting > 0 and in_flight < cfg.max_concurrent:
                oldest = None
                for tenant in tenants:
                    if tenant_inflight[tenant] >= cfg.tenant_quota:
                        continue
                    for algo_queue in backlog[tenant].values():
                        if not algo_queue:
                            continue
                        head = algo_queue[0]
                        key = (head.arrival_s, head.query_id)
                        if oldest is None or key < oldest[0]:
                            oldest = (key, tenant, head.algorithm)
                if oldest is None:
                    return
                _, tenant, algo = oldest
                query = backlog[tenant][algo].popleft()
                admitted[tenant].setdefault(algo, deque()).append(query)
                waiting -= 1
                num_admitted += 1
                in_flight += 1
                tenant_inflight[tenant] += 1
                peak_concurrency = max(peak_concurrency, in_flight)

        def form_batch(now: float) -> None:
            # Only when the GPU is idle: oldest admitted query fixes the
            # algorithm, round-robin tenant fill up to query_lanes.
            nonlocal num_admitted, rr
            if num_admitted == 0 or gpu_free > now:
                return
            oldest = None
            for tenant in tenants:
                for algo_queue in admitted[tenant].values():
                    if not algo_queue:
                        continue
                    head = algo_queue[0]
                    key = (head.arrival_s, head.query_id)
                    if oldest is None or key < oldest[0]:
                        oldest = (key, head.algorithm)
            algo = oldest[1]
            batch: List[Query] = []
            progress = True
            while len(batch) < cfg.query_lanes and progress:
                progress = False
                for offset in range(len(tenants)):
                    if len(batch) >= cfg.query_lanes:
                        break
                    tenant = tenants[(rr + offset) % len(tenants)]
                    algo_queue = admitted[tenant].get(algo)
                    if not algo_queue:
                        continue
                    batch.append(algo_queue.popleft())
                    progress = True
            num_admitted -= len(batch)
            rr = (tenant_index[batch[0].tenant] + 1) % len(tenants)
            dispatch(batch, now)

        while events:
            now, _prio, _seq, kind, payload = heapq.heappop(events)
            if kind == "arrival":
                query = payload
                backlog[query.tenant].setdefault(
                    query.algorithm, deque()
                ).append(query)
                waiting += 1
            else:
                batch_results = payload
                for qr in batch_results:
                    results.append(qr)
                    tenant_inflight[qr.query.tenant] -= 1
                in_flight -= len(batch_results)
            admit()
            form_batch(now)

        results.sort(key=lambda r: r.query.query_id)
        makespan = max((r.completion_s for r in results), default=0.0)
        per_tenant: Dict[str, Dict[str, float]] = {}
        for tenant in tenants:
            rows = [r for r in results if r.query.tenant == tenant]
            done = [r for r in rows if r.status == "ok"]
            lats = sorted(r.latency_s for r in done)
            per_tenant[tenant] = {
                "queries": float(len(rows)),
                "completed": float(len(done)),
                "latency_p50_s": _percentile(lats, 0.50),
                "latency_p99_s": _percentile(lats, 0.99),
                "latency_max_s": lats[-1] if lats else 0.0,
            }
        return ServeReport(
            results=tuple(results),
            query_lanes=cfg.query_lanes,
            max_concurrent=cfg.max_concurrent,
            tenant_quota=cfg.tenant_quota,
            batches=batch_id,
            launches=launches,
            edge_lane_work=edge_lane_work,
            peak_concurrency=peak_concurrency,
            gpu_busy_s=gpu_busy,
            makespan_s=makespan,
            faults_injected=self._faults_injected,
            replays=replays,
            per_tenant=per_tenant,
        )
