"""The multi-tenant query server: admission, fairness, dispatch.

:class:`QueryServer` consumes a deterministic arrival trace
(:func:`repro.serve.query.generate_trace` — an open-loop ``Query``
timeline or a closed-loop :class:`~repro.serve.query.ClosedLoopTrace`)
on a **virtual clock** (discrete-event loop — no real threads, so the
same trace + seed always produces byte-identical reports):

- arrivals enqueue queries into per-(tenant, algorithm) FIFO backlogs;
  with ``max_queue`` set, the backlog is bounded and overflow is
  resolved by **deterministic load shedding**: the victim comes from
  the tenant with the largest backlog (tenant-fair) and is that
  tenant's *newest* query (oldest-shed-last), so a flooding tenant
  sheds its own flood while light tenants' queries survive.
- **admission** fires on every arrival/completion: oldest-first, it
  moves backlogged queries into the bounded *admitted pool* — at most
  ``max_concurrent`` queries admitted-or-executing overall and
  ``tenant_quota`` per tenant. A query whose deadline has already
  passed at admission time is **rejected** (strictly after — a query
  examined exactly at its deadline is still admitted; see
  :meth:`~repro.serve.query.Query.deadline_at` for the boundary rule).
- **batch formation** happens only when the modeled GPU is idle (one
  batch executes at a time, FIFO): the oldest admitted query fixes the
  batch's algorithm, and the batch fills **round-robin across
  tenants** — one query per tenant per pass — up to ``query_lanes``
  lanes.
- dispatch runs the batch through one
  :class:`~repro.serve.solver.MultiSourceSolver` on the shared
  :class:`~repro.serve.context.ServingContext`. In **brownout** mode
  the solve gets a time budget derived from the batch's tightest
  deadline; lanes that do not converge within it return partially-
  converged **degraded** answers carrying a certified bound
  (:data:`~repro.serve.solver.RESIDUAL_BOUND_KINDS`).

Deadline policies: ``"reject"`` refuses hopeless queries at admission
and returns late answers flagged ``deadline_missed``; ``"abort"``
additionally discards answers that complete after their deadline
(client gone away) with a structured
:class:`~repro.errors.DeadlineExceededError`.

Faults: a :class:`~repro.faults.plan.FaultPlan`'s compute faults are
keyed by the serve-wide launch counter. A scheduled GPU kill aborts the
in-flight batch mid-solve; with ``replay_on_fault`` the server charges
the wasted partial service time, waits out an exponential backoff
(``replay_backoff_s`` × ``backoff_multiplier``^attempt), and re-runs
the batch up to ``max_replays`` times — a storm that kills every
attempt exhausts the budget and aborts the batch cleanly with a
structured :class:`~repro.errors.QueryAbortedError` — never a silent
wrong answer, never a hang.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import (
    CheckpointStoreError,
    ConfigurationError,
    DeadlineExceededError,
    GPULostError,
    InjectedCrashError,
    QueryAbortedError,
    QueryShedError,
)
from repro.faults.plan import FaultPlan
from repro.faults.store import ServeJournal
from repro.serve.context import ServingContext
from repro.serve.query import (
    ClosedLoopTrace,
    Query,
    QueryResult,
    make_query_program,
)
from repro.serve.solver import MultiSourceSolver, residual_bound_kind

#: Valid deadline policies (see module docstring).
DEADLINE_POLICIES: Tuple[str, ...] = ("reject", "abort")


@dataclass(frozen=True)
class ServeConfig:
    """Admission/scheduling knobs of the query server."""

    #: Max same-algorithm queries batched into one multi-source solve.
    query_lanes: int = 8
    #: Max queries admitted-or-executing (bounds GPU-resident state).
    max_concurrent: int = 32
    #: Max admitted-or-executing queries per tenant (fairness quota).
    tenant_quota: int = 8
    #: Replay a batch killed mid-solve (else fail its queries cleanly).
    replay_on_fault: bool = True
    #: Round budget per solve.
    max_rounds: int = 100000
    #: Default relative deadline applied to queries without their own.
    deadline_s: Optional[float] = None
    #: What a deadline miss does: "reject" (refuse at admission, late
    #: answers flagged) or "abort" (additionally discard late answers).
    deadline_policy: str = "reject"
    #: Bound on the waiting backlog; ``None`` = unbounded (no shedding).
    max_queue: Optional[int] = None
    #: Return certified partially-converged answers instead of blowing
    #: the batch's tightest deadline.
    brownout: bool = False
    #: Replay attempts per killed batch (0 disables replay even with
    #: ``replay_on_fault``; the first attempt is not a replay).
    max_replays: int = 1
    #: Base backoff charged before each replay attempt.
    replay_backoff_s: float = 0.0
    #: Exponential backoff growth per additional replay.
    backoff_multiplier: float = 2.0

    def __post_init__(self) -> None:
        if self.query_lanes < 1:
            raise ConfigurationError("query_lanes must be >= 1")
        if self.max_concurrent < 1:
            raise ConfigurationError("max_concurrent must be >= 1")
        if self.tenant_quota < 1:
            raise ConfigurationError("tenant_quota must be >= 1")
        if self.max_rounds < 1:
            raise ConfigurationError("max_rounds must be >= 1")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ConfigurationError("deadline_s must be positive")
        if self.deadline_policy not in DEADLINE_POLICIES:
            raise ConfigurationError(
                f"deadline_policy must be one of {DEADLINE_POLICIES}, "
                f"got {self.deadline_policy!r}"
            )
        if self.max_queue is not None and self.max_queue < 1:
            raise ConfigurationError("max_queue must be >= 1 (or None)")
        if self.max_replays < 0:
            raise ConfigurationError("max_replays must be >= 0")
        if self.replay_backoff_s < 0:
            raise ConfigurationError("replay_backoff_s must be >= 0")
        if self.backoff_multiplier < 1:
            raise ConfigurationError("backoff_multiplier must be >= 1")


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation)."""
    if not sorted_values:
        return 0.0
    rank = max(1, -(-int(q * len(sorted_values) * 100) // 100))
    return float(sorted_values[min(rank, len(sorted_values)) - 1])


@dataclass
class ServeReport:
    """Everything one serve run produced, aggregates included."""

    results: Tuple[QueryResult, ...]
    query_lanes: int
    max_concurrent: int
    tenant_quota: int
    batches: int
    launches: int
    edge_lane_work: int
    peak_concurrency: int
    gpu_busy_s: float
    makespan_s: float
    faults_injected: int
    replays: int
    per_tenant: Dict[str, Dict[str, float]] = field(default_factory=dict)

    @property
    def completed(self) -> Tuple[QueryResult, ...]:
        return tuple(r for r in self.results if r.status == "ok")

    @property
    def degraded(self) -> Tuple[QueryResult, ...]:
        return tuple(r for r in self.results if r.status == "degraded")

    @property
    def answered(self) -> Tuple[QueryResult, ...]:
        """Results that carry an answer (fully converged or certified)."""
        return tuple(
            r for r in self.results if r.status in ("ok", "degraded")
        )

    @property
    def failed(self) -> Tuple[QueryResult, ...]:
        return tuple(
            r for r in self.results if r.status in ("failed", "aborted")
        )

    @property
    def shed(self) -> Tuple[QueryResult, ...]:
        return tuple(r for r in self.results if r.status == "shed")

    @property
    def rejected(self) -> Tuple[QueryResult, ...]:
        return tuple(r for r in self.results if r.status == "rejected")

    @property
    def goodput(self) -> Tuple[QueryResult, ...]:
        """Answered on time: the numerator of the goodput ratio."""
        return tuple(
            r for r in self.answered if not r.deadline_missed
        )

    def latency_percentile(self, q: float) -> float:
        lats = sorted(r.latency_s for r in self.answered)
        return _percentile(lats, q)

    @property
    def queries_per_s(self) -> float:
        done = len(self.answered)
        if done == 0 or self.makespan_s <= 0:
            return 0.0
        return done / self.makespan_s

    @property
    def goodput_per_s(self) -> float:
        good = len(self.goodput)
        if good == 0 or self.makespan_s <= 0:
            return 0.0
        return good / self.makespan_s

    def metrics(self) -> Dict[str, float]:
        """Flat metric dict for the sweep harness / BENCH artifacts."""
        answered = self.answered
        lats = sorted(r.latency_s for r in answered)
        mean = sum(lats) / len(lats) if lats else 0.0
        bounds = [
            r.residual_bound
            for r in self.degraded
            if r.residual_bound is not None
        ]
        return {
            "queries_total": float(len(self.results)),
            "queries_completed": float(len(self.completed)),
            "queries_degraded": float(len(self.degraded)),
            "queries_failed": float(len(self.failed)),
            "queries_shed": float(len(self.shed)),
            "queries_rejected": float(len(self.rejected)),
            "queries_replayed": float(
                sum(1 for r in self.results if r.replayed)
            ),
            "deadline_misses": float(
                sum(1 for r in self.results if r.deadline_missed)
            ),
            "goodput_queries": float(len(self.goodput)),
            "goodput_per_s": self.goodput_per_s,
            "residual_bound_max": max(bounds) if bounds else 0.0,
            "queries_per_s": self.queries_per_s,
            "latency_p50_s": _percentile(lats, 0.50),
            "latency_p99_s": _percentile(lats, 0.99),
            "latency_mean_s": mean,
            "latency_max_s": lats[-1] if lats else 0.0,
            "makespan_s": self.makespan_s,
            "gpu_busy_s": self.gpu_busy_s,
            "batches": float(self.batches),
            "launches": float(self.launches),
            "edge_lane_work": float(self.edge_lane_work),
            "peak_concurrency": float(self.peak_concurrency),
            "faults_injected": float(self.faults_injected),
            "replays": float(self.replays),
        }


class QueryServer:
    """Deterministic discrete-event admission loop over one context."""

    def __init__(
        self,
        context: ServingContext,
        config: Optional[ServeConfig] = None,
        fault_plan: Optional[FaultPlan] = None,
        journal_path: Optional[str] = None,
    ) -> None:
        self.context = context
        self.config = config or ServeConfig()
        self._compute_faults = (
            dict(fault_plan.compute_faults) if fault_plan else {}
        )
        self._launch_counter = 0
        self._faults_injected = 0
        #: Durable completion journal (see
        #: :class:`~repro.faults.store.ServeJournal`): every completed
        #: batch is appended; on restart, journaled batches replay their
        #: recorded outcome instead of re-solving, so the admitted-but-
        #: unanswered tail resumes deterministically.
        self._journal = (
            ServeJournal(journal_path) if journal_path else None
        )

    # ------------------------------------------------------------------
    # fault injection (serve-wide launch counter)
    # ------------------------------------------------------------------
    def _fault_hook(self, _solver_launch: int) -> None:
        index = self._launch_counter
        self._launch_counter += 1
        fault = self._compute_faults.get(index)
        if fault is None:
            return
        if getattr(fault, "crash", False):
            self._faults_injected += 1
            raise InjectedCrashError(
                f"whole-job crash at serve launch {index}",
                crash_point="serve-launch",
                round_index=index,
            )
        if fault.kill_gpu is not None:
            self._faults_injected += 1
            raise GPULostError(
                f"GPU {fault.kill_gpu} lost at serve launch {index}",
                gpu_id=fault.kill_gpu,
            )

    # ------------------------------------------------------------------
    # the event loop
    # ------------------------------------------------------------------
    def serve(
        self,
        trace: Union[Sequence[Query], ClosedLoopTrace],
        strict: bool = False,
    ) -> ServeReport:
        """Run the trace to completion and return the report.

        ``strict`` raises the first failed batch's
        :class:`~repro.errors.QueryAbortedError` instead of returning a
        report containing failed queries (shed/rejected/degraded
        outcomes are policy, not failures — strict mode reports them).
        """
        cfg = self.config
        closed = isinstance(trace, ClosedLoopTrace)
        if closed:
            sessions = trace.sessions
            all_queries = [t for session in sessions for t in session]
        else:
            all_queries = sorted(
                trace, key=lambda q: (q.arrival_s, q.query_id)
            )
        seen_ids = set()
        for query in all_queries:
            if query.query_id in seen_ids:
                raise ConfigurationError(
                    f"duplicate query_id {query.query_id} in trace"
                )
            seen_ids.add(query.query_id)
        tenants = sorted({q.tenant for q in all_queries})
        tenant_index = {t: i for i, t in enumerate(tenants)}

        # per-(tenant, algorithm) FIFO queues: the arrival backlog
        # (bounded by max_queue when set), then the bounded admitted
        # pool batches are drawn from.
        backlog: Dict[str, Dict[str, Deque[Query]]] = {
            t: {} for t in tenants
        }
        admitted: Dict[str, Dict[str, Deque[Query]]] = {
            t: {} for t in tenants
        }
        waiting = 0
        num_admitted = 0
        in_flight = 0  # admitted + executing
        tenant_inflight: Dict[str, int] = {t: 0 for t in tenants}
        gpu_free = 0.0
        rr = 0
        batch_id = 0
        peak_concurrency = 0
        gpu_busy = 0.0
        launches = 0
        edge_lane_work = 0
        replays = 0
        # Journaled outcomes from a previous (crashed) run of this
        # trace: batch_id -> verified record. The admission loop is
        # deterministic, so batch N re-forms with the same queries and
        # short-circuits to the recorded outcome.
        journal_replay = (
            self._journal.load() if self._journal is not None else {}
        )
        results: List[QueryResult] = []

        # event heap: (time, priority, seq, kind, payload); completions
        # (priority 0) beat simultaneous arrivals so capacity frees first.
        events: List = []
        seq = 0

        # closed-loop session bookkeeping: each session holds one query
        # in flight; the next template arrives think_s after the
        # previous query's terminal event.
        session_next: List[int] = [0] * (len(sessions) if closed else 0)
        query_session: Dict[int, int] = {}

        def push_arrival(query: Query) -> None:
            nonlocal seq
            heapq.heappush(
                events, (query.arrival_s, 1, seq, "arrival", query)
            )
            seq += 1

        def schedule_session(s_idx: int, now: float) -> None:
            pos = session_next[s_idx]
            if pos >= len(sessions[s_idx]):
                return
            session_next[s_idx] = pos + 1
            template = sessions[s_idx][pos]
            query = template.materialize(now + template.think_s)
            query_session[query.query_id] = s_idx
            push_arrival(query)

        if closed:
            for s_idx in range(len(sessions)):
                schedule_session(s_idx, 0.0)
        else:
            for query in all_queries:
                push_arrival(query)

        def record_result(qr: QueryResult) -> None:
            """Every terminal outcome funnels through here, so the
            closed-loop think-time clock ticks on *any* terminal state,
            answers and sheds alike."""
            results.append(qr)
            if closed:
                s_idx = query_session.get(qr.query.query_id)
                if s_idx is not None:
                    schedule_session(s_idx, qr.completion_s)

        def shed_excess(now: float) -> None:
            # Deterministic tenant-fair shedding: victim tenant is the
            # one with the largest backlog; victim query is the newest
            # of the tied tenants' backlogs (oldest-shed-last). The
            # just-arrived query is a candidate like any other.
            nonlocal waiting
            while cfg.max_queue is not None and waiting > cfg.max_queue:
                counts = {
                    t: sum(len(q) for q in backlog[t].values())
                    for t in tenants
                }
                top = max(counts.values())
                victim = None  # ((arrival_s, query_id), tenant, algo)
                for tenant in tenants:
                    if counts[tenant] != top:
                        continue
                    for algo, queue in backlog[tenant].items():
                        if not queue:
                            continue
                        tail = queue[-1]
                        key = (tail.arrival_s, tail.query_id)
                        if victim is None or key > victim[0]:
                            victim = (key, tenant, algo)
                assert victim is not None
                _, tenant, algo = victim
                query = backlog[tenant][algo].pop()
                waiting -= 1
                err = QueryShedError(
                    "queue full, query shed",
                    query_id=query.query_id,
                    tenant=query.tenant,
                    queue_depth=waiting + 1,
                )
                record_result(
                    QueryResult(
                        query=query,
                        status="shed",
                        digest=None,
                        start_s=now,
                        completion_s=now,
                        batch_id=-1,
                        lanes=0,
                        rounds=0,
                        error=str(err),
                    )
                )

        def dispatch(batch: List[Query], now: float) -> None:
            nonlocal gpu_free, batch_id, gpu_busy, launches
            nonlocal edge_lane_work, replays, seq
            record = journal_replay.get(batch_id)
            if record is not None:
                ids = [q.query_id for q in batch]
                if list(record["query_ids"]) != ids:
                    raise CheckpointStoreError(
                        "serve journal batch does not match the "
                        f"re-formed batch (journal {record['query_ids']}"
                        f" vs {ids})",
                        checkpoint=batch_id,
                        kind="journal-mismatch",
                    )
                completion = float(record["completion"])
                gpu_free = completion
                gpu_busy += float(record["service"])
                launches += int(record["launches"])
                edge_lane_work += record["edge_lane_work"]
                replays += int(record["replays"])
                batch_results = []
                for query, rec in zip(batch, record["results"]):
                    # Degraded states are not journaled: the recorded
                    # digest still certifies the answer, but the vector
                    # itself must be re-derived if needed.
                    batch_results.append(
                        QueryResult(
                            query=query,
                            status=rec["status"],
                            digest=rec["digest"],
                            start_s=float(record["start"]),
                            completion_s=completion,
                            batch_id=batch_id,
                            lanes=len(batch),
                            rounds=int(rec["rounds"]),
                            replayed=bool(rec["replayed"]),
                            error=rec["error"],
                            attempts=int(rec["attempts"]),
                            bound_kind=rec["bound_kind"],
                            residual_bound=rec["residual_bound"],
                            deadline_missed=bool(rec["deadline_missed"]),
                        )
                    )
                heapq.heappush(
                    events,
                    (completion, 0, seq, "completion",
                     tuple(batch_results)),
                )
                seq += 1
                batch_id += 1
                return
            programs = [make_query_program(q) for q in batch]
            solver = MultiSourceSolver(
                self.context,
                programs,
                max_rounds=cfg.max_rounds,
                fault_hook=self._fault_hook,
            )
            start = max(now, gpu_free)
            deadlines = [
                q.deadline_at(cfg.deadline_s)
                for q in batch
            ]
            budget: Optional[float] = None
            if cfg.brownout:
                firm = [d for d in deadlines if d is not None]
                if firm:
                    # The batch's tightest deadline sets the compute
                    # budget; a stale batch (already past deadline)
                    # still gets its mandatory first round.
                    budget = max(min(firm) - start, 0.0)
            wasted = 0.0
            backoff_total = 0.0
            attempts = 0
            result = None
            replayed = False
            error: Optional[QueryAbortedError] = None
            while True:
                attempts += 1
                try:
                    result = solver.solve(time_budget_s=budget)
                    break
                except GPULostError as exc:
                    wasted += float(
                        getattr(exc, "modeled_seconds_completed", 0.0)
                    )
                    if not cfg.replay_on_fault or cfg.max_replays == 0:
                        error = QueryAbortedError(
                            "batch killed mid-solve, replay disabled",
                            query_ids=[q.query_id for q in batch],
                            tenants=[q.tenant for q in batch],
                            batch_id=batch_id,
                            launch_index=getattr(
                                exc, "launches_completed", None
                            ),
                        )
                        break
                    if attempts > cfg.max_replays:
                        error = QueryAbortedError(
                            f"batch replay budget exhausted after "
                            f"{attempts} attempts",
                            query_ids=[q.query_id for q in batch],
                            tenants=[q.tenant for q in batch],
                            batch_id=batch_id,
                            launch_index=getattr(
                                exc, "launches_completed", None
                            ),
                        )
                        break
                    backoff_total += cfg.replay_backoff_s * (
                        cfg.backoff_multiplier ** (attempts - 1)
                    )
            if result is not None:
                replayed = attempts > 1
                replays += len(batch) * (attempts - 1)
                service = wasted + result.modeled_seconds
                launches += result.launches
                edge_lane_work += result.edge_lane_work
            else:
                service = wasted
            # Backoff is wall time the GPU sits idle between attempts:
            # it delays completion but is not busy time.
            completion = start + service + backoff_total
            gpu_free = completion
            gpu_busy += service
            batch_results = []
            for lane, query in enumerate(batch):
                deadline = deadlines[lane]
                missed = deadline is not None and completion > deadline
                if result is None:
                    status = (
                        "failed"
                        if not cfg.replay_on_fault or cfg.max_replays == 0
                        else "aborted"
                    )
                    batch_results.append(
                        QueryResult(
                            query=query,
                            status=status,
                            digest=None,
                            start_s=start,
                            completion_s=completion,
                            batch_id=batch_id,
                            lanes=len(batch),
                            rounds=0,
                            replayed=False,
                            error=str(error),
                            attempts=attempts,
                            deadline_missed=missed,
                        )
                    )
                    continue
                if missed and cfg.deadline_policy == "abort":
                    miss_err = DeadlineExceededError(
                        "answer completed after deadline, discarded",
                        query_id=query.query_id,
                        tenant=query.tenant,
                        deadline_s=deadline,
                        detected_s=completion,
                    )
                    batch_results.append(
                        QueryResult(
                            query=query,
                            status="aborted",
                            digest=None,
                            start_s=start,
                            completion_s=completion,
                            batch_id=batch_id,
                            lanes=len(batch),
                            rounds=result.lane_rounds[lane],
                            replayed=replayed,
                            error=str(miss_err),
                            attempts=attempts,
                            deadline_missed=True,
                        )
                    )
                    continue
                if result.lane_converged[lane]:
                    batch_results.append(
                        QueryResult(
                            query=query,
                            status="ok",
                            digest=result.digests[lane],
                            start_s=start,
                            completion_s=completion,
                            batch_id=batch_id,
                            lanes=len(batch),
                            rounds=result.lane_rounds[lane],
                            replayed=replayed,
                            attempts=attempts,
                            deadline_missed=missed,
                        )
                    )
                    continue
                kind = residual_bound_kind(query.algorithm)
                bound: Optional[float] = None
                if kind == "l1":
                    program = programs[lane]
                    damping = float(program.damping)
                    tolerance = float(program.tolerance)
                    n = self.context.graph.num_vertices
                    # ‖x_ref − x‖₁ ≤ (‖r_meas‖₁ + 2·n·tol)/(1−d):
                    # r_meas misses up to tol per vertex (write-gate
                    # discards sub-tolerance drift) and the exact
                    # reference itself converges only to tol.
                    bound = (
                        result.lane_residuals[lane] + 2.0 * n * tolerance
                    ) / (1.0 - damping)
                batch_results.append(
                    QueryResult(
                        query=query,
                        status="degraded",
                        digest=result.digests[lane],
                        start_s=start,
                        completion_s=completion,
                        batch_id=batch_id,
                        lanes=len(batch),
                        rounds=result.lane_rounds[lane],
                        replayed=replayed,
                        attempts=attempts,
                        bound_kind=kind,
                        residual_bound=bound,
                        deadline_missed=missed,
                        states=result.states[lane].copy(),
                    )
                )
            if error is not None and strict:
                raise error
            if self._journal is not None:
                self._journal.append(
                    {
                        "batch_id": batch_id,
                        "query_ids": [q.query_id for q in batch],
                        "start": start,
                        "completion": completion,
                        "service": service,
                        "launches": (
                            result.launches if result is not None else 0
                        ),
                        "edge_lane_work": (
                            result.edge_lane_work
                            if result is not None
                            else 0
                        ),
                        "replays": (
                            len(batch) * (attempts - 1)
                            if result is not None
                            else 0
                        ),
                        "results": [
                            {
                                "query_id": r.query.query_id,
                                "status": r.status,
                                "digest": r.digest,
                                "rounds": r.rounds,
                                "replayed": r.replayed,
                                "error": r.error,
                                "attempts": r.attempts,
                                "bound_kind": r.bound_kind,
                                "residual_bound": r.residual_bound,
                                "deadline_missed": r.deadline_missed,
                            }
                            for r in batch_results
                        ],
                    }
                )
            heapq.heappush(
                events,
                (completion, 0, seq, "completion", tuple(batch_results)),
            )
            seq += 1
            batch_id += 1

        def admit(now: float) -> None:
            # Move backlogged queries into the admitted pool, globally
            # oldest first, honoring max_concurrent and tenant_quota.
            # Queries whose deadline already passed (strictly) are
            # rejected here instead of occupying a lane.
            nonlocal waiting, num_admitted, in_flight, peak_concurrency
            while waiting > 0 and in_flight < cfg.max_concurrent:
                oldest = None
                for tenant in tenants:
                    if tenant_inflight[tenant] >= cfg.tenant_quota:
                        continue
                    for algo_queue in backlog[tenant].values():
                        if not algo_queue:
                            continue
                        head = algo_queue[0]
                        key = (head.arrival_s, head.query_id)
                        if oldest is None or key < oldest[0]:
                            oldest = (key, tenant, head.algorithm)
                if oldest is None:
                    return
                _, tenant, algo = oldest
                query = backlog[tenant][algo].popleft()
                waiting -= 1
                deadline = query.deadline_at(cfg.deadline_s)
                if deadline is not None and now > deadline:
                    err = DeadlineExceededError(
                        "deadline passed before admission",
                        query_id=query.query_id,
                        tenant=query.tenant,
                        deadline_s=deadline,
                        detected_s=now,
                    )
                    record_result(
                        QueryResult(
                            query=query,
                            status="rejected",
                            digest=None,
                            start_s=now,
                            completion_s=now,
                            batch_id=-1,
                            lanes=0,
                            rounds=0,
                            error=str(err),
                            deadline_missed=True,
                        )
                    )
                    continue
                admitted[tenant].setdefault(algo, deque()).append(query)
                num_admitted += 1
                in_flight += 1
                tenant_inflight[tenant] += 1
                peak_concurrency = max(peak_concurrency, in_flight)

        def form_batch(now: float) -> None:
            # Only when the GPU is idle: oldest admitted query fixes the
            # algorithm, round-robin tenant fill up to query_lanes.
            nonlocal num_admitted, rr
            if num_admitted == 0 or gpu_free > now:
                return
            oldest = None
            for tenant in tenants:
                for algo_queue in admitted[tenant].values():
                    if not algo_queue:
                        continue
                    head = algo_queue[0]
                    key = (head.arrival_s, head.query_id)
                    if oldest is None or key < oldest[0]:
                        oldest = (key, head.algorithm)
            algo = oldest[1]
            batch: List[Query] = []
            progress = True
            while len(batch) < cfg.query_lanes and progress:
                progress = False
                for offset in range(len(tenants)):
                    if len(batch) >= cfg.query_lanes:
                        break
                    tenant = tenants[(rr + offset) % len(tenants)]
                    algo_queue = admitted[tenant].get(algo)
                    if not algo_queue:
                        continue
                    batch.append(algo_queue.popleft())
                    progress = True
            num_admitted -= len(batch)
            rr = (tenant_index[batch[0].tenant] + 1) % len(tenants)
            dispatch(batch, now)

        while events:
            now, _prio, _seq, kind, payload = heapq.heappop(events)
            if kind == "arrival":
                query = payload
                backlog[query.tenant].setdefault(
                    query.algorithm, deque()
                ).append(query)
                waiting += 1
                shed_excess(now)
            else:
                batch_results = payload
                for qr in batch_results:
                    record_result(qr)
                    tenant_inflight[qr.query.tenant] -= 1
                in_flight -= len(batch_results)
            admit(now)
            form_batch(now)

        results.sort(key=lambda r: r.query.query_id)
        makespan = max((r.completion_s for r in results), default=0.0)
        per_tenant: Dict[str, Dict[str, float]] = {}
        for tenant in tenants:
            rows = [r for r in results if r.query.tenant == tenant]
            done = [r for r in rows if r.status in ("ok", "degraded")]
            good = [r for r in done if not r.deadline_missed]
            lats = sorted(r.latency_s for r in done)
            per_tenant[tenant] = {
                "queries": float(len(rows)),
                "completed": float(
                    sum(1 for r in rows if r.status == "ok")
                ),
                "degraded": float(
                    sum(1 for r in rows if r.status == "degraded")
                ),
                "shed": float(
                    sum(1 for r in rows if r.status == "shed")
                ),
                "goodput": float(len(good)),
                "latency_p50_s": _percentile(lats, 0.50),
                "latency_p99_s": _percentile(lats, 0.99),
                "latency_max_s": lats[-1] if lats else 0.0,
            }
        return ServeReport(
            results=tuple(results),
            query_lanes=cfg.query_lanes,
            max_concurrent=cfg.max_concurrent,
            tenant_quota=cfg.tenant_quota,
            batches=batch_id,
            launches=launches,
            edge_lane_work=edge_lane_work,
            peak_concurrency=peak_concurrency,
            gpu_busy_s=gpu_busy,
            makespan_s=makespan,
            faults_injected=self._faults_injected,
            replays=replays,
            per_tenant=per_tenant,
        )
