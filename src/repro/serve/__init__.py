"""Multi-tenant query serving over one shared preprocessed graph.

The serving layer turns the batch system into a service: many tenants
issue concurrent point queries (SSSP/BFS from a source, reachability
from a source set, personalized pagerank from a seed set) against one
:class:`~repro.serve.context.ServingContext` — a single path
decomposition + dependency DAG shared by every query. Same-algorithm
queries batch into multi-source **lane kernels**
(:mod:`repro.kernels.lanes`), bit-identical per lane to sequential
single-source runs; a deterministic discrete-event admission loop
(:class:`~repro.serve.server.QueryServer`) provides bounded concurrency
and per-tenant fairness. See ``docs/serving.md``.
"""

from repro.serve.context import ServingContext
from repro.serve.query import (
    SERVE_ALGORITHMS,
    Query,
    QueryResult,
    generate_trace,
    make_query_program,
)
from repro.serve.server import QueryServer, ServeConfig, ServeReport
from repro.serve.solver import (
    KERNEL_LAUNCH_OVERHEAD_S,
    MultiSourceSolver,
    SolveResult,
    lane_digest,
)

__all__ = [
    "SERVE_ALGORITHMS",
    "Query",
    "QueryResult",
    "QueryServer",
    "ServeConfig",
    "ServeReport",
    "ServingContext",
    "MultiSourceSolver",
    "SolveResult",
    "KERNEL_LAUNCH_OVERHEAD_S",
    "generate_trace",
    "make_query_program",
    "lane_digest",
]
