"""Shared serving context: one preprocessing, many queries.

The DiGraph paper amortizes path decomposition across *rounds*; the
serving layer amortizes it across *queries*. A :class:`ServingContext`
runs :meth:`DiGraphEngine.preprocess` exactly once — Algorithm-1 path
decomposition, head-to-tail merging, the path dependency DAG — and every
query batch the server dispatches reuses it.

What the queries actually reuse is the **layer schedule**: each vertex
gets the layer of the deepest dependency-DAG layer among the paths it
lies on, and the multi-source solver sweeps vertices layer by layer
(Gauss-Seidel across layers, Jacobi within one), so updates flow down
the DAG in one round the way the path engine's Observation 1 propagates
them along a path. Building that schedule costs one DAG traversal at
context construction and zero per query.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.engine import DiGraphConfig, DiGraphEngine, Preprocessed
from repro.errors import ConfigurationError
from repro.graph.digraph import DiGraphCSR
from repro.gpu.config import MachineSpec, SCALED_MACHINE


class ServingContext:
    """Preprocessed graph + layer schedule shared by all served queries."""

    def __init__(
        self,
        graph: DiGraphCSR,
        machine_spec: Optional[MachineSpec] = None,
        engine_config: Optional[DiGraphConfig] = None,
        graph_name: str = "graph",
    ) -> None:
        if graph.num_vertices == 0:
            raise ConfigurationError("cannot serve an empty graph")
        self.graph = graph
        self.graph_name = graph_name
        self.spec = machine_spec or SCALED_MACHINE
        self.engine = DiGraphEngine(
            machine_spec=self.spec, config=engine_config
        )
        self.preprocessed: Preprocessed = self.engine.preprocess(graph)
        self.vertex_layers = self._derive_vertex_layers()
        self.layer_batches = self._build_layer_batches()

    # ------------------------------------------------------------------
    # layer schedule
    # ------------------------------------------------------------------
    def _derive_vertex_layers(self) -> np.ndarray:
        """Per-vertex layer: deepest DAG layer among containing paths.

        A vertex on several paths must wait for the *latest* of them
        (its final value can depend on every path that writes it), hence
        the max. Vertices on no path (isolated) go to layer 0.
        """
        dag = self.preprocessed.dag
        layers = np.zeros(self.graph.num_vertices, dtype=np.int64)
        for v, path_ids in self.preprocessed.path_set.paths_of_vertex().items():
            layers[v] = max(dag.layer_of_path(p) for p in path_ids)
        return layers

    def _build_layer_batches(self) -> List[np.ndarray]:
        """Vertices grouped by layer, ascending layer, ascending id.

        This is the deterministic sweep order every solver (vectorized
        lane kernels and the scalar golden reference alike) uses, so
        batched and single-source runs see identical schedules.
        """
        num_layers = int(self.vertex_layers.max()) + 1
        order = np.argsort(self.vertex_layers, kind="stable")
        sorted_layers = self.vertex_layers[order]
        bounds = np.searchsorted(
            sorted_layers, np.arange(num_layers + 1), side="left"
        )
        return [
            order[bounds[i] : bounds[i + 1]]
            for i in range(num_layers)
            if bounds[i + 1] > bounds[i]
        ]

    @property
    def num_layers(self) -> int:
        return len(self.layer_batches)

    def __repr__(self) -> str:
        return (
            f"ServingContext(graph={self.graph_name!r}, "
            f"n={self.graph.num_vertices}, layers={self.num_layers}, "
            f"paths={self.preprocessed.path_set.num_paths})"
        )
