"""Weakly connected components via label propagation (extension).

State is a component label, initialized to the vertex id; each vertex
adopts the minimum label among itself and its neighbors in *both*
directions. The iteration is monotone non-increasing with a finite label
domain, so any execution order converges, and the fixed point labels each
weak component by its minimum vertex id (verifiable against the union-find
oracle in :mod:`repro.graph.traversal`).
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from repro.graph.digraph import DiGraphCSR
from repro.model.gas import GatherEdge, VertexProgram


class WeaklyConnectedComponents(VertexProgram):
    """Min-label propagation over the underlying undirected graph."""

    name = "wcc"
    tolerance = 0.0

    def initial_states(self, graph: DiGraphCSR) -> np.ndarray:
        return np.arange(graph.num_vertices, dtype=np.float64)

    @property
    def identity(self) -> float:
        return float("inf")

    def gather(self, src_state: float, weight: float, src: int, dst: int) -> float:
        return src_state

    def accumulate(self, a: float, b: float) -> float:
        return a if a <= b else b

    def gather_edges(self, graph: DiGraphCSR, v: int) -> Iterator[GatherEdge]:
        for u in graph.predecessors(v):
            yield int(u), 1.0
        for u in graph.successors(v):
            yield int(u), 1.0

    def gather_degree(self, graph: DiGraphCSR, v: int) -> int:
        return graph.in_degree(v) + graph.out_degree(v)

    def apply(self, v: int, old_state: float, acc: float) -> float:
        return acc if acc < old_state else old_state

    def has_converged(self, old_state: float, new_state: float) -> bool:
        return new_state == old_state

    def dependents(self, graph: DiGraphCSR, v: int) -> Iterable[int]:
        for u in graph.successors(v):
            yield int(u)
        for u in graph.predecessors(v):
            yield int(u)
