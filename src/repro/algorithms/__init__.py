"""GAS vertex programs.

The paper's four benchmarks — PageRank, adsorption, SSSP, and k-core — plus
BFS and weakly-connected components as extensions. Each is a
:class:`~repro.model.gas.VertexProgram`, so every engine runs them
unchanged.
"""

from repro.algorithms.adsorption import Adsorption
from repro.algorithms.bfs import BFSLevels
from repro.algorithms.kcore import KCore
from repro.algorithms.pagerank import PageRank
from repro.algorithms.ppr import PersonalizedPageRank
from repro.algorithms.reachability import Reachability
from repro.algorithms.sssp import SSSP
from repro.algorithms.wcc import WeaklyConnectedComponents

#: The paper's benchmark suite in Section 4 order, as factories taking a
#: graph (some programs need graph-derived parameters such as SSSP source).
PAPER_BENCHMARKS = ("pagerank", "adsorption", "sssp", "kcore")

__all__ = [
    "PageRank",
    "Adsorption",
    "SSSP",
    "KCore",
    "BFSLevels",
    "PersonalizedPageRank",
    "Reachability",
    "WeaklyConnectedComponents",
    "PAPER_BENCHMARKS",
    "make_program",
]


def make_program(name: str, graph, **kwargs):
    """Build a benchmark program by name for a given graph.

    Centralizes the per-algorithm setup the harness needs: SSSP and BFS
    pick a deterministic high-out-degree source unless one is given.
    """
    import numpy as np

    name = name.lower()
    if name == "pagerank":
        return PageRank(**kwargs)
    if name == "adsorption":
        return Adsorption(**kwargs)
    if name == "sssp":
        if "source" not in kwargs:
            kwargs["source"] = int(np.argmax(graph.out_degree()))
        return SSSP(**kwargs)
    if name == "kcore":
        return KCore(**kwargs)
    if name == "bfs":
        if "source" not in kwargs:
            kwargs["source"] = int(np.argmax(graph.out_degree()))
        return BFSLevels(**kwargs)
    if name == "wcc":
        return WeaklyConnectedComponents(**kwargs)
    if name == "ppr":
        if "seeds" not in kwargs:
            kwargs["seeds"] = [int(np.argmax(graph.out_degree()))]
        return PersonalizedPageRank(**kwargs)
    if name == "reachability":
        if "sources" not in kwargs:
            kwargs["sources"] = [int(np.argmax(graph.out_degree()))]
        return Reachability(**kwargs)
    raise ValueError(f"unknown algorithm {name!r}")
