"""Full k-core decomposition (coreness) built on the KCore program.

The paper's k-core benchmark [14] tests membership for one ``k``; the
decomposition application wants every vertex's *coreness* — the largest
``k`` whose k-core still contains it. :func:`compute_coreness` obtains it
by running the membership program over increasing ``k`` on any engine:
the k-core is nested (the (k+1)-core is a subset of the k-core), so the
last ``k`` at which a vertex survives is its coreness.

A :func:`peeling_coreness` reference oracle (the classical O(E)
bucket-peeling algorithm on the undirected view) validates the
engine-driven result in the tests.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.algorithms.kcore import KCore
from repro.graph.digraph import DiGraphCSR


def compute_coreness(
    graph: DiGraphCSR,
    engine,
    max_k: Optional[int] = None,
    graph_name: str = "graph",
) -> np.ndarray:
    """Coreness per vertex, via engine-run k-core membership sweeps.

    ``engine`` is any object with the common ``run(graph, program)``
    interface (DiGraph, either baseline, or an ablation variant). The
    sweep stops at the first ``k`` whose core is empty, or at ``max_k``.
    """
    n = graph.num_vertices
    coreness = np.zeros(n, dtype=np.int64)
    if n == 0:
        return coreness
    degrees = graph.degree()
    ceiling = int(degrees.max()) if max_k is None else max_k
    for k in range(1, ceiling + 1):
        result = engine.run(graph, KCore(k=k), graph_name=graph_name)
        alive = result.states > 0.0
        if not alive.any():
            break
        coreness[alive] = k
    return coreness


def peeling_coreness(graph: DiGraphCSR) -> np.ndarray:
    """Reference oracle: classical bucket peeling on the undirected view."""
    n = graph.num_vertices
    degree = graph.degree().astype(np.int64).copy()
    coreness = np.zeros(n, dtype=np.int64)
    removed = np.zeros(n, dtype=bool)
    # neighbors in the undirected view
    neighbors = [
        np.concatenate([graph.successors(v), graph.predecessors(v)])
        for v in range(n)
    ]
    order = list(range(n))
    current_core = 0
    for _ in range(n):
        candidates = [v for v in order if not removed[v]]
        if not candidates:
            break
        v = min(candidates, key=lambda u: degree[u])
        current_core = max(current_core, int(degree[v]))
        coreness[v] = current_core
        removed[v] = True
        for u in neighbors[v]:
            if not removed[u]:
                degree[u] -= 1
    return coreness
