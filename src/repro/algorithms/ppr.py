"""Personalized PageRank (extension beyond the paper's four benchmarks).

Identical recurrence to PageRank except the teleport mass concentrates on
a seed set instead of spreading uniformly:
``ppr(v) = (1 - d) * seed(v) + d * sum_{u->v} ppr(u) / outdeg(u)``.
Used by the link-prediction / recommendation applications the paper's
introduction motivates [22].
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.graph.digraph import DiGraphCSR
from repro.model.gas import VertexProgram


class PersonalizedPageRank(VertexProgram):
    """PPR with teleport mass on ``seeds`` (uniformly split)."""

    name = "ppr"

    def __init__(
        self,
        seeds: Sequence[int],
        damping: float = 0.85,
        tolerance: float = 1e-5,
    ) -> None:
        if not seeds:
            raise ConfigurationError("PPR needs at least one seed vertex")
        if not 0.0 < damping < 1.0:
            raise ConfigurationError("damping must be in (0, 1)")
        if tolerance <= 0:
            raise ConfigurationError("tolerance must be positive")
        self.seeds = tuple(sorted(set(int(s) for s in seeds)))
        self.damping = damping
        self.tolerance = tolerance
        self._out_degree: Optional[np.ndarray] = None
        self._teleport: Optional[np.ndarray] = None

    def initial_states(self, graph: DiGraphCSR) -> np.ndarray:
        if self.seeds[-1] >= graph.num_vertices:
            raise ConfigurationError(
                f"seed {self.seeds[-1]} out of range for "
                f"{graph.num_vertices} vertices"
            )
        self._out_degree = graph.out_degree().astype(np.float64)
        teleport = np.zeros(graph.num_vertices, dtype=np.float64)
        teleport[list(self.seeds)] = 1.0 / len(self.seeds)
        self._teleport = teleport
        return teleport.copy()

    @property
    def identity(self) -> float:
        return 0.0

    def gather(self, src_state: float, weight: float, src: int, dst: int) -> float:
        out_deg = self._out_degree[src] if self._out_degree is not None else 1.0
        if out_deg == 0:
            return 0.0
        return src_state / out_deg

    def accumulate(self, a: float, b: float) -> float:
        return a + b

    def apply(self, v: int, old_state: float, acc: float) -> float:
        assert self._teleport is not None
        return (1.0 - self.damping) * self._teleport[v] + self.damping * acc
