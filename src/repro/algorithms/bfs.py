"""BFS hop levels as a GAS program (extension beyond the paper's four).

Identical structure to SSSP with unit weights; kept separate because BFS
levels are integers and the program pins the gather contribution to
``level(u) + 1``, which several tests use as a ground-truth oracle against
:func:`repro.graph.traversal.bfs_levels`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.graph.digraph import DiGraphCSR
from repro.model.gas import VertexProgram

INFINITY = float("inf")


class BFSLevels(VertexProgram):
    """Hop distance from ``source``; unreached vertices stay at infinity."""

    name = "bfs"
    tolerance = 0.0

    def __init__(self, source: int = 0) -> None:
        if source < 0:
            raise ConfigurationError("source must be non-negative")
        self.source = source

    def initial_states(self, graph: DiGraphCSR) -> np.ndarray:
        if self.source >= graph.num_vertices:
            raise ConfigurationError(
                f"source {self.source} out of range for "
                f"{graph.num_vertices} vertices"
            )
        states = np.full(graph.num_vertices, INFINITY, dtype=np.float64)
        states[self.source] = 0.0
        return states

    def initial_active(self, graph: DiGraphCSR) -> np.ndarray:
        active = np.zeros(graph.num_vertices, dtype=bool)
        active[self.source] = True
        for u in graph.successors(self.source):
            active[u] = True
        return active

    @property
    def identity(self) -> float:
        return INFINITY

    def gather(self, src_state: float, weight: float, src: int, dst: int) -> float:
        if src_state == INFINITY:
            return INFINITY
        return src_state + 1.0

    def accumulate(self, a: float, b: float) -> float:
        return a if a <= b else b

    def apply(self, v: int, old_state: float, acc: float) -> float:
        if v == self.source:
            return 0.0
        return acc if acc < old_state else old_state

    def has_converged(self, old_state: float, new_state: float) -> bool:
        return new_state == old_state
