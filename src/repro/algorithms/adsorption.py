"""Adsorption label propagation (Baluja et al., 2008).

The paper's second benchmark. Each vertex blends an *injected* prior with
the weight-normalized average of its in-neighbors' labels:

``label(v) = p_inj * injection(v) + p_cont * sum_{u->v} w_norm(u,v) * label(u)``

with ``p_inj + p_cont = 1`` and in-weights normalized per destination. The
scalar-label special case used here keeps the GAS state a single float
while preserving the algorithm's propagation structure (it is the same
linear fixed-point iteration family as PageRank with per-edge weights).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.graph.digraph import DiGraphCSR
from repro.model.gas import VertexProgram


class Adsorption(VertexProgram):
    """Adsorption with injection probability ``p_inj``.

    Parameters
    ----------
    p_inj:
        Weight of the injected prior; ``p_cont = 1 - p_inj`` continues
        propagation. Must be in (0, 1) so the iteration contracts.
    injection_seed:
        Seed for the deterministic random prior (standing in for the
        application-supplied label seeds).
    injection:
        Explicit per-vertex prior overriding the seeded draw. The
        metamorphic conformance checks need this: the seeded prior is a
        function of the vertex *id*, so relabeling a graph would change
        the problem instead of just renaming it.
    """

    name = "adsorption"

    def __init__(
        self,
        p_inj: float = 0.25,
        tolerance: float = 1e-4,
        injection_seed: int = 13,
        injection: Optional[np.ndarray] = None,
    ) -> None:
        if not 0.0 < p_inj < 1.0:
            raise ConfigurationError("p_inj must be in (0, 1)")
        if tolerance <= 0:
            raise ConfigurationError("tolerance must be positive")
        self.p_inj = p_inj
        self.p_cont = 1.0 - p_inj
        self.tolerance = tolerance
        self.injection_seed = injection_seed
        self._injection_override = (
            None
            if injection is None
            else np.asarray(injection, dtype=np.float64)
        )
        self._injection: Optional[np.ndarray] = None
        self._in_weight_sum: Optional[np.ndarray] = None

    def initial_states(self, graph: DiGraphCSR) -> np.ndarray:
        if self._injection_override is not None:
            if self._injection_override.size != graph.num_vertices:
                raise ConfigurationError(
                    "injection array must have one entry per vertex"
                )
            self._injection = self._injection_override.copy()
        else:
            rng = np.random.default_rng(self.injection_seed)
            self._injection = rng.uniform(
                0.0, 1.0, size=graph.num_vertices
            )
        # Per-destination weight normalizer for the weighted average.
        sums = np.zeros(graph.num_vertices, dtype=np.float64)
        for v in range(graph.num_vertices):
            sums[v] = float(graph.in_weights(v).sum())
        self._in_weight_sum = sums
        return self._injection.copy()

    @property
    def identity(self) -> float:
        return 0.0

    def gather(self, src_state: float, weight: float, src: int, dst: int) -> float:
        assert self._in_weight_sum is not None
        denom = self._in_weight_sum[dst]
        if denom == 0:
            return 0.0
        return src_state * (weight / denom)

    def accumulate(self, a: float, b: float) -> float:
        return a + b

    def apply(self, v: int, old_state: float, acc: float) -> float:
        assert self._injection is not None
        return self.p_inj * self._injection[v] + self.p_cont * acc
