"""PageRank (Page et al., 1998) as a pull-style GAS program.

State is the rank. A vertex's update is
``rank(v) = (1 - d) + d * sum_{u -> v} rank(u) / outdeg(u)``
(the non-normalized formulation common in graph systems, whose fixed point
is ``n`` times the probability-normalized one). The update is a contraction
for ``d < 1``, so synchronous, asynchronous, and path-sequential execution
all converge to the same fixed point — Gauss-Seidel-style orderings just
get there in fewer updates, which is the effect Figs. 6 and 11 measure.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.graph.digraph import DiGraphCSR
from repro.model.gas import VertexProgram


class PageRank(VertexProgram):
    """PageRank with damping ``d`` and absolute tolerance."""

    name = "pagerank"

    def __init__(self, damping: float = 0.85, tolerance: float = 1e-4) -> None:
        if not 0.0 < damping < 1.0:
            raise ConfigurationError("damping must be in (0, 1)")
        if tolerance <= 0:
            raise ConfigurationError("tolerance must be positive")
        self.damping = damping
        self.tolerance = tolerance
        self._out_degree: np.ndarray | None = None

    def initial_states(self, graph: DiGraphCSR) -> np.ndarray:
        # Cache out-degrees: gather divides by the source's out-degree.
        self._out_degree = graph.out_degree().astype(np.float64)
        return np.full(graph.num_vertices, 1.0, dtype=np.float64)

    @property
    def identity(self) -> float:
        return 0.0

    def gather(self, src_state: float, weight: float, src: int, dst: int) -> float:
        out_deg = self._out_degree[src] if self._out_degree is not None else 1.0
        if out_deg == 0:
            return 0.0
        return src_state / out_deg

    def accumulate(self, a: float, b: float) -> float:
        return a + b

    def apply(self, v: int, old_state: float, acc: float) -> float:
        return (1.0 - self.damping) + self.damping * acc
