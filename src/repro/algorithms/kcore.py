"""k-core membership (Khaouid et al., 2015) as a GAS program.

A vertex survives the k-core if at least ``k`` of its (undirected)
neighbors survive. State is 1.0 (alive) or 0.0 (peeled); the update peels
a vertex whose alive-neighbor count drops below ``k``, and peeling is
permanent, so the iteration is monotone and converges to the k-core of the
underlying undirected graph — matching the k-core-decomposition benchmark
the paper cites.

Unlike the other programs, k-core gathers over **both** edge directions
(a neighbor is a neighbor regardless of edge orientation), so
:meth:`dependents` is symmetric too.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from repro.errors import ConfigurationError
from repro.graph.digraph import DiGraphCSR
from repro.model.gas import GatherEdge, VertexProgram


class KCore(VertexProgram):
    """Membership in the ``k``-core of the underlying undirected graph."""

    name = "kcore"
    tolerance = 0.0  # states are exactly 0.0 or 1.0

    def __init__(self, k: int = 3) -> None:
        if k < 1:
            raise ConfigurationError("k must be >= 1")
        self.k = k

    def initial_states(self, graph: DiGraphCSR) -> np.ndarray:
        return np.ones(graph.num_vertices, dtype=np.float64)

    @property
    def identity(self) -> float:
        return 0.0

    def gather(self, src_state: float, weight: float, src: int, dst: int) -> float:
        # Contribution is 1 per alive neighbor, regardless of weight.
        return 1.0 if src_state > 0.0 else 0.0

    def accumulate(self, a: float, b: float) -> float:
        return a + b

    def gather_edges(self, graph: DiGraphCSR, v: int) -> Iterator[GatherEdge]:
        for u in graph.predecessors(v):
            yield int(u), 1.0
        for u in graph.successors(v):
            yield int(u), 1.0

    def gather_degree(self, graph: DiGraphCSR, v: int) -> int:
        return graph.in_degree(v) + graph.out_degree(v)

    def apply(self, v: int, old_state: float, acc: float) -> float:
        if old_state == 0.0:
            return 0.0  # peeling is permanent
        return 1.0 if acc >= self.k else 0.0

    def has_converged(self, old_state: float, new_state: float) -> bool:
        return new_state == old_state

    def dependents(self, graph: DiGraphCSR, v: int) -> Iterable[int]:
        # Symmetric: both out- and in-neighbors read v's aliveness.
        for u in graph.successors(v):
            yield int(u)
        for u in graph.predecessors(v):
            yield int(u)
