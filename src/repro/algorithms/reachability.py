"""Multi-source reachability as a GAS program (extension).

State is 1.0 once any source can reach the vertex, else 0.0 — a monotone
OR-propagation used by the reachability-query applications the paper's
introduction cites [56]. Converges under any execution order; the
DiGraph engine answers it in essentially one topological pass outside the
SCCs (Observation 2's best case).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.graph.digraph import DiGraphCSR
from repro.model.gas import VertexProgram


class Reachability(VertexProgram):
    """1.0 for vertices reachable from any of ``sources``."""

    name = "reachability"
    tolerance = 0.0

    def __init__(self, sources: Sequence[int]) -> None:
        if not sources:
            raise ConfigurationError("need at least one source")
        self.sources = tuple(sorted(set(int(s) for s in sources)))

    def initial_states(self, graph: DiGraphCSR) -> np.ndarray:
        if self.sources[-1] >= graph.num_vertices:
            raise ConfigurationError(
                f"source {self.sources[-1]} out of range"
            )
        states = np.zeros(graph.num_vertices, dtype=np.float64)
        states[list(self.sources)] = 1.0
        return states

    def initial_active(self, graph: DiGraphCSR) -> np.ndarray:
        active = np.zeros(graph.num_vertices, dtype=bool)
        for s in self.sources:
            active[s] = True
            for u in graph.successors(s):
                active[u] = True
        return active

    @property
    def identity(self) -> float:
        return 0.0

    def gather(self, src_state: float, weight: float, src: int, dst: int) -> float:
        return src_state

    def accumulate(self, a: float, b: float) -> float:
        return max(a, b)

    def apply(self, v: int, old_state: float, acc: float) -> float:
        if v in self.sources:
            return 1.0
        return max(old_state, 1.0 if acc > 0 else 0.0)

    def has_converged(self, old_state: float, new_state: float) -> bool:
        return new_state == old_state
