"""Single-source shortest paths as a GAS program (Bellman-Ford relaxation).

State is the tentative distance; gather relaxes in-edges
(``dist(u) + w``), accumulate takes the minimum, apply keeps the source
pinned at zero. The iteration is monotone non-increasing, so every
execution order converges to the true distances; path-sequential execution
relaxes a whole path per round, which is the motivating example of the
paper's Section 2 (``v_2``'s new distance reaching ``v_5`` in one round).

Only the source starts active — SSSP is the paper's sparse-frontier
workload, unlike PageRank/adsorption where all vertices start active.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.graph.digraph import DiGraphCSR
from repro.model.gas import VertexProgram

#: Distance for unreached vertices.
INFINITY = float("inf")


class SSSP(VertexProgram):
    """Shortest distances from ``source`` over non-negative edge weights."""

    name = "sssp"
    tolerance = 0.0  # distances change by discrete weight amounts

    def __init__(self, source: int = 0) -> None:
        if source < 0:
            raise ConfigurationError("source must be non-negative")
        self.source = source

    def initial_states(self, graph: DiGraphCSR) -> np.ndarray:
        if self.source >= graph.num_vertices:
            raise ConfigurationError(
                f"source {self.source} out of range for "
                f"{graph.num_vertices} vertices"
            )
        states = np.full(graph.num_vertices, INFINITY, dtype=np.float64)
        states[self.source] = 0.0
        return states

    def initial_active(self, graph: DiGraphCSR) -> np.ndarray:
        active = np.zeros(graph.num_vertices, dtype=bool)
        active[self.source] = True
        # The source itself never improves, but activating it propagates
        # distance 0 to its successors on the first processing pass.
        for u in graph.successors(self.source):
            active[u] = True
        return active

    @property
    def identity(self) -> float:
        return INFINITY

    def gather(self, src_state: float, weight: float, src: int, dst: int) -> float:
        if src_state == INFINITY:
            return INFINITY
        return src_state + weight

    def accumulate(self, a: float, b: float) -> float:
        return a if a <= b else b

    def apply(self, v: int, old_state: float, acc: float) -> float:
        if v == self.source:
            return 0.0
        return acc if acc < old_state else old_state

    def has_converged(self, old_state: float, new_state: float) -> bool:
        return new_state == old_state
