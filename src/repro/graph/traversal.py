"""Traversal helpers: BFS levels, DFS orders, topological sort.

These are used by the graph metrics (sampled average distance), the
sequential topological baseline (Fig. 2d), and the dependency-DAG layering
of Section 3.2.2.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional

import numpy as np

from repro.errors import GraphError
from repro.graph.digraph import DiGraphCSR

UNREACHED = -1


def bfs_levels(graph: DiGraphCSR, source: int) -> np.ndarray:
    """Hop distance from ``source`` to every vertex (``-1`` if unreached)."""
    levels = np.full(graph.num_vertices, UNREACHED, dtype=np.int64)
    levels[source] = 0
    queue = deque([source])
    while queue:
        v = queue.popleft()
        next_level = levels[v] + 1
        for u in graph.successors(v):
            if levels[u] == UNREACHED:
                levels[u] = next_level
                queue.append(int(u))
    return levels


def dfs_preorder(graph: DiGraphCSR, source: int) -> List[int]:
    """Iterative DFS preorder from ``source`` (successor order = CSR order)."""
    visited = np.zeros(graph.num_vertices, dtype=bool)
    order: List[int] = []
    stack = [source]
    while stack:
        v = stack.pop()
        if visited[v]:
            continue
        visited[v] = True
        order.append(v)
        # Reverse so the first CSR successor is visited first.
        for u in graph.successors(v)[::-1]:
            if not visited[u]:
                stack.append(int(u))
    return order


def topological_order(graph: DiGraphCSR) -> np.ndarray:
    """Kahn topological order of a DAG.

    Raises
    ------
    GraphError
        If the graph contains a cycle.
    """
    in_deg = graph.in_degree().copy()
    queue = deque(int(v) for v in np.flatnonzero(in_deg == 0))
    order = np.empty(graph.num_vertices, dtype=np.int64)
    filled = 0
    while queue:
        v = queue.popleft()
        order[filled] = v
        filled += 1
        for u in graph.successors(v):
            in_deg[u] -= 1
            if in_deg[u] == 0:
                queue.append(int(u))
    if filled != graph.num_vertices:
        raise GraphError("topological_order called on a cyclic graph")
    return order


def dag_layers(graph: DiGraphCSR) -> np.ndarray:
    """Layer number of each vertex of a DAG: ``layer(v) = 1 + max(layer(pred))``.

    Sources are layer 0. This is the layering used for dependency-aware
    path dispatching (Section 3.2.2): vertices at a layer only depend on
    lower layers.
    """
    order = topological_order(graph)
    layers = np.zeros(graph.num_vertices, dtype=np.int64)
    for v in order:
        for u in graph.successors(int(v)):
            if layers[u] < layers[v] + 1:
                layers[u] = layers[v] + 1
    return layers


def is_reachable(graph: DiGraphCSR, source: int, target: int) -> bool:
    """Whether ``target`` is reachable from ``source``."""
    if source == target:
        return True
    return bfs_levels(graph, source)[target] != UNREACHED


def reachable_set(graph: DiGraphCSR, source: int) -> np.ndarray:
    """Vertices reachable from ``source`` (including itself)."""
    return np.flatnonzero(bfs_levels(graph, source) != UNREACHED)


def connected_weakly(graph: DiGraphCSR) -> np.ndarray:
    """Weakly-connected component label for each vertex (union-find)."""
    parent = np.arange(graph.num_vertices, dtype=np.int64)

    def find(x: int) -> int:
        root = x
        while parent[root] != root:
            root = int(parent[root])
        while parent[x] != root:
            parent[x], x = root, int(parent[x])
        return root

    for src, dst, _ in graph.edges():
        ra, rb = find(src), find(dst)
        if ra != rb:
            parent[rb] = ra
    labels = np.array([find(v) for v in range(graph.num_vertices)], dtype=np.int64)
    # Relabel to 0..k-1 by first appearance.
    _, labels = np.unique(labels, return_inverse=True)
    return labels


def sample_sources(
    graph: DiGraphCSR, count: int, rng: Optional[np.random.Generator] = None
) -> np.ndarray:
    """Sample ``count`` distinct source vertices, biased toward non-sinks."""
    rng = rng or np.random.default_rng(0)
    candidates = np.flatnonzero(graph.out_degree() > 0)
    if candidates.size == 0:
        candidates = np.arange(graph.num_vertices)
    count = min(count, candidates.size)
    return rng.choice(candidates, size=count, replace=False)
