"""Immutable CSR/CSC directed graph.

:class:`DiGraphCSR` stores a directed graph in *Compressed Sparse Row* form
for out-edges and (lazily) *Compressed Sparse Column* form for in-edges.
Edge weights are kept in an array parallel to the CSR adjacency array so the
GAS programs (PageRank, adsorption, SSSP, k-core) can read them without
indirection.

The class is deliberately immutable: engines, partitioners, and the
simulated GPU machine all share one graph object, and preprocessing
artifacts (paths, dependency DAG, storage arrays) index into it by position.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence, Tuple

import numpy as np

from repro.errors import GraphError


class DiGraphCSR:
    """A directed graph with ``n`` vertices in CSR (out) and CSC (in) form.

    Parameters
    ----------
    indptr:
        ``int64`` array of length ``n + 1``; out-edges of vertex ``v`` are
        ``indices[indptr[v]:indptr[v + 1]]``.
    indices:
        ``int64`` array of destination vertices, one per edge.
    weights:
        optional ``float64`` array parallel to ``indices``. Defaults to all
        ones, which is what the unweighted benchmarks use.

    Notes
    -----
    Edges are identified by their position in ``indices`` (the *edge id*),
    which the path storage layout of Section 3.2.1 relies on.
    """

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        weights: Optional[np.ndarray] = None,
    ) -> None:
        indptr = np.asarray(indptr, dtype=np.int64)
        indices = np.asarray(indices, dtype=np.int64)
        if indptr.ndim != 1 or indices.ndim != 1:
            raise GraphError("indptr and indices must be one-dimensional")
        if indptr.size == 0:
            raise GraphError("indptr must have at least one entry")
        if indptr[0] != 0 or indptr[-1] != indices.size:
            raise GraphError(
                "indptr must start at 0 and end at len(indices)="
                f"{indices.size}, got [{indptr[0]}, {indptr[-1]}]"
            )
        if np.any(np.diff(indptr) < 0):
            raise GraphError("indptr must be non-decreasing")
        n = indptr.size - 1
        if indices.size and (indices.min() < 0 or indices.max() >= n):
            raise GraphError("edge destination out of range")

        if weights is None:
            weights = np.ones(indices.size, dtype=np.float64)
        else:
            weights = np.asarray(weights, dtype=np.float64)
            if weights.shape != indices.shape:
                raise GraphError("weights must be parallel to indices")

        self._indptr = indptr
        self._indices = indices
        self._weights = weights
        self._indptr.setflags(write=False)
        self._indices.setflags(write=False)
        self._weights.setflags(write=False)

        # Lazily-built CSC (in-edge) view and degree caches.
        self._csc: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None
        self._out_degree = np.diff(indptr)
        self._out_degree.setflags(write=False)
        self._in_degree: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # basic shape
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices ``n``."""
        return self._indptr.size - 1

    @property
    def num_edges(self) -> int:
        """Number of directed edges ``m``."""
        return self._indices.size

    @property
    def indptr(self) -> np.ndarray:
        """CSR row-pointer array (read-only)."""
        return self._indptr

    @property
    def indices(self) -> np.ndarray:
        """CSR destination array (read-only)."""
        return self._indices

    @property
    def weights(self) -> np.ndarray:
        """Edge weight array parallel to :attr:`indices` (read-only)."""
        return self._weights

    # ------------------------------------------------------------------
    # adjacency
    # ------------------------------------------------------------------
    def successors(self, v: int) -> np.ndarray:
        """Destinations of out-edges of ``v``."""
        self._check_vertex(v)
        return self._indices[self._indptr[v] : self._indptr[v + 1]]

    def out_edge_ids(self, v: int) -> range:
        """Edge ids of ``v``'s out-edges (positions in :attr:`indices`)."""
        self._check_vertex(v)
        return range(int(self._indptr[v]), int(self._indptr[v + 1]))

    def out_weights(self, v: int) -> np.ndarray:
        """Weights of ``v``'s out-edges, parallel to :meth:`successors`."""
        self._check_vertex(v)
        return self._weights[self._indptr[v] : self._indptr[v + 1]]

    def predecessors(self, v: int) -> np.ndarray:
        """Sources of in-edges of ``v`` (built lazily from the CSC view)."""
        self._check_vertex(v)
        indptr, indices, _ = self._ensure_csc()
        return indices[indptr[v] : indptr[v + 1]]

    def in_weights(self, v: int) -> np.ndarray:
        """Weights of ``v``'s in-edges, parallel to :meth:`predecessors`."""
        self._check_vertex(v)
        indptr, _, weights = self._ensure_csc()
        return weights[indptr[v] : indptr[v + 1]]

    def out_degree(self, v: Optional[int] = None):
        """Out-degree of ``v``, or the full out-degree array if ``v is None``."""
        if v is None:
            return self._out_degree
        self._check_vertex(v)
        return int(self._out_degree[v])

    def in_degree(self, v: Optional[int] = None):
        """In-degree of ``v``, or the full in-degree array if ``v is None``."""
        if self._in_degree is None:
            counts = np.bincount(self._indices, minlength=self.num_vertices)
            self._in_degree = counts.astype(np.int64)
            self._in_degree.setflags(write=False)
        if v is None:
            return self._in_degree
        self._check_vertex(v)
        return int(self._in_degree[v])

    def degree(self, v: Optional[int] = None):
        """Total (in + out) degree."""
        if v is None:
            return self.out_degree() + self.in_degree()
        return self.out_degree(v) + self.in_degree(v)

    def edge_endpoints(self, edge_id: int) -> Tuple[int, int]:
        """Return ``(src, dst)`` for a CSR edge id."""
        if not 0 <= edge_id < self.num_edges:
            raise GraphError(f"edge id {edge_id} out of range")
        src = int(np.searchsorted(self._indptr, edge_id, side="right") - 1)
        return src, int(self._indices[edge_id])

    def edge_sources(self) -> np.ndarray:
        """Array of source vertices, one per edge id."""
        return np.repeat(
            np.arange(self.num_vertices, dtype=np.int64), self._out_degree
        )

    def edges(self) -> Iterator[Tuple[int, int, float]]:
        """Iterate ``(src, dst, weight)`` triples in edge-id order."""
        for v in range(self.num_vertices):
            for eid in self.out_edge_ids(v):
                yield v, int(self._indices[eid]), float(self._weights[eid])

    def has_edge(self, src: int, dst: int) -> bool:
        """Whether a directed edge ``src -> dst`` exists."""
        return dst in self.successors(src)

    def csc_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The in-edge (CSC) view as ``(indptr, sources, weights)``.

        Read-only arrays; in-edges of ``v`` are
        ``sources[indptr[v]:indptr[v + 1]]`` in edge-id order, the same
        order :meth:`predecessors` yields. The batch kernels index these
        directly instead of slicing per vertex.
        """
        return self._ensure_csc()

    # ------------------------------------------------------------------
    # derived graphs
    # ------------------------------------------------------------------
    def reverse(self) -> "DiGraphCSR":
        """Return the graph with all edge directions flipped."""
        indptr, indices, weights = self._ensure_csc()
        return DiGraphCSR(indptr.copy(), indices.copy(), weights.copy())

    def subgraph_vertices(self, vertices: Sequence[int]) -> "DiGraphCSR":
        """Induced subgraph on ``vertices``, relabelled to ``0..k-1``.

        Vertex ``vertices[i]`` becomes vertex ``i`` in the result.
        """
        vertices = np.asarray(sorted(set(int(v) for v in vertices)), dtype=np.int64)
        if vertices.size and (
            vertices[0] < 0 or vertices[-1] >= self.num_vertices
        ):
            raise GraphError("subgraph vertex out of range")
        remap = -np.ones(self.num_vertices, dtype=np.int64)
        remap[vertices] = np.arange(vertices.size)
        indptr = [0]
        indices = []
        weights = []
        for v in vertices:
            dsts = self.successors(int(v))
            wts = self.out_weights(int(v))
            keep = remap[dsts] >= 0
            indices.extend(remap[dsts[keep]].tolist())
            weights.extend(wts[keep].tolist())
            indptr.append(len(indices))
        return DiGraphCSR(
            np.asarray(indptr, dtype=np.int64),
            np.asarray(indices, dtype=np.int64),
            np.asarray(weights, dtype=np.float64),
        )

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def _ensure_csc(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        if self._csc is None:
            n = self.num_vertices
            counts = np.bincount(self._indices, minlength=n)
            indptr = np.zeros(n + 1, dtype=np.int64)
            np.cumsum(counts, out=indptr[1:])
            # Stable sort by destination keeps in-edges of each vertex in
            # edge-id order, matching the cursor-based CSC construction.
            order = np.argsort(self._indices, kind="stable")
            indices = self.edge_sources()[order]
            weights = self._weights[order]
            indptr.setflags(write=False)
            indices.setflags(write=False)
            weights.setflags(write=False)
            self._csc = (indptr, indices, weights)
        return self._csc

    def _check_vertex(self, v: int) -> None:
        if not 0 <= v < self.num_vertices:
            raise GraphError(
                f"vertex {v} out of range for graph with "
                f"{self.num_vertices} vertices"
            )

    def __repr__(self) -> str:
        return (
            f"DiGraphCSR(num_vertices={self.num_vertices}, "
            f"num_edges={self.num_edges})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DiGraphCSR):
            return NotImplemented
        return (
            np.array_equal(self._indptr, other._indptr)
            and np.array_equal(self._indices, other._indices)
            and np.array_equal(self._weights, other._weights)
        )

    def __hash__(self) -> int:
        return hash((self.num_vertices, self.num_edges))
