"""Strongly connected components and condensation.

The paper's preprocessing (Section 3.2.1) contracts the SCCs of the *path
dependency graph* into SCC-vertices with Tarjan's algorithm, run first per
CPU-thread subgraph and then globally. This module provides:

- :func:`strongly_connected_components` — iterative Tarjan (no recursion
  limit problems on long paths),
- :func:`condensation` — the DAG sketch obtained by contracting SCCs,
- :func:`parallel_scc` — the paper's two-phase sharded variant: local SCCs
  per vertex shard, then a global pass over the contracted graph. Produces
  the same components as the direct algorithm (verified by tests), while
  exposing an ``n_workers`` knob for the Fig. 17 preprocessing-scaling
  experiment,
- :func:`scc_statistics` — giant-SCC fraction and the one-update vertex
  fraction of Observation 2 / Fig. 2(d).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.errors import GraphError
from repro.graph.builder import GraphBuilder
from repro.graph.digraph import DiGraphCSR


def strongly_connected_components(graph: DiGraphCSR) -> np.ndarray:
    """Tarjan SCC labels, iterative formulation.

    Returns an array mapping each vertex to a component id in
    ``0..num_components-1``. Ids are assigned in the order components are
    completed, which (a property of Tarjan) is a *reverse topological*
    order of the condensation: if SCC ``a`` can reach SCC ``b`` (a != b)
    then ``label_of_a > label_of_b``.
    """
    n = graph.num_vertices
    index = np.full(n, -1, dtype=np.int64)
    lowlink = np.zeros(n, dtype=np.int64)
    on_stack = np.zeros(n, dtype=bool)
    labels = np.full(n, -1, dtype=np.int64)
    stack: List[int] = []
    next_index = 0
    next_label = 0

    indptr, indices = graph.indptr, graph.indices

    for root in range(n):
        if index[root] != -1:
            continue
        # Each work-stack frame is (vertex, next edge offset to explore).
        work = [(root, int(indptr[root]))]
        while work:
            v, edge_pos = work[-1]
            if index[v] == -1:
                index[v] = lowlink[v] = next_index
                next_index += 1
                stack.append(v)
                on_stack[v] = True
            advanced = False
            while edge_pos < indptr[v + 1]:
                u = int(indices[edge_pos])
                edge_pos += 1
                if index[u] == -1:
                    work[-1] = (v, edge_pos)
                    work.append((u, int(indptr[u])))
                    advanced = True
                    break
                if on_stack[u] and index[u] < lowlink[v]:
                    lowlink[v] = index[u]
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                if lowlink[v] < lowlink[parent]:
                    lowlink[parent] = lowlink[v]
            if lowlink[v] == index[v]:
                while True:
                    w = stack.pop()
                    on_stack[w] = False
                    labels[w] = next_label
                    if w == v:
                        break
                next_label += 1
    return labels


@dataclass(frozen=True)
class Condensation:
    """The DAG sketch of a graph: one node per SCC.

    Attributes
    ----------
    labels:
        SCC id per original vertex.
    dag:
        The condensation graph (deduplicated edges, guaranteed acyclic).
    members:
        Original vertices of each SCC, in ascending vertex order.
    """

    labels: np.ndarray
    dag: DiGraphCSR
    members: Tuple[Tuple[int, ...], ...]

    @property
    def num_components(self) -> int:
        return self.dag.num_vertices

    def component_sizes(self) -> np.ndarray:
        return np.asarray([len(m) for m in self.members], dtype=np.int64)

    def giant_component(self) -> int:
        """Id of the largest SCC."""
        return int(np.argmax(self.component_sizes()))


def condensation(graph: DiGraphCSR) -> Condensation:
    """Contract SCCs into a DAG sketch (Section 3.2.1)."""
    labels = strongly_connected_components(graph)
    num_components = int(labels.max()) + 1 if labels.size else 0
    builder = GraphBuilder(num_vertices=num_components, deduplicate=True)
    for src, dst, _ in graph.edges():
        a, b = int(labels[src]), int(labels[dst])
        if a != b:
            builder.add_edge(a, b)
    dag = builder.build()
    members: List[List[int]] = [[] for _ in range(num_components)]
    for v in range(graph.num_vertices):
        members[int(labels[v])].append(v)
    return Condensation(
        labels=labels,
        dag=dag,
        members=tuple(tuple(m) for m in members),
    )


def parallel_scc(graph: DiGraphCSR, n_workers: int = 1) -> np.ndarray:
    """Two-phase sharded SCC, mirroring the paper's parallel preprocessing.

    Phase 1: split vertices into ``n_workers`` contiguous shards; run Tarjan
    on each shard's *induced local subgraph* (edges whose both endpoints lie
    in the shard), contracting local SCCs. Phase 2: run Tarjan on the
    contracted graph (local SCCs as vertices plus all cross-shard edges) to
    produce global components.

    The result is the same partition of vertices into SCCs as
    :func:`strongly_connected_components` (component *ids* may differ); the
    two phases mirror lines "each CPU thread uses tarjan algorithm to find
    local SCCs ... then tarjan algorithm is used again" of Section 3.2.1.
    """
    if n_workers < 1:
        raise GraphError("n_workers must be >= 1")
    n = graph.num_vertices
    if n == 0:
        return np.empty(0, dtype=np.int64)
    if n_workers == 1:
        return strongly_connected_components(graph)

    bounds = np.linspace(0, n, n_workers + 1).astype(np.int64)
    local_label = np.full(n, -1, dtype=np.int64)
    next_id = 0
    for w in range(n_workers):
        lo, hi = int(bounds[w]), int(bounds[w + 1])
        if lo == hi:
            continue
        shard = list(range(lo, hi))
        sub = graph.subgraph_vertices(shard)
        labels = strongly_connected_components(sub)
        local_label[lo:hi] = labels + next_id
        next_id += int(labels.max()) + 1 if labels.size else 0

    # Phase 2: contract local SCCs, keep every edge between distinct ones.
    builder = GraphBuilder(num_vertices=next_id, deduplicate=True)
    for src, dst, _ in graph.edges():
        a, b = int(local_label[src]), int(local_label[dst])
        if a != b:
            builder.add_edge(a, b)
    contracted = builder.build()
    global_of_local = strongly_connected_components(contracted)
    return global_of_local[local_label]


@dataclass(frozen=True)
class SCCStatistics:
    """Summary statistics used by Observation 2 and Fig. 2(d)."""

    num_components: int
    giant_scc_vertices: int
    giant_scc_fraction: float
    one_update_fraction: float
    """Fraction of vertices in singleton, non-self-loop SCCs: processed in
    topological order they converge after exactly one update."""


def scc_statistics(graph: DiGraphCSR) -> SCCStatistics:
    """Compute the SCC statistics the paper reports for its six graphs."""
    cond = condensation(graph)
    sizes = cond.component_sizes()
    if sizes.size == 0:
        return SCCStatistics(0, 0, 0.0, 0.0)
    giant = int(sizes.max())
    # A vertex needs only one update (in topological processing) iff its SCC
    # is a singleton without a self-loop: no cycle passes through it.
    singleton_vertices = 0
    for comp_id, members in enumerate(cond.members):
        if len(members) == 1:
            v = members[0]
            if not graph.has_edge(v, v):
                singleton_vertices += 1
    n = graph.num_vertices
    return SCCStatistics(
        num_components=cond.num_components,
        giant_scc_vertices=giant,
        giant_scc_fraction=giant / n if n else 0.0,
        one_update_fraction=singleton_vertices / n if n else 0.0,
    )
