"""Seeded synthetic directed-graph generators.

The paper evaluates on six LAW web/social graphs we cannot ship (no network
access; billions of edges). The generators here produce scaled stand-ins
whose *structural knobs* match what the evaluation actually exercises:

- power-law degree skew (hot vertices, Section 3.2.1's hot paths),
- a giant SCC of controllable relative size (Observation 2),
- controllable average distance (``locality``: web crawls are ring-like and
  long-distance; social graphs are random and short-distance, the contrast
  behind Fig. 11's discussion),
- a DAG periphery of one-update vertices around the giant SCC.

Everything is seeded and deterministic.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

import numpy as np

from repro.errors import GraphError
from repro.graph.builder import from_edges
from repro.graph.digraph import DiGraphCSR


def directed_path(n: int) -> DiGraphCSR:
    """A single directed path ``0 -> 1 -> ... -> n-1``."""
    if n < 1:
        raise GraphError("path needs at least one vertex")
    return from_edges([(i, i + 1) for i in range(n - 1)], num_vertices=n)


def directed_cycle(n: int) -> DiGraphCSR:
    """A single directed cycle over ``n`` vertices."""
    if n < 1:
        raise GraphError("cycle needs at least one vertex")
    return from_edges(
        [(i, (i + 1) % n) for i in range(n)], num_vertices=n
    )


def complete_binary_out_tree(depth: int) -> DiGraphCSR:
    """A complete binary tree with edges pointing away from the root."""
    if depth < 0:
        raise GraphError("depth must be non-negative")
    n = 2 ** (depth + 1) - 1
    edges = []
    for v in range((n - 1) // 2):
        edges.append((v, 2 * v + 1))
        edges.append((v, 2 * v + 2))
    return from_edges(edges, num_vertices=n)


def random_directed(
    n: int, m: int, seed: int = 0, allow_self_loops: bool = False
) -> DiGraphCSR:
    """Uniform random directed graph with ``m`` distinct edges."""
    if n < 1:
        raise GraphError("need at least one vertex")
    max_edges = n * (n - 1) + (n if allow_self_loops else 0)
    if m > max_edges:
        raise GraphError(f"cannot place {m} distinct edges in {n} vertices")
    rng = np.random.default_rng(seed)
    edges: Set[Tuple[int, int]] = set()
    while len(edges) < m:
        need = m - len(edges)
        srcs = rng.integers(0, n, size=need * 2)
        dsts = rng.integers(0, n, size=need * 2)
        for s, d in zip(srcs, dsts):
            if not allow_self_loops and s == d:
                continue
            edges.add((int(s), int(d)))
            if len(edges) == m:
                break
    return from_edges(sorted(edges), num_vertices=n)


def random_dag(n: int, m: int, seed: int = 0) -> DiGraphCSR:
    """Random DAG: edges only go from lower to higher vertex id."""
    if n < 1:
        raise GraphError("need at least one vertex")
    max_edges = n * (n - 1) // 2
    if m > max_edges:
        raise GraphError(f"cannot place {m} distinct DAG edges in {n} vertices")
    rng = np.random.default_rng(seed)
    edges: Set[Tuple[int, int]] = set()
    while len(edges) < m:
        a = int(rng.integers(0, n))
        b = int(rng.integers(0, n))
        if a == b:
            continue
        edges.add((min(a, b), max(a, b)))
    return from_edges(sorted(edges), num_vertices=n)


def power_law_directed(
    n: int, avg_out_degree: float, exponent: float = 2.1, seed: int = 0
) -> DiGraphCSR:
    """Directed configuration-model graph with power-law in-degree.

    Out-degrees are Poisson-like around ``avg_out_degree``; destinations are
    drawn from a Zipf-weighted vertex distribution so a few vertices become
    hot (high in-degree), matching the paper's power-law premise.
    """
    if n < 2:
        raise GraphError("need at least two vertices")
    if avg_out_degree <= 0:
        raise GraphError("avg_out_degree must be positive")
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, n + 1, dtype=np.float64)
    probs = ranks ** (-exponent)
    probs /= probs.sum()
    # Hot vertices get the low ranks; shuffle the rank->vertex assignment so
    # hotness is not correlated with vertex id.
    perm = rng.permutation(n)
    out_deg = rng.poisson(avg_out_degree, size=n)
    edges: Set[Tuple[int, int]] = set()
    for src in range(n):
        k = int(out_deg[src])
        if k == 0:
            continue
        targets = perm[rng.choice(n, size=k, p=probs)]
        for dst in targets:
            if int(dst) != src:
                edges.add((src, int(dst)))
    return from_edges(sorted(edges), num_vertices=n)


def rmat(
    scale: int,
    edge_factor: int = 8,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int = 0,
) -> DiGraphCSR:
    """Kronecker/R-MAT graph with ``2**scale`` vertices (Graph500-style)."""
    if scale < 1:
        raise GraphError("scale must be >= 1")
    d = 1.0 - a - b - c
    if d < 0:
        raise GraphError("R-MAT probabilities must sum to <= 1")
    rng = np.random.default_rng(seed)
    n = 2 ** scale
    m = edge_factor * n
    srcs = np.zeros(m, dtype=np.int64)
    dsts = np.zeros(m, dtype=np.int64)
    thresholds = np.array([a, a + b, a + b + c])
    for bit in range(scale):
        r = rng.random(m)
        quadrant = np.searchsorted(thresholds, r, side="right")
        srcs = (srcs << 1) | (quadrant >> 1)
        dsts = (dsts << 1) | (quadrant & 1)
    keep = srcs != dsts
    edges = sorted(set(zip(srcs[keep].tolist(), dsts[keep].tolist())))
    return from_edges(edges, num_vertices=n)


def scc_profile_graph(
    n: int,
    avg_degree: float,
    giant_scc_fraction: float,
    avg_distance: float,
    seed: int = 0,
    hot_exponent: float = 1.4,
) -> DiGraphCSR:
    """Graph with a controllable giant SCC, degree skew, and distance profile.

    A *layered crawl* model. Vertices are spread over ``L ~ avg_distance``
    layers; edges mostly run to the next layer (with some same-layer and
    layer-skipping edges), targets chosen Zipf-hot within the destination
    layer so hubs emerge. A contiguous window of layers holding
    ``giant_scc_fraction`` of the vertices additionally gets back-edges to
    the previous layer; a final stitching pass merges the window's strongly
    connected pieces into one giant SCC by threading a cycle through them.
    Layers outside the window only have forward edges, so those vertices
    form the acyclic IN/OUT periphery of Observation 2 (one-update
    vertices).

    ``avg_distance`` large (many layers) yields web-crawl-like graphs (cnr,
    webbase, it04 of Table 1); small values yield social-like short-distance
    graphs (ljournal, twitter).
    """
    if n < 4:
        raise GraphError("need at least four vertices")
    if not 0.0 < giant_scc_fraction <= 1.0:
        raise GraphError("giant_scc_fraction must be in (0, 1]")
    if avg_distance < 1.0:
        raise GraphError("avg_distance must be >= 1")
    if avg_degree < 1.0:
        raise GraphError("avg_degree must be >= 1")

    # Auto-calibrate the layer count: the realized mean distance depends on
    # degree (hub shortcuts) and the SCC window, so generate, measure with
    # sampled BFS, and adjust the layer count multiplicatively. Everything
    # is seeded, so the result is deterministic.
    from repro.graph.metrics import average_distance as _measure

    # A giant SCC needs layers outside its window to leave an acyclic
    # periphery, so the layer count never drops below this floor. Low-degree
    # graphs also have a distance floor the calibration cannot chase below;
    # keeping the best attempt handles both gracefully.
    min_layers = 4 if giant_scc_fraction < 0.95 else 2
    factor = 2.0
    best_graph = None
    best_error = float("inf")
    tried: Set[int] = set()
    for attempt in range(6):
        num_layers = max(min_layers, int(round(avg_distance * factor)))
        if num_layers in tried:
            break
        tried.add(num_layers)
        graph = _build_layered(
            n, avg_degree, giant_scc_fraction, num_layers, seed, hot_exponent
        )
        measured = _measure(
            graph, sample=32, rng=np.random.default_rng(seed + attempt)
        )
        if measured <= 0:
            return graph
        error = abs(measured - avg_distance) / avg_distance
        if error < best_error:
            best_error = error
            best_graph = graph
        if error <= 0.25:
            break
        factor = min(16.0, max(0.1, factor * avg_distance / measured))
    assert best_graph is not None
    return _relabel_random(best_graph, np.random.default_rng(seed + 9000))


def _relabel_random(
    graph: DiGraphCSR, rng: np.random.Generator
) -> DiGraphCSR:
    """Apply a random vertex relabeling.

    The layered construction assigns ids in layer order, which would make
    plain vertex-id iteration an accidental topological order — silently
    gifting id-order engines a perfect processing schedule. Real dataset
    ids carry no such structure, so scramble them. (All metrics are
    label-invariant.)
    """
    n = graph.num_vertices
    perm = rng.permutation(n)
    edges = [
        (int(perm[src]), int(perm[dst]), w) for src, dst, w in graph.edges()
    ]
    return from_edges(sorted(edges), num_vertices=n)


def _build_layered(
    n: int,
    avg_degree: float,
    giant_scc_fraction: float,
    num_layers: int,
    seed: int,
    hot_exponent: float,
) -> DiGraphCSR:
    """One layered-crawl instance with a fixed layer count."""
    rng = np.random.default_rng(seed)
    layer_of = np.sort(rng.integers(0, num_layers, size=n))
    layer_members: List[np.ndarray] = [
        np.flatnonzero(layer_of == l) for l in range(num_layers)
    ]
    # Drop empty layers (tiny graphs).
    layer_members = [m for m in layer_members if m.size > 0]
    num_layers = len(layer_members)
    # Re-derive layer_of from the compacted layers.
    layer_of = np.empty(n, dtype=np.int64)
    for l, members in enumerate(layer_members):
        layer_of[members] = l

    # Pick the SCC window: contiguous layers centred in the chain whose
    # member count first reaches the target fraction.
    target_core = giant_scc_fraction * n
    best_lo, best_hi = 0, num_layers  # fallback: everything
    size = 0
    lo = max(0, (num_layers - 1) // 4)
    hi = lo
    while hi < num_layers and size < target_core:
        size += layer_members[hi].size
        hi += 1
    # If starting a quarter of the way in ran out of layers, slide back.
    while size < target_core and lo > 0:
        lo -= 1
        size += layer_members[lo].size
    best_lo, best_hi = lo, hi
    in_window = (layer_of >= best_lo) & (layer_of < best_hi)

    # Zipf hotness within each layer.
    def hot_pick(layer: int, count: int) -> np.ndarray:
        members = layer_members[layer]
        ranks = np.arange(1, members.size + 1, dtype=np.float64)
        probs = ranks ** (-hot_exponent)
        probs /= probs.sum()
        return members[rng.choice(members.size, size=count, p=probs)]

    edges: Set[Tuple[int, int]] = set()
    # Out-degree budgets correlate with in-degree hotness: a vertex's Zipf
    # weight within its layer governs both how often it is *targeted* (see
    # hot_pick) and how many out-edges it gets. Real web/social hubs have
    # correlated in/out degree; without this, trails through hubs die
    # immediately (in-excess forces sum(max(0, in-out)) trail endings) and
    # no path decomposition can reach the paper's average path lengths.
    hotness = np.empty(n, dtype=np.float64)
    for members in layer_members:
        ranks = np.arange(1, members.size + 1, dtype=np.float64)
        probs = ranks ** (-hot_exponent)
        probs /= probs.sum()
        hotness[members] = probs * members.size  # mean 1 within the layer
    mean_budget = np.maximum(
        avg_degree * (0.3 + 0.7 * hotness), 0.1
    )
    budget = rng.poisson(mean_budget) + 1
    for v in range(n):
        l = int(layer_of[v])
        for _ in range(int(budget[v])):
            r = rng.random()
            if in_window[v] and r < 0.25 and l > best_lo:
                target_layer = l - 1  # back-edge inside the SCC window
            elif r < 0.40 and layer_members[l].size > 1:
                target_layer = l  # same-layer edge
            elif l + 2 < num_layers and r < 0.50:
                target_layer = l + 2  # skip edge
            elif l + 1 < num_layers:
                target_layer = l + 1  # forward crawl edge
            elif l > 0 and in_window[v] and l > best_lo:
                target_layer = l - 1
            else:
                target_layer = l
            # Back/same-layer targets outside the window would create
            # unwanted cycles in the periphery; clamp them forward.
            if not in_window[v] and target_layer <= l:
                if l + 1 < num_layers:
                    target_layer = l + 1
                else:
                    continue
            if target_layer <= l and not (
                in_window[v] and best_lo <= target_layer < best_hi
            ):
                if target_layer < l:
                    continue
            # Retry a few times on hot-target collisions so the realized
            # average degree tracks the requested one.
            for _retry in range(4):
                dst = int(hot_pick(target_layer, 1)[0])
                if dst != v and (v, dst) not in edges:
                    edges.add((v, dst))
                    break

    graph = from_edges(sorted(edges), num_vertices=n)
    edges = _stitch_window_sccs(graph, np.flatnonzero(in_window), edges, rng)
    return from_edges(sorted(edges), num_vertices=n)


def _stitch_window_sccs(
    graph: DiGraphCSR,
    window: np.ndarray,
    edges: Set[Tuple[int, int]],
    rng: np.random.Generator,
) -> Set[Tuple[int, int]]:
    """Merge the window's SCCs into one by threading a cycle through them.

    Components are ordered by their minimum layer position (vertex id order
    approximates this since layers were assigned to sorted ids), and one
    edge is added from each component to the next plus a closing back-edge,
    turning the component chain into a single cycle — hence one SCC —
    while only adding ``num_components`` edges.
    """
    # Import here to avoid a module cycle (scc imports builder).
    from repro.graph.scc import strongly_connected_components

    if window.size == 0:
        return edges
    sub = graph.subgraph_vertices(window.tolist())
    labels = strongly_connected_components(sub)
    num_components = int(labels.max()) + 1
    if num_components <= 1:
        return edges
    # A representative original vertex per component, ordered by the
    # smallest original vertex id in the component.
    reps: List[int] = []
    for comp in range(num_components):
        members = np.flatnonzero(labels == comp)
        reps.append(int(window[members[rng.integers(0, members.size)]]))
    reps.sort()
    for i in range(len(reps)):
        src = reps[i]
        dst = reps[(i + 1) % len(reps)]
        if src != dst:
            edges.add((src, dst))
    return edges


def add_bidirectional_edges(
    graph: DiGraphCSR, ratio: float, seed: int = 0
) -> DiGraphCSR:
    """Add reverse edges until ``ratio`` of edges sit in a 2-cycle (Fig. 14).

    Matches the paper's Fig. 14 methodology of "adding directed edges on
    webbase" to raise the fraction of bi-directional edges. ``ratio = 1``
    makes the graph symmetric.
    """
    if not 0.0 <= ratio <= 1.0:
        raise GraphError("ratio must be in [0, 1]")
    rng = np.random.default_rng(seed)
    existing: Set[Tuple[int, int]] = set()
    for src, dst, _ in graph.edges():
        existing.add((src, dst))
    one_way = [
        (src, dst) for (src, dst) in existing if (dst, src) not in existing
    ]
    current_bidi = len(existing) - len(one_way)

    def bidi_fraction(total: int, bidi: int) -> float:
        return bidi / total if total else 0.0

    new_edges = list(existing)
    bidi = current_bidi
    rng.shuffle(one_way)
    for src, dst in one_way:
        if bidi_fraction(len(new_edges), bidi) >= ratio:
            break
        new_edges.append((dst, src))
        bidi += 2
    return from_edges(sorted(new_edges), num_vertices=graph.num_vertices)


def with_random_weights(
    graph: DiGraphCSR,
    low: float = 1.0,
    high: float = 10.0,
    seed: int = 0,
) -> DiGraphCSR:
    """Copy of ``graph`` with uniform random edge weights in ``[low, high)``."""
    if low > high:
        raise GraphError("low must be <= high")
    rng = np.random.default_rng(seed)
    weights = rng.uniform(low, high, size=graph.num_edges)
    return DiGraphCSR(graph.indptr.copy(), graph.indices.copy(), weights)


def bowtie_graph(
    core: int, in_tail: int, out_tail: int, seed: int = 0
) -> DiGraphCSR:
    """Classic web 'bow-tie': IN component -> SCC core -> OUT component.

    Useful in tests for exercising the dependency DAG: IN and OUT tails are
    pure one-update regions; the core is one SCC.
    """
    if core < 2:
        raise GraphError("core must have at least two vertices")
    rng = np.random.default_rng(seed)
    edges: List[Tuple[int, int]] = []
    for v in range(core):
        edges.append((v, (v + 1) % core))
    next_id = core
    for _ in range(in_tail):
        target = int(rng.integers(0, core))
        edges.append((next_id, target))
        next_id += 1
    for _ in range(out_tail):
        source = int(rng.integers(0, core))
        edges.append((source, next_id))
        next_id += 1
    return from_edges(edges, num_vertices=core + in_tail + out_tail)


def mutation_trace(
    graph: DiGraphCSR,
    n_batches: int,
    seed: int = 0,
    batch_size: int = 8,
    mix: str = "mixed",
):
    """Seeded, replayable mutation trace for streaming benchmarks.

    Produces ``n_batches`` :class:`~repro.streaming.mutations.MutationBatch`
    objects that are valid to apply *in sequence* starting from
    ``graph`` — the generator tracks the evolving edge set, so deletes
    always target a live edge and inserts never duplicate one. The same
    ``(graph, n_batches, seed, batch_size, mix)`` always yields the
    identical trace.

    ``mix`` selects the workload shape:

    - ``"insert"`` — inserts only (the growth-safe resume fast path);
    - ``"delete"`` — ~80% deletes / 20% inserts (exercises the
      reset-and-recompute fallback);
    - ``"mixed"`` — inserts, deletes, weight changes, and the occasional
      vertex addition.
    """
    # Import here to avoid a module cycle.
    from repro.streaming.mutations import Mutation, MutationBatch

    if n_batches < 0:
        raise GraphError("n_batches must be >= 0")
    if batch_size < 1:
        raise GraphError("batch_size must be >= 1")
    if mix not in ("insert", "delete", "mixed"):
        raise GraphError(f"unknown trace mix {mix!r}")
    rng = np.random.default_rng(seed)
    n = graph.num_vertices
    edges: Set[Tuple[int, int]] = set()
    for src, dst, _ in graph.edges():
        edges.add((int(src), int(dst)))

    def draw_insert() -> Optional[Tuple[int, int]]:
        for _ in range(64):
            u = int(rng.integers(0, n))
            v = int(rng.integers(0, n))
            if u != v and (u, v) not in edges:
                return u, v
        return None

    batches: List[MutationBatch] = []
    for batch_id in range(n_batches):
        mutations: List[Mutation] = []
        while len(mutations) < batch_size:
            if mix == "insert":
                kind = "insert"
            elif mix == "delete":
                kind = "delete" if rng.random() < 0.8 else "insert"
            else:
                roll = rng.random()
                if roll < 0.45:
                    kind = "insert"
                elif roll < 0.75:
                    kind = "delete"
                elif roll < 0.95:
                    kind = "reweight"
                else:
                    kind = "vertex_add"
            if kind == "insert":
                pick = draw_insert()
                if pick is None:
                    continue
                u, v = pick
                weight = float(rng.uniform(1.0, 10.0))
                mutations.append(Mutation.insert(u, v, weight=weight))
                edges.add((u, v))
            elif kind == "delete":
                if not edges:
                    continue
                candidates = sorted(edges)
                u, v = candidates[int(rng.integers(0, len(candidates)))]
                mutations.append(Mutation.delete(u, v))
                edges.discard((u, v))
            elif kind == "reweight":
                if not edges:
                    continue
                candidates = sorted(edges)
                u, v = candidates[int(rng.integers(0, len(candidates)))]
                weight = float(rng.uniform(1.0, 10.0))
                mutations.append(Mutation.reweight(u, v, weight))
            else:
                mutations.append(Mutation.add_vertices(1))
                n += 1
        batches.append(
            MutationBatch(tuple(mutations), batch_id=batch_id)
        )
    return batches
