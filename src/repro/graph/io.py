"""Graph I/O: edge-list text files (SNAP-style) and NumPy archives.

A downstream user's graphs arrive as edge lists; these helpers read and
write them so the engines can run on real data:

- :func:`read_edge_list` / :func:`write_edge_list` — whitespace-separated
  ``src dst [weight]`` lines, ``#`` comments (the SNAP/LAW convention);
- :func:`iter_edge_list_chunks` / :func:`edge_list_chunk_source` — the
  streaming variant: bounded-memory array chunks for the out-of-core
  partitioner (:func:`repro.storage.partition_graph`);
- :func:`save_npz` / :func:`load_npz` — lossless CSR round-trip for
  preprocessed graphs, with :func:`npz_chunk_source` as the
  iterator-friendly chunked view of an archive;
- :func:`validate_csr_arrays` — the one dtype/shape/CSR-structure
  validator shared by ``load_npz`` and shard-page loading
  (:mod:`repro.storage.store`).
"""

from __future__ import annotations

import zipfile
from pathlib import Path
from typing import Iterator, List, Optional, Tuple, Union

import numpy as np

from repro.errors import GraphError
from repro.graph.builder import GraphBuilder
from repro.graph.digraph import DiGraphCSR

PathLike = Union[str, Path]

#: One streamed edge chunk: parallel (src, dst, weight) arrays.
EdgeChunk = Tuple[np.ndarray, np.ndarray, np.ndarray]

#: Default edges per streamed chunk (~1.5 MB of int64/float64 triples).
DEFAULT_CHUNK_EDGES = 65_536


def validate_csr_arrays(
    indptr: np.ndarray,
    indices: np.ndarray,
    weights: Optional[np.ndarray] = None,
    num_vertices: Optional[int] = None,
    source: str = "<arrays>",
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Validate and canonicalize one CSR triple; shared by every loader.

    Checks dimensionality and dtype kinds, then the structural CSR
    invariants: ``indptr`` starts at 0, is non-decreasing, and ends at
    ``len(indices)``; destinations lie in ``[0, num_vertices)`` (the
    bound defaults to ``len(indptr) - 1``, the local row count — shard
    loaders pass the *global* vertex count because shard destinations
    are global ids). Returns ``(indptr int64, indices int64, weights
    float64)``; a ``None`` weights input becomes unit weights.

    Raises :class:`GraphError` prefixed with ``source`` on any
    violation, so a bad file in a batch job is identifiable from the
    error alone.
    """
    indptr = np.asarray(indptr)
    indices = np.asarray(indices)
    for name, arr in (("indptr", indptr), ("indices", indices)):
        if arr.ndim != 1 or arr.dtype.kind not in "iu":
            raise GraphError(
                f"{source}: {name!r} must be a 1-D integer array, got "
                f"{arr.ndim}-D {arr.dtype}"
            )
    if weights is not None:
        weights = np.asarray(weights)
        if weights.ndim != 1 or weights.dtype.kind not in "fiu":
            raise GraphError(
                f"{source}: 'weights' must be a 1-D numeric array, got "
                f"{weights.ndim}-D {weights.dtype}"
            )
        if weights.size != indices.size:
            raise GraphError(
                f"{source}: {weights.size} weights for "
                f"{indices.size} edges"
            )
    indptr = indptr.astype(np.int64)
    indices = indices.astype(np.int64)
    if indptr.size == 0:
        raise GraphError(f"{source}: 'indptr' must have at least one entry")
    if indptr[0] != 0 or int(indptr[-1]) != indices.size:
        raise GraphError(
            f"{source}: inconsistent CSR arrays: indptr must start at 0 "
            f"and end at len(indices)={indices.size}, got "
            f"[{int(indptr[0])}, {int(indptr[-1])}]"
        )
    if np.any(np.diff(indptr) < 0):
        raise GraphError(
            f"{source}: inconsistent CSR arrays: indptr must be "
            f"non-decreasing"
        )
    bound = int(num_vertices) if num_vertices is not None else indptr.size - 1
    if indices.size and (
        int(indices.min()) < 0 or int(indices.max()) >= bound
    ):
        raise GraphError(
            f"{source}: inconsistent CSR arrays: edge destination out of "
            f"range [0, {bound})"
        )
    if weights is None:
        out_weights = np.ones(indices.size, dtype=np.float64)
    else:
        out_weights = weights.astype(np.float64)
    return indptr, indices, out_weights


def _parse_edge_fields(
    path: PathLike, lineno: int, raw: str, comment: str
) -> Optional[Tuple[int, int, float]]:
    """One edge-list line -> ``(src, dst, weight)``, or None for blanks."""
    line = raw.strip()
    if not line or line.startswith(comment):
        return None
    fields = line.split()
    if len(fields) not in (2, 3):
        raise GraphError(
            f"{path}:{lineno}: expected 'src dst [weight]', "
            f"got {len(fields)} fields"
        )
    try:
        src, dst = int(fields[0]), int(fields[1])
        weight = float(fields[2]) if len(fields) == 3 else 1.0
    except ValueError as exc:
        raise GraphError(
            f"{path}:{lineno}: non-numeric field ({exc})"
        ) from None
    if src < 0 or dst < 0:
        raise GraphError(
            f"{path}:{lineno}: vertex ids must be non-negative"
        )
    return src, dst, weight


def iter_edge_list_chunks(
    path: PathLike,
    chunk_edges: int = DEFAULT_CHUNK_EDGES,
    comment: str = "#",
) -> Iterator[EdgeChunk]:
    """Stream an edge-list file as bounded-size array chunks.

    Yields ``(src, dst, weight)`` int64/int64/float64 array triples of
    at most ``chunk_edges`` edges each, holding only one chunk in
    memory — the iterator the out-of-core partitioner consumes. Raises
    the same structured :class:`GraphError`\\ s as
    :func:`read_edge_list` (file path + line number on every parse
    failure).
    """
    if chunk_edges < 1:
        raise GraphError(f"chunk_edges must be >= 1, got {chunk_edges}")
    try:
        handle = open(path, "r", encoding="utf-8")
    except OSError as exc:
        raise GraphError(f"{path}: cannot read edge list ({exc})") from None
    srcs: List[int] = []
    dsts: List[int] = []
    wts: List[float] = []
    with handle:
        try:
            for lineno, raw in enumerate(handle, start=1):
                parsed = _parse_edge_fields(path, lineno, raw, comment)
                if parsed is None:
                    continue
                srcs.append(parsed[0])
                dsts.append(parsed[1])
                wts.append(parsed[2])
                if len(srcs) >= chunk_edges:
                    yield (
                        np.asarray(srcs, dtype=np.int64),
                        np.asarray(dsts, dtype=np.int64),
                        np.asarray(wts, dtype=np.float64),
                    )
                    srcs, dsts, wts = [], [], []
        except UnicodeDecodeError as exc:
            raise GraphError(
                f"{path}: not a text edge list ({exc})"
            ) from None
    if srcs:
        yield (
            np.asarray(srcs, dtype=np.int64),
            np.asarray(dsts, dtype=np.int64),
            np.asarray(wts, dtype=np.float64),
        )


def edge_list_chunk_source(
    path: PathLike,
    chunk_edges: int = DEFAULT_CHUNK_EDGES,
    comment: str = "#",
):
    """A re-iterable chunk source over an edge-list file.

    The streaming partitioner makes multiple passes over its input;
    this returns a zero-argument callable producing a fresh
    :func:`iter_edge_list_chunks` iterator per call.
    """

    def chunks() -> Iterator[EdgeChunk]:
        return iter_edge_list_chunks(
            path, chunk_edges=chunk_edges, comment=comment
        )

    return chunks


def iter_npz_chunks(
    path: PathLike, chunk_edges: int = DEFAULT_CHUNK_EDGES
) -> Iterator[EdgeChunk]:
    """Stream a ``save_npz`` archive as bounded ``(src, dst, weight)`` chunks.

    The CSR arrays are decompressed and validated once (an ``.npz``
    member cannot be partially decompressed, so the arrays themselves
    are O(E) resident — inherent to the format), then yielded as
    ``chunk_edges``-sized slices with per-chunk source ids recovered
    from ``indptr`` via ``searchsorted``; no O(E) ``repeat`` of the
    source column is ever materialized. Chunks arrive in CSR order, so
    feeding them to :func:`repro.storage.partition_graph` reproduces
    the original graph bit for bit.
    """
    if chunk_edges < 1:
        raise GraphError(f"chunk_edges must be >= 1, got {chunk_edges}")
    graph = load_npz(path)
    indptr = graph.indptr
    for lo in range(0, graph.num_edges, chunk_edges):
        hi = min(lo + chunk_edges, graph.num_edges)
        sources = (
            np.searchsorted(
                indptr, np.arange(lo, hi, dtype=np.int64), side="right"
            )
            - 1
        )
        yield (
            sources.astype(np.int64, copy=False),
            graph.indices[lo:hi],
            graph.weights[lo:hi],
        )


def npz_chunk_source(
    path: PathLike, chunk_edges: int = DEFAULT_CHUNK_EDGES
):
    """A re-iterable chunk source over a ``save_npz`` archive."""

    def chunks() -> Iterator[EdgeChunk]:
        return iter_npz_chunks(path, chunk_edges=chunk_edges)

    return chunks


def read_edge_list(
    path: PathLike,
    num_vertices: Optional[int] = None,
    deduplicate: bool = False,
    comment: str = "#",
    chunk_edges: Optional[int] = None,
) -> DiGraphCSR:
    """Parse a ``src dst [weight]`` text file into a graph.

    With ``chunk_edges`` set, the file is parsed through
    :func:`iter_edge_list_chunks` and staged array-chunk-at-a-time —
    same resulting graph bit for bit (the builder's stable sort makes
    edge order insensitive to chunk boundaries), much less per-line
    Python overhead on large files.

    Raises
    ------
    GraphError
        On unreadable or non-text files, and on malformed lines (wrong
        field count, non-numeric fields, negative ids) with the
        offending line number. Always carries the file path.
    """
    builder = GraphBuilder(num_vertices=num_vertices, deduplicate=deduplicate)
    if chunk_edges is not None:
        for src, dst, weight in iter_edge_list_chunks(
            path, chunk_edges=chunk_edges, comment=comment
        ):
            try:
                builder.add_edge_arrays(src, dst, weight)
            except GraphError as exc:
                raise GraphError(f"{path}: {exc}") from None
        return builder.build()
    try:
        handle = open(path, "r", encoding="utf-8")
    except OSError as exc:
        raise GraphError(f"{path}: cannot read edge list ({exc})") from None
    with handle:
        try:
            for lineno, raw in enumerate(handle, start=1):
                parsed = _parse_edge_fields(path, lineno, raw, comment)
                if parsed is None:
                    continue
                try:
                    builder.add_edge(*parsed)
                except GraphError as exc:
                    raise GraphError(f"{path}:{lineno}: {exc}") from None
        except UnicodeDecodeError as exc:
            raise GraphError(
                f"{path}: not a text edge list ({exc})"
            ) from None
    return builder.build()


def write_edge_list(
    graph: DiGraphCSR,
    path: PathLike,
    include_weights: bool = True,
    header: Optional[str] = None,
) -> None:
    """Write a graph as ``src dst [weight]`` lines."""
    with open(path, "w", encoding="utf-8") as handle:
        if header:
            for line in header.splitlines():
                handle.write(f"# {line}\n")
        handle.write(
            f"# vertices={graph.num_vertices} edges={graph.num_edges}\n"
        )
        for src, dst, weight in graph.edges():
            if include_weights:
                handle.write(f"{src} {dst} {weight:g}\n")
            else:
                handle.write(f"{src} {dst}\n")


def save_npz(graph: DiGraphCSR, path: PathLike) -> None:
    """Save the CSR arrays losslessly to a ``.npz`` archive."""
    np.savez_compressed(
        path,
        indptr=graph.indptr,
        indices=graph.indices,
        weights=graph.weights,
    )


def load_npz(path: PathLike) -> DiGraphCSR:
    """Load a graph saved by :func:`save_npz`.

    Raises
    ------
    GraphError
        On unreadable/corrupt archives, missing arrays, wrong
        dimensionality or dtype kind, and structurally inconsistent CSR
        arrays (via :func:`validate_csr_arrays`). Always carries the
        file path, so a bad file in a batch job is identifiable from
        the error alone.
    """
    try:
        archive = np.load(path)
    except (OSError, ValueError, EOFError, zipfile.BadZipFile) as exc:
        raise GraphError(
            f"{path}: not a readable .npz archive ({exc})"
        ) from None
    with archive as data:
        for key in ("indptr", "indices", "weights"):
            if key not in data:
                raise GraphError(f"{path}: missing array {key!r}")
        try:
            arrays = {
                key: data[key]
                for key in ("indptr", "indices", "weights")
            }
        except (ValueError, OSError) as exc:
            raise GraphError(
                f"{path}: corrupt array payload ({exc})"
            ) from None
        indptr, indices, weights = validate_csr_arrays(
            arrays["indptr"],
            arrays["indices"],
            arrays["weights"],
            source=str(path),
        )
        try:
            return DiGraphCSR(indptr, indices, weights)
        except (GraphError, ValueError, IndexError) as exc:
            raise GraphError(
                f"{path}: inconsistent CSR arrays ({exc})"
            ) from None
