"""Graph I/O: edge-list text files (SNAP-style) and NumPy archives.

A downstream user's graphs arrive as edge lists; these helpers read and
write them so the engines can run on real data:

- :func:`read_edge_list` / :func:`write_edge_list` — whitespace-separated
  ``src dst [weight]`` lines, ``#`` comments (the SNAP/LAW convention);
- :func:`save_npz` / :func:`load_npz` — lossless CSR round-trip for
  preprocessed graphs.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.errors import GraphError
from repro.graph.builder import GraphBuilder
from repro.graph.digraph import DiGraphCSR

PathLike = Union[str, Path]


def read_edge_list(
    path: PathLike,
    num_vertices: Optional[int] = None,
    deduplicate: bool = False,
    comment: str = "#",
) -> DiGraphCSR:
    """Parse a ``src dst [weight]`` text file into a graph.

    Raises
    ------
    GraphError
        On malformed lines (wrong field count, non-numeric fields,
        negative ids), with the offending line number.
    """
    builder = GraphBuilder(num_vertices=num_vertices, deduplicate=deduplicate)
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith(comment):
                continue
            fields = line.split()
            if len(fields) not in (2, 3):
                raise GraphError(
                    f"{path}:{lineno}: expected 'src dst [weight]', "
                    f"got {len(fields)} fields"
                )
            try:
                src, dst = int(fields[0]), int(fields[1])
                weight = float(fields[2]) if len(fields) == 3 else 1.0
            except ValueError as exc:
                raise GraphError(
                    f"{path}:{lineno}: non-numeric field ({exc})"
                ) from None
            builder.add_edge(src, dst, weight)
    return builder.build()


def write_edge_list(
    graph: DiGraphCSR,
    path: PathLike,
    include_weights: bool = True,
    header: Optional[str] = None,
) -> None:
    """Write a graph as ``src dst [weight]`` lines."""
    with open(path, "w", encoding="utf-8") as handle:
        if header:
            for line in header.splitlines():
                handle.write(f"# {line}\n")
        handle.write(
            f"# vertices={graph.num_vertices} edges={graph.num_edges}\n"
        )
        for src, dst, weight in graph.edges():
            if include_weights:
                handle.write(f"{src} {dst} {weight:g}\n")
            else:
                handle.write(f"{src} {dst}\n")


def save_npz(graph: DiGraphCSR, path: PathLike) -> None:
    """Save the CSR arrays losslessly to a ``.npz`` archive."""
    np.savez_compressed(
        path,
        indptr=graph.indptr,
        indices=graph.indices,
        weights=graph.weights,
    )


def load_npz(path: PathLike) -> DiGraphCSR:
    """Load a graph saved by :func:`save_npz`."""
    with np.load(path) as data:
        for key in ("indptr", "indices", "weights"):
            if key not in data:
                raise GraphError(f"{path}: missing array {key!r}")
        return DiGraphCSR(
            data["indptr"].copy(),
            data["indices"].copy(),
            data["weights"].copy(),
        )
