"""Graph I/O: edge-list text files (SNAP-style) and NumPy archives.

A downstream user's graphs arrive as edge lists; these helpers read and
write them so the engines can run on real data:

- :func:`read_edge_list` / :func:`write_edge_list` — whitespace-separated
  ``src dst [weight]`` lines, ``#`` comments (the SNAP/LAW convention);
- :func:`save_npz` / :func:`load_npz` — lossless CSR round-trip for
  preprocessed graphs.
"""

from __future__ import annotations

import zipfile
from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.errors import GraphError
from repro.graph.builder import GraphBuilder
from repro.graph.digraph import DiGraphCSR

PathLike = Union[str, Path]


def read_edge_list(
    path: PathLike,
    num_vertices: Optional[int] = None,
    deduplicate: bool = False,
    comment: str = "#",
) -> DiGraphCSR:
    """Parse a ``src dst [weight]`` text file into a graph.

    Raises
    ------
    GraphError
        On unreadable or non-text files, and on malformed lines (wrong
        field count, non-numeric fields, negative ids) with the
        offending line number. Always carries the file path.
    """
    builder = GraphBuilder(num_vertices=num_vertices, deduplicate=deduplicate)
    try:
        handle = open(path, "r", encoding="utf-8")
    except OSError as exc:
        raise GraphError(f"{path}: cannot read edge list ({exc})") from None
    with handle:
        try:
            lines = enumerate(handle, start=1)
            for lineno, raw in lines:
                _parse_edge_line(builder, path, lineno, raw, comment)
        except UnicodeDecodeError as exc:
            raise GraphError(
                f"{path}: not a text edge list ({exc})"
            ) from None
    return builder.build()


def _parse_edge_line(
    builder: GraphBuilder,
    path: PathLike,
    lineno: int,
    raw: str,
    comment: str,
) -> None:
    line = raw.strip()
    if not line or line.startswith(comment):
        return
    fields = line.split()
    if len(fields) not in (2, 3):
        raise GraphError(
            f"{path}:{lineno}: expected 'src dst [weight]', "
            f"got {len(fields)} fields"
        )
    try:
        src, dst = int(fields[0]), int(fields[1])
        weight = float(fields[2]) if len(fields) == 3 else 1.0
    except ValueError as exc:
        raise GraphError(
            f"{path}:{lineno}: non-numeric field ({exc})"
        ) from None
    try:
        builder.add_edge(src, dst, weight)
    except GraphError as exc:
        raise GraphError(f"{path}:{lineno}: {exc}") from None


def write_edge_list(
    graph: DiGraphCSR,
    path: PathLike,
    include_weights: bool = True,
    header: Optional[str] = None,
) -> None:
    """Write a graph as ``src dst [weight]`` lines."""
    with open(path, "w", encoding="utf-8") as handle:
        if header:
            for line in header.splitlines():
                handle.write(f"# {line}\n")
        handle.write(
            f"# vertices={graph.num_vertices} edges={graph.num_edges}\n"
        )
        for src, dst, weight in graph.edges():
            if include_weights:
                handle.write(f"{src} {dst} {weight:g}\n")
            else:
                handle.write(f"{src} {dst}\n")


def save_npz(graph: DiGraphCSR, path: PathLike) -> None:
    """Save the CSR arrays losslessly to a ``.npz`` archive."""
    np.savez_compressed(
        path,
        indptr=graph.indptr,
        indices=graph.indices,
        weights=graph.weights,
    )


def load_npz(path: PathLike) -> DiGraphCSR:
    """Load a graph saved by :func:`save_npz`.

    Raises
    ------
    GraphError
        On unreadable/corrupt archives, missing arrays, wrong
        dimensionality or dtype kind, and structurally inconsistent CSR
        arrays. Always carries the file path, so a bad file in a batch
        job is identifiable from the error alone.
    """
    try:
        archive = np.load(path)
    except (OSError, ValueError, EOFError, zipfile.BadZipFile) as exc:
        raise GraphError(
            f"{path}: not a readable .npz archive ({exc})"
        ) from None
    with archive as data:
        for key in ("indptr", "indices", "weights"):
            if key not in data:
                raise GraphError(f"{path}: missing array {key!r}")
        try:
            arrays = {
                key: data[key]
                for key in ("indptr", "indices", "weights")
            }
        except (ValueError, OSError) as exc:
            raise GraphError(
                f"{path}: corrupt array payload ({exc})"
            ) from None
        for key in ("indptr", "indices"):
            arr = arrays[key]
            if arr.ndim != 1 or arr.dtype.kind not in "iu":
                raise GraphError(
                    f"{path}: {key!r} must be a 1-D integer array, got "
                    f"{arr.ndim}-D {arr.dtype}"
                )
        weights = arrays["weights"]
        if weights.ndim != 1 or weights.dtype.kind not in "fiu":
            raise GraphError(
                f"{path}: 'weights' must be a 1-D numeric array, got "
                f"{weights.ndim}-D {weights.dtype}"
            )
        try:
            return DiGraphCSR(
                arrays["indptr"].astype(np.int64),
                arrays["indices"].astype(np.int64),
                weights.astype(np.float64),
            )
        except (GraphError, ValueError, IndexError) as exc:
            raise GraphError(
                f"{path}: inconsistent CSR arrays ({exc})"
            ) from None
