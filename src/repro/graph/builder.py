"""Build :class:`~repro.graph.digraph.DiGraphCSR` objects from edge lists.

:class:`GraphBuilder` is the mutable staging area; :func:`from_edges` is the
one-shot convenience used throughout the tests and examples.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import GraphError
from repro.graph.digraph import DiGraphCSR

Edge = Union[Tuple[int, int], Tuple[int, int, float]]


class GraphBuilder:
    """Accumulates directed edges and finalizes them into a CSR graph.

    Parameters
    ----------
    num_vertices:
        Fixed vertex count, or ``None`` to infer ``max endpoint + 1``.
    deduplicate:
        Collapse parallel edges, keeping the first weight seen.
    """

    def __init__(
        self, num_vertices: Optional[int] = None, deduplicate: bool = False
    ) -> None:
        if num_vertices is not None and num_vertices < 0:
            raise GraphError("num_vertices must be non-negative")
        self._num_vertices = num_vertices
        self._deduplicate = deduplicate
        self._srcs: List[int] = []
        self._dsts: List[int] = []
        self._wts: List[float] = []

    def add_edge(self, src: int, dst: int, weight: float = 1.0) -> "GraphBuilder":
        """Add one directed edge ``src -> dst``; returns self for chaining."""
        if src < 0 or dst < 0:
            raise GraphError("vertex ids must be non-negative")
        if self._num_vertices is not None and (
            src >= self._num_vertices or dst >= self._num_vertices
        ):
            raise GraphError(
                f"edge ({src}, {dst}) outside fixed vertex count "
                f"{self._num_vertices}"
            )
        self._srcs.append(int(src))
        self._dsts.append(int(dst))
        self._wts.append(float(weight))
        return self

    def add_edges(self, edges: Iterable[Edge]) -> "GraphBuilder":
        """Add many edges; each is ``(src, dst)`` or ``(src, dst, weight)``."""
        for edge in edges:
            if len(edge) == 2:
                self.add_edge(edge[0], edge[1])
            elif len(edge) == 3:
                self.add_edge(edge[0], edge[1], edge[2])
            else:
                raise GraphError(f"malformed edge tuple of length {len(edge)}")
        return self

    def add_edge_arrays(
        self,
        src: np.ndarray,
        dst: np.ndarray,
        weight: Optional[np.ndarray] = None,
    ) -> "GraphBuilder":
        """Add one chunk of edges from parallel arrays (vectorized checks).

        The chunked counterpart of :meth:`add_edge` — the streaming I/O
        path (:func:`repro.graph.io.iter_edge_list_chunks`) and the
        sharded-store adapters feed edges through here so a large edge
        list is validated per chunk instead of per Python call.
        """
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        if src.shape != dst.shape or src.ndim != 1:
            raise GraphError(
                f"edge arrays must be parallel 1-D arrays, got "
                f"{src.shape} and {dst.shape}"
            )
        if weight is None:
            wts = np.ones(src.size, dtype=np.float64)
        else:
            wts = np.asarray(weight, dtype=np.float64)
            if wts.shape != src.shape:
                raise GraphError(
                    f"weight array shape {wts.shape} does not match "
                    f"edge arrays {src.shape}"
                )
        if src.size and (src.min() < 0 or dst.min() < 0):
            raise GraphError("vertex ids must be non-negative")
        if self._num_vertices is not None and src.size:
            hi = max(int(src.max()), int(dst.max()))
            if hi >= self._num_vertices:
                raise GraphError(
                    f"edge endpoint {hi} outside fixed vertex count "
                    f"{self._num_vertices}"
                )
        self._srcs.extend(src.tolist())
        self._dsts.extend(dst.tolist())
        self._wts.extend(wts.tolist())
        return self

    @property
    def num_staged_edges(self) -> int:
        """Number of edges added so far (before deduplication)."""
        return len(self._srcs)

    def build(self) -> DiGraphCSR:
        """Finalize into an immutable :class:`DiGraphCSR`.

        Out-edges of each vertex appear in insertion order, which keeps
        edge ids deterministic for a given edge sequence.
        """
        srcs = np.asarray(self._srcs, dtype=np.int64)
        dsts = np.asarray(self._dsts, dtype=np.int64)
        wts = np.asarray(self._wts, dtype=np.float64)

        if self._num_vertices is not None:
            n = self._num_vertices
        else:
            n = int(max(srcs.max(initial=-1), dsts.max(initial=-1)) + 1)

        if self._deduplicate and srcs.size:
            seen = set()
            keep = np.zeros(srcs.size, dtype=bool)
            for i in range(srcs.size):
                key = (int(srcs[i]), int(dsts[i]))
                if key not in seen:
                    seen.add(key)
                    keep[i] = True
            srcs, dsts, wts = srcs[keep], dsts[keep], wts[keep]

        order = np.argsort(srcs, kind="stable")
        srcs, dsts, wts = srcs[order], dsts[order], wts[order]
        counts = np.bincount(srcs, minlength=n) if srcs.size else np.zeros(n, dtype=np.int64)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return DiGraphCSR(indptr, dsts, wts)


def from_edges(
    edges: Sequence[Edge],
    num_vertices: Optional[int] = None,
    deduplicate: bool = False,
) -> DiGraphCSR:
    """Build a graph from an edge sequence in one call."""
    return (
        GraphBuilder(num_vertices=num_vertices, deduplicate=deduplicate)
        .add_edges(edges)
        .build()
    )
