"""Graph metrics matching Table 1 of the paper.

Table 1 reports, per dataset: vertex count, edge count, ``A_Deg`` (average
degree of all vertices) and ``A_Dis`` (average distance between any two
vertices). For large graphs the average distance is estimated by sampled
BFS, the standard technique; the sample size is a parameter so tests can
make it exact on small graphs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.graph.digraph import DiGraphCSR
from repro.graph.traversal import UNREACHED, bfs_levels, sample_sources


@dataclass(frozen=True)
class GraphProperties:
    """One row of Table 1."""

    name: str
    num_vertices: int
    num_edges: int
    average_degree: float
    average_distance: float

    def as_row(self) -> str:
        return (
            f"{self.name:<10} {self.num_vertices:>10,} {self.num_edges:>12,} "
            f"{self.average_degree:>7.3f} {self.average_distance:>7.2f}"
        )


def average_degree(graph: DiGraphCSR) -> float:
    """Average out-degree (= edges / vertices), Table 1's ``A_Deg``."""
    if graph.num_vertices == 0:
        return 0.0
    return graph.num_edges / graph.num_vertices


def average_distance(
    graph: DiGraphCSR,
    sample: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
) -> float:
    """Average finite directed distance between vertex pairs (``A_Dis``).

    Runs BFS from ``sample`` sources (all vertices if ``None``) and averages
    the finite non-zero distances. Unreachable pairs are excluded, as is
    conventional for disconnected web graphs.
    """
    n = graph.num_vertices
    if n <= 1:
        return 0.0
    if sample is None or sample >= n:
        sources = np.arange(n)
    else:
        sources = sample_sources(graph, sample, rng=rng)
    total = 0.0
    count = 0
    for s in sources:
        levels = bfs_levels(graph, int(s))
        finite = levels[(levels != UNREACHED) & (levels > 0)]
        total += float(finite.sum())
        count += int(finite.size)
    return total / count if count else 0.0


def effective_diameter(
    graph: DiGraphCSR,
    quantile: float = 0.9,
    sample: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
) -> int:
    """Distance within which ``quantile`` of reachable pairs fall."""
    n = graph.num_vertices
    if n <= 1:
        return 0
    if sample is None or sample >= n:
        sources = np.arange(n)
    else:
        sources = sample_sources(graph, sample, rng=rng)
    distances = []
    for s in sources:
        levels = bfs_levels(graph, int(s))
        distances.append(levels[(levels != UNREACHED) & (levels > 0)])
    if not distances:
        return 0
    merged = np.concatenate(distances)
    if merged.size == 0:
        return 0
    return int(np.quantile(merged, quantile, method="higher"))


def graph_properties(
    graph: DiGraphCSR,
    name: str = "graph",
    distance_sample: Optional[int] = 64,
    rng: Optional[np.random.Generator] = None,
) -> GraphProperties:
    """Compute a Table-1 row for ``graph``."""
    return GraphProperties(
        name=name,
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        average_degree=average_degree(graph),
        average_distance=average_distance(graph, sample=distance_sample, rng=rng),
    )


def degree_skew(graph: DiGraphCSR) -> float:
    """Max degree / mean degree; >> 1 signals a power-law-ish graph."""
    degrees = graph.degree()
    mean = degrees.mean() if degrees.size else 0.0
    if mean == 0:
        return 0.0
    return float(degrees.max() / mean)
