"""Stand-ins for the paper's six evaluation datasets (Table 1).

The paper uses LAW graphs: dblp-2010, cnr-2000, ljournal-2008, webbase-2001,
it-2004, twitter-2010 (0.3M-118M vertices). This repo cannot download them
and could not execute billion-edge workloads through a pure-Python
simulator, so each dataset is a *seeded synthetic stand-in* built with
:func:`repro.graph.generators.scc_profile_graph`, scaled down ~500x but
tuned so the **relative** Table-1 profile is preserved:

========  ==========  ==========  ==============  ====================
dataset   A_Deg rank  A_Dis rank  giant-SCC frac  character
========  ==========  ==========  ==============  ====================
dblp      lowest      medium      ~0.69           citation-like
cnr       medium      longest     ~0.34           web crawl
ljournal  high        short       ~0.78           social
webbase   medium      long        ~0.46           web crawl
it04      very high   long        ~0.72           web crawl
twitter   highest     shortest    ~0.80           social
========  ==========  ==========  ==============  ====================

The contrasts the evaluation leans on — "DiGraph wins more on graphs with
longer average distance" (Fig. 11), hot-vertex skew, one-update fractions
(Fig. 2d) — are functions of these knobs, so they carry over. DESIGN.md
records this substitution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.errors import GraphError
from repro.graph.digraph import DiGraphCSR
from repro.graph.generators import scc_profile_graph, with_random_weights
from repro.graph.metrics import GraphProperties, graph_properties


@dataclass(frozen=True)
class DatasetRecipe:
    """Generator parameters for one stand-in dataset.

    ``avg_distance`` targets the paper's Table-1 ``A_Dis`` value directly
    (the layered generator controls distance independently of scale).
    """

    name: str
    base_vertices: int
    avg_degree: float
    giant_scc_fraction: float
    avg_distance: float
    seed: int
    description: str


_RECIPES: Dict[str, DatasetRecipe] = {
    "dblp": DatasetRecipe(
        name="dblp",
        base_vertices=600,
        avg_degree=4.8,
        giant_scc_fraction=0.69,
        avg_distance=7.35,
        seed=101,
        description="citation-like: low degree, medium distance",
    ),
    "cnr": DatasetRecipe(
        name="cnr",
        base_vertices=600,
        avg_degree=9.0,
        giant_scc_fraction=0.34,
        avg_distance=17.45,
        seed=102,
        description="web crawl: medium degree, longest distance, small SCC",
    ),
    "ljournal": DatasetRecipe(
        name="ljournal",
        base_vertices=700,
        avg_degree=13.0,
        giant_scc_fraction=0.78,
        avg_distance=5.99,
        seed=103,
        description="social: high degree, short distance",
    ),
    "webbase": DatasetRecipe(
        name="webbase",
        base_vertices=1000,
        avg_degree=8.0,
        giant_scc_fraction=0.46,
        avg_distance=17.19,
        seed=104,
        description="web crawl: medium degree, long distance",
    ),
    "it04": DatasetRecipe(
        name="it04",
        base_vertices=800,
        avg_degree=16.0,
        giant_scc_fraction=0.72,
        avg_distance=15.04,
        seed=105,
        description="web crawl: very high degree, long distance",
    ),
    "twitter": DatasetRecipe(
        name="twitter",
        base_vertices=800,
        avg_degree=20.0,
        giant_scc_fraction=0.80,
        avg_distance=4.46,
        seed=106,
        description="social: highest degree, shortest distance",
    ),
}

#: Dataset order used throughout the paper's figures.
DATASET_NAMES: Tuple[str, ...] = (
    "dblp",
    "cnr",
    "ljournal",
    "webbase",
    "it04",
    "twitter",
)


def recipe(name: str) -> DatasetRecipe:
    """The generator recipe for a dataset name."""
    try:
        return _RECIPES[name]
    except KeyError:
        raise GraphError(
            f"unknown dataset {name!r}; available: {', '.join(DATASET_NAMES)}"
        ) from None


def load(name: str, scale: float = 1.0, weighted: bool = False) -> DiGraphCSR:
    """Build the stand-in graph for ``name``.

    Parameters
    ----------
    name:
        One of :data:`DATASET_NAMES`.
    scale:
        Multiplier on the base vertex count — ``scale=2`` doubles the graph.
    weighted:
        Attach uniform random edge weights in ``[1, 10)`` (used by SSSP).
    """
    if scale <= 0:
        raise GraphError("scale must be positive")
    r = recipe(name)
    n = max(8, int(round(r.base_vertices * scale)))
    graph = scc_profile_graph(
        n=n,
        avg_degree=r.avg_degree,
        giant_scc_fraction=r.giant_scc_fraction,
        avg_distance=r.avg_distance,
        seed=r.seed,
    )
    if weighted:
        graph = with_random_weights(graph, seed=r.seed + 7)
    return graph


def load_all(
    scale: float = 1.0, weighted: bool = False
) -> Dict[str, DiGraphCSR]:
    """Build all six stand-ins keyed by name, in paper order."""
    return {name: load(name, scale=scale, weighted=weighted) for name in DATASET_NAMES}


def table1(scale: float = 1.0, distance_sample: int = 48) -> Tuple[GraphProperties, ...]:
    """Compute the Table-1 analog for the stand-ins at the given scale."""
    rows = []
    for name in DATASET_NAMES:
        graph = load(name, scale=scale)
        rows.append(
            graph_properties(graph, name=name, distance_sample=distance_sample)
        )
    return tuple(rows)
