"""Directed-graph substrate: representation, generators, datasets, metrics.

The classes here are the foundation everything else builds on: an immutable
CSR/CSC directed graph (:class:`~repro.graph.digraph.DiGraphCSR`), a builder
from edge lists, seeded synthetic generators, the six paper-dataset
stand-ins, SCC machinery, and graph metrics matching Table 1 of the paper.
"""

from repro.graph.builder import GraphBuilder, from_edges
from repro.graph.digraph import DiGraphCSR
from repro.graph.io import load_npz, read_edge_list, save_npz, write_edge_list
from repro.graph.scc import condensation, strongly_connected_components

__all__ = [
    "DiGraphCSR",
    "GraphBuilder",
    "from_edges",
    "strongly_connected_components",
    "condensation",
    "read_edge_list",
    "write_edge_list",
    "save_npz",
    "load_npz",
]
