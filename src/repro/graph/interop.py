"""NetworkX interoperability.

Downstream users often already hold a ``networkx.DiGraph``; these
converters move graphs (with weights) between the two representations so
the engines can run on them directly, and so results can be inspected
with NetworkX's toolbox. NetworkX is an optional dependency — import
errors surface only when these functions are called.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import GraphError
from repro.graph.builder import GraphBuilder
from repro.graph.digraph import DiGraphCSR


def _networkx():
    try:
        import networkx
    except ImportError as exc:  # pragma: no cover - depends on env
        raise GraphError(
            "networkx is required for interop conversions"
        ) from exc
    return networkx


def from_networkx(
    nx_graph, weight_attribute: str = "weight"
) -> DiGraphCSR:
    """Convert a ``networkx.DiGraph`` (or Graph) to :class:`DiGraphCSR`.

    Node labels are mapped to dense ids in sorted label order; undirected
    graphs contribute both edge directions. Missing weight attributes
    default to 1.0.
    """
    nx = _networkx()
    nodes = sorted(nx_graph.nodes())
    index = {node: i for i, node in enumerate(nodes)}
    builder = GraphBuilder(num_vertices=len(nodes))
    directed = nx_graph.is_directed()
    for u, v, data in nx_graph.edges(data=True):
        weight = float(data.get(weight_attribute, 1.0))
        builder.add_edge(index[u], index[v], weight)
        if not directed:
            builder.add_edge(index[v], index[u], weight)
    return builder.build()


def to_networkx(graph: DiGraphCSR, states: Optional[np.ndarray] = None):
    """Convert to ``networkx.DiGraph``; optionally attach per-vertex
    ``state`` attributes (e.g. an engine's final states)."""
    nx = _networkx()
    if states is not None and states.shape != (graph.num_vertices,):
        raise GraphError("states must have one entry per vertex")
    out = nx.DiGraph()
    out.add_nodes_from(range(graph.num_vertices))
    for src, dst, weight in graph.edges():
        out.add_edge(src, dst, weight=weight)
    if states is not None:
        for v in range(graph.num_vertices):
            out.nodes[v]["state"] = float(states[v])
    return out
