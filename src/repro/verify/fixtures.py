"""Canonical conformance graphs.

Two small hand-built graphs exercising the structural features the
engines care about, with no RNG anywhere so they are stable across
sessions and platforms:

- ``two-scc-chain`` — two 3-cycles bridged in sequence, a tail chain, a
  self-loop, and an isolated vertex: a multi-layer DAG sketch with
  singleton layers, the shape Algorithm 1's banding targets;
- ``hub-ring`` — a hub fanning out through a mesh that cycles back to
  it: the whole graph is one giant SCC, the paper's hardest dispatch
  case (Section 3.2.2's giant SCC-vertex).

Edge weights follow ``w = 1 + (src * 7 + dst * 3) % 5`` — deterministic,
strictly positive (SSSP-safe), and non-uniform enough that weighted
programs cannot pass by accident.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.graph.builder import from_edges
from repro.graph.digraph import DiGraphCSR


def canonical_weight(src: int, dst: int) -> float:
    """The fixtures' deterministic edge weight."""
    return float(1 + (src * 7 + dst * 3) % 5)


def _weighted(
    edges: List[Tuple[int, int]], num_vertices: int
) -> DiGraphCSR:
    return from_edges(
        [(s, d, canonical_weight(s, d)) for s, d in edges],
        num_vertices=num_vertices,
    )


def two_scc_chain() -> DiGraphCSR:
    """12 vertices: cycle {0,1,2} -> cycle {3,4,5} -> chain 6,7,10,11,
    plus self-loop 9->9 and isolated vertex 8."""
    edges = [
        (0, 1), (1, 2), (2, 0),      # first SCC
        (2, 3),                      # bridge
        (3, 4), (4, 5), (5, 3),      # second SCC
        (1, 4),                      # cross edge between the SCCs
        (5, 6), (6, 7),              # downstream chain
        (7, 10), (10, 11),
        (9, 9),                      # self-loop (own singleton SCC)
    ]
    return _weighted(edges, num_vertices=12)


def hub_ring() -> DiGraphCSR:
    """10 vertices forming one giant SCC: hub 0 fans out to 1-5, they
    converge on 6, an inner cycle 6->7->8->6, and 8->9->0 closes the
    ring."""
    edges = [
        (0, 1), (0, 2), (0, 3), (0, 4), (0, 5),
        (1, 6), (2, 6), (3, 6), (4, 6), (5, 6),
        (6, 7), (7, 8), (8, 6),
        (8, 9), (9, 0),
    ]
    return _weighted(edges, num_vertices=10)


#: Name -> builder for the canonical conformance graphs.
CANONICAL_GRAPHS: Dict[str, Callable[[], DiGraphCSR]] = {
    "two-scc-chain": two_scc_chain,
    "hub-ring": hub_ring,
}
