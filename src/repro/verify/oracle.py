"""Cross-engine equivalence oracle.

Every engine implements the same pull-style GAS semantics, so all of
them must reach the same fixed point (the premise behind Fig. 11's
update-count comparison). The oracle runs an algorithm through several
engines and certifies two things per engine, both grounded in
:mod:`repro.model.validate`:

- the final states satisfy the program's own update equations
  (:func:`~repro.model.validate.residuals` is the ground truth — the
  engine's convergence flag only says *it* stopped);
- the states agree with the reference engine's: **exactly** for
  discrete programs (min/level/count lattices, where every engine must
  land on the identical values) and within a **tolerance band** for
  contractions (different relaxation orders stop at slightly different
  points inside the same tolerance basin).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.algorithms import make_program
from repro.bench.results import ExecutionResult
from repro.core.engine import DiGraphConfig, DiGraphEngine
from repro.core.variants import digraph_t, digraph_w
from repro.errors import ReproError
from repro.gpu.config import SCALED_MACHINE, MachineSpec
from repro.verify.report import CheckResult, VerificationReport
from repro.verify.structural import check_fixed_point_reached

#: Programs whose states live on discrete lattices (distances, levels,
#: core numbers, component labels, reachability flags): every engine
#: must produce bit-identical fixed points.
DISCRETE_ALGORITHMS = frozenset(
    {"sssp", "kcore", "bfs", "wcc", "reachability"}
)

#: Contraction programs (damped linear iterations): engines stop inside
#: the same tolerance basin, not on identical bits.
CONTRACTION_ALGORITHMS = frozenset({"pagerank", "adsorption", "ppr"})

#: The eight conformance algorithms.
ALL_ALGORITHMS = tuple(sorted(DISCRETE_ALGORITHMS | CONTRACTION_ALGORITHMS))

#: Default engine panel: the sequential reference first (it anchors the
#: comparison), then one of each parallel execution model.
DEFAULT_ENGINES = ("sequential", "bulk-sync", "async", "digraph")


def equivalence_band(program, graph) -> float:
    """Per-vertex |a - b| bound for two converged contraction runs.

    Each run can sit up to the in-degree-aware fixed-point tolerance
    away from the true fixed point (see
    :func:`~repro.model.validate.check_fixed_point`), so two runs can
    differ by twice that, with slack for the contraction's error
    amplification near the fixed point.
    """
    max_in = int(graph.in_degree().max()) if graph.num_vertices else 0
    return max(program.tolerance, 1e-12) * max(max_in, 1) * 8


def _build_engine(
    name: str, machine: MachineSpec, verify_digraph: bool
):
    if name in ("digraph", "digraph-t", "digraph-w"):
        config = DiGraphConfig(verify_invariants=verify_digraph)
        if name == "digraph":
            return DiGraphEngine(machine, config)
        if name == "digraph-t":
            return digraph_t(machine, config)
        return digraph_w(machine, config)
    from repro.bench.runner import make_engine

    return make_engine(name, machine)


def states_equivalent(
    a: np.ndarray,
    b: np.ndarray,
    band: float,
) -> CheckResult:
    """Compare two state vectors: infinity patterns must match exactly,
    finite values within ``band`` (``band=0`` demands exact equality)."""
    if a.shape != b.shape:
        return CheckResult(
            name="oracle.states",
            passed=False,
            detail=f"shape {a.shape} != {b.shape}",
        )
    finite_a, finite_b = np.isfinite(a), np.isfinite(b)
    if not np.array_equal(finite_a, finite_b):
        differing = int((finite_a != finite_b).sum())
        return CheckResult(
            name="oracle.states",
            passed=False,
            detail=f"{differing} vertices differ in finiteness",
        )
    diff = np.abs(a[finite_a] - b[finite_b])
    worst = float(diff.max()) if diff.size else 0.0
    passed = worst <= band
    return CheckResult(
        name="oracle.states",
        passed=passed,
        detail=(
            f"max |a-b| = {worst:.3g} "
            f"{'<=' if passed else '>'} band {band:.3g}"
        ),
    )


def cross_engine_check(
    graph,
    algo: str,
    engine_names: Sequence[str] = DEFAULT_ENGINES,
    machine: Optional[MachineSpec] = None,
    graph_name: str = "graph",
    verify_digraph: bool = True,
    program_kwargs: Optional[Dict] = None,
) -> VerificationReport:
    """Run ``algo`` through every engine and certify equivalence.

    With ``verify_digraph`` the DiGraph-family engines also run their
    built-in structural and conservation checks
    (:attr:`~repro.core.engine.DiGraphConfig.verify_invariants`); a
    violation there surfaces as a failed check here, not an exception.
    """
    machine = machine or SCALED_MACHINE
    kwargs = dict(program_kwargs or {})
    report = VerificationReport()

    results: List[ExecutionResult] = []
    labels: List[str] = []
    for name in engine_names:
        # Fresh program per engine: programs cache graph-derived arrays
        # and engines must not share them.
        program = make_program(algo, graph, **kwargs)
        engine = _build_engine(name, machine, verify_digraph)
        try:
            result = engine.run(graph, program, graph_name=graph_name)
        except ReproError as exc:
            report.add(
                CheckResult(
                    name=f"oracle.{algo}.{name}.run",
                    passed=False,
                    detail=f"{type(exc).__name__}: {exc}",
                )
            )
            continue
        fixed = check_fixed_point_reached(program, graph, result.states)
        report.add(
            CheckResult(
                name=f"oracle.{algo}.{name}.fixed-point",
                passed=fixed.passed,
                detail=fixed.detail,
            )
        )
        results.append(result)
        labels.append(name)

    if len(results) < 2:
        return report

    reference, ref_label = results[0], labels[0]
    band = 0.0
    if algo in CONTRACTION_ALGORITHMS:
        band = equivalence_band(
            make_program(algo, graph, **kwargs), graph
        )
    for result, label in zip(results[1:], labels[1:]):
        cmp = states_equivalent(reference.states, result.states, band)
        report.add(
            CheckResult(
                name=f"oracle.{algo}.{ref_label}-vs-{label}",
                passed=cmp.passed,
                detail=cmp.detail,
            )
        )
    return report
