"""Serving-layer equivalence oracle.

Two checkers certify the tentpole claim of :mod:`repro.serve` — that
batching k same-algorithm point queries into one multi-source lane
solve changes **no** served answer:

- :func:`verify_lane_equivalence` runs one batch of programs through
  both :meth:`~repro.serve.solver.MultiSourceSolver.solve` (vectorized
  lane kernels over the union frontier) and
  :meth:`~repro.serve.solver.MultiSourceSolver.solve_reference` (an
  independent scalar per-vertex code path over per-lane frontiers) and
  requires bit-identical per-lane state digests and matching per-lane
  round counts.
- :func:`verify_serve_report` replays every completed query of a
  :class:`~repro.serve.server.ServeReport` as a standalone
  single-source golden run and requires each served digest to match —
  the end-to-end check ``repro serve --strict`` runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.model.gas import VertexProgram
from repro.serve.context import ServingContext
from repro.serve.query import make_query_program
from repro.serve.server import ServeReport
from repro.serve.solver import MultiSourceSolver
from repro.verify.report import CheckResult


def verify_lane_equivalence(
    context: ServingContext,
    programs: Sequence[VertexProgram],
    max_rounds: int = 100000,
) -> CheckResult:
    """One batched solve vs per-lane scalar goldens, bit for bit."""
    solver = MultiSourceSolver(context, programs, max_rounds=max_rounds)
    batched = solver.solve()
    golden = solver.solve_reference()
    mismatches = [
        f"lane {lane}: digest {batched.digests[lane][:12]}... != "
        f"golden {golden.digests[lane][:12]}..."
        for lane in range(len(programs))
        if batched.digests[lane] != golden.digests[lane]
    ]
    mismatches.extend(
        f"lane {lane}: rounds {batched.lane_rounds[lane]} != "
        f"golden {golden.lane_rounds[lane]}"
        for lane in range(len(programs))
        if batched.lane_rounds[lane] != golden.lane_rounds[lane]
    )
    return CheckResult(
        name="serve.lane-equivalence",
        passed=not mismatches,
        detail=(
            f"{len(programs)} lanes bit-identical, "
            f"launches {batched.launches} vs {golden.launches} sequential"
            if not mismatches
            else "; ".join(mismatches)
        ),
    )


@dataclass(frozen=True)
class ServeEquivalenceVerdict:
    """Per-query oracle outcome for one served trace."""

    passed: bool
    checked: int
    skipped: int            #: failed queries have no digest to certify
    failures: Tuple[str, ...]
    detail: str


def verify_serve_report(
    context: ServingContext,
    report: ServeReport,
    max_rounds: int = 100000,
) -> ServeEquivalenceVerdict:
    """Certify every completed query against its solo golden run.

    Each query is replayed alone through the scalar reference path on
    the same shared context; its digest must equal the digest the
    (batched, possibly replayed-after-fault) serve run reported.
    """
    failures: List[str] = []
    checked = 0
    for result in report.results:
        if result.status != "ok":
            continue
        checked += 1
        solo = MultiSourceSolver(
            context,
            [make_query_program(result.query)],
            max_rounds=max_rounds,
        ).solve_reference()
        if solo.digests[0] != result.digest:
            failures.append(
                f"query {result.query.query_id} "
                f"({result.query.algorithm}, batch {result.batch_id}, "
                f"{result.lanes} lanes): served digest "
                f"{result.digest[:12]}... != golden "
                f"{solo.digests[0][:12]}..."
            )
        elif solo.lane_rounds[0] != result.rounds:
            failures.append(
                f"query {result.query.query_id}: served rounds "
                f"{result.rounds} != golden {solo.lane_rounds[0]}"
            )
    skipped = len(report.results) - checked
    return ServeEquivalenceVerdict(
        passed=not failures,
        checked=checked,
        skipped=skipped,
        failures=tuple(failures),
        detail=(
            f"{checked} served answers bit-identical to solo goldens"
            + (f", {skipped} failed queries skipped" if skipped else "")
            if not failures
            else f"{len(failures)}/{checked} mismatches"
        ),
    )
