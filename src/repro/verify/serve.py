"""Serving-layer equivalence oracle.

Two checkers certify the tentpole claim of :mod:`repro.serve` — that
batching k same-algorithm point queries into one multi-source lane
solve changes **no** served answer:

- :func:`verify_lane_equivalence` runs one batch of programs through
  both :meth:`~repro.serve.solver.MultiSourceSolver.solve` (vectorized
  lane kernels over the union frontier) and
  :meth:`~repro.serve.solver.MultiSourceSolver.solve_reference` (an
  independent scalar per-vertex code path over per-lane frontiers) and
  requires bit-identical per-lane state digests and matching per-lane
  round counts.
- :func:`verify_serve_report` replays every completed query of a
  :class:`~repro.serve.server.ServeReport` as a standalone
  single-source golden run and requires each served digest to match —
  the end-to-end check ``repro serve --strict`` runs.
- :func:`verify_degraded_answer` checks a brownout partial answer's
  **certificate** against the exact solo run: the partial states must
  match the reported digest, and the certified bound must hold —
  within ``residual_bound`` in L1 for contraction algorithms
  (``bound_kind="l1"``), a pointwise upper bound for monotone
  relaxations (sssp/bfs), a pointwise under-approximation for
  reachability.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.model.gas import VertexProgram
from repro.serve.context import ServingContext
from repro.serve.query import QueryResult, make_query_program
from repro.serve.server import ServeReport
from repro.serve.solver import MultiSourceSolver, lane_digest
from repro.verify.report import CheckResult


def verify_lane_equivalence(
    context: ServingContext,
    programs: Sequence[VertexProgram],
    max_rounds: int = 100000,
) -> CheckResult:
    """One batched solve vs per-lane scalar goldens, bit for bit."""
    solver = MultiSourceSolver(context, programs, max_rounds=max_rounds)
    batched = solver.solve()
    golden = solver.solve_reference()
    mismatches = [
        f"lane {lane}: digest {batched.digests[lane][:12]}... != "
        f"golden {golden.digests[lane][:12]}..."
        for lane in range(len(programs))
        if batched.digests[lane] != golden.digests[lane]
    ]
    mismatches.extend(
        f"lane {lane}: rounds {batched.lane_rounds[lane]} != "
        f"golden {golden.lane_rounds[lane]}"
        for lane in range(len(programs))
        if batched.lane_rounds[lane] != golden.lane_rounds[lane]
    )
    return CheckResult(
        name="serve.lane-equivalence",
        passed=not mismatches,
        detail=(
            f"{len(programs)} lanes bit-identical, "
            f"launches {batched.launches} vs {golden.launches} sequential"
            if not mismatches
            else "; ".join(mismatches)
        ),
    )


@dataclass(frozen=True)
class ServeEquivalenceVerdict:
    """Per-query oracle outcome for one served trace."""

    passed: bool
    checked: int
    skipped: int            #: failed queries have no digest to certify
    failures: Tuple[str, ...]
    detail: str


def verify_serve_report(
    context: ServingContext,
    report: ServeReport,
    max_rounds: int = 100000,
) -> ServeEquivalenceVerdict:
    """Certify every completed query against its solo golden run.

    Each query is replayed alone through the scalar reference path on
    the same shared context; its digest must equal the digest the
    (batched, possibly replayed-after-fault) serve run reported.
    """
    failures: List[str] = []
    checked = 0
    for result in report.results:
        if result.status != "ok":
            continue
        checked += 1
        solo = MultiSourceSolver(
            context,
            [make_query_program(result.query)],
            max_rounds=max_rounds,
        ).solve_reference()
        if solo.digests[0] != result.digest:
            failures.append(
                f"query {result.query.query_id} "
                f"({result.query.algorithm}, batch {result.batch_id}, "
                f"{result.lanes} lanes): served digest "
                f"{result.digest[:12]}... != golden "
                f"{solo.digests[0][:12]}..."
            )
        elif solo.lane_rounds[0] != result.rounds:
            failures.append(
                f"query {result.query.query_id}: served rounds "
                f"{result.rounds} != golden {solo.lane_rounds[0]}"
            )
    skipped = len(report.results) - checked
    return ServeEquivalenceVerdict(
        passed=not failures,
        checked=checked,
        skipped=skipped,
        failures=tuple(failures),
        detail=(
            f"{checked} served answers bit-identical to solo goldens"
            + (f", {skipped} failed queries skipped" if skipped else "")
            if not failures
            else f"{len(failures)}/{checked} mismatches"
        ),
    )


def verify_degraded_answer(
    context: ServingContext,
    result: QueryResult,
    max_rounds: int = 100000,
) -> CheckResult:
    """Certify one brownout partial answer against the exact solo run.

    Recomputes the query to convergence through the independent scalar
    reference path, then checks the certificate the serving layer
    attached:

    - the partial states hash to the reported digest (the certificate
      covers what was actually returned);
    - ``bound_kind="l1"``: ``‖exact − partial‖₁ ≤ residual_bound``
      (small relative float slack only — the bound is derived in exact
      arithmetic from the contraction factor);
    - ``bound_kind="upper"``: partial values are pointwise ≥ exact
      (monotone relaxation never undershoots; ``inf`` = not yet
      reached is a valid upper bound);
    - ``bound_kind="lower"``: partial values are pointwise ≤ exact
      (every claimed-reachable vertex really is reachable).
    """
    name = "serve.degraded-answer"
    if result.status != "degraded":
        return CheckResult(
            name=name,
            passed=False,
            detail=f"result status is {result.status!r}, not 'degraded'",
        )
    if result.states is None or result.bound_kind is None:
        return CheckResult(
            name=name,
            passed=False,
            detail="degraded result carries no states/certificate",
        )
    partial = np.asarray(result.states, dtype=np.float64)
    if lane_digest(partial) != result.digest:
        return CheckResult(
            name=name,
            passed=False,
            detail="partial states do not hash to the reported digest",
        )
    solo = MultiSourceSolver(
        context,
        [make_query_program(result.query)],
        max_rounds=max_rounds,
    ).solve_reference()
    exact = solo.states[0]
    qid = result.query.query_id
    if result.bound_kind == "l1":
        if result.residual_bound is None:
            return CheckResult(
                name=name,
                passed=False,
                detail=f"query {qid}: l1 certificate missing its bound",
            )
        distance = float(np.abs(exact - partial).sum())
        slack = 1e-9 * (1.0 + result.residual_bound)
        passed = distance <= result.residual_bound + slack
        return CheckResult(
            name=name,
            passed=passed,
            detail=(
                f"query {qid}: ‖exact − partial‖₁ = {distance:.6g} "
                f"{'≤' if passed else '>'} certified bound "
                f"{result.residual_bound:.6g}"
            ),
        )
    if result.bound_kind == "upper":
        # inf (unreached) is a valid upper bound; exact may not exceed
        # the partial anywhere. A finite partial where exact is inf is
        # a violation too (a reported path to an unreachable vertex),
        # and the zero slack there makes `partial < inf` catch it.
        slack = np.where(
            np.isfinite(exact),
            1e-12
            * np.maximum(
                np.abs(np.where(np.isfinite(exact), exact, 0.0)), 1.0
            ),
            0.0,
        )
        bad = int(np.sum(partial < exact - slack))
        return CheckResult(
            name=name,
            passed=bad == 0,
            detail=(
                f"query {qid}: partial is a pointwise upper bound"
                if bad == 0
                else f"query {qid}: {bad} vertices undershoot the exact value"
            ),
        )
    if result.bound_kind == "lower":
        bad = int(np.sum(partial > exact + 1e-12))
        return CheckResult(
            name=name,
            passed=bad == 0,
            detail=(
                f"query {qid}: partial under-approximates the exact answer"
                if bad == 0
                else f"query {qid}: {bad} vertices claimed beyond the exact "
                "answer"
            ),
        )
    return CheckResult(
        name=name,
        passed=False,
        detail=f"unknown bound_kind {result.bound_kind!r}",
    )
