"""Invariant-checking conformance subsystem.

Machine-checkable invariants of the DiGraph reproduction, grouped by
what they certify:

- :mod:`repro.verify.structural` — the preprocessing artifacts respect
  the paper's structural guarantees (Algorithm 1's edge-disjoint
  bounded-depth paths, the acyclic layered DAG sketch of Section 3.1,
  the master/mirror/proxy replica rules of Section 3.2.2);
- :mod:`repro.verify.conservation` — the modeled execution conserves
  what it claims to move (replica messages sent == received per GPU
  pair, master writes == atomics + proxy-absorbed);
- :mod:`repro.verify.oracle` — all engines reach the same fixed point
  (exact for discrete programs, tolerance-banded for contractions);
- :mod:`repro.verify.metamorphic` — results are invariant under vertex
  relabeling and isolated-vertex augmentation;
- :mod:`repro.verify.serve` — the serving layer's batched multi-source
  answers are bit-identical to standalone single-source golden runs
  (the ``repro serve --strict`` oracle);
- :mod:`repro.verify.harness` — the ``repro verify`` orchestration.

Each checker returns a :class:`~repro.verify.report.CheckResult`;
:class:`~repro.verify.report.VerificationReport` aggregates them and
:meth:`~repro.verify.report.VerificationReport.raise_if_failed` turns
violations into :class:`~repro.errors.VerificationError`.
"""

from repro.verify.report import CheckResult, VerificationReport

__all__ = ["CheckResult", "VerificationReport"]
