"""Structural invariants of the preprocessing artifacts.

Every checker *recomputes* the property it certifies from first
principles (the raw graph and path list) instead of trusting the cached
fields of the artifact under test — a corrupted artifact must not be
able to vouch for itself.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

import numpy as np

from repro.core.dependency import DependencyDAG
from repro.core.paths import PathSet
from repro.core.replicas import ReplicaTable
from repro.core.storage import PathStorage
from repro.errors import PartitioningError, StorageError
from repro.graph.digraph import DiGraphCSR
from repro.model.gas import VertexProgram
from repro.model.validate import check_fixed_point
from repro.verify.report import CheckResult, VerificationReport


# ----------------------------------------------------------------------
# path decomposition (Algorithm 1)
# ----------------------------------------------------------------------
def check_path_set(path_set: PathSet) -> List[CheckResult]:
    """Algorithm-1 invariants: real connected paths, edge-disjoint,
    covering every edge, each at most ``d_max`` edges deep."""
    results: List[CheckResult] = []

    graph = path_set.graph
    seen = np.zeros(graph.num_edges, dtype=bool)
    connectivity_bad = 0
    duplicate_edges = 0
    worst = ""
    for path in path_set:
        for i, edge_id in enumerate(path.edge_ids):
            edge_id = int(edge_id)
            if not 0 <= edge_id < graph.num_edges:
                connectivity_bad += 1
                worst = worst or (
                    f"path {path.path_id} cites edge id {edge_id} "
                    f"outside the graph"
                )
                continue
            src, dst = graph.edge_endpoints(edge_id)
            if (
                src != int(path.vertices[i])
                or dst != int(path.vertices[i + 1])
            ):
                connectivity_bad += 1
                worst = worst or (
                    f"path {path.path_id} edge {edge_id} is "
                    f"({src}->{dst}), path says "
                    f"({path.vertices[i]}->{path.vertices[i + 1]})"
                )
                continue
            if seen[edge_id]:
                duplicate_edges += 1
                worst = worst or (
                    f"edge {edge_id} appears in more than one path"
                )
            seen[edge_id] = True
    results.append(
        CheckResult(
            name="paths.connectivity",
            passed=connectivity_bad == 0,
            detail=worst if connectivity_bad else (
                f"{path_set.num_paths} paths trace real edges"
            ),
        )
    )
    results.append(
        CheckResult(
            name="paths.edge-disjoint",
            passed=duplicate_edges == 0,
            detail=(
                f"{duplicate_edges} duplicated edge(s)"
                if duplicate_edges
                else "every edge on at most one path"
            ),
        )
    )
    missing = int((~seen).sum())
    results.append(
        CheckResult(
            name="paths.coverage",
            passed=missing == 0,
            detail=(
                f"{missing} edge(s) on no path"
                if missing
                else f"all {graph.num_edges} edges covered"
            ),
        )
    )

    if path_set.d_max is not None:
        over = [
            (p.path_id, p.num_edges)
            for p in path_set
            if p.num_edges > path_set.d_max
        ]
        results.append(
            CheckResult(
                name="paths.d-max",
                passed=not over,
                detail=(
                    f"path {over[0][0]} has {over[0][1]} edges "
                    f"> d_max={path_set.d_max} "
                    f"({len(over)} path(s) over the bound)"
                    if over
                    else f"every path has <= {path_set.d_max} edges"
                ),
            )
        )
    return results


# ----------------------------------------------------------------------
# dependency DAG (Section 3.1)
# ----------------------------------------------------------------------
def check_dependency_dag(
    path_set: PathSet, dag: DependencyDAG
) -> List[CheckResult]:
    """The DAG sketch is consistent with the paths, acyclic, and its
    layers are monotone along every edge."""
    results: List[CheckResult] = []

    # Recompute the dependency edges from the path roles: p_i -> p_j iff
    # some vertex is written (non-head) on p_i and read (non-tail) on p_j.
    writers = path_set.writer_paths()
    readers = path_set.reader_paths()
    expected: Set[Tuple[int, int]] = set()
    for v, writing in writers.items():
        reading = readers.get(v)
        if not reading:
            continue
        for pi in writing:
            for pj in reading:
                if pi != pj:
                    expected.add((pi, pj))
    stored: Set[Tuple[int, int]] = set()
    dep = dag.dependency_graph
    for pi in range(dep.num_vertices):
        for pj in dep.successors(pi):
            stored.add((pi, int(pj)))
    missing = expected - stored
    spurious = stored - expected
    results.append(
        CheckResult(
            name="dag.dependency-edges",
            passed=not missing and not spurious,
            detail=(
                f"{len(missing)} missing, {len(spurious)} spurious "
                f"dependency edge(s)"
                if missing or spurious
                else f"{len(expected)} dependency edges match the paths"
            ),
        )
    )

    # SCC contraction consistency: every dependency edge either stays
    # inside one SCC-vertex or appears as a DAG edge.
    bad_contraction = 0
    dag_edges: Set[Tuple[int, int]] = set()
    for a in range(dag.dag.num_vertices):
        for b in dag.dag.successors(a):
            dag_edges.add((a, int(b)))
    for pi, pj in stored:
        si, sj = int(dag.scc_of_path[pi]), int(dag.scc_of_path[pj])
        if si != sj and (si, sj) not in dag_edges:
            bad_contraction += 1
    results.append(
        CheckResult(
            name="dag.contraction",
            passed=bad_contraction == 0,
            detail=(
                f"{bad_contraction} cross-SCC dependency edge(s) "
                f"missing from the DAG sketch"
                if bad_contraction
                else "SCC contraction covers every cross-SCC dependency"
            ),
        )
    )

    # Acyclicity + layer monotonicity: every DAG edge must go to a
    # strictly higher layer; a cycle makes that impossible, so one check
    # certifies both (and catches tampered layer arrays directly).
    violations = [
        (a, b)
        for a, b in sorted(dag_edges)
        if a == b or dag.layer_of_scc[a] >= dag.layer_of_scc[b]
    ]
    results.append(
        CheckResult(
            name="dag.layer-monotone",
            passed=not violations,
            detail=(
                f"edge {violations[0][0]}->{violations[0][1]} has layers "
                f"{int(dag.layer_of_scc[violations[0][0]])}>="
                f"{int(dag.layer_of_scc[violations[0][1]])} "
                f"({len(violations)} violation(s))"
                if violations
                else (
                    f"{dag.num_scc_vertices} SCC-vertices in "
                    f"{dag.num_layers()} strictly increasing layers"
                )
            ),
        )
    )
    return results


# ----------------------------------------------------------------------
# replica table (Section 3.2.2)
# ----------------------------------------------------------------------
def check_replica_table(
    path_set: PathSet,
    storage: PathStorage,
    replicas: ReplicaTable,
) -> List[CheckResult]:
    """Replica coherence: mirrors match the path layout, every mirror
    traces to exactly one master, and the proxy set matches the
    threshold/capacity selection rule."""
    results: List[CheckResult] = []

    # Recompute mirror partitions from the path layout.
    expected_mirrors: Dict[int, Set[int]] = {}
    for path in path_set:
        partition = storage.partition_of_path(path.path_id)
        for v in path.vertices:
            expected_mirrors.setdefault(int(v), set()).add(partition)
    mismatches = 0
    worst = ""
    for v, parts in expected_mirrors.items():
        stored = set(replicas.mirror_partitions(v))
        if stored != parts:
            mismatches += 1
            worst = worst or (
                f"vertex {v} mirrors {sorted(stored)} != path layout "
                f"{sorted(parts)}"
            )
    for v in replicas.replicated_vertices():
        if v not in expected_mirrors:
            mismatches += 1
            worst = worst or f"vertex {v} has mirrors but lies on no path"
    results.append(
        CheckResult(
            name="replicas.mirrors",
            passed=mismatches == 0,
            detail=worst if mismatches else (
                f"{len(expected_mirrors)} replicated vertices match "
                f"the path layout"
            ),
        )
    )

    # Master coherence: every replicated vertex has exactly one owner
    # partition, and it is one of the partitions mirroring the vertex.
    orphans = 0
    worst = ""
    for v in expected_mirrors:
        owner = replicas.owner_partition(v)
        if owner is None or owner not in expected_mirrors[v]:
            orphans += 1
            worst = worst or (
                f"vertex {v} owner {owner} is not among its mirror "
                f"partitions {sorted(expected_mirrors[v])}"
            )
    results.append(
        CheckResult(
            name="replicas.master",
            passed=orphans == 0,
            detail=worst if orphans else (
                "every mirror traces to one master partition"
            ),
        )
    )

    # Proxy selection: hottest in-degrees at/above the threshold, up to
    # capacity — recomputed with the table's own stored parameters.
    graph = path_set.graph
    in_degrees = graph.in_degree()
    hot = np.flatnonzero(
        in_degrees >= replicas.proxy_in_degree_threshold
    )
    hot = hot[np.argsort(-in_degrees[hot], kind="stable")]
    expected_proxies = frozenset(
        int(v) for v in hot[: replicas.proxy_capacity]
    )
    actual = replicas.proxied_vertices
    results.append(
        CheckResult(
            name="replicas.proxies",
            passed=actual == expected_proxies,
            detail=(
                f"proxy set differs from the threshold/capacity rule by "
                f"{len(actual ^ expected_proxies)} vertices"
                if actual != expected_proxies
                else (
                    f"{len(actual)} proxies match threshold="
                    f"{replicas.proxy_in_degree_threshold}, capacity="
                    f"{replicas.proxy_capacity}"
                )
            ),
        )
    )
    return results


# ----------------------------------------------------------------------
# storage layout (Fig. 4)
# ----------------------------------------------------------------------
def check_storage(storage: PathStorage) -> List[CheckResult]:
    """The Fig. 4 arrays agree with the path set they were built from."""
    try:
        storage.validate()
    except (StorageError, PartitioningError) as exc:
        return [
            CheckResult(name="storage.layout", passed=False, detail=str(exc))
        ]
    return [
        CheckResult(
            name="storage.layout",
            passed=True,
            detail=(
                f"{storage.num_partitions} partitions, "
                f"{storage.e_idx.size} vertex slots consistent"
            ),
        )
    ]


def verify_preprocessed(pre) -> VerificationReport:
    """All structural checks over one ``Preprocessed`` bundle."""
    report = VerificationReport()
    report.extend(check_path_set(pre.path_set))
    report.extend(check_dependency_dag(pre.path_set, pre.dag))
    report.extend(
        check_replica_table(pre.path_set, pre.storage, pre.replicas)
    )
    report.extend(check_storage(pre.storage))
    return report


# ----------------------------------------------------------------------
# post-run fixed point
# ----------------------------------------------------------------------
def check_fixed_point_reached(
    program: VertexProgram,
    graph: DiGraphCSR,
    states: np.ndarray,
) -> CheckResult:
    """The converged states satisfy every vertex's update equation."""
    result = check_fixed_point(program, graph, states)
    return CheckResult(
        name=f"fixed-point.{program.name}",
        passed=result.satisfied,
        detail=str(result),
    )
