"""Metamorphic relations: results invariant under problem renamings.

Two relations that hold for every algorithm without knowing the correct
output (the classic defense when no ground truth exists):

- **vertex relabeling** — permuting vertex ids (and renaming the
  algorithm's parameters along) must permute the result and nothing
  else. WCC is compared as a *partition* (its labels are min vertex
  ids, which the permutation legitimately changes).
- **isolated-vertex augmentation** — appending edge-less vertices must
  leave the original vertices' results untouched (all eight programs
  are formulated so an unreachable, unconnected vertex contributes
  nothing; PageRank deliberately uses the non-normalized form).

Discrete programs must match exactly; contractions within the
cross-engine tolerance band (relabeling reorders gather folds, so
floating-point sums may differ in the last bits).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.algorithms import make_program
from repro.errors import ReproError
from repro.gpu.config import SCALED_MACHINE, MachineSpec
from repro.graph.builder import from_edges
from repro.graph.digraph import DiGraphCSR
from repro.verify.oracle import (
    CONTRACTION_ALGORITHMS,
    _build_engine,
    equivalence_band,
    states_equivalent,
)
from repro.verify.report import CheckResult

#: Algorithms whose parameters name vertices and must be renamed along
#: with the graph (and which need a source, so empty graphs skip them).
SOURCE_ALGORITHMS = frozenset({"sssp", "bfs", "ppr", "reachability"})

#: Algorithms compared as a partition of the vertices instead of by
#: value: their labels are representative vertex ids.
PARTITION_ALGORITHMS = frozenset({"wcc"})


def _deterministic_injection(n: int) -> np.ndarray:
    """RNG-free adsorption prior; a pure function of nothing but the
    array *position*, so relabeling can permute it explicitly."""
    v = np.arange(n, dtype=np.float64)
    return ((v * 37.0 + 11.0) % 97.0) / 97.0


def _base_kwargs(algo: str, graph: DiGraphCSR) -> Dict:
    """Explicit, relabeling-aware program parameters.

    ``make_program``'s defaults are functions of vertex *ids* (argmax
    tie-breaks, seeded priors), which would silently change the problem
    under a relabeling — every parameter is pinned here instead.
    """
    if algo == "adsorption":
        return {"injection": _deterministic_injection(graph.num_vertices)}
    if algo in SOURCE_ALGORITHMS:
        source = int(np.argmax(graph.out_degree()))
        if algo == "sssp" or algo == "bfs":
            return {"source": source}
        if algo == "ppr":
            return {"seeds": [source]}
        return {"sources": [source]}
    return {}


def _relabel_kwargs(
    algo: str, kwargs: Dict, perm: np.ndarray
) -> Dict:
    """The same problem under the permutation ``v -> perm[v]``."""
    renamed = dict(kwargs)
    if "source" in renamed:
        renamed["source"] = int(perm[renamed["source"]])
    if "seeds" in renamed:
        renamed["seeds"] = [int(perm[s]) for s in renamed["seeds"]]
    if "sources" in renamed:
        renamed["sources"] = [int(perm[s]) for s in renamed["sources"]]
    if "injection" in renamed:
        permuted = np.empty_like(renamed["injection"])
        permuted[perm] = renamed["injection"]
        renamed["injection"] = permuted
    return renamed


def _canonical_partition(labels: np.ndarray) -> np.ndarray:
    """Rename labels to first-occurrence order, making two labelings
    comparable as partitions of the index set."""
    first: Dict[float, int] = {}
    out = np.empty(labels.size, dtype=np.int64)
    for i, label in enumerate(labels):
        out[i] = first.setdefault(float(label), len(first))
    return out


def _run(engine_name, machine, graph, algo, kwargs):
    program = make_program(algo, graph, **kwargs)
    engine = _build_engine(engine_name, machine, verify_digraph=False)
    return engine.run(graph, program, graph_name="metamorphic").states


def relabel_invariance(
    graph: DiGraphCSR,
    algo: str,
    engine_name: str = "digraph",
    seed: int = 7,
    machine: Optional[MachineSpec] = None,
) -> CheckResult:
    """Permute vertex ids; the permuted run must equal the permuted
    original result."""
    name = f"metamorphic.{algo}.{engine_name}.relabel"
    machine = machine or SCALED_MACHINE
    n = graph.num_vertices
    if n == 0 and algo in SOURCE_ALGORITHMS:
        return CheckResult(
            name=name, passed=True, detail="skipped: no source vertex"
        )
    perm = np.random.default_rng(seed).permutation(n)
    relabeled = from_edges(
        [
            (int(perm[src]), int(perm[dst]), w)
            for src, dst, w in graph.edges()
        ],
        num_vertices=n,
    )
    kwargs = _base_kwargs(algo, graph)
    try:
        base = _run(engine_name, machine, graph, algo, kwargs)
        permuted = _run(
            engine_name,
            machine,
            relabeled,
            algo,
            _relabel_kwargs(algo, kwargs, perm),
        )
    except ReproError as exc:
        return CheckResult(
            name=name,
            passed=False,
            detail=f"{type(exc).__name__}: {exc}",
        )
    # Pull the permuted result back into original vertex order.
    pulled_back = permuted[perm] if n else permuted
    if algo in PARTITION_ALGORITHMS:
        same = np.array_equal(
            _canonical_partition(base),
            _canonical_partition(pulled_back),
        )
        return CheckResult(
            name=name,
            passed=bool(same),
            detail=(
                "component partitions match"
                if same
                else "component partitions differ under relabeling"
            ),
        )
    band = (
        equivalence_band(make_program(algo, graph, **kwargs), graph)
        if algo in CONTRACTION_ALGORITHMS
        else 0.0
    )
    cmp = states_equivalent(base, pulled_back, band)
    return CheckResult(name=name, passed=cmp.passed, detail=cmp.detail)


def isolated_vertex_invariance(
    graph: DiGraphCSR,
    algo: str,
    engine_name: str = "digraph",
    extra: int = 3,
    machine: Optional[MachineSpec] = None,
) -> CheckResult:
    """Append ``extra`` edge-less vertices; the original vertices'
    results must not move."""
    name = f"metamorphic.{algo}.{engine_name}.isolated-augmentation"
    machine = machine or SCALED_MACHINE
    n = graph.num_vertices
    if n == 0 and algo in SOURCE_ALGORITHMS:
        return CheckResult(
            name=name, passed=True, detail="skipped: no source vertex"
        )
    augmented = from_edges(
        list(graph.edges()), num_vertices=n + extra
    )
    kwargs = _base_kwargs(algo, graph)
    augmented_kwargs = dict(kwargs)
    if "injection" in augmented_kwargs:
        augmented_kwargs["injection"] = _deterministic_injection(
            n + extra
        )
    try:
        base = _run(engine_name, machine, graph, algo, kwargs)
        extended = _run(
            engine_name, machine, augmented, algo, augmented_kwargs
        )
    except ReproError as exc:
        return CheckResult(
            name=name,
            passed=False,
            detail=f"{type(exc).__name__}: {exc}",
        )
    band = (
        equivalence_band(make_program(algo, graph, **kwargs), graph)
        if algo in CONTRACTION_ALGORITHMS and n
        else 0.0
    )
    cmp = states_equivalent(base, extended[:n], band)
    return CheckResult(name=name, passed=cmp.passed, detail=cmp.detail)


def metamorphic_suite(
    graph: DiGraphCSR,
    algo: str,
    engine_names: Sequence[str] = ("digraph",),
    seed: int = 7,
    machine: Optional[MachineSpec] = None,
) -> Tuple[CheckResult, ...]:
    """Both relations for one algorithm across the given engines."""
    results = []
    for engine_name in engine_names:
        results.append(
            relabel_invariance(
                graph, algo, engine_name, seed=seed, machine=machine
            )
        )
        results.append(
            isolated_vertex_invariance(
                graph, algo, engine_name, machine=machine
            )
        )
    return tuple(results)
