"""Orchestration for ``repro verify``.

One call runs the full conformance battery over a graph: structural
checks on the preprocessing artifacts, the cross-engine equivalence
oracle per algorithm, and the metamorphic relations. The CLI and the CI
verify-sweep both drive this entry point.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.engine import DiGraphConfig, DiGraphEngine
from repro.errors import ReproError
from repro.gpu.config import SCALED_MACHINE, MachineSpec
from repro.graph.digraph import DiGraphCSR
from repro.verify.metamorphic import (
    SOURCE_ALGORITHMS,
    metamorphic_suite,
)
from repro.verify.oracle import (
    ALL_ALGORITHMS,
    DEFAULT_ENGINES,
    cross_engine_check,
)
from repro.verify.report import CheckResult, VerificationReport
from repro.verify.structural import verify_preprocessed


def verify_graph(
    graph: DiGraphCSR,
    graph_name: str = "graph",
    algorithms: Sequence[str] = ALL_ALGORITHMS,
    engine_names: Sequence[str] = DEFAULT_ENGINES,
    machine: Optional[MachineSpec] = None,
    skip_metamorphic: bool = False,
    metamorphic_engines: Sequence[str] = ("digraph",),
    seed: int = 7,
) -> VerificationReport:
    """Run every conformance check for one graph.

    Returns the aggregated report; the caller decides whether to raise
    (:meth:`~repro.verify.report.VerificationReport.raise_if_failed`)
    or render it (:meth:`~repro.verify.report.VerificationReport.summary`).
    """
    machine = machine or SCALED_MACHINE
    report = VerificationReport()

    # Structural invariants of the preprocessing artifacts.
    try:
        pre = DiGraphEngine(machine, DiGraphConfig()).preprocess(graph)
        report.merge(verify_preprocessed(pre))
    except ReproError as exc:
        report.add(
            CheckResult(
                name="structural.preprocess",
                passed=False,
                detail=f"{type(exc).__name__}: {exc}",
            )
        )

    for algo in algorithms:
        if graph.num_vertices == 0 and algo in SOURCE_ALGORITHMS:
            report.add(
                CheckResult(
                    name=f"oracle.{algo}",
                    passed=True,
                    detail="skipped: no source vertex in empty graph",
                )
            )
            continue
        report.merge(
            cross_engine_check(
                graph,
                algo,
                engine_names=engine_names,
                machine=machine,
                graph_name=graph_name,
            )
        )
        if not skip_metamorphic:
            report.extend(
                metamorphic_suite(
                    graph,
                    algo,
                    engine_names=metamorphic_engines,
                    seed=seed,
                    machine=machine,
                )
            )
    return report
