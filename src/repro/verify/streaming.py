"""Equivalence oracle for incremental (streaming) recomputation.

The streaming subsystem's whole claim is that delta recompute after a
mutation batch lands on the *same* fixpoint as throwing everything away
and rerunning from scratch. This module certifies that claim:

- :func:`certify_incremental` compares one incremental state vector
  against its from-scratch golden twin — bit-exact (``band=0``) for the
  discrete algorithms, within the in-degree-aware tolerance band for
  the contraction ones (the same band the cross-engine oracle uses);
- :func:`verify_stream` replays a whole mutation trace through a
  :class:`~repro.streaming.session.StreamingSession` with per-batch
  certification and aggregates everything into a
  :class:`~repro.verify.report.VerificationReport` (one check per
  batch, plus a final fixed-point check on the last incremental state).
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.verify.oracle import states_equivalent
from repro.verify.report import CheckResult, VerificationReport


def certify_incremental(
    incremental: np.ndarray,
    golden: np.ndarray,
    band: float,
) -> CheckResult:
    """Certify one incremental run against its from-scratch golden run."""
    inner = states_equivalent(incremental, golden, band)
    return CheckResult(
        name="streaming.equivalence",
        passed=inner.passed,
        detail=inner.detail,
    )


def verify_stream(
    graph,
    algorithm: str,
    batches: Iterable,
    machine_spec=None,
    config=None,
    graph_name: str = "stream",
    verify_structure: bool = True,
) -> VerificationReport:
    """Replay ``batches`` with certification on; aggregate a report.

    Every batch is certified against a from-scratch golden run on the
    post-batch graph, and the final incremental state must be a genuine
    fixed point of the final graph — the end-to-end guarantee the CI
    stream sweep runs in strict mode.
    """
    from repro.algorithms import make_program
    from repro.streaming.session import StreamingSession
    from repro.verify.structural import check_fixed_point_reached

    session = StreamingSession(
        graph,
        algorithm,
        machine_spec=machine_spec,
        config=config,
        graph_name=graph_name,
        verify_structure=verify_structure,
    )
    report = VerificationReport()
    last_outcome = None
    for batch in batches:
        outcome = session.apply(batch, certify=True)
        last_outcome = outcome
        assert outcome.certification is not None
        report.add(
            CheckResult(
                name=f"streaming.equivalence.batch{batch.batch_id}",
                passed=outcome.certification.passed,
                detail=(
                    f"{algorithm} {outcome.mode}: "
                    f"{outcome.certification.detail}"
                ),
            )
        )
    if last_outcome is not None:
        program = make_program(
            algorithm, session.graph, **session.program_kwargs
        )
        program.initial_states(session.graph)  # prime caches
        report.add(
            check_fixed_point_reached(
                program, session.graph, session.values
            )
        )
    return report
