"""Check results and their aggregation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from repro.errors import VerificationError


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one invariant check."""

    name: str          #: dotted check identifier, e.g. ``paths.d-max``
    passed: bool
    detail: str = ""   #: human-readable evidence (counts, worst offender)

    def __str__(self) -> str:
        status = "ok" if self.passed else "FAILED"
        suffix = f" ({self.detail})" if self.detail else ""
        return f"{self.name}: {status}{suffix}"


@dataclass
class VerificationReport:
    """A batch of check results with pass/fail aggregation."""

    results: List[CheckResult] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(r.passed for r in self.results)

    @property
    def failures(self) -> List[CheckResult]:
        return [r for r in self.results if not r.passed]

    def add(self, result: CheckResult) -> None:
        self.results.append(result)

    def extend(self, results: Sequence[CheckResult]) -> None:
        self.results.extend(results)

    def merge(self, other: "VerificationReport") -> None:
        self.results.extend(other.results)

    def raise_if_failed(self) -> "VerificationReport":
        """Raise :class:`VerificationError` listing every failed check."""
        failures = self.failures
        if failures:
            lines = "; ".join(str(f) for f in failures)
            raise VerificationError(
                f"{len(failures)} invariant check(s) failed: {lines}"
            )
        return self

    def summary(self) -> str:
        """Multi-line report, one check per line."""
        header = (
            f"{len(self.results)} checks, "
            f"{len(self.failures)} failed"
        )
        return "\n".join([header] + [f"  {r}" for r in self.results])
