"""Conservation invariants of one modeled execution.

Two ledgers, filled at different places and times, must agree:

- **messages** — the DiGraph engine records replica-update bytes per
  ordered GPU pair when it *produces* them (``_Run.sync_sent_bytes``);
  the machine records the same bytes when the per-round flush actually
  *moves* them (:attr:`~repro.gpu.stats.MachineStats.replica_pair_bytes`).
  A dropped or doubled flush breaks the equality.
- **writes** — each partition pass reports its total master writes;
  the atomic/proxy split must account for every one of them
  (``atomic_updates + proxy_absorbed == master_writes``).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.gpu.stats import MachineStats
from repro.verify.report import CheckResult, VerificationReport

PairLedger = Dict[Tuple[int, int], int]


def check_message_conservation(
    stats: MachineStats, sent_bytes: PairLedger
) -> CheckResult:
    """Per-GPU-pair replica bytes: sent (engine ledger) == received
    (machine ledger)."""
    received = stats.replica_pair_bytes
    mismatched = []
    for pair in sorted(set(sent_bytes) | set(received)):
        s = sent_bytes.get(pair, 0)
        r = received.get(pair, 0)
        if s != r:
            mismatched.append((pair, s, r))
    if mismatched:
        (src, dst), s, r = mismatched[0]
        return CheckResult(
            name="conservation.messages",
            passed=False,
            detail=(
                f"GPU pair {src}->{dst}: sent {s} bytes, machine moved "
                f"{r} ({len(mismatched)} pair(s) differ)"
            ),
        )
    total = sum(sent_bytes.values())
    return CheckResult(
        name="conservation.messages",
        passed=True,
        detail=(
            f"{total} replica bytes conserved across "
            f"{len(sent_bytes)} GPU pair(s)"
        ),
    )


def check_write_conservation(stats: MachineStats) -> CheckResult:
    """Every master write is either an atomic or proxy-absorbed."""
    accounted = stats.atomic_updates + stats.proxy_absorbed
    passed = accounted == stats.master_writes
    return CheckResult(
        name="conservation.writes",
        passed=passed,
        detail=(
            f"atomics {stats.atomic_updates} + absorbed "
            f"{stats.proxy_absorbed} "
            f"{'==' if passed else '!='} master writes "
            f"{stats.master_writes}"
        ),
    )


def verify_run_conservation(
    stats: MachineStats, sent_bytes: PairLedger
) -> VerificationReport:
    """Both conservation checks over one finished run."""
    results: List[CheckResult] = [
        check_message_conservation(stats, sent_bytes),
        check_write_conservation(stats),
    ]
    return VerificationReport(results)
