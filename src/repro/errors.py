"""Exception hierarchy for the repro package.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch the whole family with one clause
while still distinguishing subsystems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class GraphError(ReproError):
    """Invalid graph construction or graph-query arguments."""


class PartitioningError(ReproError):
    """Path-based partitioning produced or received inconsistent data."""


class StorageError(ReproError):
    """The path storage arrays (Fig. 4 layout) are inconsistent."""


class SchedulingError(ReproError):
    """Path scheduling or dispatch received an impossible request."""


class SimulationError(ReproError):
    """The simulated GPU machine was driven into an invalid state."""


class MemoryCapacityError(SimulationError):
    """A simulated GPU ran out of global or shared memory."""


class InterconnectFault(SimulationError):
    """A fault injector failed a transfer (robustness testing)."""


class ConvergenceError(ReproError):
    """An iterative algorithm failed to converge within its round budget."""


class VerificationError(ReproError):
    """A machine-checked invariant of :mod:`repro.verify` was violated."""


class ConfigurationError(ReproError):
    """An engine or machine was configured with invalid parameters."""
