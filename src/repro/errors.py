"""Exception hierarchy for the repro package.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch the whole family with one clause
while still distinguishing subsystems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class GraphError(ReproError):
    """Invalid graph construction or graph-query arguments."""


class PartitioningError(ReproError):
    """Path-based partitioning produced or received inconsistent data."""


class StorageError(ReproError):
    """Storage arrays or the on-disk shard store are inconsistent.

    Covers both the in-memory path storage arrays (Fig. 4 layout) and
    the sharded on-disk graph store (:mod:`repro.storage`). For on-disk
    damage the structured fields name the casualty without message
    parsing: the ``path`` of the file at fault, the ``shard`` (part id)
    it belongs to when one is involved, and the damage ``kind``
    (``"torn"``, ``"bitrot"``, ``"missing-page"``, ``"manifest-lost"``,
    ``"manifest-torn"``, ``"manifest-corrupt"``, ``"manifest-format"``,
    ``"stale-manifest"``, ``"inconsistent"``, ...). All fields default
    to ``None`` so message-only raises (the in-memory arrays) are
    unchanged.
    """

    def __init__(
        self,
        message: str,
        path=None,
        shard=None,
        kind=None,
    ) -> None:
        details = []
        if path is not None:
            details.append(f"path={path}")
        if shard is not None:
            details.append(f"shard={shard}")
        if kind is not None:
            details.append(f"kind={kind}")
        if details:
            message = f"{message} ({', '.join(details)})"
        super().__init__(message)
        self.path = str(path) if path is not None else None
        self.shard = shard
        self.kind = kind


class SchedulingError(ReproError):
    """Path scheduling or dispatch received an impossible request."""


class SimulationError(ReproError):
    """The simulated GPU machine was driven into an invalid state."""


class MemoryCapacityError(SimulationError):
    """A simulated GPU ran out of global or shared memory."""


class InterconnectFault(SimulationError):
    """A fault injector failed a transfer (robustness testing).

    Carries the transfer endpoints when the injector knows them, so
    recovery code can tell *which* link misbehaved.
    """

    def __init__(
        self,
        message: str = "interconnect fault",
        src=None,
        dst=None,
    ) -> None:
        super().__init__(message)
        self.src = src
        self.dst = dst


class TransientInterconnectFault(InterconnectFault):
    """A transfer failed but the link is expected to recover (retryable)."""


class PermanentInterconnectFault(InterconnectFault):
    """A link is down for good (or retries were exhausted)."""


class GPULostError(SimulationError):
    """A simulated GPU died mid-execution (fault injection)."""

    def __init__(
        self, message: str = "GPU lost", gpu_id=None
    ) -> None:
        super().__init__(message)
        self.gpu_id = gpu_id


class ConvergenceError(ReproError):
    """An iterative algorithm failed to converge within its round budget.

    Structured fields make stalled runs (chaos runs especially)
    diagnosable without parsing the message: ``rounds`` actually run,
    ``active_vertices`` still awaiting updates, and ``last_max_delta``,
    the largest state change observed in the final round (0.0 means the
    frontier was live but no state moved — a lost-update smell).
    """

    def __init__(
        self,
        message: str,
        rounds=None,
        active_vertices=None,
        last_max_delta=None,
    ) -> None:
        details = []
        if rounds is not None:
            details.append(f"rounds={rounds}")
        if active_vertices is not None:
            details.append(f"active_vertices={active_vertices}")
        if last_max_delta is not None:
            details.append(f"last_max_delta={last_max_delta:.6g}")
        if details:
            message = f"{message} ({', '.join(details)})"
        super().__init__(message)
        self.rounds = rounds
        self.active_vertices = active_vertices
        self.last_max_delta = last_max_delta


class StreamingError(ReproError):
    """A mutation batch could not be applied to the evolving graph.

    Raised for structurally invalid mutations (deleting an edge that does
    not exist, inserting a duplicate or self-loop edge, endpoints outside
    the vertex range) before any state is modified — a failed batch
    leaves the streaming session untouched.
    """


class VerificationError(ReproError):
    """A machine-checked invariant of :mod:`repro.verify` was violated."""


class ConfigurationError(ReproError):
    """An engine or machine was configured with invalid parameters."""


class ServeError(ReproError):
    """The query-serving layer was misused or failed structurally."""


class QueryAbortedError(ServeError):
    """Served queries failed and could not (or may not) be replayed.

    Structured fields name the blast radius without message parsing:
    the ``query_ids`` aborted, the ``tenants`` they belong to, the
    ``batch_id`` whose dispatch died, and the serve-wide
    ``launch_index`` where the fault struck.
    """

    def __init__(
        self,
        message: str,
        query_ids=None,
        tenants=None,
        batch_id=None,
        launch_index=None,
    ) -> None:
        details = []
        if query_ids is not None:
            details.append(f"queries={list(query_ids)}")
        if tenants is not None:
            details.append(f"tenants={sorted(set(tenants))}")
        if batch_id is not None:
            details.append(f"batch={batch_id}")
        if launch_index is not None:
            details.append(f"launch={launch_index}")
        if details:
            message = f"{message} ({', '.join(details)})"
        super().__init__(message)
        self.query_ids = tuple(query_ids) if query_ids is not None else None
        self.tenants = tuple(tenants) if tenants is not None else None
        self.batch_id = batch_id
        self.launch_index = launch_index


class QueryShedError(ServeError):
    """A query was deterministically shed under overload.

    Raised (in strict mode) or recorded (otherwise) when the bounded
    admission queue is full and the tenant-fair shedding policy picks
    this query as the victim. Structured fields name the shed query,
    its tenant, and the queue depth at the shedding decision.
    """

    def __init__(
        self,
        message: str,
        query_id=None,
        tenant=None,
        queue_depth=None,
    ) -> None:
        details = []
        if query_id is not None:
            details.append(f"query={query_id}")
        if tenant is not None:
            details.append(f"tenant={tenant}")
        if queue_depth is not None:
            details.append(f"queue_depth={queue_depth}")
        if details:
            message = f"{message} ({', '.join(details)})"
        super().__init__(message)
        self.query_id = query_id
        self.tenant = tenant
        self.queue_depth = queue_depth


class DeadlineExceededError(ServeError):
    """A query missed its deadline under the active ``deadline_policy``.

    Carries the deadline and the virtual-clock time at which the miss
    was detected (admission time for ``reject``, completion time for
    ``abort``), so tail-latency reports need no message parsing.
    """

    def __init__(
        self,
        message: str,
        query_id=None,
        tenant=None,
        deadline_s=None,
        detected_s=None,
    ) -> None:
        details = []
        if query_id is not None:
            details.append(f"query={query_id}")
        if tenant is not None:
            details.append(f"tenant={tenant}")
        if deadline_s is not None:
            details.append(f"deadline_s={deadline_s:.6g}")
        if detected_s is not None:
            details.append(f"detected_s={detected_s:.6g}")
        if details:
            message = f"{message} ({', '.join(details)})"
        super().__init__(message)
        self.query_id = query_id
        self.tenant = tenant
        self.deadline_s = deadline_s
        self.detected_s = detected_s


class ArtifactError(ReproError):
    """A benchmark artifact (``BENCH_*.json``) is missing, unreadable,
    or violates its schema (wrong keys, bad version, NaN/negative
    measurements)."""


class CheckpointStoreError(ReproError):
    """A durable checkpoint store is missing, corrupt, or inconsistent.

    Structured fields name the damage without message parsing: the
    ``run_dir`` holding the store, the ``checkpoint`` (round index)
    involved, the ``page`` file if a specific page is at fault, and the
    corruption ``kind`` (``"torn"``, ``"bitrot"``, ``"manifest-lost"``,
    ``"orphan"``, ``"missing-page"``, ...).
    """

    def __init__(
        self,
        message: str,
        run_dir=None,
        checkpoint=None,
        page=None,
        kind=None,
    ) -> None:
        details = []
        if run_dir is not None:
            details.append(f"run_dir={run_dir}")
        if checkpoint is not None:
            details.append(f"checkpoint={checkpoint}")
        if page is not None:
            details.append(f"page={page}")
        if kind is not None:
            details.append(f"kind={kind}")
        if details:
            message = f"{message} ({', '.join(details)})"
        super().__init__(message)
        self.run_dir = str(run_dir) if run_dir is not None else None
        self.checkpoint = checkpoint
        self.page = str(page) if page is not None else None
        self.kind = kind


class InjectedCrashError(SimulationError):
    """A fault plan crashed the whole job at an injected crash point.

    This models a process death (power loss, OOM-kill): nothing
    in-process survives, only what the durable checkpoint store already
    committed. Recovery is whole-job restart (``repro resume``), never
    an in-run rollback, so engines must *not* catch this.

    ``crash_point`` names where the plan struck: ``"round-boundary"``,
    ``"mid-spill"``, or ``"mid-manifest"``.
    """

    def __init__(
        self,
        message: str = "injected whole-job crash",
        crash_point=None,
        round_index=None,
    ) -> None:
        details = []
        if crash_point is not None:
            details.append(f"crash_point={crash_point}")
        if round_index is not None:
            details.append(f"round={round_index}")
        if details:
            message = f"{message} ({', '.join(details)})"
        super().__init__(message)
        self.crash_point = crash_point
        self.round_index = round_index
