"""The paper's ablation variants (Section 4.1).

- **DiGraph-t** — "employs the traditional asynchronous execution model
  instead of our path-based asynchronous execution model": vertices of a
  partition are processed individually in arbitrary order with immediate
  state visibility (Groute-style), on DiGraph's partitions, without
  dependency-ordered dispatch or path scheduling. Compared in Fig. 6.
- **DiGraph-w** — "uses our asynchronous execution model yet without using
  our path scheduling strategy": full path walking and dependency-aware
  dispatch, but the SMX processes its paths in the warp scheduler's
  default round-robin order instead of by ``Pri(p)``. Compared in Fig. 7.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from repro.gpu.config import MachineSpec
from repro.core.engine import DiGraphConfig, DiGraphEngine


def digraph_t(
    machine_spec: Optional[MachineSpec] = None,
    config: Optional[DiGraphConfig] = None,
) -> DiGraphEngine:
    """DiGraph with the traditional asynchronous execution model."""
    base = config or DiGraphConfig()
    return DiGraphEngine(
        machine_spec=machine_spec,
        config=replace(
            base, use_path_execution=False, use_priority_scheduling=False
        ),
    )


def digraph_w(
    machine_spec: Optional[MachineSpec] = None,
    config: Optional[DiGraphConfig] = None,
) -> DiGraphEngine:
    """DiGraph without the Pri(p) path scheduling strategy."""
    base = config or DiGraphConfig()
    return DiGraphEngine(
        machine_spec=machine_spec,
        config=replace(base, use_priority_scheduling=False),
    )
