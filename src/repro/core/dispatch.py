"""Dependency-aware path dispatching for multiple GPUs (Section 3.2.2).

Partitions (the transfer/sync unit) inherit the path DAG's structure: a
partition-level dependency graph is contracted into **dispatch groups**
(partitions that are mutually dependent — the giant SCC-vertex's
partitions typically form one big group) and layered. Execution proceeds
layer by layer: a group is *schedulable* once every predecessor group has
converged, so its partitions are processed with all upstream inputs final
— most are handled exactly once.

The dispatcher also owns the multi-GPU placement policies of the paper:

- **home GPU assignment** — a partition lands on the GPU already holding
  the most of its direct precursors (cheap access to their buffered
  results), with a load-balance penalty;
- **batched, prefetched transfer** — partition arrays move host->GPU in
  `S_b`-sized batches on Hyper-Q streams; the next group's partitions are
  prefetched behind the current group's compute;
- **capacity eviction** — when a GPU's global memory fills, the resident
  partition whose SCC-vertices have the fewest *active direct successors*
  is swapped out first (written back to the host);
- **work stealing** — an idle GPU steals queued partitions from the most
  loaded GPU, paying the ring-transfer cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.errors import ConfigurationError, GPULostError
from repro.graph.builder import GraphBuilder
from repro.graph.scc import condensation
from repro.graph.traversal import dag_layers
from repro.gpu.machine import Machine
from repro.core.dependency import DependencyDAG
from repro.core.storage import PathStorage

#: GPU-loss redistribution: keep each dependency-connected cluster of
#: the dead GPU's partitions co-resident on one survivor, chosen by
#: inter-group edge cut (dependency edges to partitions already there).
REDISTRIBUTE_LOCALITY = "locality"
#: GPU-loss redistribution: spread the dead GPU's partitions to the
#: least-loaded survivors one by one, balancing by edge count.
REDISTRIBUTE_EDGE_BALANCE = "edge-balance"
REDISTRIBUTION_POLICIES = (
    REDISTRIBUTE_LOCALITY,
    REDISTRIBUTE_EDGE_BALANCE,
)


@dataclass(frozen=True)
class DispatchGroup:
    """A set of mutually-dependent partitions scheduled as one unit."""

    group_id: int
    partition_ids: Tuple[int, ...]
    layer: int


class Dispatcher:
    """Layer-ordered partition dispatch over the simulated machine."""

    def __init__(
        self,
        storage: PathStorage,
        dag: DependencyDAG,
        machine: Machine,
        prefetch: bool = True,
        affinity_weight: float = 2.0,
    ) -> None:
        self._storage = storage
        self._dag = dag
        self._machine = machine
        self._prefetch = prefetch
        #: Locality-vs-balance knob for home-GPU placement: how many mean
        #: partition sizes of load imbalance one precursor's locality is
        #: worth (the ablation bench sweeps this).
        self.affinity_weight = affinity_weight

        self._partition_deps = _partition_dependency_edges(storage, dag)
        self.groups = _build_groups(
            storage.num_partitions, self._partition_deps
        )
        self._group_of_partition = np.empty(
            storage.num_partitions, dtype=np.int64
        )
        for group in self.groups:
            for pid in group.partition_ids:
                self._group_of_partition[pid] = group.group_id

        # Partition-level successor lists (for eviction policy).
        self._successors: Dict[int, List[int]] = {}
        self._predecessors: Dict[int, List[int]] = {}
        for a, b in self._partition_deps:
            self._successors.setdefault(a, []).append(b)
            self._predecessors.setdefault(b, []).append(a)

        self.home_gpu = self._assign_home_gpus()
        #: Runtime location (stealing may move a partition off its home).
        self.current_gpu = dict(self.home_gpu)
        self.steal_count = 0

    # ------------------------------------------------------------------
    # structure queries
    # ------------------------------------------------------------------
    def group_of_partition(self, partition_id: int) -> int:
        return int(self._group_of_partition[partition_id])

    def partition_successors(self, partition_id: int) -> Sequence[int]:
        return self._successors.get(partition_id, ())

    def partition_predecessors(self, partition_id: int) -> Sequence[int]:
        return self._predecessors.get(partition_id, ())

    def groups_in_layer_order(self) -> List[DispatchGroup]:
        """Groups ordered by (layer, descending downstream partition
        count) — the paper's same-layer tie-break, which unlocks the most
        successor work first."""
        def downstream(group: DispatchGroup) -> int:
            return sum(
                len(self._successors.get(pid, ()))
                for pid in group.partition_ids
            )

        return sorted(
            self.groups, key=lambda g: (g.layer, -downstream(g), g.group_id)
        )

    # ------------------------------------------------------------------
    # placement
    # ------------------------------------------------------------------
    def _assign_home_gpus(self) -> Dict[int, int]:
        """Static placement: balanced load first, precursor locality second.

        The paper sends each SCC-vertex's paths "to the GPU with the most
        number of its direct precursors" for cheap access to their
        buffered results — but the giant SCC-vertex explicitly spans
        "SMXs of multiple GPUs", so locality is a *bounded bonus* on top
        of edge-balanced placement, never allowed to collapse the whole
        graph onto one GPU.
        """
        num_gpus = self._machine.num_gpus
        load = [0] * num_gpus  # assigned edges per GPU
        partitions = self._storage.partitions
        mean_edges = max(
            1.0, sum(p.num_edges for p in partitions) / max(len(partitions), 1)
        )
        placement: Dict[int, int] = {}
        for group in self.groups_in_layer_order():
            for pid in group.partition_ids:
                precursor_counts = [0] * num_gpus
                for pred in self._predecessors.get(pid, ()):
                    if pred in placement:
                        precursor_counts[placement[pred]] += 1
                best_gpu = 0
                best_score = float("inf")
                for gpu in range(num_gpus):
                    affinity_bonus = (
                        self.affinity_weight
                        * mean_edges
                        * min(precursor_counts[gpu], 3)
                    )
                    score = load[gpu] - affinity_bonus
                    if score < best_score:
                        best_score = score
                        best_gpu = gpu
                placement[pid] = best_gpu
                load[best_gpu] += partitions[pid].num_edges
        return placement

    # ------------------------------------------------------------------
    # residency / transfer
    # ------------------------------------------------------------------
    def ensure_resident(
        self,
        partition_id: int,
        active_successors: Callable[[int], int],
        overlap: bool = False,
    ) -> float:
        """Make a partition resident on its current GPU.

        Charges a batched host->GPU transfer if absent, evicting the
        resident partitions with the fewest active direct successors
        first (their results are written back to the host). With
        ``overlap`` the transfer is queued on the GPU's streams
        (prefetch) instead of charged immediately.
        """
        gpu_id = self.current_gpu[partition_id]
        gpu = self._machine.gpus[gpu_id]
        nbytes = self._storage.partition_bytes(partition_id)
        if gpu.global_memory.is_resident(partition_id):
            return 0.0

        def evict_order(candidates: List[int]) -> List[int]:
            return sorted(
                candidates, key=lambda pid: (active_successors(pid), pid)
            )

        evicted = gpu.global_memory.allocate(
            partition_id, nbytes, evict_order=evict_order
        )
        time_s = 0.0
        for victim in evicted:
            # Written back to the host (its results may still be needed).
            victim_bytes = self._storage.partition_bytes(victim)
            time_s += self._machine.transfer(gpu_id, "host", victim_bytes)
        if overlap and self._prefetch:
            transfer_s = self._machine.interconnect.batched_transfer(
                "host",
                gpu_id,
                nbytes,
                self._machine.spec.transfer_batch_bytes,
            )
            gpu.streams.queue_transfer(transfer_s)
        else:
            time_s += self._machine.batched_transfer_to_gpu(gpu_id, nbytes)
        return time_s

    def prefetch_group(
        self,
        group: DispatchGroup,
        active_successors: Callable[[int], int],
    ) -> None:
        """Queue a group's partitions behind current compute (Hyper-Q)."""
        if not self._prefetch:
            return
        for pid in group.partition_ids:
            self.ensure_resident(pid, active_successors, overlap=True)

    # ------------------------------------------------------------------
    # work stealing
    # ------------------------------------------------------------------
    def balance_assignments(
        self, runnable_partitions: Sequence[int]
    ) -> Dict[int, List[int]]:
        """Distribute runnable partitions over GPUs, stealing for balance.

        Partitions start on their current GPU; while some GPU is idle and
        another holds more than one runnable partition, the idle GPU
        steals from the most loaded one (preferring the smallest
        partition — suspended path subsets move cheaply). Steals charge
        the ring-transfer of the partition's arrays.
        """
        per_gpu: Dict[int, List[int]] = {
            gpu: [] for gpu in self._machine.live_gpu_ids()
        }
        for pid in runnable_partitions:
            gpu = self.current_gpu[pid]
            if gpu not in per_gpu:
                raise GPULostError(
                    f"partition {pid} is placed on dead GPU {gpu}",
                    gpu_id=gpu,
                )
            per_gpu[gpu].append(pid)

        def load(gpu: int) -> int:
            return sum(
                self._storage.partitions[p].num_edges for p in per_gpu[gpu]
            )

        while True:
            idle = [g for g in per_gpu if not per_gpu[g]]
            donors = sorted(
                (g for g in per_gpu if len(per_gpu[g]) > 1),
                key=load,
                reverse=True,
            )
            if not idle or not donors:
                break
            thief, donor = idle[0], donors[0]
            victim = min(
                per_gpu[donor],
                key=lambda p: self._storage.partitions[p].num_edges,
            )
            per_gpu[donor].remove(victim)
            per_gpu[thief].append(victim)
            nbytes = self._storage.partition_bytes(victim)
            self._machine.transfer(donor, thief, nbytes)
            self.current_gpu[victim] = thief
            self.steal_count += 1
        return {g: pids for g, pids in per_gpu.items() if pids}

    # ------------------------------------------------------------------
    # graceful degradation
    # ------------------------------------------------------------------
    def redistribute_dead_gpu(
        self, dead_gpu: int, policy: str = REDISTRIBUTE_EDGE_BALANCE
    ) -> List[int]:
        """Reassign a dead GPU's partitions across the survivors.

        Two placement policies:

        - :data:`REDISTRIBUTE_EDGE_BALANCE` walks dispatch groups in
          layer order (preserving the paper's scheduling structure) and
          moves each dead-resident partition to the least-loaded
          survivor, balancing by edge count;
        - :data:`REDISTRIBUTE_LOCALITY` first clusters the dead GPU's
          partitions by dependency connectivity (a cluster is a set of
          partitions linked through the path-dependency edges — an
          iterating SCC's dispatch group always stays whole) and lands
          each cluster *entirely* on the survivor with the largest
          inter-group edge cut to its resident partitions, so replica
          sync inside and around the moved work stays on-GPU instead of
          crossing the ring every wave; load breaks ties.

        Both ``current_gpu`` and ``home_gpu`` are updated — the dead GPU
        is gone for good. The partitions' arrays are re-loaded from the
        host lazily by :meth:`ensure_resident` (the dead GPU's memory
        was lost, nothing can be copied out of it).

        Returns the reassigned partition ids in assignment order.
        """
        if policy not in REDISTRIBUTION_POLICIES:
            raise ConfigurationError(
                f"redistribution policy must be one of "
                f"{REDISTRIBUTION_POLICIES}, got {policy!r}"
            )
        live = self._machine.live_gpu_ids()
        if not live:
            raise GPULostError(
                "no surviving GPUs to redistribute onto", gpu_id=dead_gpu
            )
        load: Dict[int, int] = {g: 0 for g in live}
        for pid, gpu in self.current_gpu.items():
            if gpu in load:
                load[gpu] += self._storage.partitions[pid].num_edges
        if policy == REDISTRIBUTE_LOCALITY:
            return self._redistribute_locality(dead_gpu, live, load)
        moved: List[int] = []
        for group in self.groups_in_layer_order():
            for pid in group.partition_ids:
                if self.current_gpu[pid] != dead_gpu:
                    continue
                target = min(live, key=lambda g: (load[g], g))
                self.current_gpu[pid] = target
                self.home_gpu[pid] = target
                load[target] += self._storage.partitions[pid].num_edges
                moved.append(pid)
        return moved

    def _redistribute_locality(
        self, dead_gpu: int, live: List[int], load: Dict[int, int]
    ) -> List[int]:
        """Cluster-at-a-time placement maximizing dependency locality."""
        dead_pids = sorted(
            pid
            for pid, gpu in self.current_gpu.items()
            if gpu == dead_gpu
        )
        if not dead_pids:
            return []
        # Union-find over dependency edges restricted to the dead set:
        # mutually-dependent partitions (one dispatch group) and
        # producer->consumer chains stranded together move together.
        parent = {pid: pid for pid in dead_pids}

        def find(pid: int) -> int:
            while parent[pid] != pid:
                parent[pid] = parent[parent[pid]]
                pid = parent[pid]
            return pid

        for a, b in sorted(self._partition_deps):
            if a in parent and b in parent:
                ra, rb = find(a), find(b)
                if ra != rb:
                    parent[max(ra, rb)] = min(ra, rb)
        clusters: Dict[int, List[int]] = {}
        for pid in dead_pids:
            clusters.setdefault(find(pid), []).append(pid)

        partitions = self._storage.partitions
        layer_of = {
            pid: self.groups[self.group_of_partition(pid)].layer
            for pid in dead_pids
        }

        def cluster_key(item: Tuple[int, List[int]]) -> Tuple:
            _, pids = item
            return (
                min(layer_of[p] for p in pids),
                -sum(partitions[p].num_edges for p in pids),
                pids[0],
            )

        moved: List[int] = []
        for _, pids in sorted(clusters.items(), key=cluster_key):
            members = set(pids)
            affinity: Dict[int, int] = {g: 0 for g in live}
            for a, b in self._partition_deps:
                if (a in members) == (b in members):
                    continue
                outside = b if a in members else a
                gpu = self.current_gpu[outside]
                if gpu in affinity:
                    affinity[gpu] += 1
            target = max(
                live, key=lambda g: (affinity[g], -load[g], -g)
            )
            for pid in pids:
                self.current_gpu[pid] = target
                self.home_gpu[pid] = target
                load[target] += partitions[pid].num_edges
                moved.append(pid)
        return moved


# ----------------------------------------------------------------------
# construction helpers
# ----------------------------------------------------------------------
def _partition_dependency_edges(
    storage: PathStorage, dag: DependencyDAG
) -> Set[Tuple[int, int]]:
    """Lift path dependency edges to the partition level."""
    edges: Set[Tuple[int, int]] = set()
    dep = dag.dependency_graph
    for pi in range(dep.num_vertices):
        a = storage.partition_of_path(pi)
        for pj in dep.successors(pi):
            b = storage.partition_of_path(int(pj))
            if a != b:
                edges.add((a, b))
    return edges


def _build_groups(
    num_partitions: int, edges: Set[Tuple[int, int]]
) -> List[DispatchGroup]:
    """Contract partition-level cycles into layered dispatch groups."""
    if num_partitions == 0:
        # Edge-less graphs decompose into zero paths; the engine still
        # handles their isolated vertices, so an empty schedule is valid.
        return []
    builder = GraphBuilder(num_vertices=num_partitions)
    builder.add_edges(sorted(edges))
    cond = condensation(builder.build())
    layers = dag_layers(cond.dag)
    return [
        DispatchGroup(
            group_id=group_id,
            partition_ids=tuple(cond.members[group_id]),
            layer=int(layers[group_id]),
        )
        for group_id in range(cond.num_components)
    ]
