"""Directed paths — the basic parallel processing unit of DiGraph.

A :class:`Path` is an ordered sequence of connected directed edges
(Section 3.1): vertices ``v_0 .. v_k`` and the CSR edge ids of
``v_0->v_1, ..., v_{k-1}->v_k``. A :class:`PathSet` is a disjoint
decomposition of a graph's edges into such paths: every edge belongs to
exactly one path, paths may share only vertices (ideally only their
endpoints — the constraint the partitioner maintains for less reprocessing
cost).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import PartitioningError
from repro.graph.digraph import DiGraphCSR


@dataclass(frozen=True)
class Path:
    """One directed path.

    Attributes
    ----------
    path_id:
        Index of the path within its :class:`PathSet`.
    vertices:
        ``v_0 .. v_k`` along the path (length = edges + 1).
    edge_ids:
        CSR edge ids of the path's edges, in order.
    """

    path_id: int
    vertices: Tuple[int, ...]
    edge_ids: Tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.vertices) < 2:
            raise PartitioningError("a path needs at least one edge")
        if len(self.edge_ids) != len(self.vertices) - 1:
            raise PartitioningError(
                "edge count must be one less than vertex count"
            )

    @property
    def head(self) -> int:
        """First vertex of the path."""
        return self.vertices[0]

    @property
    def tail(self) -> int:
        """Last vertex of the path."""
        return self.vertices[-1]

    @property
    def num_edges(self) -> int:
        return len(self.edge_ids)

    @property
    def num_vertices(self) -> int:
        return len(self.vertices)

    def inner_vertices(self) -> Tuple[int, ...]:
        """Vertices that are neither head nor tail (Section 3.2.1's
        *inner vertex* notion used by the merge constraint)."""
        return self.vertices[1:-1]

    def average_degree(self, graph: DiGraphCSR) -> float:
        """Mean total degree of the path's vertices — ``D̄(p)`` in the
        Pri(p) scheduling formula."""
        return float(
            np.mean([graph.degree(int(v)) for v in self.vertices])
        )

    def validate_against(self, graph: DiGraphCSR) -> None:
        """Check the path's edges exist and connect head-to-tail."""
        for i, edge_id in enumerate(self.edge_ids):
            src, dst = graph.edge_endpoints(int(edge_id))
            if src != self.vertices[i] or dst != self.vertices[i + 1]:
                raise PartitioningError(
                    f"path {self.path_id}: edge {edge_id} is "
                    f"({src}->{dst}), expected "
                    f"({self.vertices[i]}->{self.vertices[i + 1]})"
                )

    def __len__(self) -> int:
        return self.num_edges


@dataclass
class PathSet:
    """A disjoint decomposition of a graph's edges into directed paths."""

    graph: DiGraphCSR
    paths: List[Path]
    #: Path ids classified as hot (built by the partitioner from average
    #: vertex degree; hot paths are the fast tracks of Section 3.2.1).
    hot_path_ids: frozenset = field(default_factory=frozenset)
    #: Depth bound the decomposition was built with (Algorithm 1's
    #: ``D_MAX``); ``None`` for hand-assembled path sets. The merge pass
    #: honors the same bound, so every path has at most ``d_max`` edges —
    #: the invariant :mod:`repro.verify` checks.
    d_max: Optional[int] = None

    def __len__(self) -> int:
        return len(self.paths)

    def __iter__(self) -> Iterator[Path]:
        return iter(self.paths)

    def __getitem__(self, path_id: int) -> Path:
        return self.paths[path_id]

    @property
    def num_paths(self) -> int:
        return len(self.paths)

    def is_hot(self, path_id: int) -> bool:
        return path_id in self.hot_path_ids

    def average_length(self) -> float:
        """Mean edge count per path (the paper reports 3.5-10.9 for its
        datasets)."""
        if not self.paths:
            return 0.0
        return float(np.mean([p.num_edges for p in self.paths]))

    def total_edges(self) -> int:
        return sum(p.num_edges for p in self.paths)

    # ------------------------------------------------------------------
    # occurrence maps used by scheduling and replica bookkeeping
    # ------------------------------------------------------------------
    def paths_of_vertex(self) -> Dict[int, List[int]]:
        """Map vertex -> path ids it occurs on (each id listed once)."""
        occurrences: Dict[int, List[int]] = {}
        for path in self.paths:
            seen_here = set()
            for v in path.vertices:
                if v in seen_here:
                    continue
                seen_here.add(v)
                occurrences.setdefault(int(v), []).append(path.path_id)
        return occurrences

    def writer_paths(self) -> Dict[int, List[int]]:
        """Map vertex -> paths where it *receives* an update (has an
        in-edge on the path, i.e. is a non-head position)."""
        writers: Dict[int, List[int]] = {}
        for path in self.paths:
            seen_here = set()
            for v in path.vertices[1:]:
                if v in seen_here:
                    continue
                seen_here.add(v)
                writers.setdefault(int(v), []).append(path.path_id)
        return writers

    def reader_paths(self) -> Dict[int, List[int]]:
        """Map vertex -> paths where it *propagates* (has an out-edge on
        the path, i.e. is a non-tail position)."""
        readers: Dict[int, List[int]] = {}
        for path in self.paths:
            seen_here = set()
            for v in path.vertices[:-1]:
                if v in seen_here:
                    continue
                seen_here.add(v)
                readers.setdefault(int(v), []).append(path.path_id)
        return readers

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Assert the decomposition invariants.

        - every path is a real path of the graph (connected edges),
        - paths are edge-disjoint,
        - the union of paths is exactly the graph's edge set.
        """
        seen = np.zeros(self.graph.num_edges, dtype=bool)
        for i, path in enumerate(self.paths):
            if path.path_id != i:
                raise PartitioningError(
                    f"path at position {i} carries id {path.path_id}"
                )
            path.validate_against(self.graph)
            for edge_id in path.edge_ids:
                if seen[edge_id]:
                    raise PartitioningError(
                        f"edge {edge_id} appears in more than one path"
                    )
                seen[edge_id] = True
        missing = int((~seen).sum())
        if missing:
            raise PartitioningError(
                f"{missing} edges are not covered by any path"
            )


def renumber(paths: Sequence[Path]) -> List[Path]:
    """Return paths with ``path_id`` matching their list position."""
    return [
        Path(path_id=i, vertices=p.vertices, edge_ids=p.edge_ids)
        for i, p in enumerate(paths)
    ]
