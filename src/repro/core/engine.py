"""The DiGraph engine: path-based asynchronous execution on multiple GPUs.

Execution follows Section 3 end to end:

1. **Preprocess** (CPU, ``n_workers`` shards): Algorithm-1 path
   decomposition, head-to-tail merging, the path dependency DAG with
   layers, partition formation, the Fig. 4 storage arrays, and the replica
   table. Modeled CPU time is charged per the paper's one-traversal
   argument.
2. **Dispatch**: partitions are grouped by mutual dependency and layered;
   each round runs the *frontier groups* (active groups whose predecessor
   groups have all converged), plus advance-execution work when GPUs would
   idle. Partitions transfer host->GPU in batches, prefetched on streams;
   idle GPUs steal runnable partitions.
3. **Process**: on each SMX, paths are ordered by ``Pri(p)`` and packed
   onto threads with balanced edge counts; one thread walks one path
   sequentially, so a vertex's new state reaches its in-path successors
   within the same round (Observation 1). Gather always reads the current
   master states, so the result is a Gauss-Seidel-style relaxation whose
   fixed point matches every other engine.
4. **Synchronize**: changed vertices push replica updates, batched per
   destination partition; proxy vertices absorb same-SMX write contention.

Variant flags reproduce the paper's ablations: ``use_path_execution=False``
is DiGraph-t (traditional per-vertex async on the same partitions, no
dependency ordering), ``use_priority_scheduling=False`` is DiGraph-w.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.errors import (
    ConfigurationError,
    ConvergenceError,
    GPULostError,
    PermanentInterconnectFault,
)
from repro.graph.digraph import DiGraphCSR
from repro.gpu.config import MachineSpec
from repro.gpu.machine import Machine
from repro.model.gas import VertexProgram
from repro.model.state import StalenessView, VertexStates
from repro.bench.results import ExecutionResult, RoundRecord
from repro.core.dependency import DependencyDAG, build_dependency_dag
from repro.core.dispatch import Dispatcher
from repro.core.partitioning import (
    D_MAX,
    decompose_into_paths,
    modeled_preprocess_seconds,
)
from repro.core.paths import PathSet
from repro.core.replicas import ReplicaTable
from repro.core.scheduling import PathScheduler, balance_paths_to_threads
from repro.core.storage import (
    BYTES_PER_MESSAGE,
    PathStorage,
    build_partitions,
)
from repro.kernels.registry import resolve_kernel
from repro.baselines.common import resolve_partition_target

#: Bound on SMX-local path iterations within one partition pass.
_MAX_LOCAL_ITERATIONS = 1000


@dataclass(frozen=True)
class DiGraphConfig:
    """Tunables of the DiGraph engine (paper defaults)."""

    d_max: int = D_MAX
    n_workers: int = 1
    #: ``None`` sizes partitions adaptively (~64 per graph).
    target_edges_per_partition: Optional[int] = None
    hot_fraction: float = 0.1
    proxy_in_degree_threshold: int = 8
    merge_short_paths: bool = True
    degree_greedy: bool = True
    #: False -> DiGraph-t: traditional async processing, no path walks,
    #: no dependency-ordered dispatch.
    use_path_execution: bool = True
    #: False -> DiGraph-w: round-robin path order instead of Pri(p).
    use_priority_scheduling: bool = True
    #: Batch the vertex-centric partition pass (DiGraph-t) through the
    #: vectorized kernels (:mod:`repro.kernels`). Per-update accounting
    #: is unchanged; within one partition pass the batch gathers from
    #: the pass-start view (Jacobi) where the scalar loop sees earlier
    #: in-pass writes (Gauss-Seidel), so the trajectory may differ while
    #: the fixed point does not. No effect on path execution.
    use_vectorized_kernels: bool = False
    prefetch: bool = True
    max_rounds: int = 100000
    #: Extra runnable partitions admitted per round beyond the frontier
    #: when GPUs would otherwise idle (advance execution), as a multiple
    #: of the GPU count. Off by default: on scaled-down workloads the
    #: stale-input updates it admits outweigh the utilization gain (the
    #: ablation bench sweeps it).
    advance_factor: int = 0
    #: Run the :mod:`repro.verify` invariant checkers after preprocessing
    #: (structural: paths, DAG, replicas, storage) and after execution
    #: (conservation + fixed point), raising
    #: :class:`~repro.errors.VerificationError` on any violation.
    verify_invariants: bool = False

    def __post_init__(self) -> None:
        if self.max_rounds < 1:
            raise ConfigurationError("max_rounds must be >= 1")
        if self.advance_factor < 0:
            raise ConfigurationError("advance_factor must be >= 0")


@dataclass
class Preprocessed:
    """Everything the CPU produces before GPU execution starts."""

    path_set: PathSet
    dag: DependencyDAG
    storage: PathStorage
    replicas: ReplicaTable
    modeled_seconds: float
    wall_seconds: float


class DiGraphEngine:
    """Path-based iterative directed graph processing (the paper's system)."""

    name = "digraph"

    def __init__(
        self,
        machine_spec: Optional[MachineSpec] = None,
        config: Optional[DiGraphConfig] = None,
    ) -> None:
        self.spec = machine_spec or MachineSpec()
        self.config = config or DiGraphConfig()

    # ------------------------------------------------------------------
    # preprocessing
    # ------------------------------------------------------------------
    def preprocess(self, graph: DiGraphCSR) -> Preprocessed:
        """CPU preprocessing: paths, DAG, partitions, storage, replicas."""
        cfg = self.config
        started = time.perf_counter()
        target = resolve_partition_target(
            graph, cfg.target_edges_per_partition
        )
        path_set = decompose_into_paths(
            graph,
            d_max=cfg.d_max,
            n_workers=cfg.n_workers,
            merge_short_paths=cfg.merge_short_paths,
            hot_fraction=cfg.hot_fraction,
            degree_greedy=cfg.degree_greedy,
        )
        dag = build_dependency_dag(path_set)
        partitions = build_partitions(path_set, dag, target)
        storage = PathStorage(path_set, partitions)
        gpu_spec = self.spec.gpu
        proxy_capacity = gpu_spec.shared_memory_per_smx_bytes // 16
        replicas = ReplicaTable(
            path_set,
            storage,
            proxy_in_degree_threshold=cfg.proxy_in_degree_threshold,
            proxy_capacity=proxy_capacity,
        )
        wall = time.perf_counter() - started
        modeled = modeled_preprocess_seconds(
            graph, cfg.n_workers, dependency_vertices=dag.num_paths
        )
        pre = Preprocessed(
            path_set=path_set,
            dag=dag,
            storage=storage,
            replicas=replicas,
            modeled_seconds=modeled,
            wall_seconds=wall,
        )
        if cfg.verify_invariants:
            from repro.verify.structural import verify_preprocessed

            verify_preprocessed(pre).raise_if_failed()
        return pre

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(
        self,
        graph: DiGraphCSR,
        program: VertexProgram,
        preprocessed: Optional[Preprocessed] = None,
        graph_name: str = "graph",
        strict_convergence: bool = True,
        fault_injector=None,
        recovery=None,
        initial_values=None,
        initial_active=None,
        resume: bool = False,
    ) -> ExecutionResult:
        """Run ``program`` to convergence and return the result record.

        ``fault_injector`` (a :class:`repro.faults.FaultInjector` or a
        legacy plain callable) makes the simulated machine misbehave;
        ``recovery`` (a :class:`repro.faults.RecoveryPolicy`) turns on
        retries, replica resends, straggler re-dispatch, and round-level
        checkpoint/rollback with GPU-loss redistribution. Without a
        policy, injected faults surface raw.

        ``initial_values`` / ``initial_active`` warm-start the run for
        delta recompute (:mod:`repro.streaming`): vertex states resume
        from a prior fixpoint and only the provided active set is
        reactivated. The run's rounds are then accounted as
        ``incremental_rounds`` and the activation count as
        ``vertices_reactivated``.

        ``resume=True`` is the whole-job restart path: ``recovery``
        must carry ``durability != "none"`` and a ``run_dir`` holding a
        durable checkpoint store; the run reloads the newest intact
        checkpoint (checksums verified) and replays from its round —
        bit-identical to never having crashed.
        """
        cfg = self.config
        started = time.perf_counter()
        pre = preprocessed or self.preprocess(graph)
        machine = Machine(
            self.spec, fault_injector=fault_injector, recovery=recovery
        )
        machine.stats.preprocess_time_s = pre.modeled_seconds

        run = _Run(
            self,
            machine,
            graph,
            program,
            pre,
            initial_values=initial_values,
            initial_active=initial_active,
        )
        if initial_active is not None:
            machine.stats.vertices_reactivated += int(
                np.count_nonzero(np.asarray(initial_active, dtype=bool))
            )
        converged = run.execute(resume=resume)
        if initial_values is not None or initial_active is not None:
            machine.stats.incremental_rounds += machine.stats.rounds
        if not converged and strict_convergence:
            raise ConvergenceError(
                f"{program.name} did not converge within "
                f"{cfg.max_rounds} rounds",
                rounds=machine.stats.rounds,
                active_vertices=run.states.num_active,
                last_max_delta=run.last_max_delta,
            )
        if cfg.verify_invariants:
            from repro.verify.conservation import verify_run_conservation
            from repro.verify.report import VerificationReport
            from repro.verify.structural import check_fixed_point_reached

            report = VerificationReport(
                verify_run_conservation(
                    machine.stats, run.sync_sent_bytes
                ).results
                + (
                    [
                        check_fixed_point_reached(
                            program, graph, run.states.values
                        )
                    ]
                    if converged
                    else []
                )
            )
            report.raise_if_failed()
        extras = {
            "num_paths": float(pre.path_set.num_paths),
            "avg_path_length": pre.path_set.average_length(),
            "num_partitions": float(pre.storage.num_partitions),
            "num_scc_vertices": float(pre.dag.num_scc_vertices),
            "giant_scc_path_fraction": pre.dag.giant_scc_path_fraction(),
            "steals": float(run.dispatcher.steal_count),
        }
        if fault_injector is not None:
            stats = machine.stats
            extras.update(
                {
                    "transfer_retries": float(stats.transfer_retries),
                    "sync_retries": float(stats.sync_retries),
                    "stragglers_detected": float(stats.stragglers_detected),
                    "gpu_failures": float(stats.gpu_failures),
                    "rounds_rolled_back": float(stats.rounds_rolled_back),
                    "rollback_replay_rounds": float(
                        stats.rollback_replay_rounds
                    ),
                    "checkpoints_taken": float(stats.checkpoints_taken),
                    "checkpoint_bytes_spilled": float(
                        stats.checkpoint_bytes_spilled
                    ),
                    "checkpoint_time_s": stats.checkpoint_time_s,
                    "checkpoint_hidden_time_s": (
                        stats.checkpoint_hidden_time_s
                    ),
                    "recovery_time_s": stats.recovery_time_s,
                }
            )
        return ExecutionResult(
            engine=self.engine_label(),
            algorithm=program.name,
            graph_name=graph_name,
            converged=converged,
            rounds=machine.stats.rounds,
            states=run.states.values.copy(),
            stats=machine.stats,
            round_records=run.round_records,
            wall_seconds=time.perf_counter() - started,
            extras=extras,
        )

    def engine_label(self) -> str:
        """The paper's name for this configuration."""
        if not self.config.use_path_execution:
            return "digraph-t"
        if not self.config.use_priority_scheduling:
            return "digraph-w"
        return "digraph"


class _Run:
    """Mutable state of one engine execution (keeps ``run`` readable)."""

    def __init__(
        self,
        engine: DiGraphEngine,
        machine: Machine,
        graph: DiGraphCSR,
        program: VertexProgram,
        pre: Preprocessed,
        initial_values=None,
        initial_active=None,
    ) -> None:
        self.engine = engine
        self.cfg = engine.config
        self.machine = machine
        self.graph = graph
        self.program = program
        self.pre = pre
        self.states = VertexStates(
            graph,
            program,
            initial_values=initial_values,
            initial_active=initial_active,
        )
        self.scheduler = PathScheduler(
            pre.path_set,
            pre.dag,
            enabled=self.cfg.use_priority_scheduling,
        )
        self.dispatcher = Dispatcher(
            pre.storage, pre.dag, machine, prefetch=self.cfg.prefetch
        )
        # Batched gather-apply for the vertex-centric pass (scalar
        # fallback keeps unregistered programs on the same code path).
        self.kernel = (
            resolve_kernel(program, graph)
            if self.cfg.use_vectorized_kernels
            else None
        )
        self.round_records: List[RoundRecord] = []

        # Per-partition active-vertex counters (a vertex counts once per
        # partition that replicates it).
        self.partition_active = np.zeros(
            pre.storage.num_partitions, dtype=np.int64
        )
        # Per-group active-partition counters.
        self.groups = self.dispatcher.groups_in_layer_order()
        self.group_active = np.zeros(len(self.dispatcher.groups), dtype=np.int64)
        self._partition_was_active = np.zeros(
            pre.storage.num_partitions, dtype=bool
        )
        # Per-round replica-sync accumulator: (src_gpu, dst_gpu) -> bytes.
        self._pending_sync_bytes: Dict[Tuple[int, int], int] = {}
        # Vertices riding each pair's pending batch — tracked only under
        # a structured fault injector, so corruption knows which master
        # states a garbled batch poisons.
        self._pending_sync_payload: Dict[Tuple[int, int], List[int]] = {}
        self._track_payloads = machine._structured_injector is not None
        # Send-side ledger over the whole run, recorded at message
        # production time — the machine's receive-side
        # ``replica_pair_bytes`` is recorded at flush time, so comparing
        # the two catches dropped or double flushes (repro.verify).
        self.sync_sent_bytes: Dict[Tuple[int, int], int] = {}
        # GPU currently processing (None outside partition processing)
        # and activations waiting for the next wave boundary, as
        # (vertex, producing_gpu, owner_gpu) — the GPU pair identifies
        # the replica batch the activation message rides on.
        self._processing_gpu: Optional[int] = None
        self._deferred_activations: List[Tuple[int, int, int]] = []
        # Fault recovery: the machine's policy, rollback budget used,
        # and the largest state change of the last completed round
        # (diagnostic for ConvergenceError).
        self.recovery = machine.recovery
        self._rollbacks = 0
        self._round_max_delta = 0.0
        self.last_max_delta = 0.0
        self._path_work_cache: Dict[int, int] = {}
        # Round stamp per vertex: a vertex is updated at most once per
        # round (the paper walks each path once per round; replica
        # occurrences re-use the master state instead of recomputing).
        self._processed_stamp = np.zeros(graph.num_vertices, dtype=np.int64)
        self._sweep_stamp = np.zeros(graph.num_vertices, dtype=np.int64)
        # Which GPU last wrote each vertex, and during which wave — a
        # value is fresh on its writer's GPU even before replica sync.
        self._written_gpu = np.full(graph.num_vertices, -1, dtype=np.int64)
        self._written_stamp = np.zeros(graph.num_vertices, dtype=np.int64)
        self._wave_counter = 0
        self._current_round = 0
        self._stamp_counter = 0
        self._rounds_done = 0
        self._apply_layer_aware_owners()
        # Per-vertex owner partition (post-override), for the checkpoint
        # manager's spill attribution.
        self._owner_pid = np.full(graph.num_vertices, -1, dtype=np.int64)
        for v in range(graph.num_vertices):
            pid = pre.replicas.owner_partition(v)
            if pid is not None:
                self._owner_pid[v] = pid
        # Checkpoint lifecycle: built by the policy itself (duck-typed),
        # so this layer never imports repro.faults.
        self.checkpoints = (
            self.recovery.make_checkpoint_manager(
                machine, _EngineCheckpointClient(self)
            )
            if self.recovery is not None
            and getattr(self.recovery, "checkpoint_rounds", False)
            and hasattr(self.recovery, "make_checkpoint_manager")
            else None
        )
        self.scheduler.reset_counts(self.states.active)
        for v in self.states.active_vertices():
            self._bump_partitions(int(v), +1)

    def _apply_layer_aware_owners(self) -> None:
        """Pin each vertex's activity to its downstream-most writer.

        Among the partitions where a vertex receives in-path updates, the
        one whose dispatch group has the highest layer computes the
        vertex's final value. Tracking activity anywhere earlier would
        keep upstream groups flagged active while a downstream SCC
        iterates, permanently blocking the dependency frontier.
        """
        replicas = self.pre.replicas
        overrides: Dict[int, int] = {}
        for v in range(self.graph.num_vertices):
            writers = replicas.writer_partitions(v)
            if not writers:
                continue
            best_pid = None
            best_key = None
            for pid, weight in writers.items():
                group = self.dispatcher.group_of_partition(pid)
                layer = self.dispatcher.groups[group].layer
                key = (layer, weight, -pid)
                if best_key is None or key > best_key:
                    best_key = key
                    best_pid = pid
            overrides[v] = int(best_pid)
        replicas.set_owner_overrides(overrides)

    # ------------------------------------------------------------------
    # activity bookkeeping
    # ------------------------------------------------------------------
    def _bump_partitions(self, v: int, delta: int) -> None:
        # Activity is tracked at the vertex's owner partition only:
        # counting every replica partition would keep upstream groups
        # flickering active (any downstream activation re-marks them),
        # permanently blocking the dependency frontier.
        pid = self.pre.replicas.owner_partition(v)
        if pid is None:
            return
        before = self.partition_active[pid]
        self.partition_active[pid] = max(0, before + delta)
        after = self.partition_active[pid]
        group = self.dispatcher.group_of_partition(pid)
        if before == 0 and after > 0:
            self.group_active[group] += 1
            self._partition_was_active[pid] = True
        elif before > 0 and after == 0:
            self.group_active[group] -= 1
            self._partition_was_active[pid] = False

    def activate(self, vertices: Sequence[int]) -> None:
        """Activate vertices, honoring message-delivery timing.

        A changed state is visible immediately on the GPU that produced
        it, but reaches other GPUs only with the end-of-wave replica
        synchronization — so activations of remote-owned vertices are
        deferred to the wave boundary. Activating them instantly would
        let them process the *stale* snapshot of the very change that
        activated them and then deactivate, losing the update.
        """
        producing_gpu = self._processing_gpu
        for v in vertices:
            v = int(v)
            owner = self.pre.replicas.owner_partition(v)
            if (
                producing_gpu is not None
                and owner is not None
                and self.dispatcher.current_gpu[owner] != producing_gpu
            ):
                # Always queued — even if currently active: the target may
                # be processed later this wave against the stale snapshot
                # and deactivate, which would drop this change's message.
                self._deferred_activations.append(
                    (v, producing_gpu, self.dispatcher.current_gpu[owner])
                )
                continue
            self._activate_now(v)

    def _activate_now(self, v: int) -> None:
        if not self.states.active[v]:
            self.states.active[v] = True
            self.scheduler.vertex_activated(v)
            self._bump_partitions(v, +1)

    def _apply_deferred_activations(
        self, lost_pairs: Set[Tuple[int, int]] = frozenset()
    ) -> None:
        """Deliver cross-GPU activations at the wave boundary.

        An activation message rides its pair's replica batch: if that
        batch was dropped in flight (fault injection without recovery),
        the activation is lost with it — the receiver never learns its
        input changed, which is exactly the failure the conservation and
        fixed-point checkers must catch.
        """
        pending, self._deferred_activations = self._deferred_activations, []
        for v, src_gpu, dst_gpu in pending:
            if (src_gpu, dst_gpu) in lost_pairs:
                continue
            self._activate_now(v)

    def deactivate(self, v: int) -> None:
        if self.states.active[v]:
            self.states.active[v] = False
            self.scheduler.vertex_deactivated(v)
            self._bump_partitions(int(v), -1)

    def partition_is_active(self, pid: int) -> bool:
        return self.partition_active[pid] > 0

    def _note_delta(self, old: float, new: float) -> None:
        """Track the round's largest state change (ConvergenceError
        diagnostics). Any move involving an infinity counts as inf."""
        if np.isfinite(old) and np.isfinite(new):
            delta = abs(new - old)
        else:
            delta = float("inf")
        if delta > self._round_max_delta:
            self._round_max_delta = delta

    def active_successor_partitions(self, pid: int) -> int:
        """Eviction-policy input: active direct successor partitions."""
        return sum(
            1
            for succ in self.dispatcher.partition_successors(pid)
            if self.partition_is_active(succ)
        )

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def execute(self, resume: bool = False) -> bool:
        """Run topological sweeps until no vertex is active.

        One *round* is one sweep: the dependency frontier is processed,
        which may converge groups and unblock their successors — those
        run within the **same** sweep (the paper dispatches SCC-vertices
        asynchronously as SMXs free up, with no global barrier between
        layers). A partition runs at most once per sweep; a group that
        stays active (an iterating SCC) waits for the next sweep.

        With a recovery policy, the checkpoint manager snapshots the
        logical state every ``checkpoint_interval`` rounds (spill cost
        charged on the PCIe ring): a GPU death (or a permanently failed
        link) mid-round rolls back to the last checkpoint, fences the
        dead GPU off, redistributes its partitions across the survivors,
        and replays the discarded rounds. Replayed rounds do not consume
        the convergence budget (they are bounded separately by
        ``max_gpu_loss_recoveries``).
        """
        stats = self.machine.stats
        manager = self.checkpoints
        if resume:
            if manager is None or manager.store is None:
                raise ConfigurationError(
                    "resume requires a recovery policy with "
                    "durability != 'none' and a run_dir"
                )
            # Every durable checkpoint was taken *after* the isolated-
            # vertex preamble, so its effects are already in the
            # restored state — re-running it would double-apply.
            loaded = manager.resume_from_store()
            self._rounds_done = int(loaded.round_index)
        else:
            self._process_isolated_vertices()
            self._rounds_done = 0
        try:
            while self._rounds_done < self.cfg.max_rounds:
                if not self.states.any_active():
                    return True
                if manager is not None and manager.due(self._rounds_done):
                    manager.checkpoint(self._rounds_done)
                try:
                    swept_any = self._execute_round()
                except GPULostError as exc:
                    self._recover_gpu_loss(exc.gpu_id, exc)
                    continue
                except PermanentInterconnectFault as exc:
                    # A link that stays dead is indistinguishable from
                    # the GPU behind it being unreachable: fence off the
                    # GPU at the failing endpoint and degrade onto the
                    # survivors.
                    gpu_id = (
                        exc.dst if isinstance(exc.dst, int) else exc.src
                    )
                    if not isinstance(gpu_id, int):
                        raise
                    self._recover_gpu_loss(gpu_id, exc)
                    continue
                self._rounds_done += 1
                stats.rounds += 1
                if not swept_any:
                    # Active vertices exist only outside any partition —
                    # impossible once isolated vertices were handled.
                    return True
            return not self.states.any_active()
        finally:
            # Settle any in-flight double-buffered checkpoint spill: the
            # last spill's exposed remainder must land on the timeline
            # even when the run converges (or aborts) right after it.
            if manager is not None:
                manager.finish()

    def _execute_round(self) -> bool:
        """One sweep over the dependency frontier; True if anything ran."""
        self._current_round += 1
        self._round_max_delta = 0.0
        processed_this_sweep: Set[int] = set()
        live = self.machine.live_gpu_ids()
        self._sweep_work = {g: [] for g in live}
        self._sweep_atomics = {g: [] for g in live}
        swept_any = False
        while True:
            runnable = [
                pid
                for pid in self._select_runnable_partitions()
                if pid not in processed_this_sweep
            ]
            if not runnable:
                break
            swept_any = True
            processed_this_sweep.update(runnable)
            self._run_wave(runnable)
        # One kernel timeline per sweep: the waves above are
        # bookkeeping boundaries for staleness and activation
        # delivery, but the SMXs run continuously (no global barrier
        # in the asynchronous model) — charging each wave as its own
        # launch would serialize warp-quantization costs that the
        # real system pipelines away.
        self.machine.compute_round(self._sweep_work, self._sweep_atomics)
        self.last_max_delta = self._round_max_delta
        return swept_any

    # ------------------------------------------------------------------
    # GPU-loss recovery
    # ------------------------------------------------------------------
    def _recover_gpu_loss(
        self, gpu_id: Optional[int], cause: Exception
    ) -> None:
        """Degrade gracefully after losing a GPU mid-round.

        Fences the GPU off, rolls back to the checkpoint manager's last
        snapshot, and redistributes every dead GPU's partitions across
        the survivors (the restored placement predates *any* death since
        the last checkpoint, so the sweep must cover earlier casualties
        too, not just today's). The moved partitions' arrays are gone
        with the dead GPUs' memory — survivors reload them from the host
        (lazily, via ``ensure_resident``), accounted eagerly as
        ``retransferred_bytes``. Re-raises ``cause`` when recovery is
        off, no checkpoint exists, the loss budget is exhausted, or
        nobody survives.
        """
        recovery = self.recovery
        manager = self.checkpoints
        if manager is None or not manager.has_checkpoint or gpu_id is None:
            raise cause
        self._rollbacks += 1
        if self._rollbacks > recovery.max_gpu_loss_recoveries:
            raise cause
        # Idempotent: a compute-wave kill already marked the GPU dead; a
        # permanently failed link reaches here with the GPU still "up".
        self.machine.kill_gpu(gpu_id)
        self._rounds_done = manager.rollback(self._rounds_done)
        policy = getattr(recovery, "redistribution_policy", "edge-balance")
        moved: List[int] = []
        for dead in sorted(self.machine.dead_gpus):
            moved.extend(
                self.dispatcher.redistribute_dead_gpu(dead, policy=policy)
            )
        self.machine.stats.retransferred_bytes += sum(
            self.pre.storage.partition_bytes(pid) for pid in moved
        )
        injector = self.machine._structured_injector
        if injector is not None:
            injector.note_recovery(
                "gpu_loss",
                gpu=gpu_id,
                moved=len(moved),
                round=self._current_round,
            )

    def _run_wave(self, runnable: List[int]) -> None:
        """Process one set of runnable partitions concurrently.

        Gather reads go through a per-GPU staleness view: vertices owned
        by another GPU are read at their wave-start snapshot (their new
        states arrive with the next replica synchronization). Thanks to
        dependency-ordered dispatch, a runnable partition's upstream
        inputs are already *converged*, so for them snapshot == fresh —
        the ordering removes the staleness penalty the async baseline
        pays. Inside an iterating multi-GPU SCC the penalty remains,
        matching the paper's observations.
        """
        assignment = self.dispatcher.balance_assignments(runnable)
        self._record_round_start(runnable)
        views = self._wave_views()
        for gpu_id, pids in assignment.items():
            gpu_work: List[int] = []
            gpu_atomics: List[int] = []
            self._processing_gpu = gpu_id
            for pid in pids:
                self.dispatcher.ensure_resident(
                    pid, self.active_successor_partitions
                )
                items, item_atomics = self._process_partition(
                    pid, gpu_id, views[gpu_id]
                )
                gpu_work.extend(items)
                gpu_atomics.extend(item_atomics)
            self._processing_gpu = None
            self._sweep_work[gpu_id].extend(gpu_work)
            self._sweep_atomics[gpu_id].extend(gpu_atomics)
        self._prefetch_next(runnable)
        lost_pairs = self._flush_replica_sync()
        self._apply_deferred_activations(lost_pairs)

    def _wave_views(self) -> Dict[int, StalenessView]:
        """Per-GPU read views for one wave (fresh local, snapshot remote).

        Keyed by live GPU id — dead GPUs get no view (and can get no
        work)."""
        snapshot = self.states.copy_values()
        owner_gpu = np.full(self.graph.num_vertices, -1, dtype=np.int64)
        replicas = self.pre.replicas
        current_gpu = self.dispatcher.current_gpu
        for v in range(self.graph.num_vertices):
            pid = replicas.owner_partition(v)
            if pid is not None:
                owner_gpu[v] = current_gpu[pid]
        self._owner_gpu = owner_gpu
        self._wave_counter += 1
        return {
            gpu: StalenessView(
                self.states.values,
                snapshot,
                owner_gpu == gpu,
                written_gpu=self._written_gpu,
                written_stamp=self._written_stamp,
                wave_stamp=self._wave_counter,
                gpu_id=gpu,
            )
            for gpu in self.machine.live_gpu_ids()
        }

    def _path_gather_work(self, path_id: int) -> int:
        """Expected gather work of one path (cached)."""
        cached = self._path_work_cache.get(path_id)
        if cached is None:
            cached = sum(
                self.program.gather_degree(self.graph, int(v))
                for v in self.pre.path_set[path_id].vertices
            )
            self._path_work_cache[path_id] = cached
        return cached

    def _process_isolated_vertices(self) -> None:
        """Vertices on no path (no edges at all) get one apply up front."""
        for v in self.states.active_vertices():
            v = int(v)
            if self.pre.replicas.mirror_partitions(v):
                continue
            new, changed = self.program.update_vertex(
                self.graph, v, self.states.values
            )
            self.machine.stats.apply_calls += 1
            if changed:
                self.machine.stats.vertex_updates += 1
            self.states.values[v] = new
            self.deactivate(v)
            if changed:
                self.activate(list(self.program.dependents(self.graph, v)))

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def _select_runnable_partitions(self) -> List[int]:
        """Frontier groups in layer order, plus advance execution."""
        if not self.cfg.use_path_execution:
            # DiGraph-t: no dependency ordering — every active partition.
            return [
                pid
                for pid in range(self.pre.storage.num_partitions)
                if self.partition_is_active(pid)
            ]
        runnable: List[int] = []
        advance_candidates: List[Tuple[int, List[int]]] = []
        for group in self.groups:
            if self.group_active[group.group_id] == 0:
                continue
            active_pids = [
                pid
                for pid in group.partition_ids
                if self.partition_is_active(pid)
            ]
            blockers = self._active_predecessor_groups(group.group_id)
            if blockers == 0:
                runnable.extend(active_pids)
            else:
                advance_candidates.append((blockers, active_pids))
        # Advance execution: fill idle capacity with the active groups
        # that have the fewest active precursors (Section 3.1).
        capacity = len(self.machine.live_gpu_ids()) * max(
            self.cfg.advance_factor, 0
        )
        if len(runnable) < capacity and advance_candidates:
            advance_candidates.sort(key=lambda item: item[0])
            for _, pids in advance_candidates:
                if len(runnable) >= capacity:
                    break
                runnable.extend(pids[: capacity - len(runnable)])
        return runnable

    def _active_predecessor_groups(self, group_id: int) -> int:
        group = self.dispatcher.groups[group_id]
        pred_groups: Set[int] = set()
        for pid in group.partition_ids:
            for pred in self.dispatcher.partition_predecessors(pid):
                pred_group = self.dispatcher.group_of_partition(pred)
                if pred_group != group_id:
                    pred_groups.add(pred_group)
        return sum(
            1 for g in pred_groups if self.group_active[g] > 0
        )

    def _prefetch_next(self, runnable: Sequence[int]) -> None:
        """Queue the successor partitions' transfers behind this round."""
        if not self.cfg.prefetch:
            return
        queued: Set[int] = set(runnable)
        for pid in runnable:
            for succ in self.dispatcher.partition_successors(pid):
                if succ not in queued and self.partition_is_active(succ):
                    queued.add(succ)
                    self.dispatcher.ensure_resident(
                        succ,
                        self.active_successor_partitions,
                        overlap=True,
                    )

    def _record_round_start(self, runnable: Sequence[int]) -> None:
        storage = self.pre.storage
        num_partitions = storage.num_partitions
        convergent = sum(
            1
            for pid in range(num_partitions)
            if not self.partition_is_active(pid)
        )
        active_slots = 0
        total_slots = 0
        for pid in runnable:
            active_slots += int(self.partition_active[pid])
            total_slots += storage.partitions[pid].num_vertex_slots
        self.round_records.append(
            RoundRecord(
                round_index=len(self.round_records),
                partitions_processed=len(runnable),
                partitions_convergent=convergent,
                active_fraction_nonconvergent=(
                    active_slots / total_slots if total_slots else 0.0
                ),
                vertex_updates=self.machine.stats.vertex_updates,
            )
        )

    # ------------------------------------------------------------------
    # partition processing
    # ------------------------------------------------------------------
    def _process_partition(
        self, pid: int, gpu_id: int, view: StalenessView
    ) -> Tuple[List[int], List[int]]:
        """Process one partition; returns per-thread (edges, atomics)."""
        storage = self.pre.storage
        partition = storage.partitions[pid]
        path_set = self.pre.path_set
        stats = self.machine.stats
        stats.note_partition_processed(pid)

        changed_vertices: Set[int] = set()
        write_counts: Dict[int, int] = {}
        work_items: List[int] = []
        atomic_items: List[int] = []
        if self.cfg.use_path_execution:
            # The SMX's warp scheduler keeps re-running its active paths
            # until the partition settles (Section 3.2.3): one partition
            # pass iterates to *local quiescence* — cross-partition
            # effects wait for the next wave. Each iteration schedules
            # and loads only the paths holding an active vertex this GPU
            # owns ("only needs to access a few paths"), the mechanism
            # behind DiGraph's loaded-data utilization (Fig. 13).
            active = self.states.active
            owner_gpu = self._owner_gpu
            # Iterating to local quiescence is only productive when the
            # pass computes *final* values: the partition must form its
            # own dispatch group (no mutual dependence with other
            # partitions) and every upstream group must have converged.
            # Inside a multi-partition SCC group, or with live upstream
            # inputs, iterating would churn against a stale snapshot, so
            # the pass runs once and waits for the next delivery.
            group_id = self.dispatcher.group_of_partition(pid)
            group = self.dispatcher.groups[group_id]
            inputs_final = len(group.partition_ids) == 1 and all(
                not self.partition_is_active(pred)
                for pred in self.dispatcher.partition_predecessors(pid)
            )
            max_iterations = _MAX_LOCAL_ITERATIONS if inputs_final else 1
            for _iteration in range(max_iterations):
                scheduled = []
                for p in partition.path_ids:
                    if self.scheduler.active_count[p] == 0:
                        continue
                    for v in path_set[p].vertices:
                        if active[v] and owner_gpu[v] == gpu_id:
                            scheduled.append(p)
                            break
                if not scheduled:
                    break
                self._stamp_counter += 1
                loaded_vertices = sum(
                    path_set[p].num_vertices for p in scheduled
                )
                loaded_edges = sum(
                    path_set[p].num_edges for p in scheduled
                )
                self.machine.load_global(
                    gpu_id,
                    nbytes=loaded_vertices * 16 + loaded_edges * 8,
                    vertices=loaded_vertices,
                )
                ordered = self.scheduler.order_paths(scheduled)
                # Balance by expected gather work (sum of gather degrees
                # along the path), the pull-model analog of the paper's
                # equal edges-per-thread rule.
                path_work = {
                    p: self._path_gather_work(p) for p in ordered
                }
                buckets = balance_paths_to_threads(
                    ordered,
                    path_work,
                    self.engine.spec.gpu.threads_per_smx,
                )
                for bucket in buckets:
                    edges = 0
                    for path_id in bucket:
                        edges += self._walk_path(
                            path_id,
                            gpu_id,
                            view,
                            changed_vertices,
                            write_counts,
                            quiesce=inputs_final,
                        )
                    work_items.append(edges)
                    atomic_items.append(0)
            # Contention is accounted once per partition pass (proxies
            # flush at pass end); the atomic pushes are issued by the
            # threads that produced the writes, so spread them evenly
            # over the pass's threads.
            contention = self.pre.replicas.contention(write_counts)
            stats.atomic_updates += contention.atomic_updates
            stats.proxy_absorbed += contention.proxy_absorbed
            stats.master_writes += contention.total_writes
            if work_items and contention.atomic_updates:
                share, remainder = divmod(
                    contention.atomic_updates, len(atomic_items)
                )
                for i in range(len(atomic_items)):
                    atomic_items[i] += share + (1 if i < remainder else 0)
        else:
            # DiGraph-t: traditional execution loads the whole partition
            # and runs one worklist pass over its vertices.
            self.machine.load_global(
                gpu_id,
                nbytes=partition.nbytes,
                vertices=partition.num_vertex_slots,
            )
            per_vertex_items = self._process_vertex_centric(
                partition, gpu_id, view, changed_vertices, write_counts
            )
            contention = self.pre.replicas.contention(write_counts)
            stats.atomic_updates += contention.atomic_updates
            stats.proxy_absorbed += contention.proxy_absorbed
            stats.master_writes += contention.total_writes
            # Traditional execution: one thread per processed vertex,
            # same as the async baseline.
            work_items.extend(per_vertex_items)
            atomic_items.extend([0] * len(per_vertex_items))
            if atomic_items and contention.atomic_updates:
                share, remainder = divmod(
                    contention.atomic_updates, len(atomic_items)
                )
                for i in range(len(atomic_items)):
                    atomic_items[i] += share + (1 if i < remainder else 0)

        self._synchronize_replicas(pid, gpu_id, changed_vertices)
        return work_items, atomic_items

    def _walk_path(
        self,
        path_id: int,
        gpu_id: int,
        view: StalenessView,
        changed_vertices: Set[int],
        write_counts: Dict[int, int],
        quiesce: bool = False,
    ) -> int:
        """Sequential in-path walk with immediate state reuse.

        A vertex's *active* flag may only be consumed by the GPU owning
        it: its pending activation encodes "new gather input has arrived
        here". A non-owner replica walking the same vertex on another GPU
        still refines it through the in-path chain (``upstream_changed``)
        but must not deactivate it — doing so would cancel a delivery the
        stale remote pass never saw. Returns the number of gather edges
        traversed (thread work).
        """
        path = self.pre.path_set[path_id]
        graph, program, states = self.graph, self.program, self.states
        stats = self.machine.stats
        # The walk streams every loaded slot of the path sequentially
        # (it must, to follow the chain) — each streamed record is a use
        # of loaded data, the coalescing win Fig. 13 measures.
        self.machine.note_vertex_uses(path.num_vertices)
        edges_walked = 0
        upstream_changed = False
        for position, v in enumerate(path.vertices):
            v = int(v)
            owner_local = self._owner_gpu[v] == gpu_id
            consumes_active = states.active[v] and owner_local
            if not (consumes_active or upstream_changed):
                upstream_changed = False
                continue
            if self._processed_stamp[v] == self._stamp_counter:
                # Already updated this local iteration (another path
                # occurrence); its master state is fresh — reuse.
                upstream_changed = False
                continue
            if (
                not quiesce
                and self._sweep_stamp[v] == self._current_round
            ):
                # Outside quiescence mode a vertex updates at most once
                # per sweep: recomputing it again before the next replica
                # delivery would just churn on the same stale inputs. If
                # it was re-activated meanwhile it stays active and is
                # picked up next sweep.
                upstream_changed = False
                continue
            self._processed_stamp[v] = self._stamp_counter
            self._sweep_stamp[v] = self._current_round
            old = float(states.values[v])
            new, changed = program.update_vertex(
                graph, v, view, old_state=old
            )
            degree = program.gather_degree(graph, v)
            edges_walked += degree
            stats.apply_calls += 1
            stats.edge_traversals += degree
            # Data-use accounting (Fig. 13): the vertex record plus each
            # neighbor read. One gather input — the in-path predecessor —
            # sits in the already-loaded path block (the coalescing win);
            # the rest are demand fetches of master records.
            demand = degree - 1 if position > 0 else degree
            if demand > 0:
                self.machine.load_global(
                    gpu_id, nbytes=8 * demand, vertices=demand
                )
            self.machine.note_vertex_uses(degree)
            states.values[v] = new
            self._written_gpu[v] = gpu_id
            self._written_stamp[v] = self._wave_counter
            if consumes_active:
                self.deactivate(v)
            if changed:
                stats.vertex_updates += 1
                changed_vertices.add(v)
                write_counts[v] = write_counts.get(v, 0) + 1
                self._note_delta(old, float(new))
                self.activate(list(program.dependents(graph, v)))
            upstream_changed = changed
        return edges_walked

    def _process_vertex_centric(
        self,
        partition,
        gpu_id: int,
        view: StalenessView,
        changed_vertices: Set[int],
        write_counts: Dict[int, int],
    ) -> int:
        """DiGraph-t: active vertices in id order, immediate visibility.

        Like the path walk, only the owner GPU consumes a vertex's active
        flag (see :meth:`_walk_path`). Returns per-vertex work items
        (gather degrees)."""
        graph, program, states = self.graph, self.program, self.states
        stats = self.machine.stats
        vertices: Set[int] = set()
        for path_id in partition.path_ids:
            vertices.update(
                int(v) for v in self.pre.path_set[path_id].vertices
            )
        if self.kernel is not None:
            return self._process_vertex_centric_batched(
                vertices, gpu_id, view, changed_vertices, write_counts
            )
        items: List[int] = []
        for v in sorted(vertices):
            if not (states.active[v] and self._owner_gpu[v] == gpu_id):
                continue
            old = float(states.values[v])
            new, changed = program.update_vertex(
                graph, v, view, old_state=old
            )
            degree = program.gather_degree(graph, v)
            items.append(degree)
            stats.apply_calls += 1
            stats.edge_traversals += degree
            # Demand fetches: no path block to amortize gather reads.
            if degree > 0:
                self.machine.load_global(
                    gpu_id, nbytes=8 * degree, vertices=degree
                )
            self.machine.note_vertex_uses(1 + degree)
            states.values[v] = new
            self._written_gpu[v] = gpu_id
            self._written_stamp[v] = self._wave_counter
            self.deactivate(v)
            if changed:
                stats.vertex_updates += 1
                changed_vertices.add(v)
                write_counts[v] = write_counts.get(v, 0) + 1
                self._note_delta(old, float(new))
                self.activate(list(program.dependents(graph, v)))
        return items

    def _process_vertex_centric_batched(
        self,
        vertices: Set[int],
        gpu_id: int,
        view: StalenessView,
        changed_vertices: Set[int],
        write_counts: Dict[int, int],
    ) -> List[int]:
        """Batched DiGraph-t pass: one kernel call per partition pass.

        Gathers read the materialized pass-start view — a Jacobi step
        over the batch where the scalar loop is Gauss-Seidel in id order
        — but per-update accounting (``apply_calls``, traversals,
        ``load_global`` bytes, uses) is charged exactly as the scalar
        loop charges it, and activation-carries-data semantics are
        preserved: processed vertices deactivate, changed vertices
        activate their dependents (remote owners deferred to the wave
        boundary by :meth:`activate`).
        """
        states = self.states
        stats = self.machine.stats
        batch = np.array(
            sorted(
                v
                for v in vertices
                if states.active[v] and self._owner_gpu[v] == gpu_id
            ),
            dtype=np.int64,
        )
        if batch.size == 0:
            return []
        effective = view.as_array()
        old = states.values[batch].copy()
        new, changed = self.kernel.batch_update(batch, effective, old)
        degrees = self.kernel.gather_degrees(batch)
        degree_sum = int(degrees.sum())
        stats.apply_calls += int(batch.size)
        stats.edge_traversals += degree_sum
        # Demand fetches: no path block to amortize gather reads.
        if degree_sum > 0:
            self.machine.load_global(
                gpu_id, nbytes=8 * degree_sum, vertices=degree_sum
            )
        self.machine.note_vertex_uses(int(batch.size) + degree_sum)
        states.values[batch] = new
        self._written_gpu[batch] = gpu_id
        self._written_stamp[batch] = self._wave_counter
        for v in batch:
            self.deactivate(int(v))
        changed_batch = batch[changed]
        if changed_batch.size:
            stats.vertex_updates += int(changed_batch.size)
            old_changed = old[changed]
            new_changed = np.asarray(new)[changed]
            finite = np.isfinite(old_changed) & np.isfinite(new_changed)
            if not bool(finite.all()):
                self._round_max_delta = float("inf")
            else:
                self._round_max_delta = max(
                    self._round_max_delta,
                    float(np.abs(new_changed - old_changed).max()),
                )
            for v in changed_batch:
                changed_vertices.add(int(v))
                write_counts[int(v)] = write_counts.get(int(v), 0) + 1
            targets, _ = self.kernel.batch_dependents(changed_batch)
            self.activate([int(u) for u in targets])
        return degrees.tolist()

    def _synchronize_replicas(
        self, pid: int, gpu_id: int, changed_vertices: Set[int]
    ) -> None:
        """Batched replica-update messages to remote mirror partitions.

        Messages are grouped per destination partition (Section 3.2.2's
        arrangement "according to the IDs of the destination partitions")
        and accumulated per GPU pair; the NCCL ring moves each pair's
        accumulated batch once per round (flushed by the main loop).
        """
        if not changed_vertices:
            return
        outcome = self.pre.replicas.sync_after_partition(
            pid, changed_vertices
        )
        if outcome.messages == 0:
            return
        payload = (
            self.pre.replicas.payload_by_destination(pid, changed_vertices)
            if self._track_payloads
            else None
        )
        per_batch = max(1, outcome.messages // max(outcome.batches, 1))
        for dest in outcome.destinations:
            dest_gpu = self.dispatcher.current_gpu[dest]
            if dest_gpu == gpu_id:
                continue  # same-GPU sync stays in global memory
            key = (gpu_id, dest_gpu)
            nbytes = per_batch * BYTES_PER_MESSAGE
            self._pending_sync_bytes[key] = (
                self._pending_sync_bytes.get(key, 0) + nbytes
            )
            self.sync_sent_bytes[key] = (
                self.sync_sent_bytes.get(key, 0) + nbytes
            )
            if payload is not None:
                self._pending_sync_payload.setdefault(key, []).extend(
                    payload.get(dest, ())
                )

    def _flush_replica_sync(self) -> Set[Tuple[int, int]]:
        """Send each GPU pair's accumulated replica batch for this round.

        Batches go through :meth:`Machine.deliver_replica_batch`, so
        fault injection can drop or corrupt them. Returns the pairs
        whose batch was lost (the wave boundary must discard their
        deferred activations too); a corrupted batch that slipped
        through poisons the payload vertices' master states — garbage
        the fixed-point oracle is expected to flag.
        """
        lost_pairs: Set[Tuple[int, int]] = set()
        for (src_gpu, dst_gpu), nbytes in sorted(
            self._pending_sync_bytes.items()
        ):
            outcome = self.machine.deliver_replica_batch(
                src_gpu, dst_gpu, nbytes
            )
            if outcome.status == "dropped":
                lost_pairs.add((src_gpu, dst_gpu))
            elif outcome.status == "corrupted":
                for v in self._pending_sync_payload.get(
                    (src_gpu, dst_gpu), ()
                ):
                    self.states.values[v] = outcome.poison
        self._pending_sync_bytes.clear()
        self._pending_sync_payload.clear()
        return lost_pairs


class _EngineCheckpointClient:
    """Checkpoint-protocol adapter for a DiGraph run.

    Exposes the logical state a rollback must restore (see
    ``repro.faults.checkpoint`` for the duck-typed protocol): vertex
    values and activity, the staleness stamps, the partition/group
    activity counters, pending cross-GPU messages, BOTH
    replica-conservation ledgers (send side on the run, receive side in
    ``MachineStats`` — restoring only one would leave a phantom mismatch
    after replay), and partition placement. Time and work counters are
    deliberately *not* covered: the aborted attempt really happened; its
    cost is surfaced via ``recovery_time_s``.
    """

    def __init__(self, run: "_Run") -> None:
        self._run = run

    def vertex_arrays(self) -> Dict[str, np.ndarray]:
        run = self._run
        return {
            "values": run.states.values,
            "active": run.states.active,
            "processed_stamp": run._processed_stamp,
            "sweep_stamp": run._sweep_stamp,
            "written_gpu": run._written_gpu,
            "written_stamp": run._written_stamp,
        }

    def vertex_gpu(self) -> np.ndarray:
        run = self._run
        pid_gpu = np.full(
            run.pre.storage.num_partitions + 1, -1, dtype=np.int64
        )
        for pid, gpu in run.dispatcher.current_gpu.items():
            pid_gpu[pid] = gpu
        # Unowned vertices (owner_pid == -1) map to the -1 sentinel slot.
        return pid_gpu[run._owner_pid]

    def capture_scalars(self) -> Dict[str, object]:
        run = self._run
        return {
            "partition_active": run.partition_active.copy(),
            "group_active": run.group_active.copy(),
            "was_active": run._partition_was_active.copy(),
            "wave_counter": run._wave_counter,
            "stamp_counter": run._stamp_counter,
            "current_round": run._current_round,
            "deferred": list(run._deferred_activations),
            "pending_sync": dict(run._pending_sync_bytes),
            "pending_payload": {
                pair: list(vs)
                for pair, vs in run._pending_sync_payload.items()
            },
            "sent_ledger": dict(run.sync_sent_bytes),
            "recv_ledger": dict(run.machine.stats.replica_pair_bytes),
            "current_gpu": dict(run.dispatcher.current_gpu),
            "num_round_records": len(run.round_records),
        }

    def restore_scalars(self, scalars: Dict[str, object]) -> None:
        run = self._run
        run.partition_active[:] = scalars["partition_active"]
        run.group_active[:] = scalars["group_active"]
        run._partition_was_active[:] = scalars["was_active"]
        run._wave_counter = scalars["wave_counter"]
        run._stamp_counter = scalars["stamp_counter"]
        run._current_round = scalars["current_round"]
        run._deferred_activations = list(scalars["deferred"])
        run._pending_sync_bytes = dict(scalars["pending_sync"])
        run._pending_sync_payload = {
            pair: list(vs)
            for pair, vs in scalars["pending_payload"].items()
        }
        run.sync_sent_bytes = dict(scalars["sent_ledger"])
        run.machine.stats.replica_pair_bytes = dict(
            scalars["recv_ledger"]
        )
        run.dispatcher.current_gpu = dict(scalars["current_gpu"])
        del run.round_records[scalars["num_round_records"]:]
        run.scheduler.reset_counts(run.states.active)
