"""Vertex replicas: masters, mirrors, proxy vertices, message batching.

Section 3.2.2: a vertex replicated across paths has one *master* (its
``V_val`` slot) and *mirrors* (its ``S_val`` occurrences). Mirrors push new
states to the master; other mirrors pull from it. Two cost problems and the
paper's fixes, both modeled here:

- **Write contention** — many threads atomically updating one hot master.
  Fix: a *proxy vertex* in each SMX's shared memory accumulates the local
  mirrors' pushes; only the accumulated result hits the master. We count
  an ``atomic`` per master write and credit ``proxy_absorbed`` for writes
  a proxy soaked up.
- **Interleaved messages** — replica-update messages scattered across
  destination partitions force repeated partition loads. Fix: after a
  partition is processed, messages are grouped by destination partition
  and sent in batches; we count messages, batches, and bytes, and the
  dispatcher charges one transfer per batch instead of per message.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

import numpy as np

from repro.errors import StorageError
from repro.core.paths import PathSet
from repro.core.storage import BYTES_PER_MESSAGE, PathStorage


@dataclass(frozen=True)
class SyncOutcome:
    """Replica synchronization cost of one partition processing pass."""

    messages: int           #: replica-update messages generated
    batches: int            #: distinct destination partitions (one batch each)
    nbytes: int             #: total message payload
    destinations: Tuple[int, ...]  #: destination partition ids


@dataclass(frozen=True)
class ContentionOutcome:
    """Master write contention of one partition processing pass."""

    atomic_updates: int     #: atomic writes that reached masters
    proxy_absorbed: int     #: writes absorbed by shared-memory proxies
    total_writes: int       #: all master writes of the pass (conserved:
                            #: ``atomic_updates + proxy_absorbed``)


class ReplicaTable:
    """Replica locations and proxy-vertex selection for a path layout.

    Parameters
    ----------
    proxy_in_degree_threshold:
        Vertices with in-degree at or above this get a proxy slot,
        capacity permitting (the paper proxies "each vertex with high
        in-degree").
    proxy_capacity:
        Maximum proxy slots per SMX, derived from shared-memory size by
        the caller (``shared_bytes // slot_bytes``).
    """

    def __init__(
        self,
        path_set: PathSet,
        storage: PathStorage,
        proxy_in_degree_threshold: int = 8,
        proxy_capacity: int = 4096,
    ) -> None:
        if proxy_in_degree_threshold < 1:
            raise StorageError("proxy threshold must be >= 1")
        if proxy_capacity < 0:
            raise StorageError("proxy capacity must be >= 0")
        self._path_set = path_set
        self._storage = storage
        #: Proxy-selection parameters, kept for introspection (the
        #: conformance checkers re-derive the proxy set from these).
        self.proxy_in_degree_threshold = proxy_in_degree_threshold
        self.proxy_capacity = proxy_capacity
        graph = path_set.graph

        # vertex -> sorted partition ids holding a mirror of it, plus how
        # many *writer* occurrences (non-head positions, where the vertex
        # receives in-path updates) each partition holds.
        partitions_of_vertex: Dict[int, set] = {}
        writer_weight: Dict[Tuple[int, int], int] = {}
        for path in path_set:
            partition = storage.partition_of_path(path.path_id)
            for position, v in enumerate(path.vertices):
                v = int(v)
                partitions_of_vertex.setdefault(v, set()).add(partition)
                if position > 0:
                    key = (v, partition)
                    writer_weight[key] = writer_weight.get(key, 0) + 1
        self._mirror_partitions: Dict[int, Tuple[int, ...]] = {
            v: tuple(sorted(parts))
            for v, parts in partitions_of_vertex.items()
        }
        self._writer_weight = writer_weight
        # Default owner: the partition with the most writer occurrences
        # (its gather inputs land there), falling back to the first
        # partition holding the vertex at all (head-only vertices). The
        # engine refines this with dispatch-group layers (see
        # :meth:`set_owner_overrides`): activity of a vertex must be
        # tracked where its *final* value is computed, or upstream groups
        # flicker active forever and block the dependency frontier.
        self._owner_partition: Dict[int, int] = {}
        for v, parts in self._mirror_partitions.items():
            best = parts[0]
            best_weight = writer_weight.get((v, best), 0)
            for pid in parts[1:]:
                weight = writer_weight.get((v, pid), 0)
                if weight > best_weight:
                    best, best_weight = pid, weight
            self._owner_partition[v] = best

        # Proxy vertices: hottest in-degrees first, up to capacity.
        in_degrees = graph.in_degree()
        hot = np.flatnonzero(in_degrees >= proxy_in_degree_threshold)
        hot = hot[np.argsort(-in_degrees[hot], kind="stable")]
        self._proxied = frozenset(int(v) for v in hot[:proxy_capacity])

    def writer_partitions(self, v: int) -> Dict[int, int]:
        """Partitions where ``v`` receives in-path updates -> occurrence
        count."""
        return {
            pid: self._writer_weight[(v, pid)]
            for pid in self.mirror_partitions(v)
            if (v, pid) in self._writer_weight
        }

    def set_owner_overrides(self, owners: Mapping[int, int]) -> None:
        """Replace owner partitions (engine applies layer-aware owners)."""
        for v, pid in owners.items():
            if pid not in self.mirror_partitions(v):
                raise StorageError(
                    f"owner partition {pid} holds no replica of vertex {v}"
                )
            self._owner_partition[v] = pid

    # ------------------------------------------------------------------
    def mirror_partitions(self, v: int) -> Tuple[int, ...]:
        """Partitions holding a replica of ``v`` (empty if isolated)."""
        return self._mirror_partitions.get(v, ())

    def replica_count(self, v: int) -> int:
        """Number of partitions carrying ``v``."""
        return len(self.mirror_partitions(v))

    def owner_partition(self, v: int) -> Optional[int]:
        """Partition tracking ``v``'s activity (None if ``v`` is isolated)."""
        return self._owner_partition.get(v)

    def has_proxy(self, v: int) -> bool:
        """Whether ``v`` gets a shared-memory proxy accumulator."""
        return v in self._proxied

    @property
    def num_proxied(self) -> int:
        return len(self._proxied)

    @property
    def proxied_vertices(self) -> frozenset:
        """The proxy-vertex set (introspection for the checkers)."""
        return self._proxied

    def replicated_vertices(self) -> Tuple[int, ...]:
        """All vertices holding at least one replica, ascending."""
        return tuple(sorted(self._mirror_partitions))

    # ------------------------------------------------------------------
    def sync_after_partition(
        self, partition_id: int, changed_vertices: Iterable[int]
    ) -> SyncOutcome:
        """Replica-update messages for a partition pass's changed vertices.

        One message per (changed vertex, remote mirror partition); messages
        to the same destination form one batch.
        """
        per_destination: Dict[int, int] = {}
        for v in changed_vertices:
            for dest in self.mirror_partitions(int(v)):
                if dest != partition_id:
                    per_destination[dest] = per_destination.get(dest, 0) + 1
        messages = sum(per_destination.values())
        return SyncOutcome(
            messages=messages,
            batches=len(per_destination),
            nbytes=messages * BYTES_PER_MESSAGE,
            destinations=tuple(sorted(per_destination)),
        )

    def payload_by_destination(
        self, partition_id: int, changed_vertices: Iterable[int]
    ) -> Dict[int, Tuple[int, ...]]:
        """The vertices each remote destination receives in the batch.

        The vertex-level view of :meth:`sync_after_partition`: for every
        remote mirror partition, the (sorted) changed vertices with a
        replica there — i.e. the modeled message payload. Fault injection
        uses this to know *which* master states a corrupted batch would
        garble.
        """
        per_destination: Dict[int, List[int]] = {}
        for v in changed_vertices:
            v = int(v)
            for dest in self.mirror_partitions(v):
                if dest != partition_id:
                    per_destination.setdefault(dest, []).append(v)
        return {
            dest: tuple(sorted(vs))
            for dest, vs in per_destination.items()
        }

    def contention(
        self, write_counts: Mapping[int, int]
    ) -> ContentionOutcome:
        """Atomic-vs-proxy accounting for one partition pass.

        ``write_counts`` maps vertex -> number of master writes produced
        while processing the partition. A proxied vertex folds all its
        local writes into one atomic push at pass end; an unproxied vertex
        pays one atomic per write.
        """
        atomics = 0
        absorbed = 0
        total = 0
        for v, count in write_counts.items():
            if count <= 0:
                continue
            total += count
            if self.has_proxy(int(v)):
                atomics += 1
                absorbed += count - 1
            else:
                atomics += count
        return ContentionOutcome(
            atomic_updates=atomics,
            proxy_absorbed=absorbed,
            total_writes=total,
        )


def replication_factor(table: ReplicaTable, path_set: PathSet) -> float:
    """Mean replicas per vertex that occurs on at least one path."""
    counts: List[int] = []
    seen = set()
    for path in path_set:
        for v in path.vertices:
            if v not in seen:
                seen.add(v)
                counts.append(table.replica_count(int(v)))
    if not counts:
        return 0.0
    return float(np.mean(counts))
