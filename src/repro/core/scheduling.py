"""Soft-priority path scheduling on each SMX (Section 3.2.3).

Each path gets ``Pri(p) = α · D̄(p) · N(p) − L(p)`` where

- ``D̄(p)`` — average vertex degree of the path (hot paths score high),
- ``N(p)`` — current number of active vertices on the path (maintained
  incrementally at run time),
- ``L(p)`` — the path's DAG layer number (lower layers first),
- ``α = 1 / (D̄_max · N_max)`` — a preprocessing-time scaling factor that
  keeps the degree-activity term below one, so the layer term dominates:
  the path with the smallest ``L(p)`` always wins, and within a layer the
  hottest/most-active paths win.

When an SMX becomes idle the highest-priority paths run first; cold or
inactive paths are deferred, reducing redundant updates (Fig. 7's
DiGraph-w ablation removes exactly this policy).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

import numpy as np

from repro.errors import SchedulingError
from repro.core.dependency import DependencyDAG
from repro.core.paths import PathSet


class PathScheduler:
    """Maintains per-path priorities and active-vertex counts."""

    def __init__(
        self,
        path_set: PathSet,
        dag: DependencyDAG,
        enabled: bool = True,
    ) -> None:
        self._path_set = path_set
        self._dag = dag
        self.enabled = enabled
        graph = path_set.graph

        num_paths = path_set.num_paths
        self._avg_degree = np.zeros(num_paths, dtype=np.float64)
        self._layer = np.zeros(num_paths, dtype=np.float64)
        self._num_vertices = np.zeros(num_paths, dtype=np.int64)
        for path in path_set:
            self._avg_degree[path.path_id] = path.average_degree(graph)
            self._layer[path.path_id] = dag.layer_of_path(path.path_id)
            self._num_vertices[path.path_id] = path.num_vertices

        d_max = float(self._avg_degree.max()) if num_paths else 1.0
        n_max = float(self._num_vertices.max()) if num_paths else 1.0
        denominator = max(d_max * n_max, 1.0)
        #: The paper's preprocessing-time scaling factor.
        self.alpha = 1.0 / denominator

        #: N(p): active vertices per path, updated incrementally.
        self.active_count = np.zeros(num_paths, dtype=np.int64)
        # vertex -> path ids containing it (for incremental N updates).
        self._paths_of_vertex = path_set.paths_of_vertex()

    # ------------------------------------------------------------------
    # N(p) maintenance
    # ------------------------------------------------------------------
    def reset_counts(self, active_mask: np.ndarray) -> None:
        """Rebuild N(p) from a vertex active mask (run start)."""
        self.active_count[:] = 0
        for v in np.flatnonzero(active_mask):
            for path_id in self._paths_of_vertex.get(int(v), ()):
                self.active_count[path_id] += 1

    def vertex_activated(self, v: int) -> None:
        """A vertex became active: bump N(p) for its paths."""
        for path_id in self._paths_of_vertex.get(int(v), ()):
            self.active_count[path_id] += 1

    def vertex_deactivated(self, v: int) -> None:
        """A vertex converged: decrement N(p) for its paths."""
        for path_id in self._paths_of_vertex.get(int(v), ()):
            if self.active_count[path_id] > 0:
                self.active_count[path_id] -= 1

    def paths_of_vertex(self, v: int) -> Sequence[int]:
        return self._paths_of_vertex.get(int(v), ())

    # ------------------------------------------------------------------
    # Pri(p)
    # ------------------------------------------------------------------
    def priority(self, path_id: int) -> float:
        """``Pri(p) = α · D̄(p) · N(p) − L(p)``."""
        if not 0 <= path_id < self._path_set.num_paths:
            raise SchedulingError(f"no path {path_id}")
        return float(
            self.alpha
            * self._avg_degree[path_id]
            * self.active_count[path_id]
            - self._layer[path_id]
        )

    def order_paths(self, path_ids: Iterable[int]) -> List[int]:
        """Processing order for an SMX's paths.

        With scheduling enabled: descending ``Pri(p)`` (ties by id for
        determinism). Disabled (the DiGraph-w ablation): the warp
        scheduler's default round-robin order, i.e. the given id order.
        """
        ids = list(path_ids)
        if not self.enabled:
            return ids
        return sorted(ids, key=lambda p: (-self.priority(p), p))


def balance_paths_to_threads(
    path_ids: Sequence[int],
    path_edges: Dict[int, int],
    num_threads: int,
) -> List[List[int]]:
    """Assign paths to threads so per-thread edge counts are almost equal.

    Section 3.2.2: lock-step warps under-utilize an SMX when thread loads
    differ, so paths are packed greedily — longest path to the currently
    lightest thread (LPT); several short paths share a thread that
    balances one long path. The *given order* of equal-length paths is
    preserved (priority order from the scheduler).
    """
    if num_threads < 1:
        raise SchedulingError("num_threads must be >= 1")
    buckets: List[List[int]] = [[] for _ in range(num_threads)]
    loads = [0] * num_threads
    # Stable sort: keeps scheduler priority order among equal lengths.
    ordered = sorted(
        range(len(path_ids)), key=lambda i: -path_edges[path_ids[i]]
    )
    for i in ordered:
        path_id = path_ids[i]
        lightest = loads.index(min(loads))
        buckets[lightest].append(path_id)
        loads[lightest] += path_edges[path_id]
    return [bucket for bucket in buckets if bucket]
