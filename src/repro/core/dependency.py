"""Path dependency graph, DAG sketch, and layers (Sections 3.1-3.2.2).

Two paths are dependent when one *writes* a vertex the other *reads*:
``p_i -> p_j`` iff some vertex ``v`` lies on both, ``v`` has an in-edge on
``p_i`` (so ``p_i`` produces a new state for ``v``) and an out-edge on
``p_j`` (so ``p_j`` propagates ``v``'s state). Contracting the SCCs of this
dependency graph yields the *DAG sketch* whose nodes — **SCC-vertices** —
are sets of mutually-dependent paths; processing SCC-vertices in
topological layer order means a path is handled only after all paths it
depends on have converged, so most paths are processed exactly once
(Observation 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

import numpy as np

from repro.graph.builder import GraphBuilder
from repro.graph.digraph import DiGraphCSR
from repro.graph.scc import condensation
from repro.graph.traversal import dag_layers
from repro.core.paths import PathSet


@dataclass(frozen=True)
class DependencyDAG:
    """The dependency graph of paths and its contracted DAG sketch.

    Attributes
    ----------
    dependency_graph:
        Directed graph over path ids (``p_i -> p_j`` as defined above).
    scc_of_path:
        SCC-vertex id of each path.
    dag:
        The DAG sketch: one node per SCC-vertex, deduplicated edges.
    members:
        Path ids per SCC-vertex.
    layer_of_scc:
        Layer number per SCC-vertex (sources = 0; an SCC-vertex only
        depends on strictly lower layers).
    """

    dependency_graph: DiGraphCSR
    scc_of_path: np.ndarray
    dag: DiGraphCSR
    members: Tuple[Tuple[int, ...], ...]
    layer_of_scc: np.ndarray

    @property
    def num_paths(self) -> int:
        return self.dependency_graph.num_vertices

    @property
    def num_scc_vertices(self) -> int:
        return self.dag.num_vertices

    def layer_of_path(self, path_id: int) -> int:
        """Layer number of the SCC-vertex containing ``path_id`` — the
        ``L(p)`` term of the Pri(p) scheduling formula."""
        return int(self.layer_of_scc[self.scc_of_path[path_id]])

    def giant_scc_vertex(self) -> int:
        """SCC-vertex with the most paths (the paper's *giant* one, which
        may hold 3.5%-89% of all paths)."""
        sizes = [len(m) for m in self.members]
        return int(np.argmax(sizes))

    def giant_scc_path_fraction(self) -> float:
        """Fraction of all paths inside the giant SCC-vertex."""
        if self.num_paths == 0:
            return 0.0
        return len(self.members[self.giant_scc_vertex()]) / self.num_paths

    def scc_successors(self, scc: int) -> np.ndarray:
        return self.dag.successors(scc)

    def scc_predecessors(self, scc: int) -> np.ndarray:
        return self.dag.predecessors(scc)

    def num_layers(self) -> int:
        if self.layer_of_scc.size == 0:
            return 0
        return int(self.layer_of_scc.max()) + 1


def build_dependency_dag(path_set: PathSet) -> DependencyDAG:
    """Construct the dependency graph, DAG sketch, and layers for a
    path decomposition."""
    num_paths = path_set.num_paths
    writers = path_set.writer_paths()
    readers = path_set.reader_paths()

    edges: Set[Tuple[int, int]] = set()
    for v, writing in writers.items():
        reading = readers.get(v)
        if not reading:
            continue
        for pi in writing:
            for pj in reading:
                if pi != pj:
                    edges.add((pi, pj))

    builder = GraphBuilder(num_vertices=num_paths)
    builder.add_edges(sorted(edges))
    dependency_graph = builder.build()

    cond = condensation(dependency_graph)
    layers = dag_layers(cond.dag)
    return DependencyDAG(
        dependency_graph=dependency_graph,
        scc_of_path=cond.labels,
        dag=cond.dag,
        members=cond.members,
        layer_of_scc=layers,
    )


def scc_vertices_by_layer(dag: DependencyDAG) -> List[List[int]]:
    """SCC-vertex ids grouped by layer, ascending.

    Within a layer, SCC-vertices are ordered by descending total path
    count of their *successor* SCC-vertices — the paper's tie-break so
    that finishing an SCC-vertex unlocks the most downstream work
    (Section 3.2.2, "descending order according to the total number of
    paths in their successive active SCC-vertices").
    """
    layers: Dict[int, List[int]] = {}
    for scc in range(dag.num_scc_vertices):
        layers.setdefault(int(dag.layer_of_scc[scc]), []).append(scc)

    def successor_path_count(scc: int) -> int:
        return sum(
            len(dag.members[int(succ)]) for succ in dag.scc_successors(scc)
        )

    result = []
    for layer in sorted(layers):
        members = layers[layer]
        members.sort(key=lambda s: (-successor_path_count(s), s))
        result.append(members)
    return result
