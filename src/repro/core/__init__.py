"""DiGraph's contribution: path-based iterative directed graph processing.

The pipeline mirrors Section 3 of the paper:

1. :mod:`~repro.core.partitioning` — Algorithm 1 decomposes the directed
   graph into disjoint hot/cold paths (plus head-to-tail merging);
2. :mod:`~repro.core.dependency` — the path dependency graph, its SCC
   contraction into the DAG sketch, and layer numbers;
3. :mod:`~repro.core.storage` — the ``E_Idx``/``S_val``/``E_val``/``V_val``/
   ``PTable`` array layout of Fig. 4;
4. :mod:`~repro.core.replicas` — master/mirror replicas, proxy vertices,
   and destination-partition message batching;
5. :mod:`~repro.core.scheduling` — the ``Pri(p)`` soft-priority SMX path
   scheduler;
6. :mod:`~repro.core.dispatch` — dependency-aware dispatch to GPUs with
   batched transfer, prefetch, and work stealing;
7. :mod:`~repro.core.engine` — the path-based asynchronous execution engine
   tying it together; :mod:`~repro.core.variants` configures the paper's
   DiGraph-t / DiGraph-w ablations.
"""

from repro.core.engine import DiGraphEngine
from repro.core.partitioning import decompose_into_paths
from repro.core.paths import Path, PathSet
from repro.core.variants import digraph_t, digraph_w

__all__ = [
    "DiGraphEngine",
    "Path",
    "PathSet",
    "decompose_into_paths",
    "digraph_t",
    "digraph_w",
]
