"""Path storage layout and partitions (Fig. 4, Section 3.2.1).

Four arrays represent the decomposed graph on the (simulated) GPU:

- ``E_Idx`` — per path, the vertex-index sequence along the path; two
  successive items of one path are one directed edge, so edges cost one
  index each (less space than shard-based layouts);
- ``S_val`` — the state value slot of each source occurrence (the
  *mirrors*), parallel to ``E_Idx``;
- ``E_val`` — edge values (weights), one per edge;
- ``V_val`` — the per-vertex *master* state array;
- ``PTable`` — offset of each path's first vertex in ``E_Idx``; two
  successive items delimit one path.

Paths of a partition occupy successive ``PTable``/``E_Idx`` items so a
warp's threads read consecutive global memory (coalesced accesses).
Partitions group highly-connected paths — paths of the same SCC-vertex
first, hot paths together — per Section 3.2.1's placement rules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.errors import StorageError
from repro.core.dependency import DependencyDAG, scc_vertices_by_layer
from repro.core.paths import PathSet

#: Bytes per E_Idx entry (int64 vertex index).
BYTES_PER_INDEX = 8
#: Bytes per state value (float64) — S_val, V_val entries.
BYTES_PER_STATE = 8
#: Bytes per edge value (float64).
BYTES_PER_EDGE_VALUE = 8
#: Bytes of one replica-synchronization message (vertex id + value).
BYTES_PER_MESSAGE = 16
#: Bytes of one vertex record loaded into a GPU core (index + state).
BYTES_PER_VERTEX_RECORD = BYTES_PER_INDEX + BYTES_PER_STATE


@dataclass
class Partition:
    """A set of paths transferred and synchronized as one unit."""

    partition_id: int
    path_ids: List[int]
    #: Smallest DAG layer among the partition's paths — used for
    #: layer-ordered dispatch.
    layer: int
    #: SCC-vertices whose paths appear in this partition.
    scc_vertices: Tuple[int, ...]
    num_edges: int = 0
    num_vertex_slots: int = 0

    @property
    def nbytes(self) -> int:
        """Transfer size of this partition's storage arrays."""
        return (
            self.num_vertex_slots * (BYTES_PER_INDEX + BYTES_PER_STATE)
            + self.num_edges * BYTES_PER_EDGE_VALUE
        )


class PathStorage:
    """The Fig. 4 array layout for a partitioned path decomposition."""

    def __init__(
        self,
        path_set: PathSet,
        partitions: List[Partition],
    ) -> None:
        graph = path_set.graph
        order: List[int] = []
        for partition in partitions:
            order.extend(partition.path_ids)
        if sorted(order) != list(range(path_set.num_paths)):
            raise StorageError(
                "partitions must cover every path exactly once"
            )

        self.path_set = path_set
        self.partitions = partitions
        #: Storage slot of each path (position within PTable).
        self.slot_of_path = np.empty(path_set.num_paths, dtype=np.int64)
        for slot, path_id in enumerate(order):
            self.slot_of_path[path_id] = slot

        ptable: List[int] = [0]
        e_idx: List[int] = []
        e_val: List[float] = []
        for path_id in order:
            path = path_set[path_id]
            e_idx.extend(int(v) for v in path.vertices)
            e_val.extend(
                float(graph.weights[eid]) for eid in path.edge_ids
            )
            ptable.append(len(e_idx))

        self.ptable = np.asarray(ptable, dtype=np.int64)
        self.e_idx = np.asarray(e_idx, dtype=np.int64)
        self.e_val = np.asarray(e_val, dtype=np.float64)
        #: Mirror state slots, parallel to e_idx (initialized at run start).
        self.s_val = np.zeros(self.e_idx.size, dtype=np.float64)
        #: Master state array (aliases the engine's VertexStates values).
        self.v_val = np.zeros(graph.num_vertices, dtype=np.float64)

        self._partition_of_path = np.empty(
            path_set.num_paths, dtype=np.int64
        )
        for partition in partitions:
            for path_id in partition.path_ids:
                self._partition_of_path[path_id] = partition.partition_id
            partition.num_edges = sum(
                path_set[p].num_edges for p in partition.path_ids
            )
            partition.num_vertex_slots = sum(
                path_set[p].num_vertices for p in partition.path_ids
            )

    @property
    def num_partitions(self) -> int:
        return len(self.partitions)

    def partition_of_path(self, path_id: int) -> int:
        return int(self._partition_of_path[path_id])

    def path_slice(self, path_id: int) -> Tuple[int, int]:
        """``(start, end)`` of the path's vertices in ``e_idx``."""
        slot = int(self.slot_of_path[path_id])
        return int(self.ptable[slot]), int(self.ptable[slot + 1])

    def path_vertices(self, path_id: int) -> np.ndarray:
        start, end = self.path_slice(path_id)
        return self.e_idx[start:end]

    def partition_bytes(self, partition_id: int) -> int:
        return self.partitions[partition_id].nbytes

    def total_bytes(self) -> int:
        return sum(p.nbytes for p in self.partitions)

    def validate(self) -> None:
        """Check the layout is consistent with the path set."""
        if self.ptable.size != self.path_set.num_paths + 1:
            raise StorageError("PTable must have one offset per path + 1")
        for path in self.path_set:
            stored = self.path_vertices(path.path_id)
            if not np.array_equal(
                stored, np.asarray(path.vertices, dtype=np.int64)
            ):
                raise StorageError(
                    f"path {path.path_id} stored out of order"
                )


def build_partitions(
    path_set: PathSet,
    dag: DependencyDAG,
    target_edges_per_partition: int = 2048,
) -> List[Partition]:
    """Group paths into partitions per Section 3.2.1's placement rules.

    Paths are laid out in DAG layer order; within a layer, by SCC-vertex
    (keeping mutually-dependent paths together); within an SCC-vertex,
    hot paths first (so hot paths share partitions and SMX residency).
    The ordered list is then cut into chunks of roughly
    ``target_edges_per_partition`` edges, never splitting inside an
    SCC-vertex unless the SCC-vertex alone exceeds the target (the giant
    SCC-vertex routinely does and spans several partitions).
    """
    if target_edges_per_partition < 1:
        raise StorageError("target_edges_per_partition must be >= 1")

    ordered_paths: List[int] = []
    scc_boundaries: List[int] = []  # indices into ordered_paths
    layer_boundaries: List[int] = []  # indices where a DAG layer ends
    for layer_members in scc_vertices_by_layer(dag):
        for scc in layer_members:
            member_paths = sorted(
                dag.members[scc],
                key=lambda p: (not path_set.is_hot(p), p),
            )
            ordered_paths.extend(member_paths)
            scc_boundaries.append(len(ordered_paths))
        layer_boundaries.append(len(ordered_paths))

    partitions: List[Partition] = []
    current: List[int] = []
    current_edges = 0

    def flush() -> None:
        nonlocal current, current_edges
        if not current:
            return
        layers = [dag.layer_of_path(p) for p in current]
        sccs = sorted({int(dag.scc_of_path[p]) for p in current})
        partitions.append(
            Partition(
                partition_id=len(partitions),
                path_ids=current,
                layer=min(layers),
                scc_vertices=tuple(sccs),
            )
        )
        current = []
        current_edges = 0

    boundary_set = set(scc_boundaries)
    layer_set = set(layer_boundaries)
    for idx, path_id in enumerate(ordered_paths):
        current.append(path_id)
        current_edges += path_set[path_id].num_edges
        at_scc_boundary = (idx + 1) in boundary_set
        if (idx + 1) in layer_set:
            # Never mix DAG layers in one partition: same-layer
            # SCC-vertices are mutually independent, but a cross-layer
            # partition welds unrelated layers into one mutually-dependent
            # dispatch group and destroys the topological gating.
            flush()
        elif current_edges >= target_edges_per_partition and at_scc_boundary:
            flush()
        elif current_edges >= 2 * target_edges_per_partition:
            # The SCC-vertex alone exceeds the target: split it.
            flush()
    flush()

    if not partitions and path_set.num_paths:
        raise StorageError("partitioning produced no partitions")
    return partitions
