"""Path-based graph partitioning — Algorithm 1 of the paper.

The directed graph is decomposed into disjoint hot/cold paths by a
bounded-depth, degree-greedy DFS:

- each worker repeatedly takes a vertex of its shard with unvisited local
  out-edges as the root and walks unvisited edges depth-first, appending
  them to the current path;
- the traversal depth is bounded by ``D_MAX`` (default 16, the paper's
  value) so path lengths are not too skewed;
- among unvisited successors the **highest-degree** one is chosen first, so
  edges between high-degree vertices line up in the same *hot* path;
- a path ends when the walk reaches an already-visited vertex, an exhausted
  vertex, a non-local vertex, or the depth bound.

A second pass merges short paths head-to-tail to raise the average path
length, honoring the paper's constraint: if both the in-degree and the
out-degree of the junction vertex exceed one, the merge is allowed only
when the junction is not an *inner* vertex of another path (keeping paths
intersecting at endpoints only, so fewer paths depend on each other).

``n_workers`` shards the vertex set into contiguous ranges, each worker
owning its vertices' out-edges — the paper's "each thread only divides its
local subgraph" parallelization. The result is deterministic for a given
``(graph, n_workers)``.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import PartitioningError
from repro.graph.digraph import DiGraphCSR
from repro.core.paths import Path, PathSet, renumber

#: The paper's default traversal-depth bound.
D_MAX = 16

#: Modeled CPU cost per edge for preprocessing-time accounting (Fig. 8/17):
#: a tuned CPU path-partitioner touches each edge a small constant number
#: of times; 20 ns/edge per thread is in line with the paper's seconds-level
#: preprocessing on billion-edge graphs.
CPU_SECONDS_PER_EDGE = 2e-8


def decompose_into_paths(
    graph: DiGraphCSR,
    d_max: int = D_MAX,
    n_workers: int = 1,
    merge_short_paths: bool = True,
    hot_fraction: float = 0.1,
    degree_greedy: bool = True,
    scc_aware: bool = True,
) -> PathSet:
    """Run Algorithm 1 (+ merging + hot classification) on ``graph``.

    Parameters
    ----------
    d_max:
        Traversal-depth bound (paper default 16).
    n_workers:
        CPU shards; each worker owns the out-edges of a contiguous vertex
        range (Fig. 17 sweeps this).
    merge_short_paths:
        Enable the head-to-tail merge pass.
    hot_fraction:
        Fraction of paths (by average vertex degree) classified hot.
    degree_greedy:
        Visit highest-degree successors first (disable for the hot-path
        ablation benchmark).
    scc_aware:
        End every path at SCC-region boundaries of the vertex graph. Two
        long paths interleaving inside an *acyclic* region would otherwise
        read and write each other's vertices mutually, welding the path
        dependency graph into one giant SCC-vertex and erasing the
        topological order that Observation 2's one-update savings rest on.
        Confining each path to one vertex-SCC region keeps path-level
        cycles inside vertex-level cycles, matching the paper's reported
        giant-SCC-vertex range (3.5%-89% of paths, tracking the graph's
        own SCC structure).
    """
    if d_max < 1:
        raise PartitioningError("d_max must be >= 1")
    if n_workers < 1:
        raise PartitioningError("n_workers must be >= 1")
    if not 0.0 <= hot_fraction <= 1.0:
        raise PartitioningError("hot_fraction must be in [0, 1]")

    region = _walk_regions(graph, d_max) if scc_aware else None

    segments: List[List[int]] = []  # edge-id lists
    n = graph.num_vertices
    bounds = np.linspace(0, n, n_workers + 1).astype(np.int64)
    # Stamp 0 means "never visited"; each traversal uses a fresh stamp, and
    # each shard gets a disjoint stamp range (shards touch disjoint vertex
    # ranges anyway, but disjoint stamps keep the invariant obvious).
    visit_stamp = np.zeros(n, dtype=np.int64)
    visited_edge = np.zeros(graph.num_edges, dtype=bool)

    stamp_base = 0
    for w in range(n_workers):
        lo, hi = int(bounds[w]), int(bounds[w + 1])
        stamp_base = _decompose_shard(
            graph,
            lo,
            hi,
            d_max,
            visit_stamp,
            visited_edge,
            segments,
            degree_greedy,
            stamp_base,
            region,
        )

    if int(visited_edge.sum()) != graph.num_edges:
        raise PartitioningError("decomposition failed to cover all edges")

    vertex_paths = [_segment_vertices(graph, seg) for seg in segments]
    if merge_short_paths:
        vertex_paths, segments = _merge_head_to_tail(
            graph, vertex_paths, segments, region, max_edges=d_max
        )

    paths = renumber(
        [
            Path(path_id=0, vertices=tuple(vs), edge_ids=tuple(seg))
            for vs, seg in zip(vertex_paths, segments)
        ]
    )
    hot_ids = _classify_hot(graph, paths, hot_fraction)
    return PathSet(
        graph=graph, paths=paths, hot_path_ids=hot_ids, d_max=d_max
    )


def modeled_preprocess_seconds(
    graph: DiGraphCSR, n_workers: int, dependency_vertices: int = 0
) -> float:
    """Model CPU preprocessing time for Fig. 8 / Fig. 17.

    One full traversal of the original graph (sharded over workers) plus
    one traversal of the much smaller path dependency graph, per the
    paper's cost argument ("traversing the original graph for exactly once
    ... and the dependency graph once").
    """
    per_worker_edges = graph.num_edges / max(n_workers, 1)
    # One pass over the dependency graph (its vertex count is a small
    # fraction of the original graph's — the paper reports 3.4%-9.1%).
    dependency_cost = dependency_vertices / max(n_workers, 1)
    return CPU_SECONDS_PER_EDGE * (per_worker_edges + dependency_cost)


def _walk_regions(graph: DiGraphCSR, d_max: int) -> np.ndarray:
    """Region labels that bound path-level dependency cycles.

    Two long paths interleaving through a region can read and write each
    other's vertices mutually, welding the path dependency graph into one
    giant SCC-vertex regardless of the underlying graph's structure. To
    bound that, walks never cross region boundaries, where a region is:

    - one multi-vertex SCC of the vertex graph (its cycles weld paths
      anyway — confining them there is free), or
    - a *band* of consecutive condensation layers of singleton SCCs.
      Within a band, paths still grow up to the band width; across bands
      all dependencies follow the layer order, so the path DAG sketch
      keeps at least ``layers / band`` topological levels.

    The band width is half the traversal depth bound: deep enough for the
    paper's path lengths, narrow enough to retain layered structure.
    """
    from repro.graph.scc import condensation
    from repro.graph.traversal import dag_layers

    cond = condensation(graph)
    layers = dag_layers(cond.dag)
    band_width = max(2, d_max // 2)
    sizes = cond.component_sizes()
    num_components = cond.num_components
    region = np.empty(graph.num_vertices, dtype=np.int64)
    # Multi-vertex SCCs keep their own region ids; singleton layers band
    # together. Offset bands past the component-id space so ids never
    # collide.
    for comp in range(num_components):
        members = cond.members[comp]
        if sizes[comp] > 1:
            label = comp
        else:
            label = num_components + int(layers[comp]) // band_width
        for v in members:
            region[v] = label
    return region


# ----------------------------------------------------------------------
# Algorithm 1 core
# ----------------------------------------------------------------------
def _decompose_shard(
    graph: DiGraphCSR,
    lo: int,
    hi: int,
    d_max: int,
    visit_stamp: np.ndarray,
    visited_edge: np.ndarray,
    segments: List[List[int]],
    degree_greedy: bool,
    stamp_base: int,
    region,
) -> int:
    """Decompose the out-edges owned by vertices ``[lo, hi)``.

    Returns the last traversal stamp used (callers pass it on as the next
    shard's ``stamp_base``).

    Vertex *visited* marks are **per traversal** (one root invocation of
    GRAPHP): they only prevent a single traversal from looping, so later
    traversals may pass through the same vertices along different
    (still edge-disjoint) paths. This is what lets walks keep consuming
    unvisited edges and is required to reach the paper's reported average
    path lengths (3.5-10.9) — with a single global visited mark every
    edge into an already-seen vertex would become its own length-1 path.
    Implemented with traversal-id stamps so no clearing is needed.
    """
    degrees = graph.degree()
    # Roots in descending degree order: hot vertices start hot paths.
    shard = np.arange(lo, hi, dtype=np.int64)
    if degree_greedy:
        shard = shard[np.argsort(-degrees[shard], kind="stable")]

    current: List[int] = []
    # The active traversal's stamp, readable by the successor sort (walks
    # prefer successors that are not already on the current path).
    current_stamp = [0]

    def new_path() -> None:
        if current:
            segments.append(current.copy())
            current.clear()

    def sorted_successor_edges(v: int) -> List[Tuple[int, int]]:
        """Unvisited local out-edges of ``v`` as (dst, edge_id), hottest
        destination first (Algorithm 1 lines 4-5).

        Successors that still have unvisited out-edges of their own rank
        before exhausted ones: hub vertices attract every walk and drain
        their out-edges quickly, so without this dead-end avoidance most
        walks funnel into a drained hub after one hop and the average
        path length collapses (far below the paper's 3.5-10.9).
        """
        pairs = [
            (int(graph.indices[eid]), eid)
            for eid in graph.out_edge_ids(v)
            if not visited_edge[eid]
        ]
        if degree_greedy:
            pairs.sort(
                key=lambda p: (
                    visit_stamp[p[0]] == current_stamp[0],
                    not has_unvisited_local_edges(p[0]),
                    -degrees[p[0]],
                    p[0],
                )
            )
        else:
            pairs.sort(
                key=lambda p: (
                    visit_stamp[p[0]] == current_stamp[0],
                    not has_unvisited_local_edges(p[0]),
                    p[0],
                )
            )
        return pairs

    def has_unvisited_local_edges(v: int) -> bool:
        return any(
            not visited_edge[eid] for eid in graph.out_edge_ids(v)
        )

    def traverse(root: int, stamp: int) -> None:
        """Grow one path from ``root``: GRAPHP(root, p, 0).

        The walk follows the hottest unvisited out-edge (lines 4-9),
        bounded by ``d_max`` (line 3). The visited marks (this traversal's
        ``stamp``) only stop the *current path* from looping: a walk that
        reaches an on-path vertex takes that closing edge and ends there
        (lines 12-14 — the junction becomes the path's tail, possibly
        closing a cycle). Walks also end at non-local vertices (line 4's
        local-subgraph restriction) and at vertices with no unvisited
        out-edges.
        """
        visit_stamp[root] = stamp
        current_stamp[0] = stamp
        v = root
        depth = 0
        while depth < d_max:
            candidates = sorted_successor_edges(v)
            if not candidates:
                break
            u, eid = candidates[0]
            visited_edge[eid] = True
            current.append(eid)
            if visit_stamp[u] == stamp or not lo <= u < hi:
                break  # path ends at an on-path or non-local vertex
            if region is not None and region[u] != region[v]:
                break  # SCC-region boundary: the crossing edge ends the path
            visit_stamp[u] = stamp
            v = u
            depth += 1
        new_path()

    stamp = stamp_base
    for root in shard:
        root = int(root)
        while has_unvisited_local_edges(root):
            stamp += 1
            traverse(root, stamp)
    return stamp


def _segment_vertices(graph: DiGraphCSR, segment: Sequence[int]) -> List[int]:
    """Vertex sequence of a connected edge-id segment."""
    if not segment:
        raise PartitioningError("empty path segment")
    first_src, first_dst = graph.edge_endpoints(int(segment[0]))
    vertices = [first_src, first_dst]
    for eid in segment[1:]:
        src, dst = graph.edge_endpoints(int(eid))
        if src != vertices[-1]:
            raise PartitioningError(
                f"segment not connected: edge {eid} starts at {src}, "
                f"previous vertex is {vertices[-1]}"
            )
        vertices.append(dst)
    return vertices


# ----------------------------------------------------------------------
# head-to-tail merging
# ----------------------------------------------------------------------
def _merge_head_to_tail(
    graph: DiGraphCSR,
    vertex_paths: List[List[int]],
    segments: List[List[int]],
    region=None,
    max_edges: Optional[int] = None,
) -> Tuple[List[List[int]], List[List[int]]]:
    """Merge short paths head-to-tail for a larger average length.

    Maintains the paper's constraint: a junction vertex with in-degree > 1
    and out-degree > 1 may only join two paths if it is not an inner
    vertex of any (other) path. ``max_edges`` caps merged chains so the
    ``D_MAX`` depth bound survives merging (path lengths stay unskewed —
    the bound's whole point — and the invariant stays machine-checkable).
    """
    k = len(vertex_paths)
    inner_count: Dict[int, int] = defaultdict(int)
    for vs in vertex_paths:
        for v in vs[1:-1]:
            inner_count[v] += 1

    by_head: Dict[int, List[int]] = defaultdict(list)
    for i, vs in enumerate(vertex_paths):
        by_head[vs[0]].append(i)
    consumed = [False] * k

    in_deg = graph.in_degree()
    out_deg = graph.out_degree()

    def may_join(junction: int) -> bool:
        if in_deg[junction] > 1 and out_deg[junction] > 1:
            return inner_count[junction] == 0
        return True

    def same_region(a: List[int], b: List[int]) -> bool:
        # SCC-aware mode: never re-join what the walk kept apart — a
        # merge across region boundaries would recreate the cross-region
        # dependency cycles the decomposition avoided.
        if region is None:
            return True
        return region[a[0]] == region[b[-2 if len(b) > 1 else 0]]

    merged_vertices: List[List[int]] = []
    merged_segments: List[List[int]] = []
    # Shorter paths first so fragments chain up before long paths lock
    # junction vertices as inner vertices.
    order = sorted(range(k), key=lambda i: len(segments[i]))
    for start in order:
        if consumed[start]:
            continue
        consumed[start] = True
        chain_vs = list(vertex_paths[start])
        chain_seg = list(segments[start])
        while True:
            tail = chain_vs[-1]
            candidates = by_head.get(tail, ())
            nxt = None
            for j in candidates:
                if (
                    not consumed[j]
                    and may_join(tail)
                    and same_region(vertex_paths[j], chain_vs)
                    and (
                        max_edges is None
                        or len(chain_seg) + len(segments[j]) <= max_edges
                    )
                ):
                    nxt = j
                    break
            if nxt is None:
                break
            consumed[nxt] = True
            # The junction becomes an inner vertex of the merged path.
            inner_count[tail] += 1
            chain_vs.extend(vertex_paths[nxt][1:])
            chain_seg.extend(segments[nxt])
        merged_vertices.append(chain_vs)
        merged_segments.append(chain_seg)
    return merged_vertices, merged_segments


# ----------------------------------------------------------------------
# hot/cold classification
# ----------------------------------------------------------------------
def _classify_hot(
    graph: DiGraphCSR, paths: List[Path], hot_fraction: float
) -> frozenset:
    """Mark the top ``hot_fraction`` of paths by average vertex degree."""
    if not paths or hot_fraction == 0.0:
        return frozenset()
    avg_degrees = np.asarray([p.average_degree(graph) for p in paths])
    count = max(1, int(round(hot_fraction * len(paths))))
    hot = np.argsort(-avg_degrees, kind="stable")[:count]
    return frozenset(int(i) for i in hot)
