"""Reproduction of DiGraph (ASPLOS 2019): path-based iterative directed
graph processing on (simulated) multiple GPUs.

Quick start::

    from repro import DiGraphEngine, datasets, make_program

    graph = datasets.load("cnr")
    program = make_program("pagerank", graph)
    result = DiGraphEngine().run(graph, program, graph_name="cnr")
    print(result.summary())

Public surface:

- :mod:`repro.graph` — directed-graph substrate (CSR graphs, generators,
  the six paper-dataset stand-ins, SCC machinery, metrics);
- :mod:`repro.gpu` — the simulated multi-GPU machine;
- :mod:`repro.model` — the Gather-Apply-Scatter programming model;
- :mod:`repro.algorithms` — PageRank, adsorption, SSSP, k-core (+ BFS,
  WCC);
- :mod:`repro.core` — DiGraph itself (paths, dependency DAG, storage,
  scheduling, dispatch, engine, ablation variants);
- :mod:`repro.baselines` — Gunrock-like and Groute-like comparators and
  the sequential topological reference;
- :mod:`repro.bench` — result records and the per-figure experiment
  harness.
"""

from repro.algorithms import make_program
from repro.baselines import AsyncEngine, BulkSyncEngine
from repro.bench.results import ExecutionResult
from repro.core import DiGraphEngine, digraph_t, digraph_w
from repro.core.engine import DiGraphConfig
from repro.gpu.config import GPUSpec, MachineSpec
from repro.graph import DiGraphCSR, from_edges
from repro.graph import datasets

__version__ = "1.0.0"

__all__ = [
    "AsyncEngine",
    "BulkSyncEngine",
    "DiGraphCSR",
    "DiGraphConfig",
    "DiGraphEngine",
    "ExecutionResult",
    "GPUSpec",
    "MachineSpec",
    "datasets",
    "digraph_t",
    "digraph_w",
    "from_edges",
    "make_program",
    "__version__",
]
