"""Simulated multi-GPU machine.

The paper's testbed is a host with four NVIDIA TESLA K80 GPUs connected
over PCIe, programmed with CUDA and NCCL. This package substitutes a
deterministic simulator with the same *shape*: a :class:`Machine` owns
GPUs; each :class:`GPU` owns SMXs with warps of lock-step threads, a global
memory with finite capacity, and shared memory per SMX; GPUs talk to each
other and the host over a ring :class:`Interconnect` with bandwidth/latency
costs; Hyper-Q :class:`StreamPool` models copy/compute overlap.

Engines drive the simulator with *work* (edge-steps per thread) and
*transfers* (bytes between endpoints); the simulator returns elapsed model
time and accumulates the counters every figure of the evaluation reads
(traffic volume, loaded-vs-used data, busy/idle thread cycles).
"""

from repro.gpu.config import GPUSpec, MachineSpec
from repro.gpu.machine import GPU, Machine
from repro.gpu.stats import MachineStats

__all__ = ["GPUSpec", "MachineSpec", "Machine", "GPU", "MachineStats"]
