"""PCIe ring interconnect with NCCL-style batched transfers.

The paper (Section 3.2) uses NCCL to build a ring topology over the PCIe
bus; GPU<->GPU messages traverse ring hops, and host<->GPU transfers cross
one link. Costs are ``latency + bytes / bandwidth`` per hop; batching
amortizes the latency term, which is why the paper sends replica-update
messages "in batches" per destination partition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional, Union

from repro.errors import (
    PermanentInterconnectFault,
    SimulationError,
    TransientInterconnectFault,
)
from repro.gpu.config import MachineSpec
from repro.gpu.stats import MachineStats

if TYPE_CHECKING:  # pragma: no cover - annotation only, avoids a cycle
    from repro.faults.recovery import RecoveryPolicy

#: Endpoint constant for the host.
HOST = "host"

Endpoint = Union[str, int]


@dataclass
class TransferRecord:
    """One completed transfer, for inspection in tests."""

    src: Endpoint
    dst: Endpoint
    nbytes: int
    hops: int
    time_s: float


#: A fault injector inspects (src, dst, nbytes) before each transfer. It
#: may raise :class:`~repro.errors.InterconnectFault` to fail the
#: transfer, or return a non-negative delay factor (1.0 = nominal) to
#: model link degradation. Returning None means nominal behavior.
#: Structured injectors (:class:`repro.faults.FaultInjector`) expose the
#: same contract through an ``on_transfer`` method instead; plain
#: callables remain supported.
FaultInjector = Callable[[Endpoint, Endpoint, int], Optional[float]]


class Interconnect:
    """Ring of ``num_gpus`` GPUs, each also linked to the host.

    All traffic is recorded into the shared :class:`MachineStats`:
    host->GPU as ``h2d``, GPU->host as ``d2h``, GPU->GPU as ``p2p``
    (counted once per ring hop, matching measured bus traffic).

    A :data:`FaultInjector` can degrade or fail individual transfers —
    the robustness tests drive engines through flaky links and assert
    either clean failure or unchanged results with inflated time.
    """

    def __init__(
        self,
        spec: MachineSpec,
        stats: MachineStats,
        fault_injector: Optional[FaultInjector] = None,
        recovery: Optional["RecoveryPolicy"] = None,
    ) -> None:
        self._spec = spec
        self._stats = stats
        self.fault_injector = fault_injector
        #: When set, transient faults are retried with exponential
        #: backoff up to ``recovery.max_transfer_retries`` before
        #: escalating to :class:`PermanentInterconnectFault`. When None,
        #: faults surface raw.
        self.recovery = recovery
        self.faults_injected = 0
        self.records: list[TransferRecord] = []

    def _consult_injector(
        self, src: Endpoint, dst: Endpoint, nbytes: int
    ) -> float:
        """Ask the injector about one attempt; returns the delay factor.

        May raise an :class:`~repro.errors.InterconnectFault` (the
        injector failing the attempt). Supports both structured
        injectors (``on_transfer`` method) and legacy plain callables.
        """
        injector = self.fault_injector
        if injector is None:
            return 1.0
        if hasattr(injector, "on_transfer"):
            outcome = injector.on_transfer(src, dst, nbytes)
        else:
            outcome = injector(src, dst, nbytes)
        if outcome is None:
            return 1.0
        if outcome < 0:
            raise SimulationError(
                "fault injector returned a negative delay factor"
            )
        self.faults_injected += 1
        return outcome

    def _check_endpoint(self, endpoint: Endpoint) -> None:
        if endpoint == HOST:
            return
        if isinstance(endpoint, int) and 0 <= endpoint < self._spec.num_gpus:
            return
        raise SimulationError(f"invalid endpoint {endpoint!r}")

    def ring_hops(self, src: int, dst: int) -> int:
        """Ring hops between two GPUs (unidirectional NCCL ring)."""
        self._check_endpoint(src)
        self._check_endpoint(dst)
        if src == dst:
            return 0
        return (dst - src) % self._spec.num_gpus

    def transfer_time(self, nbytes: int, hops: int = 1) -> float:
        """Model time for one transfer across ``hops`` links."""
        if nbytes < 0:
            raise SimulationError("nbytes must be non-negative")
        per_hop = (
            self._spec.pcie_latency_s
            + nbytes / self._spec.pcie_bandwidth_bytes_per_s
        )
        return per_hop * max(hops, 0)

    def transfer(self, src: Endpoint, dst: Endpoint, nbytes: int) -> float:
        """Perform a transfer; records traffic and returns the model time.

        With a :attr:`recovery` policy, transient injected faults are
        retried in place: each failed attempt charges its wasted wire
        time plus an exponential backoff wait to the recovery ledgers,
        and the returned model time covers every attempt. Retries are
        bounded — exhaustion escalates to
        :class:`PermanentInterconnectFault`. Fig.-12 traffic counters
        record the payload once (resent bytes land in
        ``retransferred_bytes`` instead).
        """
        self._check_endpoint(src)
        self._check_endpoint(dst)
        if nbytes < 0:
            raise SimulationError("nbytes must be non-negative")
        if src == dst:
            return 0.0
        if src == HOST:
            hops = 1
        elif dst == HOST:
            hops = 1
        else:
            hops = self.ring_hops(int(src), int(dst))
        total_time = 0.0
        failures = 0
        while True:
            try:
                delay_factor = self._consult_injector(src, dst, nbytes)
            except TransientInterconnectFault:
                if self.recovery is None:
                    raise
                failures += 1
                wasted = self.transfer_time(nbytes, hops)
                if failures > self.recovery.max_transfer_retries:
                    self._stats.recovery_time_s += wasted
                    total_time += wasted
                    raise PermanentInterconnectFault(
                        f"transfer {src!r}->{dst!r} still failing after "
                        f"{failures} attempts",
                        src=src,
                        dst=dst,
                    )
                backoff = self.recovery.backoff_s(failures)
                self._stats.transfer_retries += 1
                self._stats.retransferred_bytes += nbytes
                self._stats.backoff_time_s += backoff
                self._stats.recovery_time_s += wasted + backoff
                total_time += wasted + backoff
                continue
            break
        if src == HOST:
            self._stats.h2d_bytes += nbytes
        elif dst == HOST:
            self._stats.d2h_bytes += nbytes
        else:
            self._stats.p2p_bytes += nbytes * hops
        total_time += self.transfer_time(nbytes, hops) * delay_factor
        self.records.append(
            TransferRecord(src, dst, nbytes, hops, total_time)
        )
        return total_time

    def broadcast_from_host(self, nbytes_per_gpu: int) -> float:
        """Host sends ``nbytes_per_gpu`` to every GPU; returns total time."""
        total = 0.0
        for gpu in range(self._spec.num_gpus):
            total += self.transfer(HOST, gpu, nbytes_per_gpu)
        return total

    def batched_transfer(
        self, src: Endpoint, dst: Endpoint, nbytes: int, batch_bytes: int
    ) -> float:
        """Transfer in fixed-size batches (one latency charge per batch)."""
        if batch_bytes <= 0:
            raise SimulationError("batch_bytes must be positive")
        total = 0.0
        remaining = nbytes
        while remaining > 0:
            chunk = min(batch_bytes, remaining)
            total += self.transfer(src, dst, chunk)
            remaining -= chunk
        return total

    def spill_transfer(
        self, src: Endpoint, dst: Endpoint, nbytes: int, batch_bytes: int
    ) -> float:
        """Host<->GPU checkpoint spill over the PCIe link.

        Same per-hop cost model and Fig.-12 traffic accounting as
        :meth:`batched_transfer`, but routed around the fault injector:
        checkpoint DMA rides a reserved channel whose failures are out of
        the modeled fault surface (a half-taken checkpoint would leave
        nothing to roll back to), and consuming injector indices here
        would shift every planned fault whenever the checkpoint interval
        changes, breaking seed-for-seed comparability across intervals.
        """
        self._check_endpoint(src)
        self._check_endpoint(dst)
        if batch_bytes <= 0:
            raise SimulationError("batch_bytes must be positive")
        if nbytes < 0:
            raise SimulationError("nbytes must be non-negative")
        if src != HOST and dst != HOST:
            raise SimulationError("checkpoint spill must touch the host")
        total = 0.0
        remaining = nbytes
        while remaining > 0:
            chunk = min(batch_bytes, remaining)
            total += self.transfer_time(chunk, hops=1)
            remaining -= chunk
        if src == HOST:
            self._stats.h2d_bytes += nbytes
        else:
            self._stats.d2h_bytes += nbytes
        self.records.append(TransferRecord(src, dst, nbytes, 1, total))
        return total
