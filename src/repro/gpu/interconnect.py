"""PCIe ring interconnect with NCCL-style batched transfers.

The paper (Section 3.2) uses NCCL to build a ring topology over the PCIe
bus; GPU<->GPU messages traverse ring hops, and host<->GPU transfers cross
one link. Costs are ``latency + bytes / bandwidth`` per hop; batching
amortizes the latency term, which is why the paper sends replica-update
messages "in batches" per destination partition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Union

from repro.errors import SimulationError
from repro.gpu.config import MachineSpec
from repro.gpu.stats import MachineStats

#: Endpoint constant for the host.
HOST = "host"

Endpoint = Union[str, int]


@dataclass
class TransferRecord:
    """One completed transfer, for inspection in tests."""

    src: Endpoint
    dst: Endpoint
    nbytes: int
    hops: int
    time_s: float


#: A fault injector inspects (src, dst, nbytes) before each transfer. It
#: may raise :class:`~repro.errors.InterconnectFault` to fail the
#: transfer, or return a non-negative delay factor (1.0 = nominal) to
#: model link degradation. Returning None means nominal behavior.
FaultInjector = Callable[[Endpoint, Endpoint, int], Optional[float]]


class Interconnect:
    """Ring of ``num_gpus`` GPUs, each also linked to the host.

    All traffic is recorded into the shared :class:`MachineStats`:
    host->GPU as ``h2d``, GPU->host as ``d2h``, GPU->GPU as ``p2p``
    (counted once per ring hop, matching measured bus traffic).

    A :data:`FaultInjector` can degrade or fail individual transfers —
    the robustness tests drive engines through flaky links and assert
    either clean failure or unchanged results with inflated time.
    """

    def __init__(
        self,
        spec: MachineSpec,
        stats: MachineStats,
        fault_injector: Optional[FaultInjector] = None,
    ) -> None:
        self._spec = spec
        self._stats = stats
        self.fault_injector = fault_injector
        self.faults_injected = 0
        self.records: list[TransferRecord] = []

    def _check_endpoint(self, endpoint: Endpoint) -> None:
        if endpoint == HOST:
            return
        if isinstance(endpoint, int) and 0 <= endpoint < self._spec.num_gpus:
            return
        raise SimulationError(f"invalid endpoint {endpoint!r}")

    def ring_hops(self, src: int, dst: int) -> int:
        """Ring hops between two GPUs (unidirectional NCCL ring)."""
        self._check_endpoint(src)
        self._check_endpoint(dst)
        if src == dst:
            return 0
        return (dst - src) % self._spec.num_gpus

    def transfer_time(self, nbytes: int, hops: int = 1) -> float:
        """Model time for one transfer across ``hops`` links."""
        if nbytes < 0:
            raise SimulationError("nbytes must be non-negative")
        per_hop = (
            self._spec.pcie_latency_s
            + nbytes / self._spec.pcie_bandwidth_bytes_per_s
        )
        return per_hop * max(hops, 0)

    def transfer(self, src: Endpoint, dst: Endpoint, nbytes: int) -> float:
        """Perform a transfer; records traffic and returns the model time."""
        self._check_endpoint(src)
        self._check_endpoint(dst)
        if nbytes < 0:
            raise SimulationError("nbytes must be non-negative")
        if src == dst:
            return 0.0
        delay_factor = 1.0
        if self.fault_injector is not None:
            outcome = self.fault_injector(src, dst, nbytes)
            if outcome is not None:
                if outcome < 0:
                    raise SimulationError(
                        "fault injector returned a negative delay factor"
                    )
                delay_factor = outcome
                self.faults_injected += 1
        if src == HOST:
            hops = 1
            self._stats.h2d_bytes += nbytes
        elif dst == HOST:
            hops = 1
            self._stats.d2h_bytes += nbytes
        else:
            hops = self.ring_hops(int(src), int(dst))
            self._stats.p2p_bytes += nbytes * hops
        time_s = self.transfer_time(nbytes, hops) * delay_factor
        self.records.append(TransferRecord(src, dst, nbytes, hops, time_s))
        return time_s

    def broadcast_from_host(self, nbytes_per_gpu: int) -> float:
        """Host sends ``nbytes_per_gpu`` to every GPU; returns total time."""
        total = 0.0
        for gpu in range(self._spec.num_gpus):
            total += self.transfer(HOST, gpu, nbytes_per_gpu)
        return total

    def batched_transfer(
        self, src: Endpoint, dst: Endpoint, nbytes: int, batch_bytes: int
    ) -> float:
        """Transfer in fixed-size batches (one latency charge per batch)."""
        if batch_bytes <= 0:
            raise SimulationError("batch_bytes must be positive")
        total = 0.0
        remaining = nbytes
        while remaining > 0:
            chunk = min(batch_bytes, remaining)
            total += self.transfer(src, dst, chunk)
            remaining -= chunk
        return total
