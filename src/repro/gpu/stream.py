"""Hyper-Q stream model: overlap of memory copies with kernel execution.

Section 3.2.2: "To overlap memory copy and kernel execution, multiple
streams are created for the transfer of paths using Hyper-Q of GPU", with
``N_m = M_G / S_b`` streams, and successor paths are prefetched while their
predecessors run. We model the effect, not the mechanics: given a compute
interval and the transfers issued alongside it, the *unhidden* transfer
time is ``max(0, transfer_time - compute_time)`` when more than one stream
exists, and the full serial sum with a single stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import SimulationError


@dataclass
class OverlapResult:
    """Outcome of overlapping transfers with a compute interval."""

    compute_time_s: float
    transfer_time_s: float
    unhidden_transfer_s: float

    @property
    def elapsed_s(self) -> float:
        """Wall model time of the overlapped interval."""
        return self.compute_time_s + self.unhidden_transfer_s


class StreamPool:
    """A pool of ``num_streams`` streams shared by one GPU.

    With one stream, copies and kernels serialize; with more, copies hide
    behind compute up to the compute interval's length. Transfers queued
    with :meth:`queue_transfer` are resolved against the next
    :meth:`overlap_with_compute` call.
    """

    def __init__(self, num_streams: int) -> None:
        if num_streams < 1:
            raise SimulationError("num_streams must be >= 1")
        self._num_streams = num_streams
        self._pending: List[float] = []

    @property
    def num_streams(self) -> int:
        return self._num_streams

    @property
    def pending_transfer_s(self) -> float:
        """Transfer time queued but not yet resolved."""
        return sum(self._pending)

    def queue_transfer(self, time_s: float) -> None:
        """Queue a transfer to be overlapped with upcoming compute."""
        if time_s < 0:
            raise SimulationError("transfer time must be non-negative")
        self._pending.append(time_s)

    def overlap_with_compute(self, compute_time_s: float) -> OverlapResult:
        """Resolve pending transfers against a compute interval.

        Returns the unhidden remainder; the pending queue is drained.
        """
        if compute_time_s < 0:
            raise SimulationError("compute time must be non-negative")
        transfer = self.pending_transfer_s
        self._pending.clear()
        if self._num_streams <= 1:
            unhidden = transfer
        else:
            unhidden = max(0.0, transfer - compute_time_s)
        return OverlapResult(
            compute_time_s=compute_time_s,
            transfer_time_s=transfer,
            unhidden_transfer_s=unhidden,
        )

    def flush(self) -> float:
        """Drain pending transfers with no compute to hide them behind."""
        transfer = self.pending_transfer_s
        self._pending.clear()
        return transfer

    def drop_pending(self) -> float:
        """Discard queued transfers without charging them.

        Used when the owning GPU dies: in-flight prefetches are lost with
        the device and must not surface later as phantom transfer time.
        Returns the dropped model seconds (for recovery accounting).
        """
        dropped = self.pending_transfer_s
        self._pending.clear()
        return dropped
