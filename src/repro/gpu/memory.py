"""Global / shared memory accounting with explicit eviction.

Section 3.2.2: path results are buffered in GPU global memory; when
capacity runs out, "the buffered results of the paths represented by a
SCC-vertex are swapped out of a GPU when this SCC-vertex has the least
number of active direct successors on this GPU". The *policy* lives in the
dispatcher (which knows successor activity); this module provides the
*mechanism*: bounded allocation keyed by region id, explicit eviction, and
residency queries. Shared memory per SMX is tracked the same way for proxy
vertices.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.errors import MemoryCapacityError, SimulationError


class BoundedMemory:
    """A capacity-limited memory holding named regions.

    Parameters
    ----------
    capacity_bytes:
        Total capacity.
    name:
        Human-readable name used in error messages
        (e.g. ``"gpu0.global"``).
    """

    def __init__(self, capacity_bytes: int, name: str = "memory") -> None:
        if capacity_bytes <= 0:
            raise SimulationError("capacity must be positive")
        self._capacity = capacity_bytes
        self._name = name
        self._regions: Dict[int, int] = {}
        self._used = 0

    @property
    def capacity_bytes(self) -> int:
        return self._capacity

    @property
    def used_bytes(self) -> int:
        return self._used

    @property
    def free_bytes(self) -> int:
        return self._capacity - self._used

    def is_resident(self, region_id: int) -> bool:
        """Whether a region is currently allocated."""
        return region_id in self._regions

    def region_size(self, region_id: int) -> int:
        """Size of a resident region."""
        if region_id not in self._regions:
            raise SimulationError(
                f"{self._name}: region {region_id} is not resident"
            )
        return self._regions[region_id]

    def resident_regions(self) -> List[int]:
        """Ids of all resident regions (insertion order)."""
        return list(self._regions)

    def allocate(
        self,
        region_id: int,
        nbytes: int,
        evict_order: Optional[Callable[[List[int]], List[int]]] = None,
    ) -> List[int]:
        """Allocate a region, evicting others if needed.

        Parameters
        ----------
        region_id:
            Key for the new region; re-allocating a resident id resizes it.
        nbytes:
            Region size.
        evict_order:
            Callback receiving the resident region ids and returning them in
            eviction-preference order (most evictable first). This is where
            the dispatcher's "least active direct successors" policy plugs
            in. Without it, insertion order (FIFO) is used.

        Returns
        -------
        list of evicted region ids.

        Raises
        ------
        MemoryCapacityError
            If the region cannot fit even after evicting everything else.
            Allocation is atomic: a failed call leaves ``used_bytes`` and
            the resident set exactly as they were (no partial eviction,
            no half-resized region).
        """
        if nbytes < 0:
            raise SimulationError("nbytes must be non-negative")
        if nbytes > self._capacity:
            raise MemoryCapacityError(
                f"{self._name}: region of {nbytes} bytes exceeds capacity "
                f"{self._capacity}"
            )
        # Plan first, mutate only once the allocation is known to fit: a
        # resize frees the old extent, then victims are chosen (the
        # ``evict_order`` callback runs at most once per allocation).
        old_size = self._regions.get(region_id, 0)
        available = self._capacity - self._used + old_size
        victims: List[int] = []
        if nbytes > available:
            candidates = [r for r in self._regions if r != region_id]
            if evict_order is not None:
                ordered = [
                    r for r in evict_order(candidates) if r in self._regions
                ]
                candidates = ordered
            for victim in candidates:
                if nbytes <= available:
                    break
                victims.append(victim)
                available += self._regions[victim]
            if nbytes > available:
                raise MemoryCapacityError(
                    f"{self._name}: cannot fit {nbytes} bytes "
                    f"(used {self._used} of {self._capacity})"
                )
        # Commit.
        for victim in victims:
            self._used -= self._regions.pop(victim)
        if region_id in self._regions:
            self._used -= self._regions.pop(region_id)
        self._regions[region_id] = nbytes
        self._used += nbytes
        return victims

    def release(self, region_id: int) -> int:
        """Free a region; returns its size."""
        if region_id not in self._regions:
            raise SimulationError(
                f"{self._name}: releasing non-resident region {region_id}"
            )
        size = self._regions.pop(region_id)
        self._used -= size
        return size

    def clear(self) -> None:
        """Free everything."""
        self._regions.clear()
        self._used = 0
