"""Hardware specifications for the simulated machine.

Defaults mirror the paper's testbed (Section 4): four NVIDIA TESLA K80
boards — 26 SMXs and 24 GB on-board memory each — on a host with 64 GB of
RAM and PCIe 3.0 x16 links. Capacities are kept in real units; only the
graph sizes are scaled down, so occupancy-style effects stay meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError

GIB = 1024 ** 3
MIB = 1024 ** 2


@dataclass(frozen=True)
class GPUSpec:
    """Static description of one simulated GPU.

    Attributes
    ----------
    num_smxs:
        Streaming multiprocessors per GPU (K80: 26).
    threads_per_warp:
        SIMT width; warps execute in lock-step (cost = max over members).
    warp_slots_per_smx:
        Warps an SMX can keep in flight concurrently; additional warps are
        serialized by the warp scheduler.
    global_memory_bytes:
        On-board memory capacity (K80: 24 GB).
    shared_memory_per_smx_bytes:
        Shared memory per SMX, used for proxy vertices (K80: 112 KB usable).
    clock_hz:
        Core clock used to convert cycles to model seconds.
    cycles_per_edge:
        Model cost of one gather+apply edge step on a thread.
    cycles_per_atomic:
        Extra cost of one atomic (contended) state update.
    """

    num_smxs: int = 26
    threads_per_warp: int = 32
    warp_slots_per_smx: int = 6
    #: Work items larger than this many edge-steps are split across
    #: threads (load-balanced advance / virtual-warp technique): real GPU
    #: graph kernels never let one thread serially gather a hub's whole
    #: neighborhood.
    work_split_threshold: int = 64
    global_memory_bytes: int = 24 * GIB
    shared_memory_per_smx_bytes: int = 112 * 1024
    clock_hz: float = 824e6
    cycles_per_edge: int = 24
    cycles_per_atomic: int = 40

    def __post_init__(self) -> None:
        if self.num_smxs < 1:
            raise ConfigurationError("num_smxs must be >= 1")
        if self.threads_per_warp < 1:
            raise ConfigurationError("threads_per_warp must be >= 1")
        if self.warp_slots_per_smx < 1:
            raise ConfigurationError("warp_slots_per_smx must be >= 1")
        if self.global_memory_bytes <= 0:
            raise ConfigurationError("global_memory_bytes must be positive")
        if self.clock_hz <= 0:
            raise ConfigurationError("clock_hz must be positive")

    @property
    def threads_per_smx(self) -> int:
        """Concurrent hardware threads per SMX."""
        return self.threads_per_warp * self.warp_slots_per_smx


@dataclass(frozen=True)
class MachineSpec:
    """Static description of the whole simulated machine.

    Attributes
    ----------
    num_gpus:
        GPUs on the PCIe ring (paper: 4).
    gpu:
        Per-GPU specification.
    pcie_bandwidth_bytes_per_s:
        Effective host<->GPU and GPU<->GPU link bandwidth (PCIe 3.0 x16
        ~12 GB/s effective).
    pcie_latency_s:
        Fixed per-transfer-batch latency.
    host_memory_bytes:
        Host DRAM capacity (paper: 64 GB).
    num_cpu_threads:
        CPU worker threads available for preprocessing (Fig. 17 sweeps this).
    transfer_batch_bytes:
        Batch size `S_b` used for Hyper-Q batched path transfer
        (Section 3.2.2); also determines the stream count
        ``N_m = M_G / S_b``.
    """

    num_gpus: int = 4
    gpu: GPUSpec = field(default_factory=GPUSpec)
    pcie_bandwidth_bytes_per_s: float = 12e9
    pcie_latency_s: float = 10e-6
    host_memory_bytes: int = 64 * GIB
    num_cpu_threads: int = 32
    transfer_batch_bytes: int = 64 * MIB

    def __post_init__(self) -> None:
        if self.num_gpus < 1:
            raise ConfigurationError("num_gpus must be >= 1")
        if self.pcie_bandwidth_bytes_per_s <= 0:
            raise ConfigurationError("pcie bandwidth must be positive")
        if self.pcie_latency_s < 0:
            raise ConfigurationError("pcie latency must be non-negative")
        if self.transfer_batch_bytes <= 0:
            raise ConfigurationError("transfer_batch_bytes must be positive")

    @property
    def num_streams(self) -> int:
        """Hyper-Q stream count ``N_m = M_G / S_b`` (Section 3.2.2)."""
        return max(1, self.gpu.global_memory_bytes // self.transfer_batch_bytes)

    def scaled(self, num_gpus: int) -> "MachineSpec":
        """Copy of this spec with a different GPU count (Fig. 16 sweeps)."""
        return MachineSpec(
            num_gpus=num_gpus,
            gpu=self.gpu,
            pcie_bandwidth_bytes_per_s=self.pcie_bandwidth_bytes_per_s,
            pcie_latency_s=self.pcie_latency_s,
            host_memory_bytes=self.host_memory_bytes,
            num_cpu_threads=self.num_cpu_threads,
            transfer_batch_bytes=self.transfer_batch_bytes,
        )


#: The paper's testbed: 4x K80.
PAPER_MACHINE = MachineSpec()

#: The experiment default: the paper's 4-GPU topology with each GPU scaled
#: down (4 SMXs instead of 26) to match the ~500x-scaled-down datasets, so
#: occupancy and utilization figures stay meaningful. PCIe latency is
#: scaled down with the datasets too — at real latency a fixed 10 us per
#: message batch would dominate the (500x smaller) compute intervals and
#: distort every time figure toward pure message counting.
SCALED_MACHINE = MachineSpec(
    num_gpus=4,
    gpu=GPUSpec(
        num_smxs=2,
        warp_slots_per_smx=4,
        # Iterative graph processing is memory-bound: a gather step is a
        # dependent random access, ~200 core cycles effective on a K80.
        cycles_per_edge=200,
        cycles_per_atomic=400,
    ),
    pcie_latency_s=2e-7,
    transfer_batch_bytes=1 * MIB,
)

#: A small machine that keeps unit tests fast and contention visible.
TINY_MACHINE = MachineSpec(
    num_gpus=2,
    gpu=GPUSpec(num_smxs=2, warp_slots_per_smx=2, global_memory_bytes=8 * MIB,
                shared_memory_per_smx_bytes=16 * 1024),
    transfer_batch_bytes=1 * MIB,
)
