"""Streaming multiprocessor model: warps of lock-step threads.

A kernel hands an SMX a list of per-thread *work items* (edge-steps, plus
optional atomic-update counts). Threads are grouped into warps of
``threads_per_warp``; a warp's cost is the **max** over its member threads
because SIMT threads execute in lock-step — this is exactly the
load-imbalance effect Section 3.2.2 mitigates by evening out edges per
thread. The warp scheduler keeps ``warp_slots_per_smx`` warps in flight and
round-robins the rest, so SMX time is bounded below by both the heaviest
warp and the aggregate work divided by the slot count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.errors import SimulationError
from repro.gpu.config import GPUSpec
from repro.gpu.stats import MachineStats


@dataclass(frozen=True)
class KernelCost:
    """Outcome of executing one kernel launch on one SMX."""

    cycles: int                 #: SMX occupancy in cycles
    busy_thread_cycles: int     #: sum of per-thread useful cycles
    total_thread_cycles: int    #: cycles x resident thread capacity


class SMX:
    """One simulated streaming multiprocessor."""

    def __init__(self, spec: GPUSpec, stats: MachineStats, smx_id: int = 0) -> None:
        self._spec = spec
        self._stats = stats
        self.smx_id = smx_id

    def thread_cost_cycles(self, edge_steps: int, atomics: int = 0) -> int:
        """Model cycles one thread spends on its work item."""
        if edge_steps < 0 or atomics < 0:
            raise SimulationError("work item counts must be non-negative")
        return (
            edge_steps * self._spec.cycles_per_edge
            + atomics * self._spec.cycles_per_atomic
        )

    def execute(
        self,
        work_items: Sequence[int],
        atomic_counts: Optional[Sequence[int]] = None,
    ) -> KernelCost:
        """Execute one kernel launch.

        Parameters
        ----------
        work_items:
            Edge-steps per thread, one entry per thread, in thread order
            (consecutive entries share a warp).
        atomic_counts:
            Optional contended-update counts, parallel to ``work_items``.

        Returns
        -------
        KernelCost with the SMX cycles and utilization accounting; the
        counts are also accumulated into the shared stats.
        """
        if atomic_counts is not None and len(atomic_counts) != len(work_items):
            raise SimulationError("atomic_counts must parallel work_items")
        if not work_items:
            return KernelCost(0, 0, 0)

        width = self._spec.threads_per_warp
        costs = [
            self.thread_cost_cycles(
                int(work_items[i]),
                int(atomic_counts[i]) if atomic_counts is not None else 0,
            )
            for i in range(len(work_items))
        ]
        warp_costs = [
            max(costs[i : i + width]) for i in range(0, len(costs), width)
        ]
        slots = self._spec.warp_slots_per_smx
        total_warp_cycles = sum(warp_costs)
        # Round-robin warp scheduling: limited by the heaviest warp and by
        # aggregate work over the available slots.
        cycles = max(
            max(warp_costs),
            -(-total_warp_cycles // slots),  # ceil division
        )
        busy = sum(costs)
        # Occupancy accounting at warp granularity: idle *slots* with no
        # warp assigned are scheduling headroom, not wasted SIMT lanes;
        # what Fig. 15 measures is lock-step imbalance and partially
        # filled warps among the warps actually resident.
        resident_warps = min(len(warp_costs), slots)
        total = cycles * self._spec.threads_per_warp * resident_warps
        self._stats.busy_thread_cycles += busy
        self._stats.total_thread_cycles += total
        return KernelCost(
            cycles=cycles, busy_thread_cycles=busy, total_thread_cycles=total
        )

    def shared_memory_bytes(self) -> int:
        """Shared-memory capacity of this SMX (for proxy vertices)."""
        return self._spec.shared_memory_per_smx_bytes
