"""The simulated machine: host + GPUs + ring interconnect.

Engines drive the machine with three verbs:

- :meth:`Machine.transfer` — move bytes between the host and GPUs (or GPU
  to GPU over the ring), optionally overlapped with upcoming compute via a
  GPU's Hyper-Q streams;
- :meth:`Machine.compute_round` — run one parallel kernel wave: per-GPU
  lists of per-thread work items, executed concurrently across GPUs (wall
  time = the slowest GPU);
- :meth:`Machine.load_global` — account global-memory loads into GPU cores
  (the "volume of data loaded into GPU core" half of Fig. 12's traffic).

All counters land in one shared :class:`~repro.gpu.stats.MachineStats`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import SimulationError
from repro.gpu.config import GPUSpec, MachineSpec
from repro.gpu.interconnect import HOST, Endpoint, Interconnect
from repro.gpu.memory import BoundedMemory
from repro.gpu.smx import SMX
from repro.gpu.stats import MachineStats
from repro.gpu.stream import StreamPool

#: Per-thread work: (edge_steps, atomic_updates).
WorkItem = Tuple[int, int]


class GPU:
    """One simulated GPU: SMXs, global memory, a Hyper-Q stream pool."""

    def __init__(
        self,
        spec: GPUSpec,
        gpu_id: int,
        stats: MachineStats,
        num_streams: int,
    ) -> None:
        self.spec = spec
        self.gpu_id = gpu_id
        self._stats = stats
        self.global_memory = BoundedMemory(
            spec.global_memory_bytes, name=f"gpu{gpu_id}.global"
        )
        self.streams = StreamPool(num_streams)
        self.smxs = [SMX(spec, stats, smx_id=i) for i in range(spec.num_smxs)]

    def seconds(self, cycles: int) -> float:
        """Convert SMX cycles to model seconds."""
        return cycles / self.spec.clock_hz

    def execute_balanced(
        self,
        work_items: Sequence[int],
        atomic_counts: Optional[Sequence[int]] = None,
    ) -> float:
        """Run one kernel, spreading threads across SMXs evenly.

        Work items keep their relative order inside each SMX chunk so
        callers control warp composition (Section 3.2.2 assigns paths to
        threads so each thread's edge count is almost equal *before*
        launching). Returns the elapsed model seconds, with any queued
        stream transfers overlapped against the compute interval.
        """
        if not work_items:
            # Still resolve pending transfers (nothing hides them).
            return self.streams.flush()
        if atomic_counts is not None and len(atomic_counts) != len(work_items):
            raise SimulationError("atomic_counts must parallel work_items")

        # Load-balanced advance: split oversized items across threads (a
        # hub's gather is processed by many lanes, not one), then sort by
        # cost so warps are cost-homogeneous (lock-step warps pay their
        # max member). All engines get this — it models the standard
        # load-balancing of GPU graph kernels.
        threshold = self.spec.work_split_threshold
        split_items: List[int] = []
        split_atomics: List[int] = []
        for i, item in enumerate(work_items):
            item = int(item)
            atomics_here = (
                int(atomic_counts[i]) if atomic_counts is not None else 0
            )
            while item > threshold:
                split_items.append(threshold)
                split_atomics.append(0)
                item -= threshold
            split_items.append(item)
            split_atomics.append(atomics_here)
        work_items = split_items
        atomic_counts = split_atomics
        order = sorted(
            range(len(work_items)), key=lambda i: -int(work_items[i])
        )
        work_items = [work_items[i] for i in order]
        atomic_counts = [atomic_counts[i] for i in order]

        chunks = self._chunk_round_robin(len(work_items))
        max_cycles = 0
        for smx, chunk in zip(self.smxs, chunks):
            if not chunk:
                continue
            items = [int(work_items[i]) for i in chunk]
            atomics = (
                [int(atomic_counts[i]) for i in chunk]
                if atomic_counts is not None
                else None
            )
            cost = smx.execute(items, atomics)
            max_cycles = max(max_cycles, cost.cycles)
        compute_s = self.seconds(max_cycles)
        overlap = self.streams.overlap_with_compute(compute_s)
        return overlap.elapsed_s

    def _chunk_round_robin(self, count: int) -> List[List[int]]:
        """Deal thread indices across SMXs in contiguous blocks.

        Blocks are at least one warp wide: scattering a handful of threads
        across many SMXs would fragment them into near-empty warps, which
        no real block scheduler does."""
        num_smxs = len(self.smxs)
        block = max(self.spec.threads_per_warp, -(-count // num_smxs))
        return [
            list(range(start, min(start + block, count)))
            for start in range(0, count, block)
        ]


class Machine:
    """Host + ``spec.num_gpus`` GPUs + ring interconnect + shared stats."""

    def __init__(self, spec: MachineSpec, fault_injector=None) -> None:
        self.spec = spec
        self.stats = MachineStats()
        self.interconnect = Interconnect(
            spec, self.stats, fault_injector=fault_injector
        )
        self.gpus = [
            GPU(spec.gpu, gpu_id, self.stats, spec.num_streams)
            for gpu_id in range(spec.num_gpus)
        ]

    @property
    def num_gpus(self) -> int:
        return self.spec.num_gpus

    # ------------------------------------------------------------------
    # transfers
    # ------------------------------------------------------------------
    def transfer(
        self,
        src: Endpoint,
        dst: Endpoint,
        nbytes: int,
        overlap_with: Optional[int] = None,
    ) -> float:
        """Move bytes between endpoints (``'host'`` or a GPU id).

        If ``overlap_with`` names a GPU, the transfer is queued on that
        GPU's streams and hidden behind its next kernel; otherwise its time
        is charged to :attr:`MachineStats.transfer_time_s` immediately.
        """
        time_s = self.interconnect.transfer(src, dst, nbytes)
        if overlap_with is not None:
            self.gpus[overlap_with].streams.queue_transfer(time_s)
            return 0.0
        self.stats.transfer_time_s += time_s
        return time_s

    def transfer_async(
        self, src: Endpoint, dst: Endpoint, nbytes: int
    ) -> float:
        """Asynchronous transfer: traffic is recorded normally but the
        time lands on the machine's communication channel, which runs
        concurrently with compute (NCCL-style pipelined pushes with no
        barrier)."""
        time_s = self.interconnect.transfer(src, dst, nbytes)
        self.stats.async_comm_time_s += time_s
        if isinstance(src, int) and isinstance(dst, int):
            # Receive-side ledger for the message-conservation check.
            self.stats.note_pair_transfer(src, dst, nbytes)
        return time_s

    def batched_transfer_to_gpu(self, gpu_id: int, nbytes: int) -> float:
        """Host->GPU transfer split into `S_b`-sized batches (Section 3.2.2)."""
        time_s = self.interconnect.batched_transfer(
            HOST, gpu_id, nbytes, self.spec.transfer_batch_bytes
        )
        self.stats.transfer_time_s += time_s
        return time_s

    def flush_streams(self) -> float:
        """Resolve any still-pending stream transfers at full cost."""
        total = sum(gpu.streams.flush() for gpu in self.gpus)
        self.stats.transfer_time_s += total
        return total

    # ------------------------------------------------------------------
    # compute
    # ------------------------------------------------------------------
    def compute_round(
        self,
        work: Dict[int, Sequence[int]],
        atomics: Optional[Dict[int, Sequence[int]]] = None,
        barrier: bool = False,
    ) -> float:
        """Run one concurrent kernel wave across GPUs.

        ``work[gpu_id]`` is that GPU's per-thread edge-step list. Wall time
        is the slowest GPU's elapsed time and is charged to
        :attr:`MachineStats.compute_time_s`.

        With ``barrier`` (the bulk-synchronous engines), GPUs that finish
        early wait for the slowest one; their wait is charged as idle
        thread-cycles, which is what depresses Fig. 15's utilization for
        the synchronous baseline.
        """
        elapsed_by_gpu: Dict[int, float] = {}
        wall = 0.0
        for gpu_id, items in work.items():
            if not 0 <= gpu_id < self.num_gpus:
                raise SimulationError(f"no GPU {gpu_id}")
            gpu_atomics = atomics.get(gpu_id) if atomics else None
            elapsed = self.gpus[gpu_id].execute_balanced(items, gpu_atomics)
            elapsed_by_gpu[gpu_id] = elapsed
            wall = max(wall, elapsed)
        if barrier and wall > 0:
            for gpu in self.gpus:
                waited = wall - elapsed_by_gpu.get(gpu.gpu_id, 0.0)
                if waited > 0:
                    idle_cycles = int(waited * gpu.spec.clock_hz)
                    self.stats.total_thread_cycles += (
                        idle_cycles
                        * gpu.spec.threads_per_smx
                        * gpu.spec.num_smxs
                    )
        self.stats.compute_time_s += wall
        return wall

    # ------------------------------------------------------------------
    # memory-system accounting
    # ------------------------------------------------------------------
    def load_global(
        self, gpu_id: int, nbytes: int, vertices: int = 0
    ) -> None:
        """Account a global-memory load into GPU cores."""
        if not 0 <= gpu_id < self.num_gpus:
            raise SimulationError(f"no GPU {gpu_id}")
        if nbytes < 0 or vertices < 0:
            raise SimulationError("load sizes must be non-negative")
        self.stats.global_load_bytes += nbytes
        self.stats.vertices_loaded += vertices

    def note_vertex_uses(self, count: int) -> None:
        """Account uses of already-loaded vertex records (Fig. 13)."""
        if count < 0:
            raise SimulationError("count must be non-negative")
        self.stats.vertex_uses += count
