"""The simulated machine: host + GPUs + ring interconnect.

Engines drive the machine with three verbs:

- :meth:`Machine.transfer` — move bytes between the host and GPUs (or GPU
  to GPU over the ring), optionally overlapped with upcoming compute via a
  GPU's Hyper-Q streams;
- :meth:`Machine.compute_round` — run one parallel kernel wave: per-GPU
  lists of per-thread work items, executed concurrently across GPUs (wall
  time = the slowest GPU);
- :meth:`Machine.load_global` — account global-memory loads into GPU cores
  (the "volume of data loaded into GPU core" half of Fig. 12's traffic).

All counters land in one shared :class:`~repro.gpu.stats.MachineStats`.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import median
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.errors import (
    GPULostError,
    InjectedCrashError,
    PermanentInterconnectFault,
    SimulationError,
)
from repro.gpu.config import GPUSpec, MachineSpec
from repro.gpu.interconnect import HOST, Endpoint, Interconnect
from repro.gpu.memory import BoundedMemory
from repro.gpu.smx import SMX
from repro.gpu.stats import MachineStats
from repro.gpu.stream import StreamPool

if TYPE_CHECKING:  # pragma: no cover - annotation only, avoids a cycle
    from repro.faults.recovery import RecoveryPolicy

#: Per-thread work: (edge_steps, atomic_updates).
WorkItem = Tuple[int, int]


@dataclass
class DeliveryOutcome:
    """Result of one replica-batch delivery (:meth:`Machine.deliver_replica_batch`).

    ``status`` is ``"delivered"``, ``"dropped"`` (batch lost, receiver
    never sees it), or ``"corrupted"`` (batch arrived garbled; ``poison``
    is the garbage value the receiver would apply). The latter two only
    occur without a recovery policy — with one, drops and corruptions
    are detected and resent until delivered or retries run out.
    """

    status: str
    time_s: float
    poison: float = 0.0


class GPU:
    """One simulated GPU: SMXs, global memory, a Hyper-Q stream pool."""

    def __init__(
        self,
        spec: GPUSpec,
        gpu_id: int,
        stats: MachineStats,
        num_streams: int,
    ) -> None:
        self.spec = spec
        self.gpu_id = gpu_id
        self._stats = stats
        self.global_memory = BoundedMemory(
            spec.global_memory_bytes, name=f"gpu{gpu_id}.global"
        )
        self.streams = StreamPool(num_streams)
        self.smxs = [SMX(spec, stats, smx_id=i) for i in range(spec.num_smxs)]

    def seconds(self, cycles: int) -> float:
        """Convert SMX cycles to model seconds."""
        return cycles / self.spec.clock_hz

    def execute_balanced(
        self,
        work_items: Sequence[int],
        atomic_counts: Optional[Sequence[int]] = None,
    ) -> float:
        """Run one kernel, spreading threads across SMXs evenly.

        Work items keep their relative order inside each SMX chunk so
        callers control warp composition (Section 3.2.2 assigns paths to
        threads so each thread's edge count is almost equal *before*
        launching). Returns the elapsed model seconds, with any queued
        stream transfers overlapped against the compute interval.
        """
        if not work_items:
            # Still resolve pending transfers (nothing hides them).
            return self.streams.flush()
        if atomic_counts is not None and len(atomic_counts) != len(work_items):
            raise SimulationError("atomic_counts must parallel work_items")

        # Load-balanced advance: split oversized items across threads (a
        # hub's gather is processed by many lanes, not one), then sort by
        # cost so warps are cost-homogeneous (lock-step warps pay their
        # max member). All engines get this — it models the standard
        # load-balancing of GPU graph kernels.
        threshold = self.spec.work_split_threshold
        split_items: List[int] = []
        split_atomics: List[int] = []
        for i, item in enumerate(work_items):
            item = int(item)
            atomics_here = (
                int(atomic_counts[i]) if atomic_counts is not None else 0
            )
            while item > threshold:
                split_items.append(threshold)
                split_atomics.append(0)
                item -= threshold
            split_items.append(item)
            split_atomics.append(atomics_here)
        work_items = split_items
        atomic_counts = split_atomics
        order = sorted(
            range(len(work_items)), key=lambda i: -int(work_items[i])
        )
        work_items = [work_items[i] for i in order]
        atomic_counts = [atomic_counts[i] for i in order]

        chunks = self._chunk_round_robin(len(work_items))
        max_cycles = 0
        for smx, chunk in zip(self.smxs, chunks):
            if not chunk:
                continue
            items = [int(work_items[i]) for i in chunk]
            atomics = (
                [int(atomic_counts[i]) for i in chunk]
                if atomic_counts is not None
                else None
            )
            cost = smx.execute(items, atomics)
            max_cycles = max(max_cycles, cost.cycles)
        compute_s = self.seconds(max_cycles)
        overlap = self.streams.overlap_with_compute(compute_s)
        return overlap.elapsed_s

    def _chunk_round_robin(self, count: int) -> List[List[int]]:
        """Deal thread indices across SMXs in contiguous blocks.

        Blocks are at least one warp wide: scattering a handful of threads
        across many SMXs would fragment them into near-empty warps, which
        no real block scheduler does."""
        num_smxs = len(self.smxs)
        block = max(self.spec.threads_per_warp, -(-count // num_smxs))
        return [
            list(range(start, min(start + block, count)))
            for start in range(0, count, block)
        ]


class Machine:
    """Host + ``spec.num_gpus`` GPUs + ring interconnect + shared stats."""

    def __init__(
        self,
        spec: MachineSpec,
        fault_injector=None,
        recovery: Optional["RecoveryPolicy"] = None,
    ) -> None:
        self.spec = spec
        self.stats = MachineStats()
        self.recovery = recovery
        self.interconnect = Interconnect(
            spec, self.stats, fault_injector=fault_injector,
            recovery=recovery,
        )
        self.gpus = [
            GPU(spec.gpu, gpu_id, self.stats, spec.num_streams)
            for gpu_id in range(spec.num_gpus)
        ]
        #: GPUs lost mid-execution (:meth:`kill_gpu`).
        self.dead_gpus: set = set()

    @property
    def num_gpus(self) -> int:
        return self.spec.num_gpus

    @property
    def _structured_injector(self):
        """The fault injector, if it speaks the structured hook protocol."""
        injector = self.interconnect.fault_injector
        if injector is not None and hasattr(injector, "on_compute_round"):
            return injector
        return None

    # ------------------------------------------------------------------
    # GPU liveness
    # ------------------------------------------------------------------
    def live_gpu_ids(self) -> List[int]:
        """Ids of GPUs still alive, ascending."""
        return [g for g in range(self.num_gpus) if g not in self.dead_gpus]

    def kill_gpu(self, gpu_id: int) -> None:
        """Mark a GPU dead: its memory and in-flight transfers are lost.

        Idempotent. The dead GPU's queued stream transfers are discarded
        (they must not surface later as phantom time) and its global
        memory is cleared — survivors re-load whatever they inherit.
        """
        if not 0 <= gpu_id < self.num_gpus:
            raise SimulationError(f"no GPU {gpu_id}")
        if gpu_id in self.dead_gpus:
            return
        self.dead_gpus.add(gpu_id)
        self.stats.gpu_failures += 1
        gpu = self.gpus[gpu_id]
        gpu.streams.drop_pending()
        gpu.global_memory.clear()

    def _check_alive(self, endpoint: Endpoint) -> None:
        if isinstance(endpoint, int) and endpoint in self.dead_gpus:
            raise GPULostError(
                f"GPU {endpoint} is dead", gpu_id=endpoint
            )

    # ------------------------------------------------------------------
    # transfers
    # ------------------------------------------------------------------
    def transfer(
        self,
        src: Endpoint,
        dst: Endpoint,
        nbytes: int,
        overlap_with: Optional[int] = None,
    ) -> float:
        """Move bytes between endpoints (``'host'`` or a GPU id).

        If ``overlap_with`` names a GPU, the transfer is queued on that
        GPU's streams and hidden behind its next kernel; otherwise its time
        is charged to :attr:`MachineStats.transfer_time_s` immediately.
        """
        self._check_alive(src)
        self._check_alive(dst)
        time_s = self.interconnect.transfer(src, dst, nbytes)
        if overlap_with is not None:
            self.gpus[overlap_with].streams.queue_transfer(time_s)
            return 0.0
        self.stats.transfer_time_s += time_s
        return time_s

    def transfer_async(
        self, src: Endpoint, dst: Endpoint, nbytes: int
    ) -> float:
        """Asynchronous transfer: traffic is recorded normally but the
        time lands on the machine's communication channel, which runs
        concurrently with compute (NCCL-style pipelined pushes with no
        barrier)."""
        self._check_alive(src)
        self._check_alive(dst)
        time_s = self.interconnect.transfer(src, dst, nbytes)
        self.stats.async_comm_time_s += time_s
        if isinstance(src, int) and isinstance(dst, int):
            # Receive-side ledger for the message-conservation check.
            self.stats.note_pair_transfer(src, dst, nbytes)
        return time_s

    def deliver_replica_batch(
        self, src_gpu: int, dst_gpu: int, nbytes: int
    ) -> DeliveryOutcome:
        """Deliver one batched replica-update message GPU -> GPU.

        Like :meth:`transfer_async`, but routed through the fault
        injector's replica hook so the batch can be dropped or corrupted
        in flight. The receive-side conservation ledger
        (``replica_pair_bytes``) is credited only when the payload
        actually lands: a dropped batch leaves a send/receive mismatch
        for the conservation checker, a corrupted one that slips through
        undetected *does* land (garbled — the fixed-point oracle catches
        it instead). With a recovery policy, both are detected by the
        modeled ack/checksum protocol and resent with backoff, bounded
        by ``max_sync_retries``.
        """
        self._check_alive(src_gpu)
        self._check_alive(dst_gpu)
        injector = self._structured_injector
        failures = 0
        total = 0.0
        while True:
            fault = None
            if injector is not None:
                fault = injector.on_replica_flush(src_gpu, dst_gpu, nbytes)
            time_s = self.interconnect.transfer(src_gpu, dst_gpu, nbytes)
            self.stats.async_comm_time_s += time_s
            total += time_s
            if fault is None:
                self.stats.note_pair_transfer(src_gpu, dst_gpu, nbytes)
                return DeliveryOutcome("delivered", total)
            # Kinds are plain strings (repro.faults.plan.DROP / CORRUPT);
            # compared literally here to keep gpu/ import-free of faults/.
            if fault.kind == "drop":
                self.stats.dropped_replica_batches += 1
            else:
                self.stats.corrupted_replica_batches += 1
            if self.recovery is None:
                if fault.kind == "corrupt":
                    # The garbled payload still arrives on the wire, so
                    # conservation balances; the fixed-point check is
                    # what flags the poisoned state.
                    self.stats.note_pair_transfer(src_gpu, dst_gpu, nbytes)
                    return DeliveryOutcome(
                        "corrupted", total, poison=fault.poison
                    )
                return DeliveryOutcome("dropped", total)
            failures += 1
            if failures > self.recovery.max_sync_retries:
                raise PermanentInterconnectFault(
                    f"replica batch {src_gpu}->{dst_gpu} still failing "
                    f"after {failures} attempts",
                    src=src_gpu,
                    dst=dst_gpu,
                )
            backoff = self.recovery.backoff_s(failures)
            self.stats.sync_retries += 1
            self.stats.resent_sync_bytes += nbytes
            self.stats.backoff_time_s += backoff
            self.stats.recovery_time_s += time_s + backoff
            self.stats.async_comm_time_s += backoff
            total += backoff

    def checkpoint_spill(
        self, gpu_id: int, nbytes: int, overlap: bool = False
    ) -> float:
        """Spill one GPU's checkpoint delta to the host (GPU -> host).

        The bytes cross the PCIe link like any d2h transfer (serializing
        with compute), and are additionally attributed to the checkpoint
        ledgers so the overhead-vs-recovery tradeoff is measurable.

        With ``overlap=True`` (double-buffered spill) the transfer is
        issued asynchronously: the cost is *not* charged to the blocking
        ``transfer_time_s`` here — the caller (the checkpoint manager)
        later settles how much of it was hidden under compute and
        charges only the exposed remainder.
        """
        self._check_alive(gpu_id)
        time_s = self.interconnect.spill_transfer(
            gpu_id, HOST, nbytes, self.spec.transfer_batch_bytes
        )
        if not overlap:
            self.stats.transfer_time_s += time_s
        self.stats.checkpoint_bytes_spilled += nbytes
        self.stats.checkpoint_time_s += time_s
        return time_s

    def checkpoint_restore(self, gpu_id: int, nbytes: int) -> float:
        """Reload checkpointed state onto a GPU after a rollback.

        Host -> GPU on the same reserved DMA channel as the spill; the
        time is attributed to ``recovery_time_s`` (restores only happen
        while recovering) and the bytes to ``retransferred_bytes``.
        """
        self._check_alive(gpu_id)
        time_s = self.interconnect.spill_transfer(
            HOST, gpu_id, nbytes, self.spec.transfer_batch_bytes
        )
        self.stats.transfer_time_s += time_s
        self.stats.recovery_time_s += time_s
        self.stats.retransferred_bytes += nbytes
        return time_s

    def batched_transfer_to_gpu(self, gpu_id: int, nbytes: int) -> float:
        """Host->GPU transfer split into `S_b`-sized batches (Section 3.2.2)."""
        self._check_alive(gpu_id)
        time_s = self.interconnect.batched_transfer(
            HOST, gpu_id, nbytes, self.spec.transfer_batch_bytes
        )
        self.stats.transfer_time_s += time_s
        return time_s

    def flush_streams(self) -> float:
        """Resolve any still-pending stream transfers at full cost."""
        total = sum(
            gpu.streams.flush()
            for gpu in self.gpus
            if gpu.gpu_id not in self.dead_gpus
        )
        self.stats.transfer_time_s += total
        return total

    # ------------------------------------------------------------------
    # compute
    # ------------------------------------------------------------------
    def compute_round(
        self,
        work: Dict[int, Sequence[int]],
        atomics: Optional[Dict[int, Sequence[int]]] = None,
        barrier: bool = False,
    ) -> float:
        """Run one concurrent kernel wave across GPUs.

        ``work[gpu_id]`` is that GPU's per-thread edge-step list. Wall time
        is the slowest GPU's elapsed time and is charged to
        :attr:`MachineStats.compute_time_s`.

        With ``barrier`` (the bulk-synchronous engines), GPUs that finish
        early wait for the slowest one; their wait is charged as idle
        thread-cycles, which is what depresses Fig. 15's utilization for
        the synchronous baseline.

        A structured fault injector is consulted once per wave: it may
        kill a GPU (the wave aborts with :class:`GPULostError` — the
        engine's checkpoint/rollback replays the round on the survivors)
        or slow chosen GPUs down. With a recovery policy, a slowed GPU
        whose elapsed time exceeds ``straggler_timeout_factor`` times
        the median of its peers is treated as a straggler: its wave is
        re-dispatched, capping its cost at the timeout plus one nominal
        re-execution.
        """
        slowdowns: Dict[int, float] = {}
        injector = self._structured_injector
        if injector is not None:
            fault = injector.on_compute_round(self.live_gpu_ids())
            if fault is not None:
                # `crash` is duck-typed (getattr) so gpu/ keeps working
                # with legacy plans whose ComputeFault predates it.
                if getattr(fault, "crash", False):
                    raise InjectedCrashError(
                        "whole-job crash at a kernel-wave boundary",
                        crash_point="round-boundary",
                        round_index=injector.compute_calls - 1,
                    )
                if fault.kill_gpu is not None:
                    self.kill_gpu(fault.kill_gpu)
                    raise GPULostError(
                        f"GPU {fault.kill_gpu} died during a kernel wave",
                        gpu_id=fault.kill_gpu,
                    )
                slowdowns = dict(fault.slowdowns)
        elapsed_by_gpu: Dict[int, float] = {}
        base_by_gpu: Dict[int, float] = {}
        for gpu_id, items in work.items():
            if not 0 <= gpu_id < self.num_gpus:
                raise SimulationError(f"no GPU {gpu_id}")
            if gpu_id in self.dead_gpus:
                if items:
                    raise GPULostError(
                        f"work dispatched to dead GPU {gpu_id}",
                        gpu_id=gpu_id,
                    )
                continue
            gpu_atomics = atomics.get(gpu_id) if atomics else None
            base = self.gpus[gpu_id].execute_balanced(items, gpu_atomics)
            base_by_gpu[gpu_id] = base
            elapsed_by_gpu[gpu_id] = base * slowdowns.get(gpu_id, 1.0)
        if (
            self.recovery is not None
            and self.recovery.redispatch_stragglers
            and slowdowns
            and len(elapsed_by_gpu) > 1
        ):
            for gpu_id in sorted(slowdowns):
                if gpu_id not in elapsed_by_gpu:
                    continue
                elapsed = elapsed_by_gpu[gpu_id]
                peers = [
                    t for g, t in elapsed_by_gpu.items() if g != gpu_id
                ]
                timeout = (
                    self.recovery.straggler_timeout_factor * median(peers)
                )
                if timeout > 0 and elapsed > timeout:
                    self.stats.stragglers_detected += 1
                    # Give up on the straggler at the timeout and re-run
                    # its wave (modeled at nominal cost) elsewhere.
                    redone = timeout + base_by_gpu[gpu_id]
                    if redone < elapsed:
                        self.stats.straggler_redispatches += 1
                        self.stats.recovery_time_s += (
                            redone - base_by_gpu[gpu_id]
                        )
                        elapsed_by_gpu[gpu_id] = redone
        wall = max(elapsed_by_gpu.values(), default=0.0)
        if barrier and wall > 0:
            for gpu in self.gpus:
                if gpu.gpu_id in self.dead_gpus:
                    continue
                waited = wall - elapsed_by_gpu.get(gpu.gpu_id, 0.0)
                if waited > 0:
                    idle_cycles = int(waited * gpu.spec.clock_hz)
                    self.stats.total_thread_cycles += (
                        idle_cycles
                        * gpu.spec.threads_per_smx
                        * gpu.spec.num_smxs
                    )
        self.stats.compute_time_s += wall
        return wall

    # ------------------------------------------------------------------
    # memory-system accounting
    # ------------------------------------------------------------------
    def load_global(
        self, gpu_id: int, nbytes: int, vertices: int = 0
    ) -> None:
        """Account a global-memory load into GPU cores."""
        if not 0 <= gpu_id < self.num_gpus:
            raise SimulationError(f"no GPU {gpu_id}")
        self._check_alive(gpu_id)
        if nbytes < 0 or vertices < 0:
            raise SimulationError("load sizes must be non-negative")
        self.stats.global_load_bytes += nbytes
        self.stats.vertices_loaded += vertices

    def note_vertex_uses(self, count: int) -> None:
        """Account uses of already-loaded vertex records (Fig. 13)."""
        if count < 0:
            raise SimulationError("count must be non-negative")
        self.stats.vertex_uses += count
