"""Counters accumulated by the simulated machine.

Every figure of the paper's evaluation reads one of these quantities:

- Fig. 6/7/10/16/17 — model execution time (busy cycles / clock + transfer
  time not hidden by streams),
- Fig. 11 — ``vertex_updates``,
- Fig. 12 — traffic volume (host<->GPU + GPU<->GPU + global-memory loads),
- Fig. 13 — ``vertex_uses / vertices_loaded``,
- Fig. 15 — ``busy_thread_cycles / total_thread_cycles``,
- Fig. 2 / Fig. 9 — per-partition processing counts and phase breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict, Tuple


@dataclass
class MachineStats:
    """Mutable counter bundle shared by a :class:`~repro.gpu.machine.Machine`."""

    # Work counters.
    vertex_updates: int = 0          #: apply() calls that changed a state
    apply_calls: int = 0             #: all apply() calls
    edge_traversals: int = 0         #: gather steps executed
    rounds: int = 0                  #: engine-level rounds completed
    atomic_updates: int = 0          #: contended master updates
    proxy_absorbed: int = 0          #: atomics absorbed by proxy vertices
    #: Master writes produced while processing partitions (the writes the
    #: atomic/proxy split must conserve: ``atomic_updates +
    #: proxy_absorbed == master_writes``, checked by :mod:`repro.verify`).
    master_writes: int = 0

    # Traffic counters (bytes).
    h2d_bytes: int = 0               #: host -> GPU transfers
    d2h_bytes: int = 0               #: GPU -> host transfers
    p2p_bytes: int = 0               #: GPU -> GPU transfers
    global_load_bytes: int = 0       #: global-memory loads into GPU cores

    # Data-utilization counters (Fig. 13).
    vertices_loaded: int = 0         #: vertex records loaded into cores
    vertex_uses: int = 0             #: times a loaded vertex was used

    # Utilization counters (Fig. 15).
    busy_thread_cycles: int = 0      #: cycles threads spent doing work
    total_thread_cycles: int = 0     #: cycles threads were resident

    # Fault-injection / recovery counters (:mod:`repro.faults`).
    transfer_retries: int = 0        #: transient-fault retries of transfers
    retransferred_bytes: int = 0     #: bytes re-sent or re-loaded by recovery
    sync_retries: int = 0            #: replica-batch resends after drop/corrupt
    resent_sync_bytes: int = 0       #: replica bytes re-sent by recovery
    dropped_replica_batches: int = 0 #: injected replica-batch drops
    corrupted_replica_batches: int = 0  #: injected replica-batch corruptions
    stragglers_detected: int = 0     #: GPUs that exceeded the straggler timeout
    straggler_redispatches: int = 0  #: straggler rounds re-dispatched elsewhere
    gpu_failures: int = 0            #: GPUs lost mid-execution
    rounds_rolled_back: int = 0      #: rounds replayed from a checkpoint
    #: Completed rounds discarded by rollbacks, plus the aborted attempt
    #: itself — with a checkpoint interval of K, one rollback replays up
    #: to K rounds (exactly 1 when K == 1).
    rollback_replay_rounds: int = 0
    checkpoints_taken: int = 0       #: checkpoints spilled to the host
    incremental_checkpoints_taken: int = 0  #: of which dirty-only deltas
    #: Bytes moved GPU->host by checkpoint spills (charged on the PCIe
    #: ring as d2h traffic; restores land in ``retransferred_bytes``).
    checkpoint_bytes_spilled: int = 0
    #: Model seconds spent spilling checkpoints — an attribution ledger
    #: like ``recovery_time_s``: the time also lands on
    #: ``transfer_time_s``, so checkpointing makes a run strictly slower.
    checkpoint_time_s: float = 0.0
    #: Of ``checkpoint_time_s``, the model seconds hidden under compute
    #: by double-buffered spills (``overlap_checkpoint_spill``): only
    #: the remainder lands on ``transfer_time_s`` and extends the run.
    checkpoint_hidden_time_s: float = 0.0
    backoff_time_s: float = 0.0      #: model seconds spent in retry backoff
    #: Model seconds attributed to recovery: backoff waits, wasted failed
    #: attempts, straggler timeout + re-execution, and work discarded by a
    #: round rollback. An *attribution* ledger — the underlying time also
    #: lands on the ordinary compute/transfer channels.
    recovery_time_s: float = 0.0

    # Streaming / incremental-recompute counters (:mod:`repro.streaming`).
    paths_repaired: int = 0          #: paths split/extended/merged/rebuilt by repair
    #: Vertices reactivated by a delta-recompute warm start (the affected
    #: set handed to the engine instead of the whole vertex set).
    vertices_reactivated: int = 0
    #: Rounds run by warm-started (incremental) executions, as opposed to
    #: from-scratch runs — the round-count half of the stream speedup.
    incremental_rounds: int = 0

    # Time accounting (model seconds).
    compute_time_s: float = 0.0
    transfer_time_s: float = 0.0     #: blocking transfers (serialize)
    #: Asynchronous communication (replica pushes, worklist messages):
    #: runs on its own channel concurrently with compute, so it only
    #: extends the run when it exceeds the compute timeline.
    async_comm_time_s: float = 0.0
    preprocess_time_s: float = 0.0

    # Per-partition processing counts (Fig. 2a/2b).
    partition_processed: Dict[int, int] = field(default_factory=dict)

    #: Asynchronous GPU->GPU bytes delivered per ordered ``(src, dst)``
    #: pair — the receive side of the modeled-message conservation check
    #: (engines keep their own send-side ledger; :mod:`repro.verify`
    #: compares the two).
    replica_pair_bytes: Dict[Tuple[int, int], int] = field(
        default_factory=dict
    )

    # ------------------------------------------------------------------
    def note_partition_processed(self, partition_id: int) -> None:
        """Record one processing pass over a partition."""
        self.partition_processed[partition_id] = (
            self.partition_processed.get(partition_id, 0) + 1
        )

    def note_pair_transfer(self, src: int, dst: int, nbytes: int) -> None:
        """Record asynchronous GPU->GPU bytes for one ordered pair."""
        key = (src, dst)
        self.replica_pair_bytes[key] = (
            self.replica_pair_bytes.get(key, 0) + nbytes
        )

    @property
    def traffic_bytes(self) -> int:
        """Total traffic volume as defined for Fig. 12."""
        return (
            self.h2d_bytes + self.d2h_bytes + self.p2p_bytes
            + self.global_load_bytes
        )

    @property
    def data_utilization(self) -> float:
        """Used/loaded vertex ratio (Fig. 13); 0 when nothing was loaded."""
        if self.vertices_loaded == 0:
            return 0.0
        return self.vertex_uses / self.vertices_loaded

    @property
    def gpu_utilization(self) -> float:
        """Busy/total thread-cycle ratio (Fig. 15)."""
        if self.total_thread_cycles == 0:
            return 0.0
        return self.busy_thread_cycles / self.total_thread_cycles

    @property
    def total_time_s(self) -> float:
        """Processing time (no preprocessing): blocking transfers
        serialize with compute; the async communication channel overlaps
        compute and only its excess extends the run."""
        return (
            max(self.compute_time_s, self.async_comm_time_s)
            + self.transfer_time_s
        )

    @property
    def total_time_with_preprocess_s(self) -> float:
        """End-to-end time including CPU preprocessing (Fig. 9 / 17)."""
        return self.total_time_s + self.preprocess_time_s

    # ------------------------------------------------------------------
    def merge(self, other: "MachineStats") -> None:
        """Add another stats bundle into this one.

        Field-driven so newly added counters can never be silently
        dropped: scalar counters add, dict counters merge per key.
        """
        for spec in fields(self):
            mine = getattr(self, spec.name)
            theirs = getattr(other, spec.name)
            if isinstance(mine, dict):
                for key, value in theirs.items():
                    mine[key] = mine.get(key, 0) + value
            else:
                setattr(self, spec.name, mine + theirs)

    def reset(self) -> None:
        """Zero every counter in place.

        Sweep runners reusing a long-lived machine call this between
        cells so counters from one run cannot leak into the next.
        """
        fresh = MachineStats()
        for spec in fields(self):
            value = getattr(fresh, spec.name)
            if isinstance(value, dict):
                getattr(self, spec.name).clear()
            else:
                setattr(self, spec.name, value)

    def snapshot(self) -> "MachineStats":
        """Deep copy for before/after deltas."""
        copy = MachineStats()
        copy.merge(self)
        return copy

    def as_dict(self) -> Dict[str, object]:
        """Frozen JSON-safe snapshot of every counter.

        The stable serialization API for benchmark artifacts: scalar
        counters pass through, dict counters become ``str`` keyed dicts
        (JSON objects cannot key on ints or tuples). The returned dict
        shares no mutable state with this bundle, so recording it cannot
        alias live machine counters between sweep cells.
        """
        out: Dict[str, object] = {}
        for spec in fields(self):
            value = getattr(self, spec.name)
            if isinstance(value, dict):
                out[spec.name] = {
                    "/".join(map(str, key))
                    if isinstance(key, tuple)
                    else str(key): count
                    for key, count in value.items()
                }
            else:
                out[spec.name] = value
        return out
