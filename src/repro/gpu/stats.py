"""Counters accumulated by the simulated machine.

Every figure of the paper's evaluation reads one of these quantities:

- Fig. 6/7/10/16/17 — model execution time (busy cycles / clock + transfer
  time not hidden by streams),
- Fig. 11 — ``vertex_updates``,
- Fig. 12 — traffic volume (host<->GPU + GPU<->GPU + global-memory loads),
- Fig. 13 — ``vertex_uses / vertices_loaded``,
- Fig. 15 — ``busy_thread_cycles / total_thread_cycles``,
- Fig. 2 / Fig. 9 — per-partition processing counts and phase breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple


@dataclass
class MachineStats:
    """Mutable counter bundle shared by a :class:`~repro.gpu.machine.Machine`."""

    # Work counters.
    vertex_updates: int = 0          #: apply() calls that changed a state
    apply_calls: int = 0             #: all apply() calls
    edge_traversals: int = 0         #: gather steps executed
    rounds: int = 0                  #: engine-level rounds completed
    atomic_updates: int = 0          #: contended master updates
    proxy_absorbed: int = 0          #: atomics absorbed by proxy vertices
    #: Master writes produced while processing partitions (the writes the
    #: atomic/proxy split must conserve: ``atomic_updates +
    #: proxy_absorbed == master_writes``, checked by :mod:`repro.verify`).
    master_writes: int = 0

    # Traffic counters (bytes).
    h2d_bytes: int = 0               #: host -> GPU transfers
    d2h_bytes: int = 0               #: GPU -> host transfers
    p2p_bytes: int = 0               #: GPU -> GPU transfers
    global_load_bytes: int = 0       #: global-memory loads into GPU cores

    # Data-utilization counters (Fig. 13).
    vertices_loaded: int = 0         #: vertex records loaded into cores
    vertex_uses: int = 0             #: times a loaded vertex was used

    # Utilization counters (Fig. 15).
    busy_thread_cycles: int = 0      #: cycles threads spent doing work
    total_thread_cycles: int = 0     #: cycles threads were resident

    # Fault-injection / recovery counters (:mod:`repro.faults`).
    transfer_retries: int = 0        #: transient-fault retries of transfers
    retransferred_bytes: int = 0     #: bytes re-sent or re-loaded by recovery
    sync_retries: int = 0            #: replica-batch resends after drop/corrupt
    resent_sync_bytes: int = 0       #: replica bytes re-sent by recovery
    dropped_replica_batches: int = 0 #: injected replica-batch drops
    corrupted_replica_batches: int = 0  #: injected replica-batch corruptions
    stragglers_detected: int = 0     #: GPUs that exceeded the straggler timeout
    straggler_redispatches: int = 0  #: straggler rounds re-dispatched elsewhere
    gpu_failures: int = 0            #: GPUs lost mid-execution
    rounds_rolled_back: int = 0      #: rounds replayed from a checkpoint
    #: Completed rounds discarded by rollbacks, plus the aborted attempt
    #: itself — with a checkpoint interval of K, one rollback replays up
    #: to K rounds (exactly 1 when K == 1).
    rollback_replay_rounds: int = 0
    checkpoints_taken: int = 0       #: checkpoints spilled to the host
    incremental_checkpoints_taken: int = 0  #: of which dirty-only deltas
    #: Bytes moved GPU->host by checkpoint spills (charged on the PCIe
    #: ring as d2h traffic; restores land in ``retransferred_bytes``).
    checkpoint_bytes_spilled: int = 0
    #: Model seconds spent spilling checkpoints — an attribution ledger
    #: like ``recovery_time_s``: the time also lands on
    #: ``transfer_time_s``, so checkpointing makes a run strictly slower.
    checkpoint_time_s: float = 0.0
    backoff_time_s: float = 0.0      #: model seconds spent in retry backoff
    #: Model seconds attributed to recovery: backoff waits, wasted failed
    #: attempts, straggler timeout + re-execution, and work discarded by a
    #: round rollback. An *attribution* ledger — the underlying time also
    #: lands on the ordinary compute/transfer channels.
    recovery_time_s: float = 0.0

    # Streaming / incremental-recompute counters (:mod:`repro.streaming`).
    paths_repaired: int = 0          #: paths split/extended/merged/rebuilt by repair
    #: Vertices reactivated by a delta-recompute warm start (the affected
    #: set handed to the engine instead of the whole vertex set).
    vertices_reactivated: int = 0
    #: Rounds run by warm-started (incremental) executions, as opposed to
    #: from-scratch runs — the round-count half of the stream speedup.
    incremental_rounds: int = 0

    # Time accounting (model seconds).
    compute_time_s: float = 0.0
    transfer_time_s: float = 0.0     #: blocking transfers (serialize)
    #: Asynchronous communication (replica pushes, worklist messages):
    #: runs on its own channel concurrently with compute, so it only
    #: extends the run when it exceeds the compute timeline.
    async_comm_time_s: float = 0.0
    preprocess_time_s: float = 0.0

    # Per-partition processing counts (Fig. 2a/2b).
    partition_processed: Dict[int, int] = field(default_factory=dict)

    #: Asynchronous GPU->GPU bytes delivered per ordered ``(src, dst)``
    #: pair — the receive side of the modeled-message conservation check
    #: (engines keep their own send-side ledger; :mod:`repro.verify`
    #: compares the two).
    replica_pair_bytes: Dict[Tuple[int, int], int] = field(
        default_factory=dict
    )

    # ------------------------------------------------------------------
    def note_partition_processed(self, partition_id: int) -> None:
        """Record one processing pass over a partition."""
        self.partition_processed[partition_id] = (
            self.partition_processed.get(partition_id, 0) + 1
        )

    def note_pair_transfer(self, src: int, dst: int, nbytes: int) -> None:
        """Record asynchronous GPU->GPU bytes for one ordered pair."""
        key = (src, dst)
        self.replica_pair_bytes[key] = (
            self.replica_pair_bytes.get(key, 0) + nbytes
        )

    @property
    def traffic_bytes(self) -> int:
        """Total traffic volume as defined for Fig. 12."""
        return (
            self.h2d_bytes + self.d2h_bytes + self.p2p_bytes
            + self.global_load_bytes
        )

    @property
    def data_utilization(self) -> float:
        """Used/loaded vertex ratio (Fig. 13); 0 when nothing was loaded."""
        if self.vertices_loaded == 0:
            return 0.0
        return self.vertex_uses / self.vertices_loaded

    @property
    def gpu_utilization(self) -> float:
        """Busy/total thread-cycle ratio (Fig. 15)."""
        if self.total_thread_cycles == 0:
            return 0.0
        return self.busy_thread_cycles / self.total_thread_cycles

    @property
    def total_time_s(self) -> float:
        """Processing time (no preprocessing): blocking transfers
        serialize with compute; the async communication channel overlaps
        compute and only its excess extends the run."""
        return (
            max(self.compute_time_s, self.async_comm_time_s)
            + self.transfer_time_s
        )

    @property
    def total_time_with_preprocess_s(self) -> float:
        """End-to-end time including CPU preprocessing (Fig. 9 / 17)."""
        return self.total_time_s + self.preprocess_time_s

    # ------------------------------------------------------------------
    def merge(self, other: "MachineStats") -> None:
        """Add another stats bundle into this one."""
        self.vertex_updates += other.vertex_updates
        self.apply_calls += other.apply_calls
        self.edge_traversals += other.edge_traversals
        self.rounds += other.rounds
        self.atomic_updates += other.atomic_updates
        self.proxy_absorbed += other.proxy_absorbed
        self.master_writes += other.master_writes
        self.h2d_bytes += other.h2d_bytes
        self.d2h_bytes += other.d2h_bytes
        self.p2p_bytes += other.p2p_bytes
        self.global_load_bytes += other.global_load_bytes
        self.vertices_loaded += other.vertices_loaded
        self.vertex_uses += other.vertex_uses
        self.busy_thread_cycles += other.busy_thread_cycles
        self.total_thread_cycles += other.total_thread_cycles
        self.transfer_retries += other.transfer_retries
        self.retransferred_bytes += other.retransferred_bytes
        self.sync_retries += other.sync_retries
        self.resent_sync_bytes += other.resent_sync_bytes
        self.dropped_replica_batches += other.dropped_replica_batches
        self.corrupted_replica_batches += other.corrupted_replica_batches
        self.stragglers_detected += other.stragglers_detected
        self.straggler_redispatches += other.straggler_redispatches
        self.gpu_failures += other.gpu_failures
        self.rounds_rolled_back += other.rounds_rolled_back
        self.rollback_replay_rounds += other.rollback_replay_rounds
        self.checkpoints_taken += other.checkpoints_taken
        self.incremental_checkpoints_taken += (
            other.incremental_checkpoints_taken
        )
        self.checkpoint_bytes_spilled += other.checkpoint_bytes_spilled
        self.checkpoint_time_s += other.checkpoint_time_s
        self.backoff_time_s += other.backoff_time_s
        self.recovery_time_s += other.recovery_time_s
        self.paths_repaired += other.paths_repaired
        self.vertices_reactivated += other.vertices_reactivated
        self.incremental_rounds += other.incremental_rounds
        self.compute_time_s += other.compute_time_s
        self.transfer_time_s += other.transfer_time_s
        self.async_comm_time_s += other.async_comm_time_s
        self.preprocess_time_s += other.preprocess_time_s
        for pid, count in other.partition_processed.items():
            self.partition_processed[pid] = (
                self.partition_processed.get(pid, 0) + count
            )
        for pair, nbytes in other.replica_pair_bytes.items():
            self.replica_pair_bytes[pair] = (
                self.replica_pair_bytes.get(pair, 0) + nbytes
            )

    def snapshot(self) -> "MachineStats":
        """Deep copy for before/after deltas."""
        copy = MachineStats()
        copy.merge(self)
        return copy
