"""Vertex state container shared by all engines.

:class:`VertexStates` couples the per-vertex state array (the paper's
``V_val`` master array) with active flags, and centralizes the
commit-an-update bookkeeping so every engine counts ``vertex_updates`` and
activations identically.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from repro.errors import SimulationError
from repro.graph.digraph import DiGraphCSR
from repro.model.gas import VertexProgram


class VertexStates:
    """State values + active flags for one algorithm run.

    ``initial_values`` / ``initial_active`` warm-start the run from a
    caller-provided state (delta recompute over an evolving graph)
    instead of the program's own initial state. The program's
    ``initial_states`` still runs first either way — programs cache
    graph-derived arrays (out-degrees, teleport vectors, weight
    normalizers) there, and a warm start must prime those caches on the
    *current* graph before its values are overridden.
    """

    def __init__(
        self,
        graph: DiGraphCSR,
        program: VertexProgram,
        initial_values: Optional[np.ndarray] = None,
        initial_active: Optional[np.ndarray] = None,
    ) -> None:
        self.graph = graph
        self.program = program
        self.values = np.asarray(
            program.initial_states(graph), dtype=np.float64
        )
        if self.values.shape != (graph.num_vertices,):
            raise SimulationError(
                "initial_states must return one float per vertex"
            )
        self.active = np.asarray(program.initial_active(graph), dtype=bool)
        if self.active.shape != (graph.num_vertices,):
            raise SimulationError(
                "initial_active must return one flag per vertex"
            )
        if initial_values is not None:
            override = np.asarray(initial_values, dtype=np.float64)
            if override.shape != (graph.num_vertices,):
                raise SimulationError(
                    "initial_values must provide one float per vertex"
                )
            self.values = override.copy()
        if initial_active is not None:
            override = np.asarray(initial_active, dtype=bool)
            if override.shape != (graph.num_vertices,):
                raise SimulationError(
                    "initial_active must provide one flag per vertex"
                )
            self.active = override.copy()

    @property
    def num_active(self) -> int:
        """Count of currently active vertices."""
        return int(self.active.sum())

    def any_active(self) -> bool:
        return bool(self.active.any())

    def active_vertices(self) -> np.ndarray:
        """Ids of active vertices, ascending."""
        return np.flatnonzero(self.active)

    def deactivate(self, v: int) -> None:
        self.active[v] = False

    def activate(self, vertices: Iterable[int]) -> List[int]:
        """Mark vertices active; returns those newly activated."""
        newly = []
        for v in vertices:
            if not self.active[v]:
                self.active[v] = True
                newly.append(v)
        return newly

    def commit(self, v: int, new_state: float, changed: bool) -> List[int]:
        """Write a computed update and propagate activation.

        Returns the list of newly-activated dependents (empty when the
        update converged). The caller accounts the update in the machine
        stats — state bookkeeping and cost accounting stay separate.
        """
        self.values[v] = new_state
        if not changed:
            return []
        return self.activate(self.program.dependents(self.graph, v))

    def copy_values(self) -> np.ndarray:
        """Snapshot of the state array (used by the Jacobi BSP engine)."""
        return self.values.copy()


class StalenessView:
    """Read view modeling multi-GPU staleness within one round.

    A GPU sees its *own* vertices' freshest states (global-memory reads on
    the same device) but only the **round-start snapshot** of vertices
    resident on other GPUs — their new states arrive with the next
    replica synchronization. This is the mechanism behind the paper's
    Fig. 1/2 observation that asynchronous engines still propagate one
    hop per round across partitions, and why it "is more serious on the
    platform with more GPUs".

    The view is indexable like a state array, so
    :meth:`VertexProgram.update_vertex` works on it unchanged.
    """

    def __init__(
        self,
        fresh: np.ndarray,
        snapshot: np.ndarray,
        local_mask: np.ndarray,
        written_gpu: Optional[np.ndarray] = None,
        written_stamp: Optional[np.ndarray] = None,
        wave_stamp: int = 0,
        gpu_id: int = -1,
    ) -> None:
        if fresh.shape != snapshot.shape or fresh.shape != local_mask.shape:
            raise SimulationError(
                "fresh, snapshot, and local_mask must be parallel arrays"
            )
        self._fresh = fresh
        self._snapshot = snapshot
        self._local = local_mask
        # A value produced on this GPU during this wave is fresh here even
        # if the vertex's master lives elsewhere (the mirror copy is in
        # this GPU's memory).
        self._written_gpu = written_gpu
        self._written_stamp = written_stamp
        self._wave_stamp = wave_stamp
        self._gpu_id = gpu_id

    def __getitem__(self, v: int) -> float:
        if self._local[v]:
            return float(self._fresh[v])
        if (
            self._written_gpu is not None
            and self._written_stamp[v] == self._wave_stamp
            and self._written_gpu[v] == self._gpu_id
        ):
            return float(self._fresh[v])
        return float(self._snapshot[v])

    def __len__(self) -> int:
        return len(self._fresh)

    def as_array(self) -> np.ndarray:
        """Materialize the view into one plain array.

        Vectorized form of :meth:`__getitem__` over every vertex — the
        batch kernels gather from the result with fancy indexing instead
        of calling ``view[v]`` per edge. Returns a fresh array; later
        writes to the underlying states are not reflected.
        """
        effective = np.where(self._local, self._fresh, self._snapshot)
        if self._written_gpu is not None:
            written_here = (self._written_stamp == self._wave_stamp) & (
                self._written_gpu == self._gpu_id
            )
            effective[written_here] = self._fresh[written_here]
        return effective
