"""Programming model shared by every engine.

Graph algorithms are written once against the Gather-Apply-Scatter
:class:`~repro.model.gas.VertexProgram` API (the paper implements its
benchmarks "by the APIs of the popular Gather-Apply-Scatter programming
model") and then executed unchanged by the DiGraph engine, the
bulk-synchronous baseline, the asynchronous baseline, and the sequential
reference — which is what makes the cross-engine comparisons of Section 4
apples-to-apples.
"""

from repro.model.gas import VertexProgram
from repro.model.state import StalenessView, VertexStates
from repro.model.validate import check_fixed_point, residuals

__all__ = [
    "VertexProgram",
    "VertexStates",
    "StalenessView",
    "check_fixed_point",
    "residuals",
]
