"""Gather-Apply-Scatter vertex programs.

A :class:`VertexProgram` defines one iterative directed-graph algorithm in
the pull-style GAS form all engines share:

- **gather**: for an active vertex ``v``, read ``(u, w)`` pairs from
  :meth:`gather_edges` (in-edges by default) and fold
  ``gather(state[u], w, u, v)`` values with :meth:`accumulate` starting
  from :attr:`identity`;
- **apply**: compute the new state from the old state and the accumulator;
- **scatter**: if the state changed (per :meth:`has_converged`), activate
  :meth:`dependents` (out-neighbors by default — the vertices whose gather
  reads ``v``).

Pull-style gathering makes every engine's update *idempotent and
order-insensitive in the limit*: synchronous (Jacobi), asynchronous
(chaotic relaxation), and path-sequential (Gauss-Seidel along paths)
execution all converge to the same fixed point, differing only in how many
updates they need — which is precisely the quantity the paper's evaluation
compares (Fig. 11).
"""

from __future__ import annotations

import abc
from typing import Iterable, Iterator, Optional, Tuple

import numpy as np

from repro.graph.digraph import DiGraphCSR

#: A gather input: (source vertex, edge weight).
GatherEdge = Tuple[int, float]


class VertexProgram(abc.ABC):
    """One iterative algorithm expressed in pull-style GAS form."""

    #: Human-readable algorithm name (used in reports).
    name: str = "vertex-program"

    #: Absolute state-change tolerance below which a vertex is converged.
    tolerance: float = 1e-6

    # ------------------------------------------------------------------
    # initialization
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def initial_states(self, graph: DiGraphCSR) -> np.ndarray:
        """Initial state per vertex (float64 array of length ``n``)."""

    def initial_active(self, graph: DiGraphCSR) -> np.ndarray:
        """Initially-active vertices; default: all active."""
        return np.ones(graph.num_vertices, dtype=bool)

    # ------------------------------------------------------------------
    # gather
    # ------------------------------------------------------------------
    @property
    @abc.abstractmethod
    def identity(self) -> float:
        """Identity element of :meth:`accumulate`."""

    @abc.abstractmethod
    def gather(
        self, src_state: float, weight: float, src: int, dst: int
    ) -> float:
        """Value contributed by in-neighbor ``src`` to ``dst``'s accumulator."""

    @abc.abstractmethod
    def accumulate(self, a: float, b: float) -> float:
        """Commutative, associative fold of gather values."""

    def gather_edges(
        self, graph: DiGraphCSR, v: int
    ) -> Iterator[GatherEdge]:
        """Edges vertex ``v`` reads during gather; default: in-edges."""
        preds = graph.predecessors(v)
        weights = graph.in_weights(v)
        for i in range(preds.size):
            yield int(preds[i]), float(weights[i])

    def gather_degree(self, graph: DiGraphCSR, v: int) -> int:
        """Number of gather edges of ``v`` (simulator work accounting)."""
        return graph.in_degree(v)

    # ------------------------------------------------------------------
    # apply / scatter
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def apply(self, v: int, old_state: float, acc: float) -> float:
        """New state of ``v`` given the folded accumulator."""

    def has_converged(self, old_state: float, new_state: float) -> bool:
        """Whether an update left the state effectively unchanged."""
        return abs(new_state - old_state) <= self.tolerance

    def dependents(self, graph: DiGraphCSR, v: int) -> Iterable[int]:
        """Vertices to activate when ``v``'s state changes.

        Default: out-neighbors, because their gather reads ``v``. Programs
        that gather over both directions must override this symmetrically.
        """
        return (int(u) for u in graph.successors(v))

    # ------------------------------------------------------------------
    # conveniences used by engines
    # ------------------------------------------------------------------
    def full_gather(self, graph: DiGraphCSR, v: int, states) -> float:
        """Fold all gather edges of ``v`` against current ``states``."""
        acc = self.identity
        for src, weight in self.gather_edges(graph, v):
            acc = self.accumulate(acc, self.gather(float(states[src]), weight, src, v))
        return acc

    def update_vertex(
        self,
        graph: DiGraphCSR,
        v: int,
        states,
        old_state: Optional[float] = None,
    ) -> Tuple[float, bool]:
        """Gather + apply for ``v``; returns ``(new_state, changed)``.

        ``states`` is anything indexable by vertex id — the raw array or a
        :class:`~repro.model.state.StalenessView`. ``old_state`` overrides
        the self-read (engines pass the fresh master value when gathering
        through a staleness view). Does **not** write ``states`` — engines
        decide when writes become visible (that is the whole difference
        between them).
        """
        acc = self.full_gather(graph, v, states)
        old = float(states[v]) if old_state is None else old_state
        new = self.apply(v, old, acc)
        return new, not self.has_converged(old, new)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
