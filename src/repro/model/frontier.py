"""Frontier abstraction for the bulk-synchronous baseline.

Gunrock's programming model is frontier-centric: each round consumes the
current frontier of active vertices and produces the next one behind a
global barrier. The async engines do not use this class — they work from
per-partition worklists — which is exactly the structural difference the
paper contrasts.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List

import numpy as np

from repro.errors import SimulationError


class Frontier:
    """A deduplicated, ordered set of active vertex ids."""

    def __init__(self, num_vertices: int, vertices: Iterable[int] = ()) -> None:
        if num_vertices < 0:
            raise SimulationError("num_vertices must be non-negative")
        self._num_vertices = num_vertices
        self._member = np.zeros(num_vertices, dtype=bool)
        self._order: List[int] = []
        for v in vertices:
            self.add(int(v))

    @classmethod
    def from_mask(cls, mask: np.ndarray) -> "Frontier":
        """Build from a boolean membership mask."""
        frontier = cls(mask.size)
        for v in np.flatnonzero(mask):
            frontier.add(int(v))
        return frontier

    def add(self, v: int) -> bool:
        """Add a vertex; returns True if it was not already present."""
        if not 0 <= v < self._num_vertices:
            raise SimulationError(f"vertex {v} out of range")
        if self._member[v]:
            return False
        self._member[v] = True
        self._order.append(v)
        return True

    def __contains__(self, v: int) -> bool:
        return bool(0 <= v < self._num_vertices and self._member[v])

    def __len__(self) -> int:
        return len(self._order)

    def __bool__(self) -> bool:
        return bool(self._order)

    def __iter__(self) -> Iterator[int]:
        return iter(self._order)

    def vertices(self) -> List[int]:
        """Members in insertion order."""
        return list(self._order)

    def split(self, parts: int) -> List[List[int]]:
        """Partition into ``parts`` contiguous slices (multi-GPU sharding)."""
        if parts < 1:
            raise SimulationError("parts must be >= 1")
        size = len(self._order)
        bounds = np.linspace(0, size, parts + 1).astype(int)
        return [
            self._order[bounds[i] : bounds[i + 1]] for i in range(parts)
        ]
