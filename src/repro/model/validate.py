"""Fixed-point validation for vertex programs.

A converged state vector must satisfy every vertex's update equation:
``states[v] == apply(v, states[v], gather-fold over in-edges)``. The
engines' convergence flags say *they* stopped; :func:`residuals` checks
the result against the program itself — the oracle the correctness tests
and the optional post-run verification use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import ConvergenceError
from repro.graph.digraph import DiGraphCSR
from repro.model.gas import VertexProgram


@dataclass(frozen=True)
class ResidualReport:
    """Outcome of a fixed-point check."""

    max_residual: float
    mean_residual: float
    worst_vertex: int
    violations: int          #: vertices with residual above the tolerance
    tolerance: float

    @property
    def satisfied(self) -> bool:
        return self.violations == 0

    def __str__(self) -> str:
        status = "OK" if self.satisfied else "VIOLATED"
        return (
            f"fixed point {status}: max residual "
            f"{self.max_residual:.3g} at v{self.worst_vertex} "
            f"({self.violations} vertices above {self.tolerance:.3g})"
        )


def residuals(
    program: VertexProgram,
    graph: DiGraphCSR,
    states: np.ndarray,
) -> np.ndarray:
    """Per-vertex |states[v] - apply(v, states[v], gather(states))|.

    Infinite states that the recomputation also leaves infinite count as
    residual zero (unreached SSSP/BFS vertices).

    The program's graph-derived caches are (re)initialized first —
    several programs (PageRank's out-degrees, adsorption's weight
    normalizers) populate them in ``initial_states``, and validating with
    an unprimed program would silently check the wrong equation.
    """
    program.initial_states(graph)
    out = np.zeros(graph.num_vertices, dtype=np.float64)
    for v in range(graph.num_vertices):
        acc = program.full_gather(graph, v, states)
        new = program.apply(v, float(states[v]), acc)
        old = float(states[v])
        if np.isinf(old) and np.isinf(new) and old == new:
            continue
        if np.isinf(old) != np.isinf(new):
            out[v] = np.inf
            continue
        out[v] = abs(new - old)
    return out


def check_fixed_point(
    program: VertexProgram,
    graph: DiGraphCSR,
    states: np.ndarray,
    tolerance: Optional[float] = None,
) -> ResidualReport:
    """Summarize the residuals; tolerance defaults to an in-degree-aware
    bound (``program.tolerance`` accumulates across a vertex's gather
    inputs, so a hub legitimately drifts by roughly degree x tolerance).
    """
    values = residuals(program, graph, states)
    if tolerance is None:
        max_in = int(graph.in_degree().max()) if graph.num_vertices else 0
        tolerance = max(program.tolerance, 1e-12) * max(max_in, 1) * 2
    finite = values[np.isfinite(values)]
    worst = int(np.argmax(values)) if values.size else 0
    return ResidualReport(
        max_residual=float(values.max()) if values.size else 0.0,
        mean_residual=float(finite.mean()) if finite.size else 0.0,
        worst_vertex=worst,
        violations=int((values > tolerance).sum()),
        tolerance=tolerance,
    )


def assert_fixed_point(
    program: VertexProgram,
    graph: DiGraphCSR,
    states: np.ndarray,
    tolerance: Optional[float] = None,
) -> ResidualReport:
    """Raise :class:`ConvergenceError` unless the states are a fixed point."""
    report = check_fixed_point(program, graph, states, tolerance)
    if not report.satisfied:
        raise ConvergenceError(str(report))
    return report
