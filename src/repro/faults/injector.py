"""Runtime fault injection driven by a :class:`~repro.faults.plan.FaultPlan`.

The injector is the bridge between a pre-computed plan and the machine:
the machine calls one hook per injection point, the injector keys the
plan's event tables by its own monotone call counters, and every
injection and recovery action is appended to a replayable ``trace``.
Because counters only ever increment and the plan is frozen before the
run, two runs of the same (program, plan) produce byte-identical traces.

Hooks (all optional for the machine — it feature-tests with ``hasattr``
so plain-callable legacy injectors keep working):

- :meth:`FaultInjector.on_transfer` — per ``Interconnect.transfer``;
- :meth:`FaultInjector.on_replica_flush` — per replica-batch delivery
  attempt (retries consume fresh indices, so a resend can fail again);
- :meth:`FaultInjector.on_compute_round` — per kernel wave;
- :meth:`FaultInjector.on_store_write` — per durable checkpoint-store
  write (separate monotone counters per op: page writes vs manifest
  commits);
- :meth:`FaultInjector.note_recovery` — recovery code reporting what it
  did, for the trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from repro.errors import (
    PermanentInterconnectFault,
    TransientInterconnectFault,
)
from repro.faults.plan import (
    ComputeFault,
    FaultPlan,
    PERMANENT,
    StorageFault,
    SyncFault,
    TRANSIENT,
    TransferFault,
)


@dataclass(frozen=True)
class TraceEvent:
    """One injected fault or recovery action.

    ``detail`` is a tuple of sorted ``(key, value-repr)`` pairs so events
    are hashable and the whole trace can be digested for determinism
    checks.
    """

    kind: str
    detail: Tuple[Tuple[str, str], ...] = ()

    @classmethod
    def make(cls, kind: str, **detail) -> "TraceEvent":
        return cls(
            kind=kind,
            detail=tuple(
                sorted((k, repr(v)) for k, v in detail.items())
            ),
        )

    def __str__(self) -> str:
        pairs = ", ".join(f"{k}={v}" for k, v in self.detail)
        return f"{self.kind}({pairs})"


class FaultInjector:
    """Stateful executor of a :class:`FaultPlan`.

    Counts calls per injection point, fires the plan's scheduled events,
    and records everything in :attr:`trace`.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.transfer_calls = 0
        self.sync_calls = 0
        self.compute_calls = 0
        #: per-op durable-store write counters (``op`` -> count).
        self.store_calls = {"page": 0, "manifest": 0}
        self.faults_injected = 0
        self.trace: List[TraceEvent] = []

    # -- hooks consumed by the machine ---------------------------------
    def on_transfer(self, src, dst, nbytes: int) -> Optional[float]:
        """Consult the plan for one ``Interconnect.transfer`` call.

        Returns a delay factor (``DEGRADE``), ``None`` (no fault), or
        raises a transient/permanent :class:`InterconnectFault`.
        """
        index = self.transfer_calls
        self.transfer_calls += 1
        fault: Optional[TransferFault] = self.plan.transfer_faults.get(index)
        if fault is None:
            return None
        self.faults_injected += 1
        self._note(
            "transfer_fault",
            index=index,
            fault=fault.kind,
            src=src,
            dst=dst,
            nbytes=nbytes,
        )
        if fault.kind == TRANSIENT:
            raise TransientInterconnectFault(
                f"injected transient fault on transfer #{index}",
                src=src,
                dst=dst,
            )
        if fault.kind == PERMANENT:
            raise PermanentInterconnectFault(
                f"injected permanent fault on transfer #{index}",
                src=src,
                dst=dst,
            )
        return fault.factor

    def on_replica_flush(
        self, src_gpu: int, dst_gpu: int, nbytes: int
    ) -> Optional[SyncFault]:
        """Consult the plan for one replica-batch delivery attempt."""
        index = self.sync_calls
        self.sync_calls += 1
        fault = self.plan.sync_faults.get(index)
        if fault is None:
            return None
        self.faults_injected += 1
        self._note(
            "sync_fault",
            index=index,
            fault=fault.kind,
            src=src_gpu,
            dst=dst_gpu,
            nbytes=nbytes,
        )
        return fault

    def on_compute_round(
        self, live_gpus: Iterable[int]
    ) -> Optional[ComputeFault]:
        """Consult the plan for one kernel wave.

        Events targeting already-dead GPUs are filtered out; a fully
        filtered event injects nothing.
        """
        index = self.compute_calls
        self.compute_calls += 1
        fault = self.plan.compute_faults.get(index)
        if fault is None:
            return None
        live = set(live_gpus)
        kill = fault.kill_gpu if fault.kill_gpu in live else None
        slowdowns = {
            gpu: factor
            for gpu, factor in fault.slowdowns.items()
            if gpu in live
        }
        if kill is None and not slowdowns and not fault.crash:
            return None
        self.faults_injected += 1
        self._note(
            "compute_fault",
            index=index,
            kill_gpu=kill,
            slowdowns=tuple(sorted(slowdowns.items())),
            crash=fault.crash,
        )
        return ComputeFault(
            kill_gpu=kill, slowdowns=slowdowns, crash=fault.crash
        )

    def on_store_write(self, op: str, path: str) -> Optional[StorageFault]:
        """Consult the plan for one durable-store write.

        ``op`` is ``"page"`` or ``"manifest"``; each op has its own
        monotone counter, so a plan entry with ``op="manifest"`` at
        index 0 strikes the first manifest commit regardless of how many
        pages were written before it. Returns the fault for the store to
        apply (the store owns the file, so it applies the damage) or
        ``None``.
        """
        index = self.store_calls.setdefault(op, 0)
        self.store_calls[op] = index + 1
        fault = self.plan.storage_faults.get(index)
        if fault is None or fault.op != op:
            return None
        self.faults_injected += 1
        self._note(
            "storage_fault",
            index=index,
            op=op,
            fault=fault.kind,
            path=path,
        )
        return fault

    # -- recovery reporting --------------------------------------------
    def note_recovery(self, kind: str, **detail) -> None:
        """Record a recovery action taken by the machine or engine."""
        self._note(f"recovery:{kind}", **detail)

    # ------------------------------------------------------------------
    def _note(self, kind: str, **detail) -> None:
        self.trace.append(TraceEvent.make(kind, **detail))
