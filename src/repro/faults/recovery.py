"""Recovery policy knobs.

A :class:`RecoveryPolicy` turns the fault-tolerance machinery on and
configures every bound the runtime honours:

- transient transfer faults — bounded retry with exponential backoff
  at the interconnect, escalating to
  :class:`~repro.errors.PermanentInterconnectFault` when exhausted;
- dropped/corrupted replica batches — detected (missing ack / bad
  checksum in the modeled protocol), bounded resend;
- stragglers — a timeout relative to the median peer wave time, after
  which the straggler's wave is re-dispatched;
- GPU loss — checkpoint/rollback (every ``checkpoint_interval`` rounds,
  optionally incremental, spill cost modeled on the PCIe ring — see
  :mod:`repro.faults.checkpoint`) plus redistribution of the dead GPU's
  path groups across survivors (``redistribution_policy``).

Passing ``recovery=None`` to the machine/engine disables all of it:
faults then surface raw, which is exactly what the non-vacuity tests
use to prove the injections are real.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class RecoveryPolicy:
    """Bounds and switches for fault recovery."""

    #: Retries per transfer before a transient fault escalates.
    max_transfer_retries: int = 4
    #: First backoff wait (model seconds); doubles by ``backoff_multiplier``.
    backoff_base_s: float = 1e-4
    backoff_multiplier: float = 2.0
    #: Resends per replica batch before a sync fault escalates.
    max_sync_retries: int = 4
    #: A GPU is a straggler when its wave exceeds this multiple of the
    #: median peer wave time.
    straggler_timeout_factor: float = 4.0
    #: Re-dispatch straggler waves (cap their elapsed time at timeout +
    #: one nominal re-execution) instead of waiting them out.
    redispatch_stragglers: bool = True
    #: Keep checkpoints so GPU loss rolls back and replays instead of
    #: aborting the run.
    checkpoint_rounds: bool = True
    #: Checkpoint every K rounds. K = 1 snapshots every round (cheapest
    #: recovery, highest overhead); larger K amortizes the spill cost
    #: but a rollback replays up to K rounds.
    checkpoint_interval: int = 1
    #: Spill only the vertices dirtied since the previous checkpoint (a
    #: delta against the host-side shadow copy) instead of the full
    #: state. Restores stay bit-exact either way — the knob only changes
    #: the modeled spill cost.
    incremental_checkpoints: bool = False
    #: With incremental checkpoints, force a full snapshot every Nth
    #: checkpoint so delta chains stay bounded (1 = always full).
    full_checkpoint_period: int = 8
    #: Double-buffer checkpoint spills: the snapshot is staged into a
    #: second host buffer and drained over the PCIe ring *while the next
    #: rounds compute*, so only the spill time exceeding the subsequent
    #: compute window serializes. Restores stay bit-exact — the knob
    #: only changes how much spill cost the timeline hides
    #: (``checkpoint_hidden_time_s``).
    overlap_checkpoint_spill: bool = False
    #: Durable checkpointing (see :mod:`repro.faults.store`):
    #: ``"none"`` keeps checkpoints in the in-memory host shadow only
    #: (a whole-process crash loses the run); ``"durable"`` additionally
    #: commits every checkpoint to the on-disk store under ``run_dir``
    #: (rollbacks still restore from the shadow; whole-job restart via
    #: ``repro resume`` becomes possible); ``"durable-verify"`` also
    #: restores *rollbacks* from the store's pages, verifying every
    #: checksum on the way back in.
    durability: str = "none"
    #: Run directory holding the durable store (required when
    #: ``durability`` is not ``"none"``).
    run_dir: str = ""
    #: Durable checkpoints retained before GC (the window stretches
    #: back to the nearest full checkpoint so delta chains stay
    #: restorable).
    store_retain: int = 2
    #: Compress cold durable pages (every checkpoint but the newest)
    #: with zlib, recommitted in the same manifest commit — the
    #: "checkpoint compaction" cost model.
    store_compact: bool = True
    #: How a dead GPU's partitions are re-placed: ``"locality"`` keeps
    #: each dependency-connected cluster co-resident on the survivor
    #: with the highest inter-group edge cut to its resident partitions;
    #: ``"edge-balance"`` spreads them to the least-loaded survivors.
    redistribution_policy: str = "locality"
    #: GPU losses survivable in one run before giving up.
    max_gpu_loss_recoveries: int = 8

    def __post_init__(self) -> None:
        if self.max_transfer_retries < 0:
            raise ConfigurationError("max_transfer_retries must be >= 0")
        if self.backoff_base_s < 0:
            raise ConfigurationError("backoff_base_s must be >= 0")
        if self.backoff_multiplier < 1.0:
            raise ConfigurationError("backoff_multiplier must be >= 1")
        if self.max_sync_retries < 0:
            raise ConfigurationError("max_sync_retries must be >= 0")
        if self.straggler_timeout_factor < 1.0:
            raise ConfigurationError(
                "straggler_timeout_factor must be >= 1"
            )
        if self.checkpoint_interval < 1:
            raise ConfigurationError("checkpoint_interval must be >= 1")
        if self.full_checkpoint_period < 1:
            raise ConfigurationError(
                "full_checkpoint_period must be >= 1"
            )
        if self.durability not in ("none", "durable", "durable-verify"):
            raise ConfigurationError(
                "durability must be 'none', 'durable', or "
                f"'durable-verify', got {self.durability!r}"
            )
        if self.durability != "none" and not self.run_dir:
            raise ConfigurationError(
                f"durability={self.durability!r} requires run_dir"
            )
        if self.store_retain < 1:
            raise ConfigurationError("store_retain must be >= 1")
        if self.redistribution_policy not in (
            "locality",
            "edge-balance",
        ):
            raise ConfigurationError(
                "redistribution_policy must be 'locality' or "
                f"'edge-balance', got {self.redistribution_policy!r}"
            )
        if self.max_gpu_loss_recoveries < 0:
            raise ConfigurationError(
                "max_gpu_loss_recoveries must be >= 0"
            )

    def make_checkpoint_manager(self, machine, client):
        """Build a :class:`~repro.faults.checkpoint.CheckpointManager`
        bound to this policy.

        Engines call this through the policy object (duck-typed), so the
        ``core``/``gpu``/``baselines`` layers never import
        ``repro.faults`` at runtime."""
        from repro.faults.checkpoint import CheckpointManager

        return CheckpointManager(self, machine, client)

    def backoff_s(self, attempt: int) -> float:
        """Backoff before retry ``attempt`` (1-based)."""
        if attempt < 1:
            raise ConfigurationError("attempt must be >= 1")
        return self.backoff_base_s * self.backoff_multiplier ** (attempt - 1)
