"""Checkpoint lifecycle management for rollback recovery.

:class:`CheckpointManager` owns everything between "a round is about to
run" and "a failed round was rolled back":

- **interval** — a checkpoint is taken every ``checkpoint_interval``
  rounds (``RecoveryPolicy``), so a rollback replays up to K rounds from
  the last snapshot instead of exactly one;
- **incremental checkpoints** — with ``incremental_checkpoints`` on,
  only what changed since the previous checkpoint is spilled (a delta
  against the host-side shadow copy), falling back to a full snapshot
  every ``full_checkpoint_period``-th checkpoint so delta chains stay
  bounded. The diff is **per array**: each vertex array spills only its
  own dirty entries — activity flags flip far more often than the
  staleness stamps, so charging every array for the union of dirty
  vertices would overstate the delta;
- **host-spill cost** — checkpoint bytes cross the PCIe ring as real
  d2h transfers (:meth:`~repro.gpu.machine.Machine.checkpoint_spill`),
  surfacing as ``checkpoint_bytes_spilled`` / ``checkpoint_time_s`` in
  :class:`~repro.gpu.stats.MachineStats`; rollback reloads survivors'
  state h2d, attributed to recovery;
- **replay accounting** — ``rollback_replay_rounds`` counts the
  completed rounds a rollback discards plus the aborted attempt, the
  recovery-time half of the interval tradeoff;
- **double-buffered spill overlap** — with
  ``RecoveryPolicy.overlap_checkpoint_spill`` on, the snapshot is
  staged into a second host buffer and the PCIe drain proceeds while
  the following rounds compute. The spill settles at the next
  checkpoint / rollback / :meth:`~CheckpointManager.finish`: the part
  covered by the compute that ran since issue is *hidden*
  (``checkpoint_hidden_time_s``), only the exposed remainder is charged
  to the blocking timeline. Each :class:`CheckpointRecord` reports its
  own hidden fraction once settled.

The manager is engine-agnostic: clients expose their state through a
small duck-typed protocol (no inheritance required) —

- ``vertex_arrays() -> Dict[str, np.ndarray]`` — the per-vertex arrays
  (values, activity, stamps, ...) the checkpoint must cover, as live
  references; the manager copies;
- ``vertex_gpu() -> np.ndarray`` — each vertex's current GPU id (``-1``
  for host-resident/unowned vertices, which spill for free);
- ``capture_scalars() -> Dict`` — everything else (ledgers, counters,
  pending batches, placement) as fresh copies;
- ``restore_scalars(scalars) -> None`` — apply a captured scalar dict
  (the manager passes a private deep copy, so a checkpoint survives
  being restored more than once).

Restores are always bit-exact regardless of the incremental setting:
the shadow copy *is* the checkpoint, the full/incremental distinction
only changes the modeled spill cost — which keeps replay determinism
(recovered state must equal the golden run) trivially independent of
the cost knobs.

With ``RecoveryPolicy.durability`` set, every checkpoint is *also*
committed to the durable on-disk store (:mod:`repro.faults.store`)
under ``RecoveryPolicy.run_dir``: pages + write-ahead manifest,
checksums, retention/GC and cold-page compaction. ``"durable"`` keeps
in-run rollbacks on the shadow (the store only buys whole-job restart
via :meth:`CheckpointManager.resume_from_store`); ``"durable-verify"``
restores rollbacks from the store's pages too, verifying every
checksum — and falling back to an older intact checkpoint if the
newest is damaged.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.gpu.machine import Machine

if TYPE_CHECKING:  # pragma: no cover - annotation only
    from repro.faults.recovery import RecoveryPolicy

#: Per-checkpoint metadata spilled alongside the payload (round index,
#: array manifest, dirty-set framing).
CHECKPOINT_HEADER_BYTES = 64
#: Modeled size of one ledger entry ((src, dst) pair + byte count).
BYTES_PER_LEDGER_ENTRY = 24
#: Modeled size of one pending/deferred list element.
BYTES_PER_LIST_ENTRY = 8


@dataclass(frozen=True)
class CheckpointRecord:
    """One taken checkpoint, for inspection and reporting.

    ``hidden_time_s`` is filled in when an overlapped spill settles
    (next checkpoint / rollback / ``finish``): of ``time_s``, the model
    seconds hidden under the compute that ran while the spill drained.
    Serialized (non-overlapped) spills report 0.
    """

    round_index: int
    kind: str  # "full" | "incremental"
    bytes_spilled: int
    dirty_vertices: int
    time_s: float
    hidden_time_s: float = 0.0

    @property
    def hidden_fraction(self) -> float:
        """Share of this spill the compute timeline absorbed."""
        return self.hidden_time_s / self.time_s if self.time_s > 0 else 0.0


def _modeled_scalar_bytes(scalars: Dict) -> int:
    """Modeled wire size of the non-vertex checkpoint payload."""
    total = 0
    for value in scalars.values():
        if isinstance(value, np.ndarray):
            total += value.nbytes
        elif isinstance(value, dict):
            total += len(value) * BYTES_PER_LEDGER_ENTRY
        elif isinstance(value, (list, tuple)):
            total += len(value) * BYTES_PER_LIST_ENTRY
        else:
            total += 8
    return total


class CheckpointManager:
    """Interval/incremental checkpoints with host-spill cost modeling."""

    def __init__(
        self,
        policy: "RecoveryPolicy",
        machine: Machine,
        client,
    ) -> None:
        self.policy = policy
        self.machine = machine
        self.client = client
        #: Durable on-disk store (None when ``durability == "none"``).
        self.store = None
        if getattr(policy, "durability", "none") != "none":
            from repro.faults.store import CheckpointStore

            self.store = CheckpointStore(
                policy.run_dir,
                retain=getattr(policy, "store_retain", 2),
                compact=getattr(policy, "store_compact", True),
                injector=machine._structured_injector,
            )
        self.records: List[CheckpointRecord] = []
        #: Round index of the live checkpoint (None before the first).
        self.last_checkpoint_round: Optional[int] = None
        #: Host-side shadow of every vertex array at the last checkpoint
        #: — both the restore source and the dirty-diff baseline.
        self._shadow: Dict[str, np.ndarray] = {}
        self._shadow_vertex_gpu: Optional[np.ndarray] = None
        self._scalars: Optional[Dict] = None
        self._incrementals_since_full = 0
        self._rounds_mark = 0
        self._time_mark = (0.0, 0.0, 0.0)
        #: In-flight double-buffered spill: (spill seconds still
        #: draining, compute_time_s when it was issued, index of its
        #: record). Settled by :meth:`_settle_pending`.
        self._pending_spill_s = 0.0
        self._pending_compute_mark = 0.0
        self._pending_record_index: Optional[int] = None

    @property
    def has_checkpoint(self) -> bool:
        return self._scalars is not None

    # ------------------------------------------------------------------
    # taking checkpoints
    # ------------------------------------------------------------------
    def due(self, round_index: int) -> bool:
        """Whether a checkpoint should be taken before this round.

        The first round is always checkpointed; afterwards one is due
        every ``checkpoint_interval`` completed rounds. After a rollback
        the restored round equals ``last_checkpoint_round``, so replay
        resumes without redundantly re-spilling the state it just
        reloaded.
        """
        if self.last_checkpoint_round is None:
            return True
        interval = max(int(self.policy.checkpoint_interval), 1)
        return round_index - self.last_checkpoint_round >= interval

    # ------------------------------------------------------------------
    # double-buffered spill settlement
    # ------------------------------------------------------------------
    def _settle_pending(self) -> Tuple[float, float]:
        """Resolve the in-flight overlapped spill; (hidden, exposed).

        The spill drained concurrently with whatever compute ran since
        it was issued: ``min(spill, compute since issue)`` seconds were
        hidden (credited to ``checkpoint_hidden_time_s``), the exposed
        remainder serializes now (charged to ``transfer_time_s``, like
        a stream flush). The issuing :class:`CheckpointRecord` is
        patched with its settled ``hidden_time_s``.
        """
        if self._pending_spill_s <= 0.0:
            return (0.0, 0.0)
        stats = self.machine.stats
        compute_since = max(
            stats.compute_time_s - self._pending_compute_mark, 0.0
        )
        hidden = min(self._pending_spill_s, compute_since)
        exposed = self._pending_spill_s - hidden
        stats.checkpoint_hidden_time_s += hidden
        if exposed > 0.0:
            stats.transfer_time_s += exposed
        idx = self._pending_record_index
        if idx is not None:
            self.records[idx] = replace(
                self.records[idx], hidden_time_s=hidden
            )
        self._pending_spill_s = 0.0
        self._pending_record_index = None
        return (hidden, exposed)

    def finish(self) -> None:
        """Drain any still-in-flight overlapped spill at end of run.

        Engines call this after their main loop (success or abort): a
        spill issued by the final checkpoint has no later checkpoint or
        rollback to settle it, and an undrained buffer would silently
        make the last spill free.
        """
        self._settle_pending()

    def checkpoint(self, round_index: int) -> CheckpointRecord:
        """Snapshot the client's state and charge the host spill."""
        # Settle the previous double-buffered spill first: its drain
        # window ends where this checkpoint begins (single spare host
        # buffer — the next snapshot needs it).
        self._settle_pending()
        overlap = bool(
            getattr(self.policy, "overlap_checkpoint_spill", False)
        )
        arrays = self.client.vertex_arrays()
        vertex_gpu = np.asarray(self.client.vertex_gpu())
        full = (
            not self.policy.incremental_checkpoints
            or not self._shadow
            or self._incrementals_since_full + 1
            >= max(int(self.policy.full_checkpoint_period), 1)
        )
        if full or not self._shadow:
            dirty_by_array = {
                name: np.ones(vertex_gpu.shape[0], dtype=bool)
                for name in arrays
            }
        else:
            # != is elementwise and exact; inf == inf holds, so
            # untouched sentinel states (SSSP's +inf) stay clean.
            dirty_by_array = {
                name: arr != self._shadow[name]
                for name, arr in arrays.items()
            }
        dirty = np.zeros(vertex_gpu.shape[0], dtype=bool)
        for mask in dirty_by_array.values():
            dirty |= mask
        if full:
            self._incrementals_since_full = 0
        else:
            self._incrementals_since_full += 1

        for name, arr in arrays.items():
            self._shadow[name] = arr.copy()
        self._shadow_vertex_gpu = vertex_gpu.copy()
        self._scalars = self.client.capture_scalars()

        stats = self.machine.stats
        if self.store is not None:
            # Durable commit: pages first, manifest rename last. An
            # injected mid-spill / mid-manifest crash escapes from here
            # as InjectedCrashError — deliberately uncaught, the whole
            # job is dead and only `repro resume` brings it back.
            self.store.commit_checkpoint(
                round_index,
                "full" if full else "incremental",
                arrays=self._shadow,
                dirty_by_array=None if full else dirty_by_array,
                scalars=self._scalars,
                rounds_mark=stats.rounds,
                dead_gpus=self.machine.dead_gpus,
                incrementals_since_full=self._incrementals_since_full,
            )
        dirty_count = int(np.count_nonzero(dirty))
        scalar_bytes = _modeled_scalar_bytes(self._scalars)
        total_spilled = 0
        total_time = 0.0
        live = self.machine.live_gpu_ids()
        for i, gpu in enumerate(live):
            owned = vertex_gpu == gpu
            nbytes = CHECKPOINT_HEADER_BYTES + sum(
                int(np.count_nonzero(dirty_by_array[name] & owned))
                * arr.itemsize
                for name, arr in arrays.items()
            )
            if i == 0:
                # The bookkeeping payload (ledgers, pending batches,
                # placement) is gathered through one GPU's channel.
                nbytes += scalar_bytes
            total_time += self.machine.checkpoint_spill(
                gpu, nbytes, overlap=overlap
            )
            total_spilled += nbytes
        stats.checkpoints_taken += 1
        if not full:
            stats.incremental_checkpoints_taken += 1
        # Work/time marks for rollback: taken AFTER the spill charges,
        # so checkpoint overhead is never mis-attributed as lost work.
        self._rounds_mark = stats.rounds
        self._time_mark = (
            stats.compute_time_s,
            stats.transfer_time_s,
            stats.async_comm_time_s,
        )
        self.last_checkpoint_round = round_index
        record = CheckpointRecord(
            round_index=round_index,
            kind="full" if full else "incremental",
            bytes_spilled=total_spilled,
            dirty_vertices=dirty_count,
            time_s=total_time,
        )
        if overlap and total_time > 0.0:
            # The spill drains while the next rounds compute; settled
            # against the compute window at the next checkpoint /
            # rollback / finish.
            self._pending_spill_s = total_time
            self._pending_compute_mark = stats.compute_time_s
            self._pending_record_index = len(self.records)
        self.records.append(record)
        return record

    # ------------------------------------------------------------------
    # rollback
    # ------------------------------------------------------------------
    def rollback(self, failed_round_index: int) -> int:
        """Restore the live checkpoint; returns its round index.

        ``failed_round_index`` is the round counter at the failure, so
        ``failed - checkpointed`` completed rounds are discarded; those
        plus the aborted attempt land in ``rollback_replay_rounds``.
        Work and time counters are deliberately *not* restored (the
        aborted work really happened); the time lost since the
        checkpoint is attributed to ``recovery_time_s``, and survivors'
        state reload is charged as h2d traffic.
        """
        if self._scalars is None:
            raise SimulationError("rollback without a checkpoint")
        stats = self.machine.stats
        # An overlapped spill still in flight belongs to the checkpoint
        # we are rolling back TO — settle it first (its exposed
        # remainder is checkpoint overhead, not lost work, so it is
        # carved out of the delta below).
        _, exposed = self._settle_pending()
        lost = (
            (stats.compute_time_s - self._time_mark[0])
            + (stats.transfer_time_s - self._time_mark[1] - exposed)
            + (stats.async_comm_time_s - self._time_mark[2])
        )
        if lost > 0:
            stats.recovery_time_s += lost

        arrays = self.client.vertex_arrays()
        if (
            self.store is not None
            and getattr(self.policy, "durability", "none")
            == "durable-verify"
        ):
            # Restore from the durable pages instead of trusting the
            # in-memory shadow: every checksum is verified on the way
            # back in, and a damaged newest checkpoint falls back to
            # the previous intact one (a deeper rollback).
            loaded = self.store.load_best()
            self.last_checkpoint_round = loaded.round_index
            self._rounds_mark = loaded.rounds_mark
            self._incrementals_since_full = (
                loaded.incrementals_since_full
            )
            for name in arrays:
                self._shadow[name] = loaded.arrays[name].copy()
            self._scalars = loaded.scalars
        for name, arr in arrays.items():
            arr[:] = self._shadow[name]
        self.client.restore_scalars(copy.deepcopy(self._scalars))
        if (
            self.store is not None
            and getattr(self.policy, "durability", "none")
            == "durable-verify"
        ):
            # A deeper fallback may have restored an older placement.
            self._shadow_vertex_gpu = np.asarray(
                self.client.vertex_gpu()
            ).copy()

        # Survivors reload their full vertex state from the host copy;
        # a dead GPU's share is gone with it (its partitions' reload is
        # accounted by the redistribution path instead).
        bytes_per_vertex = sum(arr.itemsize for arr in arrays.values())
        vertex_gpu = self._shadow_vertex_gpu
        for gpu in self.machine.live_gpu_ids():
            owned = int(np.count_nonzero(vertex_gpu == gpu))
            if owned:
                self.machine.checkpoint_restore(
                    gpu, owned * bytes_per_vertex
                )

        replayed = max(
            failed_round_index - int(self.last_checkpoint_round), 0
        ) + 1
        stats.rollback_replay_rounds += replayed
        stats.rounds_rolled_back += 1
        # Convergence budget: replayed rounds don't consume it.
        stats.rounds = self._rounds_mark
        # Re-mark time so a second rollback from this same checkpoint
        # doesn't re-attribute this restore's cost as lost work.
        self._time_mark = (
            stats.compute_time_s,
            stats.transfer_time_s,
            stats.async_comm_time_s,
        )
        return int(self.last_checkpoint_round)

    # ------------------------------------------------------------------
    # whole-job restart
    # ------------------------------------------------------------------
    def resume_from_store(self):
        """Reload the last durable checkpoint into a *fresh* run.

        Called once, before the engine's first round, in a new process
        standing in for the crashed one: verifies and materializes the
        newest intact checkpoint from the durable store, installs it as
        the live in-memory checkpoint (shadow + scalars), restores the
        client's arrays and scalar state, re-kills the GPUs that were
        already dead, and charges the survivors' h2d state reload.
        Returns the :class:`~repro.faults.store.LoadedCheckpoint`; the
        engine resumes its round loop at ``loaded.round_index``
        (``due`` is False there, so the reloaded state is not
        redundantly re-spilled).
        """
        if self.store is None:
            raise SimulationError(
                "resume_from_store requires durability != 'none'"
            )
        loaded = self.store.load_best()
        arrays = self.client.vertex_arrays()
        for name, arr in arrays.items():
            if name not in loaded.arrays:
                from repro.errors import CheckpointStoreError

                raise CheckpointStoreError(
                    f"store has no page for array {name!r}",
                    run_dir=self.store.run_dir,
                    checkpoint=loaded.round_index,
                    kind="missing-page",
                )
            arr[:] = loaded.arrays[name]
            self._shadow[name] = loaded.arrays[name].copy()
        self.client.restore_scalars(copy.deepcopy(loaded.scalars))
        self._scalars = loaded.scalars
        self.last_checkpoint_round = loaded.round_index
        self._incrementals_since_full = loaded.incrementals_since_full
        for gpu in loaded.dead_gpus:
            if gpu not in self.machine.dead_gpus:
                self.machine.kill_gpu(gpu)
        stats = self.machine.stats
        stats.rounds = loaded.rounds_mark
        self._rounds_mark = loaded.rounds_mark
        # Survivors reload their state h2d, same accounting as an
        # in-run rollback restore.
        vertex_gpu = np.asarray(self.client.vertex_gpu())
        self._shadow_vertex_gpu = vertex_gpu.copy()
        bytes_per_vertex = sum(
            arr.itemsize for arr in arrays.values()
        )
        for gpu in self.machine.live_gpu_ids():
            owned = int(np.count_nonzero(vertex_gpu == gpu))
            if owned:
                self.machine.checkpoint_restore(
                    gpu, owned * bytes_per_vertex
                )
        self._time_mark = (
            stats.compute_time_s,
            stats.transfer_time_s,
            stats.async_comm_time_s,
        )
        return loaded
