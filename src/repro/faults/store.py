"""Durable crash-consistent checkpoint store (``repro resume`` / ``repro scrub``).

PRs 3-4 and 8 keep every checkpoint in an in-memory host shadow — good
for in-run rollback, useless against whole-process death. This module
is the on-disk half of the checkpoint story: a run directory holding
per-checkpoint **array pages** plus a **write-ahead JSON manifest**
committed atomically, so a job killed at *any* instant can be restarted
from the last durable round (``repro resume``) and certified
bit-identical to the uninterrupted run.

Layout under ``run_dir``::

    run.json           # workload header (how to rebuild the run)
    MANIFEST.json      # write-ahead manifest, the single commit point
    ckpt-000000/       # one directory per checkpoint
        values.page    # raw array bytes (zlib'd cold pages end in .z)
        active.page
        ...
        scalars.pkl    # pickled non-vertex state (ledgers, placement)

Crash-consistency rules:

- **Pages first, manifest last.** A checkpoint's pages are fully
  written before its manifest entry exists; the manifest is written to
  a temp file and ``os.replace``'d — the rename *is* the commit. A
  crash mid-spill or mid-commit leaves an orphan page directory and/or
  a stale temp file, never a manifest that references missing bytes.
- **Checksums everywhere.** Every page records the sha256 of its
  *uncompressed* payload; the manifest embeds a self-checksum over its
  canonical JSON payload. Torn writes (short file) and bit rot
  (flipped byte) are therefore always *detected* — silent acceptance
  of a corrupt page is a bug the storage-fault tests pin.
- **Copy-on-write compaction.** Cold pages (every checkpoint but the
  newest) are compressed to ``<page>.z`` *before* the manifest commit
  that starts referencing them; the uncompressed originals are removed
  only *after* the commit succeeds. A crash anywhere in between leaves
  both variants on disk and a manifest that references exactly one.
- **Retention/GC.** Only the newest ``retain`` checkpoints are kept,
  stretched back to the nearest full checkpoint so incremental delta
  chains stay restorable; superseded directories are deleted after the
  commit that un-references them.

Reads (:meth:`CheckpointStore.load_best`) walk checkpoints newest-first
and fall back to the previous intact one on any verification failure,
collecting structured findings; :meth:`CheckpointStore.scrub` audits a
whole run directory (orphan directories, stale manifest entries, torn/
rotten pages, stale temp files) and optionally repairs it by dropping
damaged checkpoints. Everything raises
:class:`~repro.errors.CheckpointStoreError` with structured fields —
never a bare ``KeyError``/``JSONDecodeError``.

Storage faults are injected through
:meth:`~repro.faults.injector.FaultInjector.on_store_write`: the store
reports each page write and manifest commit, and applies whatever
damage the plan scheduled (torn write, bit rot, loss, or a mid-write
whole-job crash).
"""

from __future__ import annotations

import json
import os
import pickle
import shutil
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import CheckpointStoreError, InjectedCrashError
from repro.storage import pages as pagelib

#: Manifest format version (bumped on layout changes).
STORE_FORMAT = 1

MANIFEST_NAME = "MANIFEST.json"
HEADER_NAME = "run.json"
SCALARS_NAME = "scalars.pkl"

#: Serve-journal file (append-only, one JSON line per completed batch).
SERVE_JOURNAL_NAME = "serve_journal.jsonl"


def _ckpt_dirname(round_index: int) -> str:
    return f"ckpt-{round_index:06d}"


@dataclass
class LoadedCheckpoint:
    """One fully materialized (checksum-verified) durable checkpoint."""

    round_index: int
    kind: str
    rounds_mark: int
    dead_gpus: Tuple[int, ...]
    incrementals_since_full: int
    arrays: Dict[str, np.ndarray]
    scalars: Dict
    #: Structured findings for newer checkpoints that were skipped as
    #: damaged on the way to this one (empty when the newest was intact).
    findings: List[CheckpointStoreError] = field(default_factory=list)


@dataclass
class ScrubReport:
    """Result of walking a run directory for corruption."""

    run_dir: str
    #: Rounds whose full restore chain verified end to end.
    intact_rounds: List[int]
    #: Structured corruption findings (empty = clean store).
    findings: List[CheckpointStoreError]
    #: Rounds dropped from the manifest by a repair pass.
    dropped_rounds: List[int] = field(default_factory=list)
    repaired: bool = False

    @property
    def clean(self) -> bool:
        return not self.findings


class ServeJournal:
    """Append-only batch journal for crashed-``QueryServer`` resume.

    One JSON line per *completed* batch, each wrapped with a sha256 of
    its canonical payload. The admission/event loop is deterministic
    given (trace, config), so a restarted server replays journaled
    batches from here — byte-identical statuses, digests, and timing —
    and only re-executes the batches the crash cut short. A torn final
    line (the crash landed mid-append) is dropped silently; a bad
    checksum anywhere *else* is real corruption and raises a structured
    :class:`~repro.errors.CheckpointStoreError`.
    """

    def __init__(self, path: str) -> None:
        self.path = str(path)

    def load(self) -> Dict[int, Dict]:
        """Verified journal records keyed by ``batch_id``."""
        if not os.path.exists(self.path):
            return {}
        with open(self.path, "rb") as fh:
            lines = fh.read().split(b"\n")
        records: Dict[int, Dict] = {}
        payload_lines = [ln for ln in lines if ln.strip()]
        for i, line in enumerate(payload_lines):
            try:
                wrapper = json.loads(line.decode("utf-8"))
                record = wrapper["record"]
                recorded = wrapper["sha256"]
                ok = pagelib.sha256_hex(
                    pagelib.canonical_json(record)
                ) == recorded
            except (
                json.JSONDecodeError, KeyError, TypeError,
                UnicodeDecodeError,
            ):
                ok = False
                record = None
            if not ok:
                if i == len(payload_lines) - 1:
                    break  # torn tail: the crash landed mid-append
                raise CheckpointStoreError(
                    f"serve journal line {i} corrupt",
                    page=os.path.basename(self.path),
                    kind="journal-corrupt",
                )
            records[int(record["batch_id"])] = record
        return records

    def append(self, record: Dict) -> None:
        wrapper = {"record": record, "sha256": pagelib.sha256_hex(
            pagelib.canonical_json(record)
        )}
        line = json.dumps(wrapper, sort_keys=True) + "\n"
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(line)
            fh.flush()
            os.fsync(fh.fileno())


class CheckpointStore:
    """Durable page + write-ahead-manifest checkpoint store."""

    def __init__(
        self,
        run_dir: str,
        retain: int = 2,
        compact: bool = True,
        injector=None,
    ) -> None:
        if retain < 1:
            raise CheckpointStoreError(
                "retain must be >= 1", run_dir=run_dir
            )
        self.run_dir = str(run_dir)
        self.retain = int(retain)
        self.compact = bool(compact)
        self.injector = injector
        os.makedirs(self.run_dir, exist_ok=True)
        # Writer-side counters (the store's own ledger — deliberately
        # not MachineStats fields, so committed baseline counter
        # snapshots stay stable).
        self.pages_written = 0
        self.page_bytes_raw = 0
        self.page_bytes_stored = 0
        self.manifest_commits = 0
        self.bytes_compacted_raw = 0
        self.bytes_compacted_stored = 0
        self.checkpoints_gcd = 0

    # ------------------------------------------------------------------
    # low-level fault-injectable writes
    # ------------------------------------------------------------------
    def _consult_injector(self, op: str, relpath: str):
        injector = self.injector
        if injector is None or not hasattr(injector, "on_store_write"):
            return None
        return injector.on_store_write(op, relpath)

    def _write_page_bytes(self, relpath: str, data: bytes) -> None:
        """Write one page file, then apply any scheduled storage fault.

        The fault lands *after* the nominal write (the damage models
        what the disk ended up holding): ``torn`` truncates the file,
        ``bitrot`` flips one byte, ``lost`` unlinks it, ``crash``
        leaves it torn and raises
        :class:`~repro.errors.InjectedCrashError` (the mid-spill crash
        point).
        """
        path = os.path.join(self.run_dir, relpath)
        with open(path, "wb") as fh:
            fh.write(data)
        fault = self._consult_injector("page", relpath)
        if fault is not None:
            pagelib.apply_file_fault(path, fault)
            if fault.kind == "crash":
                raise InjectedCrashError(
                    "whole-job crash during a checkpoint page spill",
                    crash_point="mid-spill",
                )

    def _commit_manifest(self, payload: Dict) -> None:
        """Atomically commit the manifest (temp file + rename).

        The wrap/temp-write/rename discipline is the shared one from
        :mod:`repro.storage.pages`; it is inlined here (rather than
        calling :func:`~repro.storage.pagelib.commit_json`) because the
        fault injector hooks *between* the temp write and the rename —
        a scheduled ``crash`` fault leaves the temp file in place and
        skips the rename, exactly the mid-manifest-commit crash the
        restart tests sweep.
        """
        data = json.dumps(
            pagelib.wrap_payload(payload), sort_keys=True, indent=1
        ).encode("utf-8")
        final = os.path.join(self.run_dir, MANIFEST_NAME)
        tmp = final + ".tmp"
        with open(tmp, "wb") as fh:
            fh.write(data)
        fault = self._consult_injector("manifest", MANIFEST_NAME)
        if fault is not None and fault.kind == "crash":
            raise InjectedCrashError(
                "whole-job crash during a manifest commit",
                crash_point="mid-manifest",
            )
        if fault is not None and fault.kind in ("torn", "bitrot"):
            pagelib.apply_file_fault(tmp, fault)
        os.replace(tmp, final)
        if fault is not None and fault.kind == "lost":
            os.unlink(final)
        self.manifest_commits += 1

    # ------------------------------------------------------------------
    # header (how to rebuild the run for `repro resume`)
    # ------------------------------------------------------------------
    def write_header(self, header: Dict) -> None:
        """Commit the run header (workload metadata) atomically."""
        pagelib.commit_json(
            os.path.join(self.run_dir, HEADER_NAME), header
        )

    def read_header(self) -> Dict:
        path = os.path.join(self.run_dir, HEADER_NAME)
        try:
            return pagelib.read_wrapped_json(path)
        except FileNotFoundError:
            raise CheckpointStoreError(
                "run header missing",
                run_dir=self.run_dir,
                page=HEADER_NAME,
                kind="header-lost",
            ) from None
        except pagelib.PageIntegrityError as exc:
            if exc.reason == "checksum":
                raise CheckpointStoreError(
                    "run header checksum mismatch",
                    run_dir=self.run_dir,
                    page=HEADER_NAME,
                    kind="header-corrupt",
                ) from None
            raise CheckpointStoreError(
                f"run header unreadable: {exc}",
                run_dir=self.run_dir,
                page=HEADER_NAME,
                kind="header-torn",
            ) from None

    # ------------------------------------------------------------------
    # manifest
    # ------------------------------------------------------------------
    def _empty_payload(self) -> Dict:
        return {"format": STORE_FORMAT, "checkpoints": []}

    def load_manifest(self) -> Dict:
        """Read and verify the committed manifest payload."""
        path = os.path.join(self.run_dir, MANIFEST_NAME)
        try:
            payload = pagelib.read_wrapped_json(path)
        except FileNotFoundError:
            raise CheckpointStoreError(
                "manifest missing (lost, or no checkpoint ever committed)",
                run_dir=self.run_dir,
                page=MANIFEST_NAME,
                kind="manifest-lost",
            ) from None
        except pagelib.PageIntegrityError as exc:
            if exc.reason == "checksum":
                raise CheckpointStoreError(
                    "manifest checksum mismatch (bit rot)",
                    run_dir=self.run_dir,
                    page=MANIFEST_NAME,
                    kind="manifest-corrupt",
                ) from None
            raise CheckpointStoreError(
                f"manifest unreadable (torn write?): {exc}",
                run_dir=self.run_dir,
                page=MANIFEST_NAME,
                kind="manifest-torn",
            ) from None
        if payload.get("format") != STORE_FORMAT:
            raise CheckpointStoreError(
                f"unsupported manifest format {payload.get('format')!r}",
                run_dir=self.run_dir,
                page=MANIFEST_NAME,
                kind="manifest-format",
            )
        return payload

    def _load_payload_for_append(self) -> Dict:
        """The manifest to append to — empty when none was committed."""
        try:
            return self.load_manifest()
        except CheckpointStoreError as exc:
            if exc.kind == "manifest-lost":
                return self._empty_payload()
            raise

    # ------------------------------------------------------------------
    # committing checkpoints
    # ------------------------------------------------------------------
    def commit_checkpoint(
        self,
        round_index: int,
        kind: str,
        arrays: Dict[str, np.ndarray],
        dirty_by_array: Optional[Dict[str, np.ndarray]],
        scalars: Dict,
        rounds_mark: int,
        dead_gpus,
        incrementals_since_full: int,
    ) -> Dict:
        """Write one checkpoint's pages, then commit the manifest.

        ``kind`` is ``"full"`` (pages hold whole arrays) or
        ``"incremental"`` (pages hold ``int64`` dirty indices followed
        by the dirty values, against the previous checkpoint in the
        chain). Retention, compaction, and GC of superseded checkpoints
        ride the same single manifest commit.
        """
        payload = self._load_payload_for_append()
        ckpt_dir = _ckpt_dirname(round_index)
        abs_dir = os.path.join(self.run_dir, ckpt_dir)
        if os.path.exists(abs_dir):
            # A crashed earlier attempt (or a replayed round) left a
            # stale directory; this commit fully replaces it.
            shutil.rmtree(abs_dir)
        os.makedirs(abs_dir)

        pages: Dict[str, Dict] = {}
        for name in sorted(arrays):
            arr = np.ascontiguousarray(arrays[name])
            if kind == "full" or dirty_by_array is None:
                data = arr.tobytes()
                page_kind = "full"
                count = int(arr.shape[0])
            else:
                idx = np.flatnonzero(
                    np.asarray(dirty_by_array[name], dtype=bool)
                ).astype(np.int64)
                data = idx.tobytes() + arr[idx].tobytes()
                page_kind = "delta"
                count = int(idx.shape[0])
            fname = f"{name}.page"
            self._write_page_bytes(os.path.join(ckpt_dir, fname), data)
            self.pages_written += 1
            self.page_bytes_raw += len(data)
            self.page_bytes_stored += len(data)
            pages[name] = {
                "file": fname,
                "sha256": pagelib.sha256_hex(data),
                "dtype": str(arr.dtype),
                "shape": [int(s) for s in arr.shape],
                "page_kind": page_kind,
                "count": count,
                "raw_bytes": len(data),
                "stored_bytes": len(data),
                "compressed": False,
            }

        scalar_bytes = pickle.dumps(scalars, protocol=4)
        self._write_page_bytes(
            os.path.join(ckpt_dir, SCALARS_NAME), scalar_bytes
        )
        self.pages_written += 1
        self.page_bytes_raw += len(scalar_bytes)
        self.page_bytes_stored += len(scalar_bytes)
        entry = {
            "round": int(round_index),
            "kind": kind,
            "dir": ckpt_dir,
            "rounds_mark": int(rounds_mark),
            "dead_gpus": sorted(int(g) for g in dead_gpus),
            "incrementals_since_full": int(incrementals_since_full),
            "pages": pages,
            "scalars": {
                "file": SCALARS_NAME,
                "sha256": pagelib.sha256_hex(scalar_bytes),
                "raw_bytes": len(scalar_bytes),
                "stored_bytes": len(scalar_bytes),
                "compressed": False,
            },
        }

        checkpoints = [
            e for e in payload["checkpoints"]
            if e["round"] != int(round_index)
        ]
        checkpoints.append(entry)
        checkpoints.sort(key=lambda e: e["round"])
        kept, dropped = self._apply_retention(checkpoints)
        compact_cleanup = (
            self._compact_cold(kept) if self.compact else []
        )
        payload["checkpoints"] = kept
        self._commit_manifest(payload)

        # Post-commit cleanup: superseded checkpoint directories and
        # the uncompressed originals of freshly compacted pages. A
        # crash before this point leaves orphans (never dangling
        # references); `scrub` reports and removes them.
        for e in dropped:
            self.checkpoints_gcd += 1
            shutil.rmtree(
                os.path.join(self.run_dir, e["dir"]), ignore_errors=True
            )
        for relpath in compact_cleanup:
            try:
                os.unlink(os.path.join(self.run_dir, relpath))
            except OSError:
                pass
        return entry

    def _apply_retention(
        self, checkpoints: List[Dict]
    ) -> Tuple[List[Dict], List[Dict]]:
        """Split into (kept, dropped) under the retention window.

        The newest ``retain`` checkpoints survive; the window then
        stretches back to the nearest full checkpoint so every kept
        incremental still has its restore chain.
        """
        if len(checkpoints) <= self.retain:
            return checkpoints, []
        cut = len(checkpoints) - self.retain
        while cut > 0 and checkpoints[cut]["kind"] != "full":
            cut -= 1
        return checkpoints[cut:], checkpoints[:cut]

    def _compact_cold(self, checkpoints: List[Dict]) -> List[str]:
        """Compress cold pages copy-on-write; returns originals to GC.

        Every checkpoint except the newest is cold. Compressed variants
        are written *next to* the originals before the manifest commit
        references them; the caller unlinks the originals only after
        the commit succeeds.
        """
        cleanup: List[str] = []
        for entry in checkpoints[:-1]:
            page_entries = list(entry["pages"].values())
            page_entries.append(entry["scalars"])
            for page in page_entries:
                if page["compressed"]:
                    continue
                rel = os.path.join(entry["dir"], page["file"])
                path = os.path.join(self.run_dir, rel)
                try:
                    with open(path, "rb") as fh:
                        raw = fh.read()
                except OSError:
                    continue  # damaged/missing page: scrub's problem
                if (
                    len(raw) != page["raw_bytes"]
                    or pagelib.sha256_hex(raw) != page["sha256"]
                ):
                    continue  # never compact (and re-bless) a bad page
                packed = zlib.compress(raw, 6)
                zrel = rel + ".z"
                with open(
                    os.path.join(self.run_dir, zrel), "wb"
                ) as fh:
                    fh.write(packed)
                page["file"] = page["file"] + ".z"
                page["stored_bytes"] = len(packed)
                page["compressed"] = True
                self.bytes_compacted_raw += len(raw)
                self.bytes_compacted_stored += len(packed)
                self.page_bytes_stored += len(packed) - len(raw)
                cleanup.append(rel)
        return cleanup

    # ------------------------------------------------------------------
    # reading back
    # ------------------------------------------------------------------
    def _read_page(self, entry: Dict, page: Dict) -> bytes:
        """Read + verify one page; structured error on any damage."""
        rel = os.path.join(entry["dir"], page["file"])
        path = os.path.join(self.run_dir, rel)
        if not os.path.exists(path):
            raise CheckpointStoreError(
                "page missing",
                run_dir=self.run_dir,
                checkpoint=entry["round"],
                page=rel,
                kind="missing-page",
            )
        with open(path, "rb") as fh:
            stored = fh.read()
        if page["compressed"]:
            if len(stored) != page["stored_bytes"]:
                raise CheckpointStoreError(
                    f"compressed page torn "
                    f"({len(stored)} of {page['stored_bytes']} bytes)",
                    run_dir=self.run_dir,
                    checkpoint=entry["round"],
                    page=rel,
                    kind="torn",
                )
            try:
                data = zlib.decompress(stored)
            except zlib.error as exc:
                raise CheckpointStoreError(
                    f"compressed page undecodable: {exc}",
                    run_dir=self.run_dir,
                    checkpoint=entry["round"],
                    page=rel,
                    kind="bitrot",
                ) from exc
        else:
            data = stored
        if len(data) != page["raw_bytes"]:
            raise CheckpointStoreError(
                f"page torn ({len(data)} of {page['raw_bytes']} bytes)",
                run_dir=self.run_dir,
                checkpoint=entry["round"],
                page=rel,
                kind="torn",
            )
        if pagelib.sha256_hex(data) != page["sha256"]:
            raise CheckpointStoreError(
                "page checksum mismatch (bit rot)",
                run_dir=self.run_dir,
                checkpoint=entry["round"],
                page=rel,
                kind="bitrot",
            )
        return data

    def _restore_chain(
        self, payload: Dict, target: Dict
    ) -> List[Dict]:
        """Manifest entries from the last full checkpoint to ``target``."""
        chain: List[Dict] = []
        for entry in payload["checkpoints"]:
            if entry["round"] > target["round"]:
                continue
            chain.append(entry)
        chain.sort(key=lambda e: e["round"])
        # Trim to the last full checkpoint at or before the target.
        for i in range(len(chain) - 1, -1, -1):
            if chain[i]["kind"] == "full":
                return chain[i:]
        raise CheckpointStoreError(
            "no full checkpoint anchors this incremental chain",
            run_dir=self.run_dir,
            checkpoint=target["round"],
            kind="broken-chain",
        )

    def materialize(self, payload: Dict, target: Dict) -> LoadedCheckpoint:
        """Verify and rebuild the arrays/scalars of one checkpoint."""
        chain = self._restore_chain(payload, target)
        arrays: Dict[str, np.ndarray] = {}
        for entry in chain:
            for name in sorted(entry["pages"]):
                page = entry["pages"][name]
                data = self._read_page(entry, page)
                dtype = np.dtype(page["dtype"])
                if page["page_kind"] == "full":
                    arrays[name] = np.frombuffer(
                        data, dtype=dtype
                    ).reshape(page["shape"]).copy()
                else:
                    if name not in arrays:
                        raise CheckpointStoreError(
                            f"delta page {name!r} has no base array",
                            run_dir=self.run_dir,
                            checkpoint=entry["round"],
                            kind="broken-chain",
                        )
                    count = page["count"]
                    idx = np.frombuffer(
                        data[: count * 8], dtype=np.int64
                    )
                    vals = np.frombuffer(
                        data[count * 8:], dtype=dtype
                    )
                    arrays[name][idx] = vals
        scalars = pickle.loads(self._read_page(target, target["scalars"]))
        return LoadedCheckpoint(
            round_index=int(target["round"]),
            kind=target["kind"],
            rounds_mark=int(target["rounds_mark"]),
            dead_gpus=tuple(target["dead_gpus"]),
            incrementals_since_full=int(
                target["incrementals_since_full"]
            ),
            arrays=arrays,
            scalars=scalars,
        )

    def load_best(self) -> LoadedCheckpoint:
        """Newest checkpoint whose whole restore chain verifies.

        Damaged newer checkpoints are skipped (recorded as structured
        findings on the returned object); if nothing verifies the
        structured error names every casualty.
        """
        payload = self.load_manifest()
        findings: List[CheckpointStoreError] = []
        for entry in sorted(
            payload["checkpoints"],
            key=lambda e: e["round"],
            reverse=True,
        ):
            try:
                loaded = self.materialize(payload, entry)
            except CheckpointStoreError as exc:
                findings.append(exc)
                continue
            loaded.findings = findings
            return loaded
        raise CheckpointStoreError(
            "no intact checkpoint in store"
            + (
                f"; damage: {'; '.join(str(f) for f in findings)}"
                if findings
                else " (manifest lists none)"
            ),
            run_dir=self.run_dir,
            kind="no-intact-checkpoint",
        )

    # ------------------------------------------------------------------
    # scrub
    # ------------------------------------------------------------------
    def scrub(self, repair: bool = False) -> ScrubReport:
        """Audit the whole run directory; optionally repair it.

        Detects torn/rotten/missing pages, broken delta chains, stale
        manifest entries (directory gone), orphan checkpoint
        directories (on disk but unreferenced — the residue of a
        mid-spill crash), and a stale manifest temp file (mid-commit
        crash). ``repair=True`` drops damaged checkpoints from the
        manifest — falling back to the previous intact one — deletes
        orphans, and recommits; it raises when *nothing* intact
        remains (there is no state to fall back to).
        """
        findings: List[CheckpointStoreError] = []
        intact: List[Dict] = []
        dropped: List[Dict] = []
        try:
            payload = self.load_manifest()
        except CheckpointStoreError as exc:
            findings.append(exc)
            payload = None

        if payload is not None:
            for entry in payload["checkpoints"]:
                abs_dir = os.path.join(self.run_dir, entry["dir"])
                if not os.path.isdir(abs_dir):
                    findings.append(CheckpointStoreError(
                        "manifest references a missing checkpoint "
                        "directory (stale manifest)",
                        run_dir=self.run_dir,
                        checkpoint=entry["round"],
                        page=entry["dir"],
                        kind="stale-manifest",
                    ))
                    dropped.append(entry)
                    continue
                try:
                    self.materialize(payload, entry)
                except CheckpointStoreError as exc:
                    findings.append(exc)
                    dropped.append(entry)
                else:
                    intact.append(entry)

        referenced = {
            e["dir"] for e in (payload["checkpoints"] if payload else [])
        }
        orphans: List[str] = []
        for name in sorted(os.listdir(self.run_dir)):
            if name.startswith("ckpt-") and name not in referenced:
                orphans.append(name)
                findings.append(CheckpointStoreError(
                    "orphan checkpoint directory (unreferenced by the "
                    "manifest — a crashed mid-spill commit)",
                    run_dir=self.run_dir,
                    page=name,
                    kind="orphan",
                ))
        stale_tmp = os.path.join(self.run_dir, MANIFEST_NAME + ".tmp")
        if os.path.exists(stale_tmp):
            findings.append(CheckpointStoreError(
                "stale manifest temp file (crashed mid-commit; the "
                "rename never happened)",
                run_dir=self.run_dir,
                page=MANIFEST_NAME + ".tmp",
                kind="stale-tmp",
            ))

        report = ScrubReport(
            run_dir=self.run_dir,
            intact_rounds=[e["round"] for e in intact],
            findings=findings,
            dropped_rounds=[e["round"] for e in dropped],
        )
        if not repair or not findings:
            return report

        if payload is None:
            raise CheckpointStoreError(
                "cannot repair: manifest itself is lost or corrupt",
                run_dir=self.run_dir,
                kind="unrepairable",
            )
        if not intact:
            raise CheckpointStoreError(
                "cannot repair: no intact checkpoint to fall back to",
                run_dir=self.run_dir,
                kind="unrepairable",
            )
        payload["checkpoints"] = intact
        self._commit_manifest(payload)
        for entry in dropped:
            shutil.rmtree(
                os.path.join(self.run_dir, entry["dir"]),
                ignore_errors=True,
            )
        for name in orphans:
            shutil.rmtree(
                os.path.join(self.run_dir, name), ignore_errors=True
            )
        if os.path.exists(stale_tmp):
            os.unlink(stale_tmp)
        report.repaired = True
        return report
