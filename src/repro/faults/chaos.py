"""Chaos harness: prove recovered runs converge to the fault-free state.

One *chaos cell* is (algorithm, engine, fault plan): the harness runs
the algorithm fault-free to get the golden fixed point, replays it under
the plan with recovery enabled, and certifies through the
:mod:`repro.verify` oracle that the recovered run

- converged,
- satisfies the program's own fixed-point equations, and
- matches the golden states (exactly for discrete programs, within the
  cross-engine tolerance band for contractions).

:func:`chaos_sweep` runs a grid of cells (algorithms x engines x seeds);
the ``repro chaos`` CLI wraps it. :func:`recovery_digest` hashes the
injector trace together with the final states — two runs of the same
seeded cell must produce identical digests (the determinism contract).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.algorithms import make_program
from repro.baselines.async_engine import AsyncEngine
from repro.baselines.bulk_sync import BulkSyncConfig, BulkSyncEngine
from repro.core.engine import DiGraphConfig, DiGraphEngine
from repro.core.variants import digraph_t, digraph_w
from repro.errors import ConfigurationError, ReproError
from repro.faults.injector import FaultInjector, TraceEvent
from repro.faults.plan import FaultPlan
from repro.faults.recovery import RecoveryPolicy
from repro.gpu.config import MachineSpec
from repro.verify.oracle import (
    CONTRACTION_ALGORITHMS,
    equivalence_band,
    states_equivalent,
)
from repro.verify.structural import check_fixed_point_reached

#: Engines the chaos harness drives from the DiGraph family (the fault
#: machinery lives in their shared runtime). ``digraph-vec`` runs the
#: vectorized batch kernels under faults.
CHAOS_ENGINES = ("digraph", "digraph-t", "digraph-w", "digraph-vec")
#: Baseline comparators under the same fault plans (they share the
#: checkpoint manager through ``RecoveryPolicy.make_checkpoint_manager``).
BASELINE_CHAOS_ENGINES = ("bulk-sync", "bulk-sync-vec", "async")
ALL_CHAOS_ENGINES = CHAOS_ENGINES + BASELINE_CHAOS_ENGINES

#: Vectorized cells certify against their *scalar* sibling's golden run:
#: a recovered vectorized run must land on the scalar fixed point, the
#: strongest form of the batch-kernel equivalence contract under faults.
_SCALAR_GOLDEN = {"digraph-vec": "digraph", "bulk-sync-vec": "bulk-sync"}


def _chaos_engine(name: str, machine: Optional[MachineSpec]):
    config = DiGraphConfig()
    if name == "digraph":
        return DiGraphEngine(machine, config)
    if name == "digraph-t":
        return digraph_t(machine, config)
    if name == "digraph-w":
        return digraph_w(machine, config)
    if name == "digraph-vec":
        return DiGraphEngine(
            machine, replace(config, use_vectorized_kernels=True)
        )
    if name == "bulk-sync":
        return BulkSyncEngine(machine_spec=machine)
    if name == "bulk-sync-vec":
        return BulkSyncEngine(
            machine_spec=machine,
            config=BulkSyncConfig(use_vectorized_kernels=True),
        )
    if name == "async":
        return AsyncEngine(machine_spec=machine)
    raise ConfigurationError(
        f"chaos engine must be one of {ALL_CHAOS_ENGINES}, got {name!r}"
    )


def recovery_digest(
    trace: Sequence[TraceEvent], states: np.ndarray
) -> str:
    """Hash an injector trace + final states (determinism fingerprint)."""
    digest = hashlib.sha256()
    for event in trace:
        digest.update(str(event).encode())
        digest.update(b"\n")
    digest.update(np.ascontiguousarray(states, dtype=np.float64).tobytes())
    return digest.hexdigest()


def state_digest(states: np.ndarray, band: float = 0.0) -> str:
    """sha256 fingerprint of a state vector.

    With ``band == 0`` (discrete programs) the digest covers the raw
    float64 bytes, so digest equality *is* bit-equality. A positive band
    (contraction programs certified within a tolerance) quantizes to the
    band grid first; two states within band/2 of each other digest
    identically except at grid boundaries — the chaos report pairs the
    digests with the exact :func:`states_equivalent` verdict rather than
    replacing it.
    """
    arr = np.ascontiguousarray(states, dtype=np.float64)
    if band > 0.0:
        quantized = np.round(arr / band)
        finite = np.isfinite(quantized)
        out = np.where(finite, quantized, 0.0).astype(np.int64)
        digest = hashlib.sha256()
        digest.update(out.tobytes())
        # Non-finite sentinels (unreached +inf, NaN poison) hash by kind.
        digest.update(np.isnan(arr).tobytes())
        digest.update(np.isposinf(arr).tobytes())
        digest.update(np.isneginf(arr).tobytes())
        return digest.hexdigest()
    return hashlib.sha256(arr.tobytes()).hexdigest()


@dataclass
class ChaosCellResult:
    """Outcome of one (algorithm, engine, plan) chaos cell."""

    algorithm: str
    engine: str
    seed: Optional[int]
    passed: bool
    detail: str
    faults_injected: int = 0
    transfer_retries: int = 0
    sync_retries: int = 0
    stragglers_detected: int = 0
    gpu_failures: int = 0
    rounds_rolled_back: int = 0
    recovery_time_s: float = 0.0
    trace_digest: str = ""
    error: Optional[str] = None
    # Checkpoint lifecycle (overhead vs recovery-time tradeoff).
    checkpoints_taken: int = 0
    incremental_checkpoints_taken: int = 0
    checkpoint_bytes_spilled: int = 0
    checkpoint_time_s: float = 0.0
    #: Spill seconds hidden under compute by double-buffered overlap.
    checkpoint_hidden_time_s: float = 0.0
    rollback_replay_rounds: int = 0
    # State digests: recovered must equal golden (bit-exact when the
    # equivalence band is 0, band-quantized otherwise).
    golden_digest: str = ""
    recovered_digest: str = ""
    digest_match: bool = False
    # Modeled end-to-end times, for the redistribution-policy comparison.
    golden_time_s: float = 0.0
    recovered_time_s: float = 0.0

    @property
    def label(self) -> str:
        return f"{self.algorithm}/{self.engine}/seed={self.seed}"


def run_chaos_cell(
    graph,
    algorithm: str,
    plan: FaultPlan,
    engine_name: str = "digraph",
    machine: Optional[MachineSpec] = None,
    recovery: Optional[RecoveryPolicy] = None,
    graph_name: str = "chaos",
    program_kwargs: Optional[Dict] = None,
    disable_recovery: bool = False,
) -> ChaosCellResult:
    """Golden run vs recovered faulted run for one cell.

    A fresh engine and program are built for each of the two runs (they
    cache graph-derived state and must not be shared). ``recovery``
    defaults to :class:`RecoveryPolicy`'s defaults; pass an explicit
    policy to tighten or disable individual mechanisms, or set
    ``disable_recovery`` to run the faulted leg with no recovery at all
    (the non-vacuity mode: injected faults are expected to surface as
    failures).
    """
    if disable_recovery:
        recovery = None
    else:
        recovery = recovery if recovery is not None else RecoveryPolicy()
    kwargs = dict(program_kwargs or {})

    golden_program = make_program(algorithm, graph, **kwargs)
    # Vectorized cells take their golden from the scalar sibling: the
    # recovered batched run must converge to the scalar fixed point.
    golden_engine = _chaos_engine(
        _SCALAR_GOLDEN.get(engine_name, engine_name), machine
    )
    golden = golden_engine.run(
        graph, golden_program, graph_name=graph_name
    )

    injector = FaultInjector(plan)
    program = make_program(algorithm, graph, **kwargs)
    engine = _chaos_engine(engine_name, machine)
    try:
        faulted = engine.run(
            graph,
            program,
            graph_name=graph_name,
            fault_injector=injector,
            recovery=recovery,
        )
    except ReproError as exc:
        return ChaosCellResult(
            algorithm=algorithm,
            engine=engine_name,
            seed=plan.seed,
            passed=False,
            detail=f"faulted run raised {type(exc).__name__}",
            faults_injected=injector.faults_injected,
            trace_digest=recovery_digest(
                injector.trace, np.zeros(0, dtype=np.float64)
            ),
            error=str(exc),
        )

    band = 0.0
    if algorithm in CONTRACTION_ALGORITHMS:
        band = equivalence_band(golden_program, graph)
    cmp = states_equivalent(golden.states, faulted.states, band)
    fixed = check_fixed_point_reached(program, graph, faulted.states)
    golden_digest = state_digest(golden.states, band)
    recovered_digest = state_digest(faulted.states, band)
    passed = bool(faulted.converged and cmp.passed and fixed.passed)
    if not faulted.converged:
        detail = "faulted run did not converge"
    elif not cmp.passed:
        detail = f"states diverge from golden: {cmp.detail}"
    elif not fixed.passed:
        detail = f"fixed point violated: {fixed.detail}"
    else:
        detail = cmp.detail
    stats = faulted.stats
    return ChaosCellResult(
        algorithm=algorithm,
        engine=engine_name,
        seed=plan.seed,
        passed=passed,
        detail=detail,
        faults_injected=injector.faults_injected,
        transfer_retries=stats.transfer_retries,
        sync_retries=stats.sync_retries,
        stragglers_detected=stats.stragglers_detected,
        gpu_failures=stats.gpu_failures,
        rounds_rolled_back=stats.rounds_rolled_back,
        recovery_time_s=stats.recovery_time_s,
        trace_digest=recovery_digest(injector.trace, faulted.states),
        checkpoints_taken=stats.checkpoints_taken,
        incremental_checkpoints_taken=stats.incremental_checkpoints_taken,
        checkpoint_bytes_spilled=stats.checkpoint_bytes_spilled,
        checkpoint_time_s=stats.checkpoint_time_s,
        checkpoint_hidden_time_s=stats.checkpoint_hidden_time_s,
        rollback_replay_rounds=stats.rollback_replay_rounds,
        golden_digest=golden_digest,
        recovered_digest=recovered_digest,
        digest_match=golden_digest == recovered_digest,
        golden_time_s=golden.stats.total_time_s,
        recovered_time_s=stats.total_time_s,
    )


def run_serve_chaos_cell(
    graph,
    algorithm: str = "mixed",
    kill_launch: int = 4,
    seed: int = 0,
    num_queries: int = 24,
    replay_on_fault: bool = True,
    machine: Optional[MachineSpec] = None,
    graph_name: str = "serve-chaos",
) -> ChaosCellResult:
    """GPU kill mid-query against the serving layer, digest-certified.

    The golden leg serves the seeded trace fault-free; the recovered leg
    kills GPU 0 at serve-wide launch ``kill_launch`` and (by default)
    replays the dead batch. The cell passes only when the fault actually
    fired, no query failed, and every served answer matches the golden
    run bit for bit (:func:`repro.serve.runner.serve_digest` equality).
    With ``replay_on_fault=False`` this is the non-vacuity leg: the kill
    must surface as cleanly failed queries and a digest mismatch.
    """
    # Imported lazily: repro.serve depends on repro.faults.plan, so a
    # module-level import here would be circular.
    from repro.serve.runner import run_serve_cell, serve_digest

    common = dict(
        seed=seed,
        num_queries=num_queries,
        machine=machine,
        graph=graph,
        use_cache=False,
    )
    golden = run_serve_cell(algorithm, graph_name, **common)
    recovered = run_serve_cell(
        algorithm,
        graph_name,
        kill_launch=kill_launch,
        replay_on_fault=replay_on_fault,
        **common,
    )
    golden_digest = serve_digest(golden)
    recovered_digest = serve_digest(recovered)
    digest_match = golden_digest == recovered_digest
    passed = bool(
        recovered.faults_injected > 0
        and not recovered.failed
        and digest_match
    )
    if recovered.faults_injected == 0:
        detail = f"vacuous: no fault fired at launch {kill_launch}"
    elif recovered.failed:
        detail = (
            f"{len(recovered.failed)} queries failed "
            f"(replay_on_fault={replay_on_fault})"
        )
    elif not digest_match:
        detail = "served answers diverge from fault-free golden run"
    else:
        detail = (
            f"{len(recovered.completed)} served answers match golden "
            f"after {recovered.replays}-query batch replay"
        )
    return ChaosCellResult(
        algorithm=f"serve-{algorithm}",
        engine="serve",
        seed=seed,
        passed=passed,
        detail=detail,
        faults_injected=recovered.faults_injected,
        gpu_failures=recovered.faults_injected,
        rounds_rolled_back=recovered.replays,
        recovery_time_s=max(
            0.0, recovered.gpu_busy_s - golden.gpu_busy_s
        ),
        trace_digest=recovered_digest,
        golden_digest=golden_digest,
        recovered_digest=recovered_digest,
        digest_match=digest_match,
        golden_time_s=golden.makespan_s,
        recovered_time_s=recovered.makespan_s,
        error=(
            None
            if not recovered.failed
            else recovered.failed[0].error
        ),
    )


def run_serve_storm_cell(
    graph,
    algorithm: str = "mixed",
    seed: int = 0,
    num_queries: int = 32,
    kills: int = 3,
    first_kill_at: int = 2,
    kill_spacing: int = 4,
    max_replays: int = 3,
    replay_backoff_us: float = 5.0,
    deadline_ms: Optional[float] = None,
    deadline_policy: str = "reject",
    max_queue: Optional[int] = None,
    brownout: bool = False,
    machine: Optional[MachineSpec] = None,
    graph_name: str = "serve-storm",
) -> ChaosCellResult:
    """A correlated fault storm against the serving layer.

    ``kills`` GPU deaths land on the serve-wide launch counter with
    ``kill_spacing`` between them — close enough that later kills
    strike *during the replay* of earlier ones (replays consume fresh
    launch indices). The cell certifies the ISSUE-8 contract: the
    server must either **fully recover to identical digests** (no
    overload knobs set: every answer matches the fault-free golden
    leg) or **degrade/shed deterministically with structured errors**
    (overload knobs set: the storm replayed twice yields byte-identical
    ``ServeReport.metrics()`` and serve digests, and every non-answered
    query carries a structured error) — never a hang, never an
    unstructured exception.
    """
    from repro.serve.query import QUERY_STATUSES
    from repro.serve.runner import run_serve_cell, serve_digest

    plan = FaultPlan.generate_storm(
        seed,
        (machine or MachineSpec()).num_gpus,
        kills=kills,
        first_kill_at=first_kill_at,
        kill_spacing=kill_spacing,
    )
    common = dict(
        seed=seed,
        num_queries=num_queries,
        machine=machine,
        graph=graph,
        use_cache=False,
        max_replays=max_replays,
        replay_backoff_us=replay_backoff_us,
        deadline_ms=deadline_ms,
        deadline_policy=deadline_policy,
        max_queue=max_queue,
        brownout=brownout,
    )
    overloaded = (
        deadline_ms is not None or max_queue is not None or brownout
    )

    def fail(detail: str, error: Optional[str]) -> ChaosCellResult:
        return ChaosCellResult(
            algorithm=f"serve-storm-{algorithm}",
            engine="serve",
            seed=seed,
            passed=False,
            detail=detail,
            error=error,
        )

    try:
        golden = run_serve_cell(algorithm, graph_name, **common)
        stormed = run_serve_cell(
            algorithm, graph_name, fault_plan=plan, **common
        )
        replayed = run_serve_cell(
            algorithm, graph_name, fault_plan=plan, **common
        )
    except ReproError as exc:
        return fail(
            f"storm raised {type(exc).__name__} instead of degrading",
            str(exc),
        )

    golden_digest = serve_digest(golden)
    storm_digest = serve_digest(stormed)
    deterministic = (
        storm_digest == serve_digest(replayed)
        and stormed.metrics() == replayed.metrics()
    )
    bad_status = [
        r for r in stormed.results if r.status not in QUERY_STATUSES
    ]
    unstructured = [
        r
        for r in stormed.results
        if r.status not in ("ok", "degraded") and not r.error
    ]
    recovered_identical = (
        not stormed.failed and storm_digest == golden_digest
    )
    if stormed.faults_injected == 0:
        passed, detail = False, "vacuous: storm injected no faults"
    elif bad_status:
        passed, detail = False, (
            f"unknown result status {bad_status[0].status!r}"
        )
    elif unstructured:
        passed, detail = False, (
            f"query {unstructured[0].query.query_id} ended "
            f"{unstructured[0].status!r} without a structured error"
        )
    elif not deterministic:
        passed, detail = False, (
            "storm replayed twice diverged (digest or metrics)"
        )
    elif not overloaded and not recovered_identical:
        passed, detail = False, (
            f"{len(stormed.failed)} queries failed and digests "
            "diverge from golden with full replay budget"
        )
    else:
        passed = True
        detail = (
            f"recovered identical digests after {stormed.replays} "
            f"lane replays"
            if recovered_identical
            else (
                f"degraded deterministically: "
                f"{len(stormed.degraded)} degraded, "
                f"{len(stormed.shed)} shed, "
                f"{len(stormed.rejected)} rejected, "
                f"{len(stormed.failed)} aborted — all structured"
            )
        )
    return ChaosCellResult(
        algorithm=f"serve-storm-{algorithm}",
        engine="serve",
        seed=seed,
        passed=passed,
        detail=detail,
        faults_injected=stormed.faults_injected,
        gpu_failures=stormed.faults_injected,
        rounds_rolled_back=stormed.replays,
        recovery_time_s=max(0.0, stormed.gpu_busy_s - golden.gpu_busy_s),
        trace_digest=storm_digest,
        golden_digest=golden_digest,
        recovered_digest=storm_digest,
        digest_match=storm_digest == golden_digest,
        golden_time_s=golden.makespan_s,
        recovered_time_s=stormed.makespan_s,
        error=(
            None
            if not stormed.failed
            else stormed.failed[0].error
        ),
    )


def chaos_sweep(
    graph,
    algorithms: Sequence[str],
    engine_names: Sequence[str] = ("digraph",),
    seeds: Sequence[int] = (0,),
    machine: Optional[MachineSpec] = None,
    recovery: Optional[RecoveryPolicy] = None,
    graph_name: str = "chaos",
    plan_options: Optional[Dict] = None,
    disable_recovery: bool = False,
    include_serve: bool = False,
    serve_kill_launch: int = 4,
    storm: bool = False,
    serve_storm_options: Optional[Dict] = None,
) -> List[ChaosCellResult]:
    """Run the chaos grid: algorithms x engines x seeds.

    ``plan_options`` are forwarded to :meth:`FaultPlan.generate` (fault
    rates, kill schedule); the number of GPUs is taken from ``machine``
    (or the default spec when None). ``include_serve`` appends one
    serving-layer kill/replay cell per seed
    (:func:`run_serve_chaos_cell` on a mixed-algorithm trace) so the
    query service faces the same sweep as the batch engines.

    ``storm=True`` switches the sweep to **correlated schedules**:
    engine cells run under :meth:`FaultPlan.generate_storm` plans
    (overlapping kills + link flaps; ``plan_options`` then feed the
    storm generator) and the serve cell becomes
    :func:`run_serve_storm_cell` (``serve_storm_options`` forwarded).
    """
    options = dict(plan_options or {})
    num_gpus = (machine or MachineSpec()).num_gpus
    results: List[ChaosCellResult] = []
    for seed in seeds:
        if storm:
            plan = FaultPlan.generate_storm(seed, num_gpus, **options)
        else:
            plan = FaultPlan.generate(seed, num_gpus, **options)
        for algorithm in algorithms:
            for engine_name in engine_names:
                results.append(
                    run_chaos_cell(
                        graph,
                        algorithm,
                        plan,
                        engine_name=engine_name,
                        machine=machine,
                        recovery=recovery,
                        graph_name=graph_name,
                        disable_recovery=disable_recovery,
                    )
                )
        if include_serve and storm:
            results.append(
                run_serve_storm_cell(
                    graph,
                    "mixed",
                    seed=seed,
                    machine=machine,
                    graph_name=graph_name,
                    **dict(serve_storm_options or {}),
                )
            )
        elif include_serve:
            results.append(
                run_serve_chaos_cell(
                    graph,
                    "mixed",
                    kill_launch=serve_kill_launch,
                    seed=seed,
                    replay_on_fault=not disable_recovery,
                    machine=machine,
                    graph_name=graph_name,
                )
            )
    return results
