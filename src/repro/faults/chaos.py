"""Chaos harness: prove recovered runs converge to the fault-free state.

One *chaos cell* is (algorithm, engine, fault plan): the harness runs
the algorithm fault-free to get the golden fixed point, replays it under
the plan with recovery enabled, and certifies through the
:mod:`repro.verify` oracle that the recovered run

- converged,
- satisfies the program's own fixed-point equations, and
- matches the golden states (exactly for discrete programs, within the
  cross-engine tolerance band for contractions).

:func:`chaos_sweep` runs a grid of cells (algorithms x engines x seeds);
the ``repro chaos`` CLI wraps it. :func:`recovery_digest` hashes the
injector trace together with the final states — two runs of the same
seeded cell must produce identical digests (the determinism contract).
"""

from __future__ import annotations

import hashlib
import os
import shutil
import tempfile
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.algorithms import make_program
from repro.baselines.async_engine import AsyncEngine
from repro.baselines.bulk_sync import BulkSyncConfig, BulkSyncEngine
from repro.core.engine import DiGraphConfig, DiGraphEngine
from repro.core.variants import digraph_t, digraph_w
from repro.errors import ConfigurationError, InjectedCrashError, ReproError
from repro.faults.injector import FaultInjector, TraceEvent
from repro.faults.plan import (
    STORAGE_CRASH,
    STORE_OP_MANIFEST,
    STORE_OP_PAGE,
    ComputeFault,
    FaultPlan,
    StorageFault,
)
from repro.faults.recovery import RecoveryPolicy
from repro.gpu.config import MachineSpec
from repro.verify.oracle import (
    CONTRACTION_ALGORITHMS,
    equivalence_band,
    states_equivalent,
)
from repro.verify.structural import check_fixed_point_reached

#: Engines the chaos harness drives from the DiGraph family (the fault
#: machinery lives in their shared runtime). ``digraph-vec`` runs the
#: vectorized batch kernels under faults.
CHAOS_ENGINES = ("digraph", "digraph-t", "digraph-w", "digraph-vec")
#: Baseline comparators under the same fault plans (they share the
#: checkpoint manager through ``RecoveryPolicy.make_checkpoint_manager``).
BASELINE_CHAOS_ENGINES = ("bulk-sync", "bulk-sync-vec", "async")
ALL_CHAOS_ENGINES = CHAOS_ENGINES + BASELINE_CHAOS_ENGINES

#: Vectorized cells certify against their *scalar* sibling's golden run:
#: a recovered vectorized run must land on the scalar fixed point, the
#: strongest form of the batch-kernel equivalence contract under faults.
_SCALAR_GOLDEN = {"digraph-vec": "digraph", "bulk-sync-vec": "bulk-sync"}


def _chaos_engine(name: str, machine: Optional[MachineSpec]):
    config = DiGraphConfig()
    if name == "digraph":
        return DiGraphEngine(machine, config)
    if name == "digraph-t":
        return digraph_t(machine, config)
    if name == "digraph-w":
        return digraph_w(machine, config)
    if name == "digraph-vec":
        return DiGraphEngine(
            machine, replace(config, use_vectorized_kernels=True)
        )
    if name == "bulk-sync":
        return BulkSyncEngine(machine_spec=machine)
    if name == "bulk-sync-vec":
        return BulkSyncEngine(
            machine_spec=machine,
            config=BulkSyncConfig(use_vectorized_kernels=True),
        )
    if name == "async":
        return AsyncEngine(machine_spec=machine)
    raise ConfigurationError(
        f"chaos engine must be one of {ALL_CHAOS_ENGINES}, got {name!r}"
    )


def recovery_digest(
    trace: Sequence[TraceEvent], states: np.ndarray
) -> str:
    """Hash an injector trace + final states (determinism fingerprint)."""
    digest = hashlib.sha256()
    for event in trace:
        digest.update(str(event).encode())
        digest.update(b"\n")
    digest.update(np.ascontiguousarray(states, dtype=np.float64).tobytes())
    return digest.hexdigest()


def state_digest(states: np.ndarray, band: float = 0.0) -> str:
    """sha256 fingerprint of a state vector.

    With ``band == 0`` (discrete programs) the digest covers the raw
    float64 bytes, so digest equality *is* bit-equality. A positive band
    (contraction programs certified within a tolerance) quantizes to the
    band grid first; two states within band/2 of each other digest
    identically except at grid boundaries — the chaos report pairs the
    digests with the exact :func:`states_equivalent` verdict rather than
    replacing it.
    """
    arr = np.ascontiguousarray(states, dtype=np.float64)
    if band > 0.0:
        quantized = np.round(arr / band)
        finite = np.isfinite(quantized)
        out = np.where(finite, quantized, 0.0).astype(np.int64)
        digest = hashlib.sha256()
        digest.update(out.tobytes())
        # Non-finite sentinels (unreached +inf, NaN poison) hash by kind.
        digest.update(np.isnan(arr).tobytes())
        digest.update(np.isposinf(arr).tobytes())
        digest.update(np.isneginf(arr).tobytes())
        return digest.hexdigest()
    return hashlib.sha256(arr.tobytes()).hexdigest()


@dataclass
class ChaosCellResult:
    """Outcome of one (algorithm, engine, plan) chaos cell."""

    algorithm: str
    engine: str
    seed: Optional[int]
    passed: bool
    detail: str
    faults_injected: int = 0
    transfer_retries: int = 0
    sync_retries: int = 0
    stragglers_detected: int = 0
    gpu_failures: int = 0
    rounds_rolled_back: int = 0
    recovery_time_s: float = 0.0
    trace_digest: str = ""
    error: Optional[str] = None
    # Checkpoint lifecycle (overhead vs recovery-time tradeoff).
    checkpoints_taken: int = 0
    incremental_checkpoints_taken: int = 0
    checkpoint_bytes_spilled: int = 0
    checkpoint_time_s: float = 0.0
    #: Spill seconds hidden under compute by double-buffered overlap.
    checkpoint_hidden_time_s: float = 0.0
    rollback_replay_rounds: int = 0
    # State digests: recovered must equal golden (bit-exact when the
    # equivalence band is 0, band-quantized otherwise).
    golden_digest: str = ""
    recovered_digest: str = ""
    digest_match: bool = False
    # Modeled end-to-end times, for the redistribution-policy comparison.
    golden_time_s: float = 0.0
    recovered_time_s: float = 0.0

    @property
    def label(self) -> str:
        return f"{self.algorithm}/{self.engine}/seed={self.seed}"


def run_chaos_cell(
    graph,
    algorithm: str,
    plan: FaultPlan,
    engine_name: str = "digraph",
    machine: Optional[MachineSpec] = None,
    recovery: Optional[RecoveryPolicy] = None,
    graph_name: str = "chaos",
    program_kwargs: Optional[Dict] = None,
    disable_recovery: bool = False,
) -> ChaosCellResult:
    """Golden run vs recovered faulted run for one cell.

    A fresh engine and program are built for each of the two runs (they
    cache graph-derived state and must not be shared). ``recovery``
    defaults to :class:`RecoveryPolicy`'s defaults; pass an explicit
    policy to tighten or disable individual mechanisms, or set
    ``disable_recovery`` to run the faulted leg with no recovery at all
    (the non-vacuity mode: injected faults are expected to surface as
    failures).
    """
    if disable_recovery:
        recovery = None
    else:
        recovery = recovery if recovery is not None else RecoveryPolicy()
    kwargs = dict(program_kwargs or {})

    golden_program = make_program(algorithm, graph, **kwargs)
    # Vectorized cells take their golden from the scalar sibling: the
    # recovered batched run must converge to the scalar fixed point.
    golden_engine = _chaos_engine(
        _SCALAR_GOLDEN.get(engine_name, engine_name), machine
    )
    golden = golden_engine.run(
        graph, golden_program, graph_name=graph_name
    )

    injector = FaultInjector(plan)
    program = make_program(algorithm, graph, **kwargs)
    engine = _chaos_engine(engine_name, machine)
    try:
        faulted = engine.run(
            graph,
            program,
            graph_name=graph_name,
            fault_injector=injector,
            recovery=recovery,
        )
    except ReproError as exc:
        return ChaosCellResult(
            algorithm=algorithm,
            engine=engine_name,
            seed=plan.seed,
            passed=False,
            detail=f"faulted run raised {type(exc).__name__}",
            faults_injected=injector.faults_injected,
            trace_digest=recovery_digest(
                injector.trace, np.zeros(0, dtype=np.float64)
            ),
            error=str(exc),
        )

    band = 0.0
    if algorithm in CONTRACTION_ALGORITHMS:
        band = equivalence_band(golden_program, graph)
    cmp = states_equivalent(golden.states, faulted.states, band)
    fixed = check_fixed_point_reached(program, graph, faulted.states)
    golden_digest = state_digest(golden.states, band)
    recovered_digest = state_digest(faulted.states, band)
    passed = bool(faulted.converged and cmp.passed and fixed.passed)
    if not faulted.converged:
        detail = "faulted run did not converge"
    elif not cmp.passed:
        detail = f"states diverge from golden: {cmp.detail}"
    elif not fixed.passed:
        detail = f"fixed point violated: {fixed.detail}"
    else:
        detail = cmp.detail
    stats = faulted.stats
    return ChaosCellResult(
        algorithm=algorithm,
        engine=engine_name,
        seed=plan.seed,
        passed=passed,
        detail=detail,
        faults_injected=injector.faults_injected,
        transfer_retries=stats.transfer_retries,
        sync_retries=stats.sync_retries,
        stragglers_detected=stats.stragglers_detected,
        gpu_failures=stats.gpu_failures,
        rounds_rolled_back=stats.rounds_rolled_back,
        recovery_time_s=stats.recovery_time_s,
        trace_digest=recovery_digest(injector.trace, faulted.states),
        checkpoints_taken=stats.checkpoints_taken,
        incremental_checkpoints_taken=stats.incremental_checkpoints_taken,
        checkpoint_bytes_spilled=stats.checkpoint_bytes_spilled,
        checkpoint_time_s=stats.checkpoint_time_s,
        checkpoint_hidden_time_s=stats.checkpoint_hidden_time_s,
        rollback_replay_rounds=stats.rollback_replay_rounds,
        golden_digest=golden_digest,
        recovered_digest=recovered_digest,
        digest_match=golden_digest == recovered_digest,
        golden_time_s=golden.stats.total_time_s,
        recovered_time_s=stats.total_time_s,
    )


def run_serve_chaos_cell(
    graph,
    algorithm: str = "mixed",
    kill_launch: int = 4,
    seed: int = 0,
    num_queries: int = 24,
    replay_on_fault: bool = True,
    machine: Optional[MachineSpec] = None,
    graph_name: str = "serve-chaos",
) -> ChaosCellResult:
    """GPU kill mid-query against the serving layer, digest-certified.

    The golden leg serves the seeded trace fault-free; the recovered leg
    kills GPU 0 at serve-wide launch ``kill_launch`` and (by default)
    replays the dead batch. The cell passes only when the fault actually
    fired, no query failed, and every served answer matches the golden
    run bit for bit (:func:`repro.serve.runner.serve_digest` equality).
    With ``replay_on_fault=False`` this is the non-vacuity leg: the kill
    must surface as cleanly failed queries and a digest mismatch.
    """
    # Imported lazily: repro.serve depends on repro.faults.plan, so a
    # module-level import here would be circular.
    from repro.serve.runner import run_serve_cell, serve_digest

    common = dict(
        seed=seed,
        num_queries=num_queries,
        machine=machine,
        graph=graph,
        use_cache=False,
    )
    golden = run_serve_cell(algorithm, graph_name, **common)
    recovered = run_serve_cell(
        algorithm,
        graph_name,
        kill_launch=kill_launch,
        replay_on_fault=replay_on_fault,
        **common,
    )
    golden_digest = serve_digest(golden)
    recovered_digest = serve_digest(recovered)
    digest_match = golden_digest == recovered_digest
    passed = bool(
        recovered.faults_injected > 0
        and not recovered.failed
        and digest_match
    )
    if recovered.faults_injected == 0:
        detail = f"vacuous: no fault fired at launch {kill_launch}"
    elif recovered.failed:
        detail = (
            f"{len(recovered.failed)} queries failed "
            f"(replay_on_fault={replay_on_fault})"
        )
    elif not digest_match:
        detail = "served answers diverge from fault-free golden run"
    else:
        detail = (
            f"{len(recovered.completed)} served answers match golden "
            f"after {recovered.replays}-query batch replay"
        )
    return ChaosCellResult(
        algorithm=f"serve-{algorithm}",
        engine="serve",
        seed=seed,
        passed=passed,
        detail=detail,
        faults_injected=recovered.faults_injected,
        gpu_failures=recovered.faults_injected,
        rounds_rolled_back=recovered.replays,
        recovery_time_s=max(
            0.0, recovered.gpu_busy_s - golden.gpu_busy_s
        ),
        trace_digest=recovered_digest,
        golden_digest=golden_digest,
        recovered_digest=recovered_digest,
        digest_match=digest_match,
        golden_time_s=golden.makespan_s,
        recovered_time_s=recovered.makespan_s,
        error=(
            None
            if not recovered.failed
            else recovered.failed[0].error
        ),
    )


def run_serve_storm_cell(
    graph,
    algorithm: str = "mixed",
    seed: int = 0,
    num_queries: int = 32,
    kills: int = 3,
    first_kill_at: int = 2,
    kill_spacing: int = 4,
    max_replays: int = 3,
    replay_backoff_us: float = 5.0,
    deadline_ms: Optional[float] = None,
    deadline_policy: str = "reject",
    max_queue: Optional[int] = None,
    brownout: bool = False,
    machine: Optional[MachineSpec] = None,
    graph_name: str = "serve-storm",
) -> ChaosCellResult:
    """A correlated fault storm against the serving layer.

    ``kills`` GPU deaths land on the serve-wide launch counter with
    ``kill_spacing`` between them — close enough that later kills
    strike *during the replay* of earlier ones (replays consume fresh
    launch indices). The cell certifies the ISSUE-8 contract: the
    server must either **fully recover to identical digests** (no
    overload knobs set: every answer matches the fault-free golden
    leg) or **degrade/shed deterministically with structured errors**
    (overload knobs set: the storm replayed twice yields byte-identical
    ``ServeReport.metrics()`` and serve digests, and every non-answered
    query carries a structured error) — never a hang, never an
    unstructured exception.
    """
    from repro.serve.query import QUERY_STATUSES
    from repro.serve.runner import run_serve_cell, serve_digest

    plan = FaultPlan.generate_storm(
        seed,
        (machine or MachineSpec()).num_gpus,
        kills=kills,
        first_kill_at=first_kill_at,
        kill_spacing=kill_spacing,
    )
    common = dict(
        seed=seed,
        num_queries=num_queries,
        machine=machine,
        graph=graph,
        use_cache=False,
        max_replays=max_replays,
        replay_backoff_us=replay_backoff_us,
        deadline_ms=deadline_ms,
        deadline_policy=deadline_policy,
        max_queue=max_queue,
        brownout=brownout,
    )
    overloaded = (
        deadline_ms is not None or max_queue is not None or brownout
    )

    def fail(detail: str, error: Optional[str]) -> ChaosCellResult:
        return ChaosCellResult(
            algorithm=f"serve-storm-{algorithm}",
            engine="serve",
            seed=seed,
            passed=False,
            detail=detail,
            error=error,
        )

    try:
        golden = run_serve_cell(algorithm, graph_name, **common)
        stormed = run_serve_cell(
            algorithm, graph_name, fault_plan=plan, **common
        )
        replayed = run_serve_cell(
            algorithm, graph_name, fault_plan=plan, **common
        )
    except ReproError as exc:
        return fail(
            f"storm raised {type(exc).__name__} instead of degrading",
            str(exc),
        )

    golden_digest = serve_digest(golden)
    storm_digest = serve_digest(stormed)
    deterministic = (
        storm_digest == serve_digest(replayed)
        and stormed.metrics() == replayed.metrics()
    )
    bad_status = [
        r for r in stormed.results if r.status not in QUERY_STATUSES
    ]
    unstructured = [
        r
        for r in stormed.results
        if r.status not in ("ok", "degraded") and not r.error
    ]
    recovered_identical = (
        not stormed.failed and storm_digest == golden_digest
    )
    if stormed.faults_injected == 0:
        passed, detail = False, "vacuous: storm injected no faults"
    elif bad_status:
        passed, detail = False, (
            f"unknown result status {bad_status[0].status!r}"
        )
    elif unstructured:
        passed, detail = False, (
            f"query {unstructured[0].query.query_id} ended "
            f"{unstructured[0].status!r} without a structured error"
        )
    elif not deterministic:
        passed, detail = False, (
            "storm replayed twice diverged (digest or metrics)"
        )
    elif not overloaded and not recovered_identical:
        passed, detail = False, (
            f"{len(stormed.failed)} queries failed and digests "
            "diverge from golden with full replay budget"
        )
    else:
        passed = True
        detail = (
            f"recovered identical digests after {stormed.replays} "
            f"lane replays"
            if recovered_identical
            else (
                f"degraded deterministically: "
                f"{len(stormed.degraded)} degraded, "
                f"{len(stormed.shed)} shed, "
                f"{len(stormed.rejected)} rejected, "
                f"{len(stormed.failed)} aborted — all structured"
            )
        )
    return ChaosCellResult(
        algorithm=f"serve-storm-{algorithm}",
        engine="serve",
        seed=seed,
        passed=passed,
        detail=detail,
        faults_injected=stormed.faults_injected,
        gpu_failures=stormed.faults_injected,
        rounds_rolled_back=stormed.replays,
        recovery_time_s=max(0.0, stormed.gpu_busy_s - golden.gpu_busy_s),
        trace_digest=storm_digest,
        golden_digest=golden_digest,
        recovered_digest=storm_digest,
        digest_match=storm_digest == golden_digest,
        golden_time_s=golden.makespan_s,
        recovered_time_s=stormed.makespan_s,
        error=(
            None
            if not stormed.failed
            else stormed.failed[0].error
        ),
    )


# ---------------------------------------------------------------------------
# whole-job crash / restart certification
# ---------------------------------------------------------------------------

#: Crash points swept by the crash-restart cells — the values
#: :class:`~repro.errors.InjectedCrashError` carries in ``crash_point``.
CRASH_POINTS = ("round-boundary", "mid-spill", "mid-manifest")


def _pages_per_checkpoint(engine_name: str) -> int:
    """Durable pages one checkpoint commit writes (incl. the scalars
    page): the DiGraph family spills six vertex arrays, the
    range-partitioned baselines two."""
    return 7 if engine_name in CHAOS_ENGINES else 3


def crash_plan(
    crash_point: str,
    engine_name: str = "digraph",
    crash_round: int = 1,
) -> FaultPlan:
    """Build a :class:`FaultPlan` that kills the whole job at
    ``crash_point``.

    ``"round-boundary"`` crashes at compute round ``crash_round`` (which
    must exist: the run has to take more than ``crash_round`` rounds or
    the plan is vacuous). ``"mid-spill"`` crashes on the second page of
    the *second* checkpoint commit and ``"mid-manifest"`` on its
    manifest commit — the first commit is deliberately spared, because a
    crash before anything durable exists leaves nothing to resume from
    (that case is the structured-error path, not a restart cell).
    """
    if crash_point == "round-boundary":
        if crash_round < 0:
            raise ConfigurationError("crash_round must be >= 0")
        return FaultPlan(
            compute_faults={int(crash_round): ComputeFault(crash=True)}
        )
    if crash_point == "mid-spill":
        index = _pages_per_checkpoint(engine_name) + 1
        return FaultPlan(
            storage_faults={
                index: StorageFault(STORAGE_CRASH, op=STORE_OP_PAGE)
            }
        )
    if crash_point == "mid-manifest":
        return FaultPlan(
            storage_faults={
                1: StorageFault(STORAGE_CRASH, op=STORE_OP_MANIFEST)
            }
        )
    raise ConfigurationError(
        f"crash_point must be one of {CRASH_POINTS}, got {crash_point!r}"
    )


def _durable_policy(
    recovery: Optional[RecoveryPolicy], run_dir: str
) -> RecoveryPolicy:
    base = recovery if recovery is not None else RecoveryPolicy()
    durability = (
        base.durability if base.durability != "none" else "durable"
    )
    return replace(base, durability=durability, run_dir=run_dir)


def run_crash_restart_cell(
    graph,
    algorithm: str,
    run_dir: str,
    crash_point: str = "round-boundary",
    engine_name: str = "digraph",
    machine: Optional[MachineSpec] = None,
    recovery: Optional[RecoveryPolicy] = None,
    graph_name: str = "crash-restart",
    program_kwargs: Optional[Dict] = None,
    crash_round: int = 1,
) -> ChaosCellResult:
    """Kill the whole job at an injected crash point, restart it from
    the durable store under ``run_dir``, and certify the resumed run
    **bit-identical** to the uninterrupted golden run.

    Three legs: (1) golden — same engine, same recovery policy but
    ``durability="none"``, no faults; (2) crashed — durable policy +
    :func:`crash_plan`, which must die with
    :class:`~repro.errors.InjectedCrashError` (completing instead fails
    the cell as vacuous); (3) resumed — a fresh engine with
    ``resume=True`` and *no* fault plan, restarting from the last intact
    durable checkpoint.

    Unlike :func:`run_chaos_cell`'s GPU-kill cells (where
    redistribution reorders float summation and contraction algorithms
    only match within the equivalence band), the resumed trajectory
    here *is* the golden trajectory — restart replays from a checkpoint
    of that same trajectory with identical placement — so the digest
    comparison is band 0 (bit-exact) for **every** algorithm.
    """
    durable = _durable_policy(recovery, run_dir)
    golden_policy = replace(durable, durability="none", run_dir="")
    kwargs = dict(program_kwargs or {})
    cell_algorithm = f"{algorithm}@{crash_point}"

    def fail(detail: str, error: Optional[str] = None) -> ChaosCellResult:
        return ChaosCellResult(
            algorithm=cell_algorithm,
            engine=engine_name,
            seed=None,
            passed=False,
            detail=detail,
            error=error,
        )

    golden_engine = _chaos_engine(engine_name, machine)
    golden_program = make_program(algorithm, graph, **kwargs)
    golden = golden_engine.run(
        graph, golden_program, graph_name=graph_name,
        recovery=golden_policy,
    )

    plan = crash_plan(crash_point, engine_name, crash_round)
    injector = FaultInjector(plan)
    engine = _chaos_engine(engine_name, machine)
    program = make_program(algorithm, graph, **kwargs)
    try:
        engine.run(
            graph, program, graph_name=graph_name,
            fault_injector=injector, recovery=durable,
        )
        return fail(
            f"vacuous: no crash fired at {crash_point} "
            f"(golden took {golden.stats.rounds} rounds)"
        )
    except InjectedCrashError:
        pass
    except ReproError as exc:
        return fail(
            f"crashed leg raised {type(exc).__name__} instead of "
            "InjectedCrashError",
            str(exc),
        )

    resume_engine = _chaos_engine(engine_name, machine)
    resume_program = make_program(algorithm, graph, **kwargs)
    try:
        resumed = resume_engine.run(
            graph, resume_program, graph_name=graph_name,
            recovery=durable, resume=True,
        )
    except ReproError as exc:
        return fail(f"resume raised {type(exc).__name__}", str(exc))

    fixed = check_fixed_point_reached(
        resume_program, graph, resumed.states
    )
    golden_digest = state_digest(golden.states, 0.0)
    resumed_digest = state_digest(resumed.states, 0.0)
    digest_match = golden_digest == resumed_digest
    passed = bool(resumed.converged and digest_match and fixed.passed)
    if not resumed.converged:
        detail = "resumed run did not converge"
    elif not digest_match:
        detail = (
            f"resumed states diverge bit-wise from golden after "
            f"{crash_point} crash"
        )
    elif not fixed.passed:
        detail = f"fixed point violated: {fixed.detail}"
    else:
        detail = (
            f"{crash_point} crash restarted bit-identical from the "
            "durable store"
        )
    stats = resumed.stats
    return ChaosCellResult(
        algorithm=cell_algorithm,
        engine=engine_name,
        seed=None,
        passed=passed,
        detail=detail,
        faults_injected=injector.faults_injected,
        gpu_failures=stats.gpu_failures,
        rounds_rolled_back=stats.rounds_rolled_back,
        recovery_time_s=stats.recovery_time_s,
        trace_digest=recovery_digest(injector.trace, resumed.states),
        checkpoints_taken=stats.checkpoints_taken,
        incremental_checkpoints_taken=stats.incremental_checkpoints_taken,
        checkpoint_bytes_spilled=stats.checkpoint_bytes_spilled,
        checkpoint_time_s=stats.checkpoint_time_s,
        checkpoint_hidden_time_s=stats.checkpoint_hidden_time_s,
        rollback_replay_rounds=stats.rollback_replay_rounds,
        golden_digest=golden_digest,
        recovered_digest=resumed_digest,
        digest_match=digest_match,
        golden_time_s=golden.stats.total_time_s,
        recovered_time_s=stats.total_time_s,
    )


def run_serve_crash_restart_cell(
    graph,
    run_dir: str,
    algorithm: str = "mixed",
    crash_launch: int = 12,
    seed: int = 0,
    num_queries: int = 24,
    machine: Optional[MachineSpec] = None,
    graph_name: str = "serve-crash",
) -> ChaosCellResult:
    """Whole-process crash mid-serve, restarted from the batch journal.

    The crashed leg journals every completed batch into
    ``run_dir/serve_journal.jsonl`` and dies with
    :class:`~repro.errors.InjectedCrashError` at serve-wide launch
    ``crash_launch``; the restarted leg replays journaled batches and
    re-executes only the tail. Passes when the crash actually fired and
    the restarted report's serve digest equals the uninterrupted golden
    run's — admitted-but-unanswered queries resume deterministically.
    """
    from repro.faults.store import SERVE_JOURNAL_NAME
    from repro.serve.runner import run_serve_cell, serve_digest

    journal_path = os.path.join(run_dir, SERVE_JOURNAL_NAME)
    common = dict(
        seed=seed,
        num_queries=num_queries,
        machine=machine,
        graph=graph,
        use_cache=False,
    )
    golden = run_serve_cell(algorithm, graph_name, **common)
    plan = FaultPlan(
        compute_faults={int(crash_launch): ComputeFault(crash=True)}
    )
    crashed = False
    try:
        run_serve_cell(
            algorithm, graph_name, fault_plan=plan,
            journal_path=journal_path, **common,
        )
    except InjectedCrashError:
        crashed = True
    if not crashed:
        return ChaosCellResult(
            algorithm=f"serve-crash-{algorithm}",
            engine="serve",
            seed=seed,
            passed=False,
            detail=(
                f"vacuous: no crash fired at launch {crash_launch} "
                f"(golden took {golden.launches} launches)"
            ),
        )
    resumed = run_serve_cell(
        algorithm, graph_name, journal_path=journal_path, **common
    )
    golden_digest = serve_digest(golden)
    resumed_digest = serve_digest(resumed)
    digest_match = golden_digest == resumed_digest
    passed = bool(digest_match and not resumed.failed)
    if not digest_match:
        detail = "restarted serve run diverges from golden"
    elif resumed.failed:
        detail = f"{len(resumed.failed)} queries failed after restart"
    else:
        from repro.faults.store import ServeJournal

        replayed = len(ServeJournal(journal_path).load())
        detail = (
            f"restart replayed {replayed} journaled batches and "
            f"re-served the tail bit-identical to golden"
        )
    return ChaosCellResult(
        algorithm=f"serve-crash-{algorithm}",
        engine="serve",
        seed=seed,
        passed=passed,
        detail=detail,
        faults_injected=1,
        trace_digest=resumed_digest,
        golden_digest=golden_digest,
        recovered_digest=resumed_digest,
        digest_match=digest_match,
        golden_time_s=golden.makespan_s,
        recovered_time_s=resumed.makespan_s,
    )


def _load_header_graph(header: Dict):
    """The graph a run header describes — sharded store or dataset."""
    from repro.graph import datasets

    graph_dir = header.get("graph_dir")
    if graph_dir:
        from repro.storage import ShardedGraph

        return ShardedGraph(graph_dir).materialize()
    return datasets.load(
        header["dataset"],
        scale=float(header.get("scale", 1.0)),
        weighted=(header["algorithm"] == "sssp"),
    )


def resume_run(
    run_dir: str,
    machine: Optional[MachineSpec] = None,
    gpus: Optional[int] = None,
):
    """Whole-job restart from a durable run directory (``repro
    resume``).

    Reads the run header ``repro run --durability`` committed, rebuilds
    the workload it describes (from the sharded ``--graph-dir`` store
    when the header names one), and re-runs the engine with
    ``resume=True`` so execution restarts from the last intact durable
    checkpoint instead of round 0. Returns the engine's
    ``ExecutionResult``.

    ``gpus`` resumes onto a *different* GPU count than the header's
    (``repro resume --gpus N``): instead of refusing — the checkpointed
    scalars (partition placement, per-GPU ledgers) are only meaningful
    on the original machine shape — the run is **re-partitioned on
    restart**: the newest intact checkpoint's vertex values and active
    set warm-start a fresh run on the new machine (the delta-recompute
    mechanism), and a header ``graph_dir`` store is re-sharded for the
    new count through the streaming partitioner first. For monotone
    programs (wcc, bfs, sssp) the fixed point is placement-independent,
    so the resumed digest still matches the uninterrupted run — the
    repartition crash-restart test certifies exactly that.
    """
    from repro.bench.runner import make_engine
    from repro.faults.store import CheckpointStore
    from repro.gpu.config import SCALED_MACHINE

    store = CheckpointStore(run_dir)
    header = store.read_header()
    if header.get("mode", "engine") != "engine":
        raise ConfigurationError(
            f"run header mode {header.get('mode')!r} is not resumable "
            "by `repro resume` (only 'engine' runs are)"
        )
    header_gpus = int(header["gpus"]) if header.get("gpus") else None
    if (
        gpus is not None
        and header_gpus is not None
        and int(gpus) != header_gpus
    ):
        return _resume_repartitioned(
            run_dir, store, header, machine, int(gpus)
        )

    graph = _load_header_graph(header)
    spec = machine or SCALED_MACHINE
    target_gpus = int(gpus) if gpus is not None else header_gpus
    if target_gpus:
        spec = spec.scaled(target_gpus)
    engine = make_engine(
        header["engine"], spec,
        vectorized=bool(header.get("vectorized", False)),
    )
    policy = RecoveryPolicy(
        run_dir=run_dir, **dict(header.get("policy") or {})
    )
    program = make_program(header["algorithm"], graph)
    return engine.run(
        graph, program, graph_name=header["dataset"],
        recovery=policy, resume=True,
    )


def _resume_repartitioned(
    run_dir: str,
    store,
    header: Dict,
    machine: Optional[MachineSpec],
    gpus: int,
):
    """Resume onto a different GPU count by re-partitioning the restart.

    The durable scalars are bound to the original machine shape, so
    they are deliberately *not* restored; only the vertex state is: the
    newest intact checkpoint's ``values``/``active`` arrays warm-start
    a fresh engine on the ``gpus``-GPU machine, whose preprocessing
    re-partitions the path DAG for the new shape. A sharded
    ``graph_dir`` store is additionally re-sharded on disk for the new
    count (bit-identical by construction) under the run directory.
    """
    from repro.bench.runner import make_engine
    from repro.gpu.config import SCALED_MACHINE

    if gpus < 1:
        raise ConfigurationError(f"--gpus must be >= 1, got {gpus}")
    if not str(header.get("engine", "")).startswith("digraph"):
        raise ConfigurationError(
            f"engine {header.get('engine')!r} cannot resume onto a "
            "different GPU count (warm-start restart needs the digraph "
            "family)"
        )
    loaded = store.load_best()
    values = np.asarray(loaded.arrays["values"], dtype=np.float64)
    active = np.asarray(loaded.arrays["active"], dtype=bool)

    graph_dir = header.get("graph_dir")
    if graph_dir:
        from repro.storage import ShardedGraph, partition_graph

        old = ShardedGraph(graph_dir)
        new_dir = os.path.join(run_dir, f"repartition-{gpus}gpus")
        partition_graph(
            old.edge_chunk_source(),
            gpus,
            new_dir,
            policy=old.store.policy,
            num_vertices=old.num_vertices,
            seed=int(old.store.manifest.get("seed", 0)),
        )
        graph = ShardedGraph(new_dir).materialize()
    else:
        graph = _load_header_graph(header)

    spec = (machine or SCALED_MACHINE).scaled(gpus)
    engine = make_engine(
        header["engine"], spec,
        vectorized=bool(header.get("vectorized", False)),
    )
    program = make_program(header["algorithm"], graph)
    return engine.run(
        graph,
        program,
        graph_name=header["dataset"],
        initial_values=values,
        initial_active=active,
    )


def crash_restart_sweep(
    graph,
    algorithms: Sequence[str],
    engine_names: Sequence[str] = ("digraph",),
    crash_points: Sequence[str] = CRASH_POINTS,
    machine: Optional[MachineSpec] = None,
    recovery: Optional[RecoveryPolicy] = None,
    graph_name: str = "crash-restart",
    include_serve: bool = False,
    serve_crash_launch: int = 12,
) -> List[ChaosCellResult]:
    """The crash-restart grid: algorithms x engines x crash points.

    Each cell gets a fresh temporary run directory (removed afterwards).
    ``include_serve`` appends one journal-restart serve cell
    (:func:`run_serve_crash_restart_cell`). Pick algorithms that run
    more than two rounds (pagerank, wcc, ...) — a run that converges
    before the crash point is flagged as a vacuous failure, not skipped.
    """
    results: List[ChaosCellResult] = []
    for algorithm in algorithms:
        for engine_name in engine_names:
            for crash_point in crash_points:
                cell_dir = tempfile.mkdtemp(prefix="repro-crash-")
                try:
                    results.append(
                        run_crash_restart_cell(
                            graph,
                            algorithm,
                            cell_dir,
                            crash_point=crash_point,
                            engine_name=engine_name,
                            machine=machine,
                            recovery=recovery,
                            graph_name=graph_name,
                        )
                    )
                finally:
                    shutil.rmtree(cell_dir, ignore_errors=True)
    if include_serve:
        cell_dir = tempfile.mkdtemp(prefix="repro-crash-")
        try:
            results.append(
                run_serve_crash_restart_cell(
                    graph,
                    cell_dir,
                    crash_launch=serve_crash_launch,
                    machine=machine,
                    graph_name=graph_name,
                )
            )
        finally:
            shutil.rmtree(cell_dir, ignore_errors=True)
    return results


def chaos_sweep(
    graph,
    algorithms: Sequence[str],
    engine_names: Sequence[str] = ("digraph",),
    seeds: Sequence[int] = (0,),
    machine: Optional[MachineSpec] = None,
    recovery: Optional[RecoveryPolicy] = None,
    graph_name: str = "chaos",
    plan_options: Optional[Dict] = None,
    disable_recovery: bool = False,
    include_serve: bool = False,
    serve_kill_launch: int = 4,
    storm: bool = False,
    serve_storm_options: Optional[Dict] = None,
) -> List[ChaosCellResult]:
    """Run the chaos grid: algorithms x engines x seeds.

    ``plan_options`` are forwarded to :meth:`FaultPlan.generate` (fault
    rates, kill schedule); the number of GPUs is taken from ``machine``
    (or the default spec when None). ``include_serve`` appends one
    serving-layer kill/replay cell per seed
    (:func:`run_serve_chaos_cell` on a mixed-algorithm trace) so the
    query service faces the same sweep as the batch engines.

    ``storm=True`` switches the sweep to **correlated schedules**:
    engine cells run under :meth:`FaultPlan.generate_storm` plans
    (overlapping kills + link flaps; ``plan_options`` then feed the
    storm generator) and the serve cell becomes
    :func:`run_serve_storm_cell` (``serve_storm_options`` forwarded).
    """
    options = dict(plan_options or {})
    num_gpus = (machine or MachineSpec()).num_gpus
    results: List[ChaosCellResult] = []
    for seed in seeds:
        if storm:
            plan = FaultPlan.generate_storm(seed, num_gpus, **options)
        else:
            plan = FaultPlan.generate(seed, num_gpus, **options)
        for algorithm in algorithms:
            for engine_name in engine_names:
                results.append(
                    run_chaos_cell(
                        graph,
                        algorithm,
                        plan,
                        engine_name=engine_name,
                        machine=machine,
                        recovery=recovery,
                        graph_name=graph_name,
                        disable_recovery=disable_recovery,
                    )
                )
        if include_serve and storm:
            results.append(
                run_serve_storm_cell(
                    graph,
                    "mixed",
                    seed=seed,
                    machine=machine,
                    graph_name=graph_name,
                    **dict(serve_storm_options or {}),
                )
            )
        elif include_serve:
            results.append(
                run_serve_chaos_cell(
                    graph,
                    "mixed",
                    kill_launch=serve_kill_launch,
                    seed=seed,
                    replay_on_fault=not disable_recovery,
                    machine=machine,
                    graph_name=graph_name,
                )
            )
    return results
