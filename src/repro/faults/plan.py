"""Seeded, deterministic fault plans.

A :class:`FaultPlan` is a *pre-computed schedule* of faults keyed by the
machine's deterministic call counters — the N-th interconnect transfer,
the N-th replica-batch flush, the N-th kernel wave. Nothing is sampled
at run time: :meth:`FaultPlan.generate` expands a seed into explicit
event tables once, so identical (seed, rates) always produce identical
injections, retries, and recovery traces regardless of how the run
interleaves. This is the determinism contract the chaos harness and the
``repro chaos`` CLI rely on (see ``docs/robustness.md``).

Fault kinds (ISSUE-3 fault model):

- **transfer faults** — a :class:`TransferFault` fails (transient or
  permanent) or degrades one ``Interconnect.transfer`` call;
- **replica-sync faults** — a :class:`SyncFault` drops or corrupts one
  batched replica-update flush between two GPUs;
- **compute faults** — a :class:`ComputeFault` kills a GPU at a kernel
  wave boundary, slows chosen GPUs down (stragglers), or crashes the
  whole job at a round boundary (``crash=True``, whole-process death);
- **storage faults** — a :class:`StorageFault` tears, rots, loses, or
  crashes one durable checkpoint-store write (page or manifest), keyed
  by the store's per-op write counters.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigurationError

#: Transfer-fault kinds.
TRANSIENT = "transient"
PERMANENT = "permanent"
DEGRADE = "degrade"

#: Replica-sync fault kinds.
DROP = "drop"
CORRUPT = "corrupt"

#: Deterministic garbage written by an undetected corrupted replica push.
DEFAULT_POISON = 2.0 ** 60

#: Storage-fault kinds (durable checkpoint store, ISSUE-9 fault model).
STORAGE_TORN = "torn"
STORAGE_BITROT = "bitrot"
STORAGE_LOST = "lost"
STORAGE_CRASH = "crash"

#: Store-write ops a :class:`StorageFault` can target.
STORE_OP_PAGE = "page"
STORE_OP_MANIFEST = "manifest"


@dataclass(frozen=True)
class TransferFault:
    """One scheduled interconnect fault.

    ``kind`` is :data:`TRANSIENT` (fails, retryable), :data:`PERMANENT`
    (link down for good), or :data:`DEGRADE` (transfer succeeds at
    ``factor`` times the nominal cost).
    """

    kind: str
    factor: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in (TRANSIENT, PERMANENT, DEGRADE):
            raise ConfigurationError(
                f"unknown transfer-fault kind {self.kind!r}"
            )
        if self.kind == DEGRADE and self.factor < 0:
            raise ConfigurationError("degrade factor must be non-negative")


@dataclass(frozen=True)
class SyncFault:
    """One scheduled replica-batch fault (:data:`DROP` or :data:`CORRUPT`).

    ``poison`` is the deterministic garbage value an *undetected*
    corruption writes into the payload's master slots (recovery detects
    the bad checksum and resends instead).
    """

    kind: str
    poison: float = DEFAULT_POISON

    def __post_init__(self) -> None:
        if self.kind not in (DROP, CORRUPT):
            raise ConfigurationError(
                f"unknown sync-fault kind {self.kind!r}"
            )


@dataclass(frozen=True)
class ComputeFault:
    """One scheduled kernel-wave fault.

    ``kill_gpu`` names a GPU that dies at this wave; ``slowdowns`` maps
    GPU id -> elapsed-time multiplier (stragglers). A dead target or an
    unknown GPU id in a generated plan is skipped at injection time.
    ``crash=True`` kills the *whole job* at this wave boundary
    (process death — only the durable checkpoint store survives;
    recovery is ``repro resume``, never an in-run rollback).
    """

    kill_gpu: Optional[int] = None
    slowdowns: Mapping[int, float] = field(default_factory=dict)
    crash: bool = False

    def __post_init__(self) -> None:
        for gpu, factor in self.slowdowns.items():
            if factor < 1.0:
                raise ConfigurationError(
                    f"straggler factor for GPU {gpu} must be >= 1"
                )


@dataclass(frozen=True)
class StorageFault:
    """One scheduled durable-store write fault.

    ``op`` selects which store write stream the fault targets —
    :data:`STORE_OP_PAGE` (an array/scalar page) or
    :data:`STORE_OP_MANIFEST` (the write-ahead manifest commit); the
    plan keys storage faults by the store's *per-op* monotone write
    counter, so ``storage_faults[2]`` with ``op="manifest"`` strikes the
    third manifest commit. Kinds:

    - :data:`STORAGE_TORN` — the file is truncated mid-write (torn
      write) and the run continues; checksum verification must catch it;
    - :data:`STORAGE_BITROT` — one byte is flipped after the write (bit
      rot), silently; again the checksum must catch it;
    - :data:`STORAGE_LOST` — the file vanishes after the write
      (manifest loss / lost page);
    - :data:`STORAGE_CRASH` — the whole job dies *during* this write: a
      page is left torn, a manifest commit is left as an uncommitted
      temp file, and :class:`~repro.errors.InjectedCrashError` is
      raised (mid-spill / mid-manifest-commit crash points).
    """

    kind: str
    op: str = STORE_OP_PAGE

    def __post_init__(self) -> None:
        if self.kind not in (
            STORAGE_TORN, STORAGE_BITROT, STORAGE_LOST, STORAGE_CRASH
        ):
            raise ConfigurationError(
                f"unknown storage-fault kind {self.kind!r}"
            )
        if self.op not in (STORE_OP_PAGE, STORE_OP_MANIFEST):
            raise ConfigurationError(
                f"unknown storage-fault op {self.op!r}"
            )


@dataclass
class FaultPlan:
    """Explicit fault schedule keyed by deterministic call counters."""

    #: transfer-call index -> fault.
    transfer_faults: Dict[int, TransferFault] = field(default_factory=dict)
    #: replica-flush-attempt index -> fault.
    sync_faults: Dict[int, SyncFault] = field(default_factory=dict)
    #: kernel-wave (compute_round call) index -> fault.
    compute_faults: Dict[int, ComputeFault] = field(default_factory=dict)
    #: per-op store-write index -> fault. The injector keeps a separate
    #: monotone counter per store op (page writes, manifest commits) and
    #: an entry fires only when its ``op`` matches the stream at that
    #: index — so ``{0: StorageFault("crash", op="manifest")}`` strikes
    #: the first manifest commit and leaves page writes alone. One entry
    #: per index; to fault both streams use different indices.
    storage_faults: Dict[int, StorageFault] = field(default_factory=dict)
    #: Seed the plan was generated from (None for hand-written plans).
    seed: Optional[int] = None

    @property
    def num_events(self) -> int:
        return (
            len(self.transfer_faults)
            + len(self.sync_faults)
            + len(self.compute_faults)
            + len(self.storage_faults)
        )

    @classmethod
    def generate(
        cls,
        seed: int,
        num_gpus: int,
        transfer_fault_rate: float = 0.0,
        transient_fraction: float = 1.0,
        degrade_rate: float = 0.0,
        degrade_factor: float = 4.0,
        sync_drop_rate: float = 0.0,
        sync_corrupt_rate: float = 0.0,
        straggler_rate: float = 0.0,
        straggler_factor: float = 8.0,
        kill_gpu: Optional[int] = None,
        kill_at_round: int = 1,
        kill_schedule: Optional[Sequence[Tuple[int, int]]] = None,
        crash_at_round: Optional[int] = None,
        link_flap_at: Optional[int] = None,
        link_flap_length: int = 3,
        transfer_horizon: int = 5000,
        sync_horizon: int = 2000,
        round_horizon: int = 500,
    ) -> "FaultPlan":
        """Expand a seed into an explicit event schedule.

        Rates are per-call probabilities sampled *now* with
        ``random.Random(seed)`` over a fixed horizon of call indices —
        beyond the horizon the run is fault-free. ``kill_gpu`` schedules
        exactly one GPU death at kernel wave ``kill_at_round``;
        ``kill_schedule`` is the correlated generalization — a sequence
        of ``(gpu, round)`` deaths, so a second kill can land *during
        the replay* of the first (rollback re-executes waves under
        fresh monotone counter indices, so a later index fires
        mid-recovery).

        ``link_flap_at`` schedules a **down-then-up link flap**: every
        transfer call in ``[link_flap_at, link_flap_at +
        link_flap_length)`` fails transiently, then the link is healthy
        again. Because each retry consumes a fresh transfer index, a
        flap is survived exactly when the retry budget covers the flap
        length — the deterministic analogue of waiting out a bounce.

        ``crash_at_round`` schedules a **whole-job crash** at that
        kernel-wave boundary (``ComputeFault(crash=True)``): the process
        dies, only the durable checkpoint store survives, and the only
        recovery is a whole-job restart (``repro resume``).
        """
        for name, rate in (
            ("transfer_fault_rate", transfer_fault_rate),
            ("transient_fraction", transient_fraction),
            ("degrade_rate", degrade_rate),
            ("sync_drop_rate", sync_drop_rate),
            ("sync_corrupt_rate", sync_corrupt_rate),
            ("straggler_rate", straggler_rate),
        ):
            if not 0.0 <= rate <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1]")
        if num_gpus < 1:
            raise ConfigurationError("num_gpus must be >= 1")
        if kill_gpu is not None and not 0 <= kill_gpu < num_gpus:
            raise ConfigurationError(f"kill_gpu {kill_gpu} out of range")
        if kill_at_round < 0:
            raise ConfigurationError("kill_at_round must be >= 0")
        if straggler_factor < 1.0:
            raise ConfigurationError("straggler_factor must be >= 1")
        kills: list = []
        if kill_gpu is not None:
            kills.append((kill_gpu, kill_at_round))
        for entry in kill_schedule or ():
            gpu, at_round = entry
            if not 0 <= gpu < num_gpus:
                raise ConfigurationError(
                    f"kill_schedule gpu {gpu} out of range"
                )
            if at_round < 0:
                raise ConfigurationError(
                    "kill_schedule rounds must be >= 0"
                )
            kills.append((int(gpu), int(at_round)))
        seen_rounds = set()
        for _, at_round in kills:
            if at_round in seen_rounds:
                raise ConfigurationError(
                    f"two kills scheduled at the same index {at_round}"
                )
            seen_rounds.add(at_round)
        if link_flap_at is not None and link_flap_at < 0:
            raise ConfigurationError("link_flap_at must be >= 0")
        if link_flap_length < 1:
            raise ConfigurationError("link_flap_length must be >= 1")

        rng = random.Random(seed)
        transfer_faults: Dict[int, TransferFault] = {}
        for index in range(transfer_horizon):
            roll = rng.random()
            if roll < transfer_fault_rate:
                kind = (
                    TRANSIENT
                    if rng.random() < transient_fraction
                    else PERMANENT
                )
                transfer_faults[index] = TransferFault(kind=kind)
            elif roll < transfer_fault_rate + degrade_rate:
                transfer_faults[index] = TransferFault(
                    kind=DEGRADE, factor=degrade_factor
                )
        if link_flap_at is not None:
            # Down-then-up: a contiguous run of transient failures, then
            # the link heals (indices past the flap are explicitly left
            # alone — "up" is the absence of a scheduled fault).
            for index in range(
                link_flap_at, link_flap_at + link_flap_length
            ):
                transfer_faults[index] = TransferFault(kind=TRANSIENT)

        sync_faults: Dict[int, SyncFault] = {}
        for index in range(sync_horizon):
            roll = rng.random()
            if roll < sync_drop_rate:
                sync_faults[index] = SyncFault(kind=DROP)
            elif roll < sync_drop_rate + sync_corrupt_rate:
                sync_faults[index] = SyncFault(
                    kind=CORRUPT,
                    poison=DEFAULT_POISON * (1.0 + rng.random()),
                )

        compute_faults: Dict[int, ComputeFault] = {}
        for index in range(round_horizon):
            slowdowns = {
                gpu: straggler_factor
                for gpu in range(num_gpus)
                if rng.random() < straggler_rate
            }
            if slowdowns:
                compute_faults[index] = ComputeFault(slowdowns=slowdowns)
        for gpu, at_round in kills:
            existing = compute_faults.get(at_round)
            compute_faults[at_round] = ComputeFault(
                kill_gpu=gpu,
                slowdowns=existing.slowdowns if existing else {},
            )
        if crash_at_round is not None:
            if crash_at_round < 0:
                raise ConfigurationError("crash_at_round must be >= 0")
            existing = compute_faults.get(crash_at_round)
            compute_faults[crash_at_round] = ComputeFault(
                kill_gpu=existing.kill_gpu if existing else None,
                slowdowns=existing.slowdowns if existing else {},
                crash=True,
            )

        return cls(
            transfer_faults=transfer_faults,
            sync_faults=sync_faults,
            compute_faults=compute_faults,
            seed=seed,
        )

    @classmethod
    def generate_storm(
        cls,
        seed: int,
        num_gpus: int,
        kills: int = 2,
        first_kill_at: int = 2,
        kill_spacing: int = 4,
        flaps: int = 1,
        first_flap_at: int = 0,
        flap_length: int = 3,
        flap_spacing: int = 40,
        transfer_fault_rate: float = 0.0,
        sync_drop_rate: float = 0.0,
        **kwargs,
    ) -> "FaultPlan":
        """A correlated **fault storm**: overlapping kills + link flaps.

        ``kills`` GPU deaths land at counter indices ``first_kill_at +
        i*kill_spacing + jitter`` (seeded jitter < spacing), cycling over
        the GPUs — with spacing shorter than a recovery the i+1-th kill
        strikes *during the replay* of the i-th. ``flaps`` link
        down-then-up windows of ``flap_length`` transient failures are
        spread ``flap_spacing`` apart. Background ``transfer_fault_rate``
        / ``sync_drop_rate`` noise rides on top. Everything expands from
        ``random.Random(seed)`` into one explicit schedule, so the same
        (seed, knobs) storm is byte-identical — the property the
        multi-failure determinism tests pin.
        """
        if kills < 0:
            raise ConfigurationError("kills must be >= 0")
        if flaps < 0:
            raise ConfigurationError("flaps must be >= 0")
        if kill_spacing < 1:
            raise ConfigurationError("kill_spacing must be >= 1")
        if flap_spacing < 1:
            raise ConfigurationError("flap_spacing must be >= 1")
        if first_kill_at < 0 or first_flap_at < 0:
            raise ConfigurationError("storm offsets must be >= 0")
        rng = random.Random(seed ^ 0x5707)
        kill_schedule = []
        used = set()
        for i in range(kills):
            index = first_kill_at + i * kill_spacing + rng.randrange(
                kill_spacing
            )
            while index in used:
                index += 1
            used.add(index)
            # Cycle kills over GPUs N-1..1 so GPU 0 always survives a
            # storm on a multi-GPU machine (an all-dead machine has no
            # recovery story to certify).
            gpu = (num_gpus - 1) - (i % max(num_gpus - 1, 1))
            kill_schedule.append((gpu, index))
        plan = cls.generate(
            seed,
            num_gpus,
            transfer_fault_rate=transfer_fault_rate,
            sync_drop_rate=sync_drop_rate,
            kill_schedule=kill_schedule,
            **kwargs,
        )
        for f in range(flaps):
            start = first_flap_at + f * flap_spacing + rng.randrange(
                max(flap_spacing // 4, 1)
            )
            for index in range(start, start + flap_length):
                plan.transfer_faults[index] = TransferFault(
                    kind=TRANSIENT
                )
        return plan
