"""Fault injection and recovery for the simulated multi-GPU machine.

The robustness subsystem (see ``docs/robustness.md``):

- :mod:`repro.faults.plan` — seeded, deterministic fault schedules
  (:class:`FaultPlan`) covering interconnect faults, replica-batch
  drops/corruptions, GPU deaths, stragglers, whole-job crashes, and
  storage faults against the durable checkpoint store;
- :mod:`repro.faults.injector` — the runtime :class:`FaultInjector`
  that fires a plan's events against the machine's hooks and records a
  replayable trace;
- :mod:`repro.faults.recovery` — :class:`RecoveryPolicy`, the knobs for
  retries, backoff, straggler re-dispatch, checkpoint/rollback,
  durability, and GPU-loss degradation;
- :mod:`repro.faults.checkpoint` — :class:`CheckpointManager`, the
  interval/incremental checkpoint lifecycle with host-spill cost
  modeling shared by the DiGraph engines and the baselines;
- :mod:`repro.faults.store` — :class:`CheckpointStore`, the durable
  crash-consistent page + write-ahead-manifest store behind
  ``repro resume`` / ``repro scrub``, and :class:`ServeJournal`, the
  serving layer's batch-completion journal;
- :mod:`repro.faults.chaos` — the golden-vs-faulted chaos harness
  behind the ``repro chaos`` CLI, including the crash-restart cells
  that certify whole-job restarts bit-identical.
"""

from repro.faults.chaos import (
    ALL_CHAOS_ENGINES,
    BASELINE_CHAOS_ENGINES,
    CHAOS_ENGINES,
    CRASH_POINTS,
    ChaosCellResult,
    chaos_sweep,
    crash_plan,
    crash_restart_sweep,
    recovery_digest,
    resume_run,
    run_chaos_cell,
    run_crash_restart_cell,
    run_serve_chaos_cell,
    run_serve_crash_restart_cell,
    run_serve_storm_cell,
    state_digest,
)
from repro.faults.checkpoint import CheckpointManager, CheckpointRecord
from repro.faults.injector import FaultInjector, TraceEvent
from repro.faults.plan import (
    CORRUPT,
    DEGRADE,
    DROP,
    PERMANENT,
    STORAGE_BITROT,
    STORAGE_CRASH,
    STORAGE_LOST,
    STORAGE_TORN,
    STORE_OP_MANIFEST,
    STORE_OP_PAGE,
    TRANSIENT,
    ComputeFault,
    FaultPlan,
    StorageFault,
    SyncFault,
    TransferFault,
)
from repro.faults.recovery import RecoveryPolicy
from repro.faults.store import (
    CheckpointStore,
    LoadedCheckpoint,
    ScrubReport,
    ServeJournal,
)

__all__ = [
    "ALL_CHAOS_ENGINES",
    "BASELINE_CHAOS_ENGINES",
    "CHAOS_ENGINES",
    "CORRUPT",
    "CRASH_POINTS",
    "DEGRADE",
    "DROP",
    "PERMANENT",
    "STORAGE_BITROT",
    "STORAGE_CRASH",
    "STORAGE_LOST",
    "STORAGE_TORN",
    "STORE_OP_MANIFEST",
    "STORE_OP_PAGE",
    "TRANSIENT",
    "ChaosCellResult",
    "CheckpointManager",
    "CheckpointRecord",
    "CheckpointStore",
    "ComputeFault",
    "FaultInjector",
    "FaultPlan",
    "LoadedCheckpoint",
    "RecoveryPolicy",
    "ScrubReport",
    "ServeJournal",
    "StorageFault",
    "SyncFault",
    "TraceEvent",
    "TransferFault",
    "chaos_sweep",
    "crash_plan",
    "crash_restart_sweep",
    "recovery_digest",
    "resume_run",
    "run_chaos_cell",
    "run_crash_restart_cell",
    "run_serve_chaos_cell",
    "run_serve_crash_restart_cell",
    "run_serve_storm_cell",
    "state_digest",
]
