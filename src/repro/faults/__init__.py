"""Fault injection and recovery for the simulated multi-GPU machine.

The robustness subsystem (see ``docs/robustness.md``):

- :mod:`repro.faults.plan` — seeded, deterministic fault schedules
  (:class:`FaultPlan`) covering interconnect faults, replica-batch
  drops/corruptions, GPU deaths, and stragglers;
- :mod:`repro.faults.injector` — the runtime :class:`FaultInjector`
  that fires a plan's events against the machine's hooks and records a
  replayable trace;
- :mod:`repro.faults.recovery` — :class:`RecoveryPolicy`, the knobs for
  retries, backoff, straggler re-dispatch, checkpoint/rollback, and
  GPU-loss degradation;
- :mod:`repro.faults.checkpoint` — :class:`CheckpointManager`, the
  interval/incremental checkpoint lifecycle with host-spill cost
  modeling shared by the DiGraph engines and the baselines;
- :mod:`repro.faults.chaos` — the golden-vs-faulted chaos harness
  behind the ``repro chaos`` CLI.
"""

from repro.faults.chaos import (
    ALL_CHAOS_ENGINES,
    BASELINE_CHAOS_ENGINES,
    CHAOS_ENGINES,
    ChaosCellResult,
    chaos_sweep,
    recovery_digest,
    run_chaos_cell,
    run_serve_chaos_cell,
    run_serve_storm_cell,
    state_digest,
)
from repro.faults.checkpoint import CheckpointManager, CheckpointRecord
from repro.faults.injector import FaultInjector, TraceEvent
from repro.faults.plan import (
    CORRUPT,
    DEGRADE,
    DROP,
    PERMANENT,
    TRANSIENT,
    ComputeFault,
    FaultPlan,
    SyncFault,
    TransferFault,
)
from repro.faults.recovery import RecoveryPolicy

__all__ = [
    "ALL_CHAOS_ENGINES",
    "BASELINE_CHAOS_ENGINES",
    "CHAOS_ENGINES",
    "CORRUPT",
    "DEGRADE",
    "DROP",
    "PERMANENT",
    "TRANSIENT",
    "ChaosCellResult",
    "CheckpointManager",
    "CheckpointRecord",
    "ComputeFault",
    "FaultInjector",
    "FaultPlan",
    "RecoveryPolicy",
    "SyncFault",
    "TraceEvent",
    "TransferFault",
    "chaos_sweep",
    "recovery_digest",
    "run_chaos_cell",
    "run_serve_chaos_cell",
    "run_serve_storm_cell",
    "state_digest",
]
