"""One experiment per table/figure of the paper's evaluation.

Each function runs the sweep behind the corresponding figure on the
dataset stand-ins and returns a dict with the raw per-cell results plus a
``table`` string shaped like the figure (rows/series the paper plots).
The benchmark suite under ``benchmarks/`` calls these; EXPERIMENTS.md
records paper-vs-measured for each.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.algorithms import PAPER_BENCHMARKS, make_program
from repro.baselines.sequential import sequential_topological_run
from repro.bench.reporting import (
    format_table,
    matrix_table,
    normalized_matrix,
    series_table,
    speedup_matrix,
)
from repro.bench.runner import DEFAULT_SCALE, load_graph, run_cell
from repro.core.engine import DiGraphConfig, DiGraphEngine
from repro.graph import datasets
from repro.graph.generators import add_bidirectional_edges
from repro.graph.scc import scc_statistics
from repro.gpu.config import SCALED_MACHINE

#: Figure order of datasets and benchmark algorithms.
GRAPHS = list(datasets.DATASET_NAMES)
ALGOS = list(PAPER_BENCHMARKS)

#: The three cross-system engines of Figs. 8-13.
SYSTEMS = ("bulk-sync", "async", "digraph")


def _sweep(
    engines: Sequence[str],
    algos: Sequence[str],
    graphs: Sequence[str],
    scale: float,
) -> Dict[str, Dict[str, Dict[str, object]]]:
    """results[algo][graph][engine] for a rectangular sweep."""
    out: Dict[str, Dict[str, Dict[str, object]]] = {}
    for algo in algos:
        out[algo] = {}
        for graph in graphs:
            out[algo][graph] = {
                engine: run_cell(engine, algo, graph, scale=scale)
                for engine in engines
            }
    return out


# ----------------------------------------------------------------------
# Table 1
# ----------------------------------------------------------------------
def table1(scale: float = DEFAULT_SCALE) -> dict:
    """Dataset properties (V, E, A_Deg, A_Dis) of the stand-ins."""
    rows = []
    for props in datasets.table1(scale=scale):
        rows.append(
            [
                props.name,
                props.num_vertices,
                props.num_edges,
                props.average_degree,
                props.average_distance,
            ]
        )
    table = format_table(
        "Table 1 (stand-ins): dataset properties",
        ["dataset", "#V", "#E", "A_Deg", "A_Dis"],
        rows,
    )
    return {"rows": rows, "table": table}


# ----------------------------------------------------------------------
# Fig. 2 — motivation: async partition reprocessing + sequential oracle
# ----------------------------------------------------------------------
def fig2_motivation(
    scale: float = DEFAULT_SCALE, graph_name: str = "webbase"
) -> dict:
    """Fig. 2(a-c): the async baseline's per-round partition behavior for
    SSSP over 2 vs 4 GPUs; Fig. 2(d): sequential-oracle update counts."""
    per_gpus = {}
    for num_gpus in (2, 4):
        result = run_cell(
            "async", "sssp", graph_name, scale=scale, num_gpus=num_gpus
        )
        per_gpus[num_gpus] = result
    rows_abc = []
    for num_gpus, result in per_gpus.items():
        records = result.round_records
        reprocessed = sum(
            count - 1
            for count in result.stats.partition_processed.values()
            if count > 1
        )
        mean_active_fraction = float(
            np.mean([r.active_fraction_nonconvergent for r in records])
        ) if records else 0.0
        rows_abc.append(
            [
                num_gpus,
                result.rounds,
                reprocessed,
                mean_active_fraction,
            ]
        )
    table_abc = format_table(
        f"Fig 2(a-c): async (Groute-like) SSSP on {graph_name} — "
        "partition reprocessing",
        ["gpus", "rounds", "re-passes", "activefrac"],
        rows_abc,
    )

    rows_d = []
    for graph in GRAPHS:
        g = load_graph(graph, "pagerank", scale)
        stats = scc_statistics(g)
        seq = sequential_topological_run(g, make_program("pagerank", g))
        rows_d.append(
            [
                graph,
                seq.vertex_updates,
                seq.one_update_fraction,
                stats.giant_scc_fraction,
            ]
        )
    table_d = format_table(
        "Fig 2(d): sequential topological execution (pagerank)",
        ["graph", "updates", "1-upd-frac", "giant-scc"],
        rows_d,
    )
    return {
        "per_gpus": per_gpus,
        "rows_abc": rows_abc,
        "rows_d": rows_d,
        "table": table_abc + "\n\n" + table_d,
    }


# ----------------------------------------------------------------------
# Fig. 6 / Fig. 7 — ablation variants
# ----------------------------------------------------------------------
def fig6_vs_digraph_t(
    scale: float = DEFAULT_SCALE,
    algos: Optional[Sequence[str]] = None,
) -> dict:
    """Normalized processing time: DiGraph vs DiGraph-t."""
    return _variant_figure("digraph-t", scale, algos, "Fig 6")


def fig7_vs_digraph_w(
    scale: float = DEFAULT_SCALE,
    algos: Optional[Sequence[str]] = None,
) -> dict:
    """Normalized processing time: DiGraph vs DiGraph-w."""
    return _variant_figure("digraph-w", scale, algos, "Fig 7")


def _variant_figure(variant, scale, algos, label) -> dict:
    algos = list(algos or ALGOS)
    sweep = _sweep(("digraph", variant), algos, GRAPHS, scale)
    tables = []
    matrices = {}
    update_matrices = {}
    for algo in algos:
        matrix = normalized_matrix(
            sweep[algo], lambda r: r.processing_time_s, baseline=variant
        )
        matrices[algo] = matrix
        tables.append(
            matrix_table(
                f"{label} ({algo}): time normalized to {variant}",
                matrix,
                ("digraph", variant),
            )
        )
        updates = normalized_matrix(
            sweep[algo],
            lambda r: float(r.vertex_updates),
            baseline=variant,
        )
        update_matrices[algo] = updates
        tables.append(
            matrix_table(
                f"{label} ({algo}): updates normalized to {variant}",
                updates,
                ("digraph", variant),
            )
        )
    return {
        "sweep": sweep,
        "matrices": matrices,
        "update_matrices": update_matrices,
        "table": "\n\n".join(tables),
    }


# ----------------------------------------------------------------------
# Fig. 8 — preprocessing time
# ----------------------------------------------------------------------
def fig8_preprocessing(scale: float = DEFAULT_SCALE) -> dict:
    """Preprocessing time normalized to the bulk-sync (Gunrock) baseline."""
    per_graph = {
        graph: {
            engine: run_cell(engine, "pagerank", graph, scale=scale)
            for engine in SYSTEMS
        }
        for graph in GRAPHS
    }
    matrix = normalized_matrix(
        per_graph, lambda r: r.preprocess_time_s, baseline="bulk-sync"
    )
    table = matrix_table(
        "Fig 8: preprocessing time normalized to bulk-sync", matrix, SYSTEMS
    )
    return {"results": per_graph, "matrix": matrix, "table": table}


# ----------------------------------------------------------------------
# Fig. 9 — execution time breakdown
# ----------------------------------------------------------------------
def fig9_breakdown(
    scale: float = DEFAULT_SCALE, algo: str = "pagerank"
) -> dict:
    """Preprocess / compute / communication breakdown per engine."""
    rows = []
    results = {}
    for graph in GRAPHS:
        results[graph] = {}
        for engine in SYSTEMS:
            result = run_cell(engine, algo, graph, scale=scale)
            results[graph][engine] = result
            breakdown = result.breakdown()
            rows.append(
                [
                    graph,
                    engine,
                    breakdown["preprocess_s"] * 1e3,
                    breakdown["compute_s"] * 1e3,
                    breakdown["communication_s"] * 1e3,
                ]
            )
    table = format_table(
        f"Fig 9: execution time breakdown, {algo} (ms)",
        ["graph", "engine", "preproc", "compute", "comm"],
        rows,
    )
    return {"results": results, "rows": rows, "table": table}


# ----------------------------------------------------------------------
# Fig. 10 / Fig. 11 — speedups and update counts
# ----------------------------------------------------------------------
def fig10_speedup(
    scale: float = DEFAULT_SCALE,
    algos: Optional[Sequence[str]] = None,
) -> dict:
    """Speedup over the bulk-sync baseline (paper: 2.25-7.39x for
    DiGraph, async in between)."""
    algos = list(algos or ALGOS)
    sweep = _sweep(SYSTEMS, algos, GRAPHS, scale)
    tables = []
    matrices = {}
    for algo in algos:
        matrix = speedup_matrix(sweep[algo], baseline="bulk-sync")
        matrices[algo] = matrix
        tables.append(
            matrix_table(
                f"Fig 10 ({algo}): speedup over bulk-sync", matrix, SYSTEMS
            )
        )
    return {"sweep": sweep, "matrices": matrices, "table": "\n\n".join(tables)}


def fig11_updates(
    scale: float = DEFAULT_SCALE,
    algos: Optional[Sequence[str]] = None,
) -> dict:
    """Vertex-update counts normalized to bulk-sync."""
    algos = list(algos or ALGOS)
    sweep = _sweep(SYSTEMS, algos, GRAPHS, scale)
    tables = []
    matrices = {}
    for algo in algos:
        matrix = normalized_matrix(
            sweep[algo], lambda r: float(r.vertex_updates), baseline="bulk-sync"
        )
        matrices[algo] = matrix
        tables.append(
            matrix_table(
                f"Fig 11 ({algo}): updates normalized to bulk-sync",
                matrix,
                SYSTEMS,
            )
        )
    return {"sweep": sweep, "matrices": matrices, "table": "\n\n".join(tables)}


# ----------------------------------------------------------------------
# Fig. 12 / 13 / 15 — pagerank traffic, data utilization, GPU utilization
# ----------------------------------------------------------------------
def fig12_traffic(scale: float = DEFAULT_SCALE) -> dict:
    per_graph = {
        graph: {
            engine: run_cell(engine, "pagerank", graph, scale=scale)
            for engine in SYSTEMS
        }
        for graph in GRAPHS
    }
    matrix = normalized_matrix(
        per_graph, lambda r: float(r.traffic_bytes), baseline="bulk-sync"
    )
    table = matrix_table(
        "Fig 12: pagerank traffic volume normalized to bulk-sync",
        matrix,
        SYSTEMS,
    )
    return {"results": per_graph, "matrix": matrix, "table": table}


def fig13_data_utilization(scale: float = DEFAULT_SCALE) -> dict:
    per_graph = {
        graph: {
            engine: run_cell(engine, "pagerank", graph, scale=scale)
            for engine in SYSTEMS
        }
        for graph in GRAPHS
    }
    matrix = normalized_matrix(
        per_graph, lambda r: r.data_utilization, baseline="bulk-sync"
    )
    table = matrix_table(
        "Fig 13: loaded-data utilization normalized to bulk-sync",
        matrix,
        SYSTEMS,
    )
    return {"results": per_graph, "matrix": matrix, "table": table}


def fig15_gpu_utilization(scale: float = DEFAULT_SCALE) -> dict:
    rows = []
    results = {}
    for graph in GRAPHS:
        results[graph] = {}
        row = [graph]
        for engine in SYSTEMS:
            result = run_cell(engine, "pagerank", graph, scale=scale)
            results[graph][engine] = result
            row.append(result.gpu_utilization)
        rows.append(row)
    table = format_table(
        "Fig 15: GPU utilization ratio, pagerank",
        ["graph"] + list(SYSTEMS),
        rows,
    )
    return {"results": results, "rows": rows, "table": table}


# ----------------------------------------------------------------------
# Fig. 14 — bi-directional edge sweep
# ----------------------------------------------------------------------
def fig14_bidirectional(
    scale: float = DEFAULT_SCALE,
    ratios: Sequence[float] = (0.4, 0.6, 0.8, 1.0),
    graph_name: str = "webbase",
) -> dict:
    """pagerank time as webbase's bi-directional edge ratio grows."""
    base = load_graph(graph_name, "pagerank", scale)
    series: Dict[str, List[float]] = {e: [] for e in SYSTEMS}
    results = {}
    for ratio in ratios:
        graph = add_bidirectional_edges(base, ratio, seed=1)
        results[ratio] = {}
        for engine in SYSTEMS:
            result = run_cell(
                engine,
                "pagerank",
                f"{graph_name}+bidi{ratio}",
                scale=scale,
                graph=graph,
            )
            results[ratio][engine] = result
            series[engine].append(result.processing_time_s * 1e3)
    table = series_table(
        f"Fig 14: pagerank time (ms) vs bi-directional ratio on {graph_name}",
        "ratio",
        list(ratios),
        series,
    )
    return {"results": results, "series": series, "table": table}


# ----------------------------------------------------------------------
# Fig. 16 / 17 — scalability sweeps
# ----------------------------------------------------------------------
def fig16_scalability(
    scale: float = DEFAULT_SCALE,
    gpu_counts: Sequence[int] = (1, 2, 3, 4),
    graph_name: str = "webbase",
    algos: Sequence[str] = ("pagerank", "sssp"),
) -> dict:
    """Processing time vs GPU count (paper: DiGraph scales best).

    Runs through the shared sweep runner (:mod:`repro.bench.sweep`) —
    the same code path ``repro sweep`` and the CI regression gate
    measure — with ``num_gpus`` as the swept knob.
    """
    from repro.bench.sweep import SweepConfig, run_sweep

    report = run_sweep(
        SweepConfig(
            engines=tuple(SYSTEMS),
            algorithms=tuple(algos),
            graphs=(graph_name,),
            scale=scale,
            knobs={"num_gpus": tuple(gpu_counts)},
        )
    )
    time_ms = {
        (cell["engine"], cell["algorithm"], cell["knobs"]["num_gpus"]):
            cell["metrics"]["processing_time_s"]["mean"] * 1e3
        for cell in report["cells"]
    }
    tables = []
    all_series = {}
    all_efficiency = {}
    for algo in algos:
        series: Dict[str, List[float]] = {
            engine: [
                time_ms[(engine, algo, num_gpus)]
                for num_gpus in gpu_counts
            ]
            for engine in SYSTEMS
        }
        all_series[algo] = series
        # Scaling behavior relative to the 1-GPU run: values above 1 mean
        # the extra GPUs cost more (staleness) than they pay back at this
        # scale; the engine with the flattest curve scales best.
        efficiency = {
            engine: [t / times[0] for t in times]
            for engine, times in series.items()
        }
        all_efficiency[algo] = efficiency
        tables.append(
            series_table(
                f"Fig 16 ({algo} on {graph_name}): time (ms) vs GPUs",
                "gpus",
                list(gpu_counts),
                series,
            )
        )
        tables.append(
            series_table(
                f"Fig 16 ({algo}): time relative to 1 GPU",
                "gpus",
                list(gpu_counts),
                efficiency,
            )
        )
    return {
        "series": all_series,
        "efficiency": all_efficiency,
        "sweep": report,
        "table": "\n\n".join(tables),
    }


def fig16_faulted_scalability(
    scale: float = DEFAULT_SCALE,
    gpu_counts: Sequence[int] = (2, 3, 4),
    graph_name: str = "webbase",
    algo: str = "pagerank",
    kill_round: int = 1,
    checkpoint_interval: int = 2,
) -> dict:
    """Fig. 16 variant with a mid-run GPU kill (robustness scaling).

    For each GPU count the highest-numbered GPU dies at kernel wave
    ``kill_round``; the run rolls back to the last checkpoint and
    degrades onto the survivors under both redistribution policies.
    Reported per policy: recovered modeled time, degradation relative to
    the fault-free run, and the least-squares slope of that degradation
    against survivor count — the flatter the slope, the more gracefully
    losing one GPU amortizes as the machine grows.
    """
    from repro.faults import FaultPlan, RecoveryPolicy, run_chaos_cell

    graph = load_graph(graph_name, algo, scale)
    policies = ("locality", "edge-balance")
    recovered: Dict[str, List[float]] = {p: [] for p in policies}
    golden: List[float] = []
    passed = True
    for num_gpus in gpu_counts:
        spec = SCALED_MACHINE.scaled(num_gpus)
        plan = FaultPlan.generate(
            0, num_gpus, kill_gpu=num_gpus - 1, kill_at_round=kill_round
        )
        golden_ms = 0.0
        for policy in policies:
            cell = run_chaos_cell(
                graph,
                algo,
                plan,
                engine_name="digraph",
                machine=spec,
                recovery=RecoveryPolicy(
                    checkpoint_interval=checkpoint_interval,
                    redistribution_policy=policy,
                ),
                graph_name=graph_name,
            )
            passed = passed and cell.passed
            recovered[policy].append(cell.recovered_time_s * 1e3)
            golden_ms = cell.golden_time_s * 1e3
        golden.append(golden_ms)
    survivors = [n - 1 for n in gpu_counts]
    degradation = {
        p: [r / g for r, g in zip(recovered[p], golden)] for p in policies
    }
    slopes = {
        p: float(np.polyfit(survivors, degradation[p], 1)[0])
        for p in policies
    }
    series = {"fault-free": golden, **recovered}
    tables = [
        series_table(
            f"Fig 16-faulted ({algo} on {graph_name}): time (ms) vs "
            f"GPUs, one GPU killed at wave {kill_round}",
            "gpus",
            list(gpu_counts),
            series,
        ),
        series_table(
            f"Fig 16-faulted ({algo}): recovered / fault-free time",
            "gpus",
            list(gpu_counts),
            degradation,
        ),
    ]
    return {
        "series": series,
        "degradation": degradation,
        "slopes": slopes,
        "passed": passed,
        "table": "\n\n".join(tables),
    }


def fig17_cpu_threads(
    scale: float = DEFAULT_SCALE,
    worker_counts: Sequence[int] = (1, 2, 4, 8),
    gpu_counts: Sequence[int] = (1, 4),
    graph_name: str = "webbase",
) -> dict:
    """Total (preprocess + processing) pagerank time vs CPU worker count
    and GPU count."""
    series: Dict[str, List[float]] = {}
    for num_gpus in gpu_counts:
        key = f"digraph/{num_gpus}gpu"
        series[key] = []
        for workers in worker_counts:
            result = run_cell(
                "digraph",
                "pagerank",
                graph_name,
                scale=scale,
                num_gpus=num_gpus,
                n_workers=workers,
            )
            series[key].append(result.total_time_s * 1e3)
    table = series_table(
        f"Fig 17: pagerank total time (ms) on {graph_name} "
        "vs CPU workers",
        "workers",
        list(worker_counts),
        series,
    )
    return {"series": series, "table": table}


# ----------------------------------------------------------------------
# Ablations beyond the paper's own (DESIGN.md section 6)
# ----------------------------------------------------------------------
def ablation_dmax(
    scale: float = DEFAULT_SCALE,
    values: Sequence[int] = (2, 4, 8, 16, 32),
    graph_name: str = "cnr",
) -> dict:
    """D_MAX sweep: traversal depth vs updates/time."""
    series = {"time_ms": [], "updates": [], "avg_path_len": []}
    for d_max in values:
        result = run_cell(
            "digraph",
            "pagerank",
            graph_name,
            scale=scale,
            engine_factory=lambda spec, d=d_max: DiGraphEngine(
                spec, DiGraphConfig(d_max=d)
            ),
        )
        series["time_ms"].append(result.processing_time_s * 1e3)
        series["updates"].append(float(result.vertex_updates))
        series["avg_path_len"].append(result.extras["avg_path_length"])
    table = series_table(
        f"Ablation: D_MAX on {graph_name} (pagerank)",
        "d_max",
        list(values),
        series,
    )
    return {"series": series, "table": table}


def ablation_features(
    scale: float = DEFAULT_SCALE, graph_name: str = "cnr"
) -> dict:
    """One-feature-off ablations: hot-path greediness, merging, proxies,
    prefetch, advance execution."""
    configs = {
        "full": DiGraphConfig(),
        "no-hot-greedy": DiGraphConfig(degree_greedy=False),
        "no-merge": DiGraphConfig(merge_short_paths=False),
        "no-proxy": DiGraphConfig(proxy_in_degree_threshold=10 ** 9),
        "no-prefetch": DiGraphConfig(prefetch=False),
        "advance-2": DiGraphConfig(advance_factor=2),
    }
    rows = []
    results = {}
    for label, config in configs.items():
        result = run_cell(
            "digraph",
            "pagerank",
            graph_name,
            scale=scale,
            engine_factory=lambda spec, c=config: DiGraphEngine(spec, c),
        )
        results[label] = result
        rows.append(
            [
                label,
                result.processing_time_s * 1e3,
                result.vertex_updates,
                result.stats.proxy_absorbed,
                result.traffic_bytes // 1024,
            ]
        )
    table = format_table(
        f"Ablation: feature toggles on {graph_name} (pagerank)",
        ["config", "time_ms", "updates", "absorbed", "trafficK"],
        rows,
    )
    return {"results": results, "rows": rows, "table": table}


def stream_speedup(
    scale: float = DEFAULT_SCALE,
    graphs: Optional[Sequence[str]] = None,
    algos: Sequence[str] = ("pagerank", "sssp", "wcc", "kcore"),
    n_batches: int = 3,
    batch_size: int = 4,
    seed: int = 7,
) -> dict:
    """Streaming: incremental repair + delta recompute vs full rebuild.

    Replays a seeded small-batch insert-lean mutation trace per
    (algorithm, graph) cell through a
    :class:`~repro.streaming.session.StreamingSession` with per-batch
    certification, and reports the summed incremental modeled time
    (path repair + warm-started run) against the summed full-rebuild
    time (Algorithm-1 preprocess + cold run on each mutated graph) —
    the evolving-graph scenario the paper's introduction motivates.
    Small insert-dominated batches are the streaming sweet spot: the
    monotone and accumulative programs resume from the prior ``V_val``
    with only a handful of vertices reactivated.

    Runs through the shared sweep runner (:mod:`repro.bench.sweep`) as
    ``mode="stream"`` cells, so the CI regression gate measures the
    exact code path this experiment reports.
    """
    from repro.bench.sweep import SweepConfig, run_sweep

    graph_names = list(graphs) if graphs else GRAPHS
    report = run_sweep(
        SweepConfig(
            engines=("digraph",),
            algorithms=tuple(algos),
            graphs=tuple(graph_names),
            scale=scale,
            mode="stream",
            seeds=(seed,),
            knobs={
                "stream_batches": (n_batches,),
                "stream_batch_size": (batch_size,),
                "stream_mix": ("insert",),
            },
        )
    )
    rows = []
    results: Dict[str, Dict[str, object]] = {}
    for cell in report["cells"]:
        algo = cell["algorithm"]
        graph_name = cell["graph"]
        metrics = cell["metrics"]
        incr = metrics["incremental_s"]["mean"]
        rebuild = metrics["rebuild_s"]["mean"]
        speedup = rebuild / incr if incr > 0 else float("inf")
        certified = cell["certified"]
        modes = list(cell["modes"])
        reactivated = int(metrics["vertices_reactivated"]["mean"])
        repaired = int(metrics["paths_repaired"]["mean"])
        results.setdefault(algo, {})[graph_name] = {
            "incremental_s": incr,
            "rebuild_s": rebuild,
            "speedup": speedup,
            "reactivated": reactivated,
            "paths_repaired": repaired,
            "modes": modes,
            "certified": certified,
        }
        rows.append(
            [
                algo,
                graph_name,
                "+".join(modes),
                reactivated,
                repaired,
                incr * 1e3,
                rebuild * 1e3,
                speedup,
                "ok" if certified else "FAIL",
            ]
        )
    table = format_table(
        f"Streaming: incremental vs full rebuild "
        f"({n_batches}x{batch_size} insert batches, seed={seed})",
        [
            "algo",
            "graph",
            "mode",
            "react",
            "repair",
            "incr_ms",
            "rebuild_ms",
            "speedup",
            "cert",
        ],
        rows,
    )
    return {"results": results, "rows": rows, "sweep": report, "table": table}


def serve_throughput(
    scale: float = DEFAULT_SCALE,
    graph_name: str = "dblp",
    algos: Sequence[str] = ("sssp", "bfs", "ppr", "reachability", "mixed"),
    lane_counts: Sequence[int] = (1, 8),
    num_queries: int = 64,
    tenant_count: int = 4,
    seed: int = 11,
    out_path: Optional[str] = "BENCH_serve.json",
) -> dict:
    """Multi-tenant serving: batched multi-source vs sequential dispatch.

    Serves the same seeded arrival trace per algorithm once per
    ``query_lanes`` value — ``1`` is sequential dispatch (every batch a
    single query), higher values batch same-algorithm queries into one
    multi-source lane-kernel solve.  Point-query frontiers are sparse,
    so service time is kernel-launch dominated and k-lane batching cuts
    launches roughly k-fold; the reported speedup is queries/s at the
    widest lane count over queries/s at 1 lane.  The per-cell serve
    digest covers every query's answer, so the table also certifies
    that batching changed *no* served result
    (``answers_equal``) — the lane-equivalence property, enforced at
    the artifact level.

    Runs through the shared sweep runner as ``mode="serve"`` cells and
    writes the schema-validated sweep artifact (plus a summary block)
    to ``out_path`` — the ``BENCH_serve.json`` the CI serve-gate job
    diffs against its committed baseline.
    """
    from repro.bench.schema import validate_artifact
    from repro.bench.sweep import SweepConfig, run_sweep, write_artifact

    lane_counts = sorted(lane_counts)
    report = run_sweep(
        SweepConfig(
            engines=("serve",),
            algorithms=tuple(algos),
            graphs=(graph_name,),
            scale=scale,
            mode="serve",
            seeds=(seed,),
            knobs={
                "query_lanes": tuple(lane_counts),
                "num_queries": (num_queries,),
                "tenant_count": (tenant_count,),
            },
        )
    )
    by_algo: Dict[str, Dict[int, Dict[str, object]]] = {}
    for cell in report["cells"]:
        by_algo.setdefault(cell["algorithm"], {})[
            int(cell["knobs"]["query_lanes"])
        ] = cell
    rows = []
    results: Dict[str, Dict[str, object]] = {}
    for algo in algos:
        cells = by_algo[algo]
        base = cells[lane_counts[0]]
        wide = cells[lane_counts[-1]]
        base_qps = base["metrics"]["queries_per_s"]["mean"]
        wide_qps = wide["metrics"]["queries_per_s"]["mean"]
        speedup = wide_qps / base_qps if base_qps > 0 else 0.0
        answers_equal = all(
            cells[lanes]["digests"] == base["digests"]
            for lanes in lane_counts
        )
        results[algo] = {
            "queries_per_s_sequential": base_qps,
            "queries_per_s_batched": wide_qps,
            "speedup": speedup,
            "latency_p50_s": wide["metrics"]["latency_p50_s"]["mean"],
            "latency_p99_s": wide["metrics"]["latency_p99_s"]["mean"],
            "launches_sequential": base["metrics"]["launches"]["mean"],
            "launches_batched": wide["metrics"]["launches"]["mean"],
            "answers_equal": answers_equal,
        }
        rows.append(
            [
                algo,
                base_qps,
                wide_qps,
                speedup,
                int(base["metrics"]["launches"]["mean"]),
                int(wide["metrics"]["launches"]["mean"]),
                "ok" if answers_equal else "FAIL",
            ]
        )
    table = format_table(
        f"Serving: {lane_counts[-1]}-lane batching vs sequential dispatch "
        f"({num_queries} queries x {tenant_count} tenants on {graph_name}, "
        f"seed={seed})",
        [
            "algo",
            "qps_seq",
            "qps_batch",
            "speedup",
            "launch_seq",
            "launch_batch",
            "answers",
        ],
        rows,
    )
    report["summary"] = {algo: dict(entry) for algo, entry in results.items()}
    if out_path is not None:
        validate_artifact(report, kind="repro-sweep", path=out_path)
        write_artifact(report, out_path)
    return {"results": results, "rows": rows, "sweep": report, "table": table}


def overload_resilience(
    scale: float = DEFAULT_SCALE,
    graph_name: str = "dblp",
    algo: str = "mixed",
    num_queries: int = 96,
    tenant_count: int = 4,
    seed: int = 13,
    overload_factor: float = 2.0,
    deadline_ms: float = 1.0,
    max_queue: int = 16,
    out_path: Optional[str] = "BENCH_overload.json",
) -> dict:
    """Overload: deadlines + shedding + brownout vs unbounded collapse.

    Calibrates the server's saturated capacity (every query arriving at
    once; throughput = queries / makespan), then offers the same trace
    at ``overload_factor`` times that rate and serves it three ways:

    - **unprotected** — no overload knobs: every query completes, but
      queue wait grows with the backlog, so the on-time fraction at the
      reference deadline collapses and p99 tracks the makespan;
    - **deadline, no brownout** — late queries are counted (and
      admission-rejected once hopeless), but full-precision solves
      cannot fit the deadline at 2x load: goodput collapses to roughly
      ``1 / overload_factor`` minus queue wait;
    - **deadline + bounded queue + brownout** — the protected
      configuration: load shedding bounds the queue, brownout returns
      partially-converged answers with certified residual bounds, and
      goodput (answered on time) must stay >= 70% of the offered load
      while p99 stays bounded by the deadline.

    The two deadline legs run through the shared sweep runner as
    ``mode="serve"`` cells (so determinism is certified per cell) and
    land in the schema-validated ``BENCH_overload.json`` artifact the
    CI overload-gate diffs against its committed baseline.
    """
    from repro.bench.schema import validate_artifact
    from repro.bench.sweep import SweepConfig, run_sweep, write_artifact
    from repro.serve.runner import run_serve_cell

    deadline_s = deadline_ms * 1e-3
    # Capacity calibration: all queries arrive (nearly) at once, so the
    # makespan is pure service time at maximal batching.
    saturated = run_serve_cell(
        algo, graph_name, scale=scale, seed=seed,
        num_queries=num_queries, tenant_count=tenant_count,
        mean_interarrival_us=1.0, use_cache=False,
    )
    capacity_per_s = num_queries / saturated.metrics()["makespan_s"]
    offered_per_s = overload_factor * capacity_per_s
    interarrival_us = 1e6 / offered_per_s

    report = run_sweep(
        SweepConfig(
            engines=("serve",),
            algorithms=(algo,),
            graphs=(graph_name,),
            scale=scale,
            mode="serve",
            seeds=(seed,),
            knobs={
                "num_queries": (num_queries,),
                "tenant_count": (tenant_count,),
                "mean_interarrival_us": (interarrival_us,),
                "deadline_ms": (deadline_ms,),
                "max_queue": (max_queue,),
                "brownout": (False, True),
            },
        )
    )
    legs: Dict[str, Dict[str, object]] = {}
    for cell in report["cells"]:
        key = "protected" if cell["knobs"]["brownout"] else "deadline_only"
        metrics = cell["metrics"]
        legs[key] = {
            "goodput_queries": metrics["goodput_queries"]["mean"],
            "goodput_fraction": (
                metrics["goodput_queries"]["mean"] / num_queries
            ),
            "queries_degraded": metrics["queries_degraded"]["mean"],
            "queries_shed": metrics["queries_shed"]["mean"],
            "queries_rejected": metrics["queries_rejected"]["mean"],
            "deadline_misses": metrics["deadline_misses"]["mean"],
            "latency_p50_s": metrics["latency_p50_s"]["mean"],
            "latency_p99_s": metrics["latency_p99_s"]["mean"],
            "residual_bound_max": metrics["residual_bound_max"]["mean"],
            "deterministic": cell["deterministic"],
        }

    # Unprotected leg: same offered load, no overload knobs. Nothing is
    # rejected or counted late, so the on-time fraction is recomputed
    # against the reference deadline from the per-query latencies.
    unprotected = run_serve_cell(
        algo, graph_name, scale=scale, seed=seed,
        num_queries=num_queries, tenant_count=tenant_count,
        mean_interarrival_us=interarrival_us, use_cache=False,
    )
    un_metrics = unprotected.metrics()
    on_time = sum(
        1
        for r in unprotected.results
        if r.status in ("ok", "degraded") and r.latency_s <= deadline_s
    )
    legs["unprotected"] = {
        "goodput_queries": float(on_time),
        "goodput_fraction": on_time / num_queries,
        "on_time_fraction": on_time / num_queries,
        "queries_degraded": un_metrics["queries_degraded"],
        "queries_shed": 0.0,
        "queries_rejected": 0.0,
        "deadline_misses": float(num_queries - on_time),
        "latency_p50_s": un_metrics["latency_p50_s"],
        "latency_p99_s": un_metrics["latency_p99_s"],
        "residual_bound_max": un_metrics["residual_bound_max"],
        "deterministic": True,
    }

    rows = []
    for name in ("unprotected", "deadline_only", "protected"):
        leg = legs[name]
        rows.append(
            [
                name,
                f"{leg['goodput_fraction']:.1%}",
                int(leg["queries_degraded"]),
                int(leg["queries_shed"]),
                int(leg["queries_rejected"]),
                int(leg["deadline_misses"]),
                leg["latency_p99_s"] * 1e3,
            ]
        )
    table = format_table(
        f"Overload resilience at {overload_factor:g}x capacity "
        f"({num_queries} queries on {graph_name}, deadline "
        f"{deadline_ms:g}ms, queue bound {max_queue}, seed={seed})",
        [
            "leg",
            "goodput",
            "degraded",
            "shed",
            "rejected",
            "late",
            "p99_ms",
        ],
        rows,
    )
    summary = {
        "capacity_per_s": capacity_per_s,
        "offered_per_s": offered_per_s,
        "overload_factor": overload_factor,
        "deadline_ms": deadline_ms,
        "max_queue": max_queue,
        "legs": {name: dict(leg) for name, leg in legs.items()},
    }
    report["summary"] = summary
    if out_path is not None:
        validate_artifact(report, kind="repro-sweep", path=out_path)
        write_artifact(report, out_path)
    return {
        "results": legs,
        "summary": summary,
        "rows": rows,
        "sweep": report,
        "table": table,
    }


def durability_crash_restart(
    scale: float = DEFAULT_SCALE,
    graph_name: str = "cnr",
    algorithms: Sequence[str] = ("pagerank", "wcc"),
    engines: Sequence[str] = ("digraph", "bulk-sync"),
    out_path: Optional[str] = "BENCH_durability.json",
) -> dict:
    """Durable checkpointing: restart certification + overhead.

    Two halves, one ``repro-durability`` artifact:

    - **cells** — the whole-job crash-restart grid
      (:func:`repro.faults.chaos.crash_restart_sweep`): every
      (algorithm, engine, crash point) cell kills the job at a round
      boundary, mid-spill, or mid-manifest-commit, restarts it from the
      durable store, and must match the uninterrupted golden run bit
      for bit, plus one serve-journal restart cell;
    - **overhead** — per engine, the modeled end-to-end time under
      ``durability`` none / durable / durable-verify and the on-disk
      store footprint (raw vs stored bytes; the gap is the cold-page
      compaction the retention window applies).
    """
    import json as _json
    import os as _os
    import shutil as _shutil
    import tempfile as _tempfile

    from repro.algorithms import make_program as _make_program
    from repro.bench.runner import make_engine
    from repro.bench.schema import validate_artifact
    from repro.faults.chaos import crash_restart_sweep
    from repro.faults.recovery import RecoveryPolicy
    from repro.faults.store import CheckpointStore

    graph = load_graph(graph_name, tuple(algorithms)[0], scale)
    cells = []
    for cell in crash_restart_sweep(
        graph,
        algorithms=tuple(algorithms),
        engine_names=tuple(engines),
        graph_name=graph_name,
        include_serve=True,
    ):
        cells.append(
            {
                "algorithm": cell.algorithm,
                "engine": cell.engine,
                "passed": cell.passed,
                "digest_match": cell.digest_match,
                "detail": cell.detail,
                "checkpoints_taken": cell.checkpoints_taken,
                "checkpoint_time_s": cell.checkpoint_time_s,
                "golden_time_s": cell.golden_time_s,
                "recovered_time_s": cell.recovered_time_s,
            }
        )

    overhead: Dict[str, Dict[str, object]] = {}
    overhead_algo = tuple(algorithms)[0]
    for engine_name in engines:
        legs: Dict[str, Dict[str, object]] = {}
        for durability in ("none", "durable", "durable-verify"):
            run_dir = _tempfile.mkdtemp(prefix="repro-durbench-")
            try:
                policy = RecoveryPolicy(
                    durability=durability,
                    run_dir=run_dir if durability != "none" else "",
                )
                engine = make_engine(engine_name, SCALED_MACHINE)
                program = _make_program(overhead_algo, graph)
                result = engine.run(
                    graph, program, graph_name=graph_name,
                    recovery=policy,
                )
                leg = {
                    "total_time_s": result.stats.total_time_s,
                    "checkpoint_time_s": result.stats.checkpoint_time_s,
                    "checkpoints_taken": result.stats.checkpoints_taken,
                }
                if durability != "none":
                    payload = CheckpointStore(run_dir).load_manifest()
                    raw = stored = 0
                    for entry in payload["checkpoints"]:
                        pages = list(entry["pages"].values())
                        pages.append(entry["scalars"])
                        for page in pages:
                            raw += int(page["raw_bytes"])
                            stored += int(page["stored_bytes"])
                    leg["store_raw_bytes"] = raw
                    leg["store_stored_bytes"] = stored
                    leg["compaction_ratio"] = (
                        stored / raw if raw else 1.0
                    )
                legs[durability] = leg
            finally:
                _shutil.rmtree(run_dir, ignore_errors=True)
        base = legs["none"]["total_time_s"]
        for leg in legs.values():
            leg["store_overhead_fraction"] = (
                (leg["total_time_s"] - base) / base if base else 0.0
            )
        overhead[engine_name] = legs

    rows = []
    for cell in cells:
        rows.append(
            [
                cell["algorithm"],
                cell["engine"],
                "PASS" if cell["passed"] else "FAIL",
                "bit-exact" if cell["digest_match"] else "MISMATCH",
                cell["checkpoints_taken"],
            ]
        )
    table = format_table(
        f"Crash-restart certification on {graph_name} "
        f"(scale={scale:g}; every cell restarts from the durable store)",
        ["cell", "engine", "status", "digests", "ckpts"],
        rows,
    )
    artifact = {
        "schema": "repro-durability",
        "schema_version": 1,
        "config": {
            "graph": graph_name,
            "scale": scale,
            "algorithms": list(algorithms),
            "engines": list(engines),
        },
        "cells": cells,
        "overhead": overhead,
    }
    validate_artifact(
        artifact, kind="repro-durability", path=out_path or "<artifact>"
    )
    if out_path is not None:
        with open(out_path, "w", encoding="utf-8") as fh:
            _json.dump(artifact, fh, indent=1, sort_keys=True)
            fh.write("\n")
    return {
        "results": cells,
        "overhead": overhead,
        "artifact": artifact,
        "table": table,
    }


# ----------------------------------------------------------------------
# Out-of-core storage scaling (PR 10)
# ----------------------------------------------------------------------
def storage_scaling(
    scale: float = DEFAULT_SCALE,
    policy: str = "affinity",
    seed: int = 17,
    chunk_edges: int = 16_384,
    cache_bytes: int = 1 << 21,
    out_path: Optional[str] = "BENCH_storage.json",
) -> dict:
    """Out-of-core storage: bounded memory + bit-identity certification.

    Three halves, one ``repro-storage`` artifact (``BENCH_storage.json``):

    - **cells** — a ladder of synthetic graphs whose edge count scales
      ~100x while the vertex count scales only ~10x (never materialized
      in RAM: :func:`repro.storage.synthetic_chunk_source` regenerates
      chunks per pass). Each size is streamed through
      :func:`repro.storage.partition_graph` into a shard store with
      ``edges / parts`` held constant, then every page is re-verified
      through a *fixed-size* shard cache; both phases report their
      modeled peak resident bytes. The small sizes also run the
      shard-at-a-time path decomposition (full edge coverage checked).
    - **identity** — on the overlap sizes (small enough to hold in
      RAM), the store's :meth:`~repro.storage.ShardedGraph.materialize`
      must reproduce the in-RAM
      :class:`~repro.graph.builder.GraphBuilder` result **bit for
      bit**, under both partition policies.
    - **scaling** — the certification summary: ``edge_growth`` (~100x),
      ``memory_growth`` (peak resident, partition+scan), and
      ``sublinearity = memory_growth / edge_growth``. ``bounded`` is
      the CI gate: memory must grow strictly sublinearly in edges.
    """
    import hashlib as _hashlib
    import json as _json
    import shutil as _shutil
    import tempfile as _tempfile

    from repro.bench.schema import validate_artifact
    from repro.graph.builder import GraphBuilder
    from repro.storage import (
        ShardedGraph,
        partition_graph,
        synthetic_chunk_source,
    )

    # Edges scale 100x, vertices only 10x, so the O(V) bookkeeping the
    # partitioner is allowed to hold stays far below O(E).
    base_sizes = (
        (2_000, 12_000),
        (5_000, 60_000),
        (10_000, 240_000),
        (20_000, 1_200_000),
    )
    sizes = [
        (max(64, int(n * scale)), max(256, int(m * scale)))
        for n, m in base_sizes
    ]
    per_part_edges = max(1, sizes[0][1])
    identity_sizes = sizes[:2]
    decompose_edge_cap = sizes[1][1]

    def _graph_digest(graph) -> str:
        h = _hashlib.sha256()
        for arr in (graph.indptr, graph.indices, graph.weights):
            arr = np.ascontiguousarray(arr)
            h.update(str(arr.dtype).encode())
            h.update(str(arr.shape).encode())
            h.update(arr.tobytes())
        return h.hexdigest()

    cells = []
    for n, m in sizes:
        num_parts = max(2, round(m / per_part_edges))
        source = synthetic_chunk_source(
            n, m, seed=seed, chunk_edges=chunk_edges
        )
        out_dir = _tempfile.mkdtemp(prefix="repro-storage-")
        try:
            report = partition_graph(
                source, num_parts, out_dir, policy=policy, seed=seed
            )
            sharded = ShardedGraph(
                out_dir, max_resident_bytes=cache_bytes
            )
            scan_stats = sharded.scan()
            cell = {
                "num_vertices": report.num_vertices,
                "num_edges": report.num_edges,
                "num_parts": report.num_parts,
                "policy": report.policy,
                "chunk_edges": chunk_edges,
                "edge_cut": report.edge_cut,
                "edge_cut_fraction": report.edge_cut_fraction,
                "clusters": report.clusters,
                "store_bytes": report.store_bytes,
                "partition_peak_resident_bytes": (
                    report.peak_resident_bytes
                ),
                "scan_peak_resident_bytes": (
                    sharded.peak_resident_bytes
                ),
                "peak_resident_bytes": max(
                    report.peak_resident_bytes,
                    sharded.peak_resident_bytes,
                ),
                "shard_loads": scan_stats["shard_loads"],
                "shard_evictions": scan_stats["shard_evictions"],
                "partition_wall_s": report.wall_seconds,
            }
            if m <= decompose_edge_cap:
                decomposition = sharded.decompose_paths()
                cell["num_paths"] = decomposition["num_paths"]
                cell["covered_edges"] = decomposition["covered_edges"]
            cells.append(cell)
        finally:
            _shutil.rmtree(out_dir, ignore_errors=True)

    identity = []
    for n, m in identity_sizes:
        source = synthetic_chunk_source(
            n, m, seed=seed, chunk_edges=chunk_edges
        )
        builder = GraphBuilder()
        for src, dst, weight in source():
            builder.add_edge_arrays(src, dst, weight)
        ram_graph = builder.build()
        ram_digest = _graph_digest(ram_graph)
        for identity_policy in ("affinity", "random"):
            out_dir = _tempfile.mkdtemp(prefix="repro-storage-id-")
            try:
                partition_graph(
                    source,
                    max(2, round(m / per_part_edges)),
                    out_dir,
                    policy=identity_policy,
                    seed=seed,
                )
                store_graph = ShardedGraph(
                    out_dir, max_resident_bytes=cache_bytes
                ).materialize()
                store_digest = _graph_digest(store_graph)
                identity.append(
                    {
                        "num_vertices": n,
                        "num_edges": m,
                        "policy": identity_policy,
                        "digest_ram": ram_digest,
                        "digest_store": store_digest,
                        "identical": store_digest == ram_digest,
                    }
                )
            finally:
                _shutil.rmtree(out_dir, ignore_errors=True)

    first, last = cells[0], cells[-1]
    edge_growth = last["num_edges"] / first["num_edges"]
    memory_growth = (
        last["peak_resident_bytes"] / first["peak_resident_bytes"]
        if first["peak_resident_bytes"]
        else 0.0
    )
    scaling = {
        "edge_growth": edge_growth,
        "memory_growth": memory_growth,
        "sublinearity": memory_growth / edge_growth,
        "bounded": memory_growth < edge_growth,
        "all_identical": all(row["identical"] for row in identity),
    }

    rows = []
    for cell in cells:
        rows.append(
            [
                cell["num_vertices"],
                cell["num_edges"],
                cell["num_parts"],
                f"{cell['edge_cut_fraction']:.1%}",
                f"{cell['partition_peak_resident_bytes'] / 1e6:.2f}",
                f"{cell['scan_peak_resident_bytes'] / 1e6:.2f}",
                f"{cell['store_bytes'] / 1e6:.2f}",
            ]
        )
    table = format_table(
        f"Out-of-core storage scaling (policy={policy}, "
        f"edges x{edge_growth:.0f}, peak memory x{memory_growth:.1f}, "
        f"identity={'PASS' if scaling['all_identical'] else 'FAIL'})",
        ["|V|", "|E|", "parts", "cut", "part MB", "scan MB", "store MB"],
        rows,
    )
    artifact = {
        "schema": "repro-storage",
        "schema_version": 1,
        "config": {
            "scale": scale,
            "policy": policy,
            "seed": seed,
            "chunk_edges": chunk_edges,
            "cache_bytes": cache_bytes,
            "sizes": [list(size) for size in sizes],
            "per_part_edges": per_part_edges,
        },
        "cells": cells,
        "identity": identity,
        "scaling": scaling,
    }
    validate_artifact(
        artifact, kind="repro-storage", path=out_path or "<artifact>"
    )
    if out_path is not None:
        with open(out_path, "w", encoding="utf-8") as fh:
            _json.dump(artifact, fh, indent=1, sort_keys=True)
            fh.write("\n")
    return {
        "results": cells,
        "identity": identity,
        "scaling": scaling,
        "artifact": artifact,
        "table": table,
    }
