"""Benchmark harness: result records, runners, per-figure experiments."""

from repro.bench.results import ExecutionResult, RoundRecord

__all__ = ["ExecutionResult", "RoundRecord"]
