"""Benchmark harness: result records, runners, per-figure experiments,
and the continuous-benchmark sweep + regression gate
(:mod:`repro.bench.sweep`, :mod:`repro.bench.schema`)."""

from repro.bench.results import ExecutionResult, RoundRecord

__all__ = ["ExecutionResult", "RoundRecord"]
